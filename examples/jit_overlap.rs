//! The paper's §8 extension, demonstrated: overlap JIT **compilation**
//! with transfer, on top of non-strict execution.
//!
//! Sweeps compile costs and link speeds, comparing inline
//! compile-at-first-use against a background compiler that works through
//! the stream as methods arrive.
//!
//! ```text
//! cargo run --release --example jit_overlap [benchmark]
//! ```

use nonstrict::core::jit::{simulate_jit, JitConfig, JitStrategy};
use nonstrict::core::metrics::cycles_to_seconds;
use nonstrict::core::{OrderingSource, Session};
use nonstrict::netsim::Link;
use nonstrict_bytecode::Input;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "jhlzip".to_owned());
    let app = nonstrict::workloads::build_by_name(&name)
        .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    println!(
        "{}: JIT compilation overlapped with non-strict interleaved transfer\n",
        app.name
    );
    let session = Session::new(app)?;

    let links = [
        ("28.8K modem", Link::MODEM_28_8),
        ("T1", Link::T1),
        (
            "LAN 10M",
            Link::from_bandwidth(10_000_000, 500_000_000).expect("nonzero bandwidth"),
        ),
    ];
    let costs = [500u64, 2_000, 20_000];

    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>10}",
        "link", "cyc/code-byte", "inline JIT", "overlapped", "hidden"
    );
    for (label, link) in links {
        for cost in costs {
            let inline = simulate_jit(
                &session,
                Input::Test,
                link,
                OrderingSource::TrainProfile,
                &JitConfig {
                    cycles_per_code_byte: cost,
                    strategy: JitStrategy::AtFirstUse,
                },
            );
            let overlapped = simulate_jit(
                &session,
                Input::Test,
                link,
                OrderingSource::TrainProfile,
                &JitConfig {
                    cycles_per_code_byte: cost,
                    strategy: JitStrategy::Overlapped,
                },
            );
            let hidden = inline.total_cycles.saturating_sub(overlapped.total_cycles);
            println!(
                "{:<12} {:>14} {:>11.3}s {:>11.3}s {:>9.1}%",
                label,
                cost,
                cycles_to_seconds(inline.total_cycles),
                cycles_to_seconds(overlapped.total_cycles),
                100.0 * hidden as f64 / inline.total_cycles.max(1) as f64,
            );
        }
        println!();
    }
    println!("(\"hidden\" = share of the inline-JIT run the background compiler removes)");
    Ok(())
}
