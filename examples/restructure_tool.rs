//! The paper's running example (Figures 1–5), reproduced end to end.
//!
//! Builds the two-class application of Figure 1 — Class A with `Main`,
//! `Foo_A`, `Bar_A`; Class B with `Foo_B`, `Bar_B` — where `Main` calls
//! `Bar_B` first, then the rest. Prints the original layout (Fig. 1),
//! the first-use call graph (Fig. 2), the restructured class files
//! (Fig. 3), the greedy parallel transfer schedule (Fig. 4), and the
//! virtual interleaved file (Fig. 5).
//!
//! ```text
//! cargo run --example restructure_tool
//! ```

use nonstrict::bytecode::builder::MethodBuilder;
use nonstrict::bytecode::program::{Application, ClassDef, Program, StaticDef};
use nonstrict::bytecode::MethodId;
use nonstrict::netsim::{class_units, greedy_schedule, Weights, DELIMITER_BYTES};
use nonstrict::reorder::{restructure, static_first_use};

fn paper_example() -> Application {
    // Class A (index 0): Foo_A, Bar_A, Main — source order, as Figure 1.
    let foo_a = MethodId::new(0, 0);
    let bar_a = MethodId::new(0, 1);
    let foo_b = MethodId::new(1, 0);
    let bar_b = MethodId::new(1, 1);

    let mut a = ClassDef::new("example/A");
    a.add_static(StaticDef::int("globalA", 1));
    let mut m = MethodBuilder::new("Foo_A", 0);
    m.iconst(10).pop().ret();
    a.add_method(m.finish());
    let mut m = MethodBuilder::new("Bar_A", 0);
    m.iconst(20).pop().ret();
    a.add_method(m.finish());
    // Main: calls Bar_B first (the Figure 4 dependency), then Bar_A,
    // Foo_A, Foo_B.
    let mut m = MethodBuilder::new("Main", 0);
    m.invoke(bar_b)
        .invoke(bar_a)
        .invoke(foo_a)
        .invoke(foo_b)
        .ret();
    a.add_method(m.finish());

    let mut b = ClassDef::new("example/B");
    b.add_static(StaticDef::int("globalB", 2));
    let mut m = MethodBuilder::new("Foo_B", 0);
    m.iconst(30).pop().ret();
    b.add_method(m.finish());
    let mut m = MethodBuilder::new("Bar_B", 0);
    m.iconst(40).pop().ret();
    b.add_method(m.finish());

    let program = Program::new(vec![a, b], "example/A", "Main").expect("example verifies");
    Application::from_program("FigureExample", program, 100).expect("example lowers")
}

fn main() {
    let app = paper_example();
    let name = |m: MethodId| -> String { app.program.method(m).name.clone() };

    println!("Figure 1 — original class files (source order):");
    for (ci, class) in app.program.classes().iter().enumerate() {
        let file = &app.classes[ci];
        println!(
            "  {}: [global data {}B] {}",
            class.name,
            file.global_data_size(),
            class
                .methods
                .iter()
                .map(|m| m.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    let order = static_first_use(&app.program);
    println!("\nFigure 2 — first-use call graph order (static estimation):");
    for (i, &m) in order.order().iter().enumerate() {
        println!(
            "  {}. {} ({})",
            i + 1,
            name(m),
            app.program.class(m.class).name
        );
    }

    let r = restructure(&app, &order);
    println!("\nFigure 3 — restructured class files (first-use order):");
    for (ci, layout) in r.layouts.iter().enumerate() {
        println!(
            "  {}: [global data] {}",
            app.program.classes()[ci].name,
            layout
                .file_order
                .iter()
                .map(|&mi| name(MethodId::new(ci as u16, mi)))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    let units = class_units(&app, &r, None, DELIMITER_BYTES);
    let schedule = greedy_schedule(&app, &order, &units, &r.layouts, Weights::Static);
    println!("\nFigure 4 — parallel transfer schedule (greedy):");
    for (k, &c) in schedule.class_order.iter().enumerate() {
        println!(
            "  start #{}: {} after {} unique dependency bytes (class is {}B on the wire)",
            k + 1,
            app.program.classes()[c].name,
            schedule.thresholds[k],
            units[c].total()
        );
    }

    println!("\nFigure 5 — virtual interleaved file:");
    let mut sent_prelude = vec![false; app.classes.len()];
    let mut offset = 0u64;
    for &m in order.order() {
        let c = m.class.0 as usize;
        if !sent_prelude[c] {
            sent_prelude[c] = true;
            println!(
                "  @{:>5}B  global data of {} ({}B)",
                offset,
                app.program.classes()[c].name,
                units[c].prelude
            );
            offset += units[c].prelude;
        }
        let pos = r.layouts[c].position_of(m.method);
        let bytes = units[c].methods[pos];
        println!(
            "  @{:>5}B  {} + local data + delimiter ({}B)",
            offset,
            name(m),
            bytes
        );
        offset += bytes;
    }
    println!("  total interleaved file: {offset}B");
}
