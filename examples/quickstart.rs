//! Quickstart: simulate one benchmark under strict and non-strict
//! execution and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart [benchmark]
//! ```

use nonstrict::core::metrics::{cycles_to_seconds, normalized_percent};
use nonstrict::core::{OrderingSource, Session, SimConfig};
use nonstrict::netsim::Link;
use nonstrict_bytecode::Input;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "jess".to_owned());
    let app = nonstrict::workloads::build_by_name(&name).ok_or_else(|| {
        format!(
            "unknown benchmark {name:?}; try one of {:?}",
            nonstrict::workloads::BENCHMARK_NAMES
        )
    })?;

    println!(
        "benchmark: {} ({} classes, {} methods, {} KB)",
        app.name,
        app.classes.len(),
        app.program.method_count(),
        app.total_size() / 1024
    );

    // Profile both inputs and precompute orderings once.
    let session = Session::new(app)?;

    for link in [Link::T1, Link::MODEM_28_8] {
        let strict = session.simulate(Input::Test, &SimConfig::strict(link));
        println!(
            "\n{} link ({} cycles/byte):",
            link.name, link.cycles_per_byte
        );
        println!(
            "  strict (1998 JVM):   {:>6.2} s   (invocation latency {:>5.2} s)",
            cycles_to_seconds(strict.total_cycles),
            cycles_to_seconds(strict.invocation_latency),
        );
        for ordering in [
            OrderingSource::StaticCallGraph,
            OrderingSource::TrainProfile,
            OrderingSource::TestProfile,
        ] {
            let r = session.simulate(Input::Test, &SimConfig::non_strict(link, ordering));
            println!(
                "  non-strict [{:<5}]:  {:>6.2} s   (latency {:>5.2} s, normalized {:>5.1}%, {} stalls)",
                ordering.label(),
                cycles_to_seconds(r.total_cycles),
                cycles_to_seconds(r.invocation_latency),
                normalized_percent(r.total_cycles, strict.total_cycles),
                r.stalls,
            );
        }
    }
    Ok(())
}
