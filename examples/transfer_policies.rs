//! Compares every transfer policy on one benchmark: strict sequential,
//! parallel at each concurrent-file limit, and interleaved — with and
//! without global-data partitioning.
//!
//! ```text
//! cargo run --release --example transfer_policies [benchmark] [t1|modem]
//! ```

use nonstrict::core::metrics::normalized_percent;
use nonstrict::core::{
    DataLayout, ExecutionModel, OrderingSource, Session, SimConfig, TransferPolicy, VerifyMode,
};
use nonstrict::netsim::Link;
use nonstrict_bytecode::Input;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bit".to_owned());
    let link = match std::env::args().nth(2).as_deref() {
        Some("t1") => Link::T1,
        _ => Link::MODEM_28_8,
    };
    let app = nonstrict::workloads::build_by_name(&name)
        .ok_or_else(|| format!("unknown benchmark {name:?}"))?;
    println!(
        "{} over the {} link — normalized execution time (% of strict base)\n",
        app.name, link.name
    );
    let session = Session::new(app)?;
    let base = session
        .simulate(Input::Test, &SimConfig::strict(link))
        .total_cycles;

    let policies = [
        TransferPolicy::Strict,
        TransferPolicy::Parallel { limit: 1 },
        TransferPolicy::Parallel { limit: 2 },
        TransferPolicy::Parallel { limit: 4 },
        TransferPolicy::Parallel { limit: usize::MAX },
        TransferPolicy::Interleaved,
    ];
    println!(
        "{:<10} {:>8} {:>8} {:>8} | {:>8} {:>8} {:>8}",
        "policy", "SCG", "Train", "Test", "SCG+DP", "Train+DP", "Test+DP"
    );
    for policy in policies {
        print!("{:<10}", policy.label());
        for data_layout in [DataLayout::Whole, DataLayout::Partitioned] {
            for ordering in [
                OrderingSource::StaticCallGraph,
                OrderingSource::TrainProfile,
                OrderingSource::TestProfile,
            ] {
                let config = SimConfig {
                    link,
                    ordering,
                    transfer: policy,
                    data_layout,
                    execution: ExecutionModel::NonStrict,
                    faults: None,
                    verify: VerifyMode::Off,
                    outages: None,
                    replicas: None,
                    byzantine: None,
                };
                let r = session.simulate(Input::Test, &config);
                print!(" {:>8.1}", normalized_percent(r.total_cycles, base));
            }
            if data_layout == DataLayout::Whole {
                print!(" |");
            }
        }
        println!();
    }
    println!("\n(smaller is better; 100 = the strict 1998 JVM baseline)");
    Ok(())
}
