//! Invocation latency over a range of link speeds — the user-experience
//! question that motivates the paper: how long until an applet starts?
//!
//! Sweeps bandwidths from a 14.4 K modem to a 10 Mbit LAN for every
//! benchmark and prints the time-to-first-instruction under strict
//! loading, non-strict loading, and non-strict loading with partitioned
//! global data.
//!
//! ```text
//! cargo run --release --example applet_latency
//! ```

use nonstrict::core::metrics::cycles_to_seconds;
use nonstrict::core::{DataLayout, OrderingSource, Session, SimConfig};
use nonstrict::netsim::Link;
use nonstrict_bytecode::Input;

/// The paper models a 500 MHz Alpha.
const CPU_HZ: u64 = 500_000_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bandwidths: [(&str, u64); 5] = [
        ("14.4K modem", 14_400),
        ("28.8K modem", 29_000),
        ("ISDN 128K", 128_000),
        ("T1 ~1M", 1_048_576),
        ("LAN 10M", 10_000_000),
    ];

    println!(
        "{:<10} {:>14} {:>12} {:>12} {:>12}",
        "Program", "link", "strict", "non-strict", "partitioned"
    );
    for app in nonstrict::workloads::build_all() {
        let name = app.name.clone();
        let session = Session::new(app)?;
        for (label, bps) in bandwidths {
            let link = Link::from_bandwidth(bps, CPU_HZ)?;
            let strict = session.simulate(Input::Test, &SimConfig::strict(link));
            let ns_cfg = SimConfig::non_strict(link, OrderingSource::StaticCallGraph);
            let ns = session.simulate(Input::Test, &ns_cfg);
            let mut dp_cfg = ns_cfg;
            dp_cfg.data_layout = DataLayout::Partitioned;
            let dp = session.simulate(Input::Test, &dp_cfg);
            println!(
                "{:<10} {:>14} {:>11.3}s {:>11.3}s {:>11.3}s",
                name,
                label,
                cycles_to_seconds(strict.invocation_latency),
                cycles_to_seconds(ns.invocation_latency),
                cycles_to_seconds(dp.invocation_latency),
            );
        }
        println!();
    }
    Ok(())
}
