//! # nonstrict
//!
//! Non-strict execution for mobile programs: overlap program execution
//! with network transfer, a from-scratch Rust reproduction of
//!
//! > Chandra Krintz, Brad Calder, Han Bok Lee, Benjamin G. Zorn.
//! > *Overlapping Execution with Transfer Using Non-Strict Execution for
//! > Mobile Programs.* ASPLOS-VIII, 1998.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`classfile`] — JVM class-file substrate with exact wire sizes
//! * [`bytecode`] — instruction set, control-flow graphs, interpreter
//! * [`profile`] — execution traces and first-use profiling
//! * [`workloads`] — the six ASPLOS '98 benchmarks rebuilt as bytecode
//! * [`reorder`] — first-use reordering, restructuring, data partitioning
//! * [`netsim`] — links, transfer schedules, parallel/interleaved engines
//! * [`core`] — the non-strict co-simulator, metrics, and experiments
//!
//! ## Quickstart
//!
//! ```
//! use nonstrict::prelude::*;
//!
//! // Build a benchmark, reorder it by static first-use estimation, and
//! // simulate non-strict interleaved transfer over a modem link.
//! let app = nonstrict::workloads::hanoi::build();
//! let config = SimConfig {
//!     link: Link::MODEM_28_8,
//!     ordering: OrderingSource::StaticCallGraph,
//!     transfer: TransferPolicy::Interleaved,
//!     data_layout: DataLayout::Whole,
//!     execution: ExecutionModel::NonStrict,
//!     faults: None,
//!     verify: VerifyMode::Off,
//!     outages: None,
//!     replicas: None,
//!     byzantine: None,
//! };
//! let result = simulate(&app, Input::Test, &config).unwrap();
//! let strict = simulate(&app, Input::Test, &SimConfig::strict(Link::MODEM_28_8)).unwrap();
//! assert!(result.total_cycles < strict.total_cycles);
//! ```

pub use nonstrict_bytecode as bytecode;
pub use nonstrict_classfile as classfile;
pub use nonstrict_core as core;
pub use nonstrict_netsim as netsim;
pub use nonstrict_profile as profile;
pub use nonstrict_reorder as reorder;
pub use nonstrict_workloads as workloads;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use nonstrict_bytecode::program::{Application, Input};
    pub use nonstrict_core::chaos::{
        crash_anywhere, replay_repro, run_scenario, shrink, ChaosReport, ChaosScenario,
        ChaosViolation, DifferentialReport, InterruptDims, OverloadDims, ScenarioError,
        ShrinkOutcome,
    };
    pub use nonstrict_core::fleet::{
        run_fleet, AdmissionSettings, ClientOutcome, FleetClient, FleetResult, FleetSpec,
    };
    pub use nonstrict_core::metrics::{normalized_percent, CycleLedger};
    pub use nonstrict_core::model::{
        ByzantineConfig, DataLayout, ExecutionModel, FaultConfig, OrderingSource, OutageConfig,
        ReplicaConfig, ReplicaKill, SimConfig, TransferPolicy, VerifyMode,
    };
    pub use nonstrict_core::sim::{
        simulate, FaultSummary, IntegritySummary, InterruptSpec, OutageSummary, ReplicaSummary,
        RunOutcome, Session, SimResult,
    };
    pub use nonstrict_netsim::byzantine::{ByzantineMode, IntegrityStats};
    pub use nonstrict_netsim::contention::{drr_schedule, ClientDemand, ShedAction, ShedLadder};
    pub use nonstrict_netsim::link::Link;
}
