//! End-to-end properties of Byzantine-tolerant transfer — the
//! integrity tentpole's detection contract:
//!
//! 1. **Equivocation is caught at the unit boundary** — with the honest
//!    primary dead and the surviving mirrors equivocating, divergent
//!    units are detected inline by the pinned manifest digest (nothing
//!    links undetected), the diverging mirror is quarantined, and the
//!    client still executes exactly what an all-honest fleet delivers.
//! 2. **An honest fleet is byte-identical at every audit rate** — a
//!    `ByzantineConfig` with zero dishonest mirrors normalizes away:
//!    the whole `SimResult` equals the no-byzantine run bit for bit, at
//!    any audit-rate setting.
//! 3. **A stale-epoch mirror never contributes a post-fence unit** —
//!    every post-fence unit it tries to serve is refetched from the
//!    rest of the set, and execution is identical to the honest run.
//! 4. **Chaos composition** — byzantine mirrors compose with link
//!    faults and connection outages: the run still completes, every
//!    cycle lands in exactly one of the eight ledger buckets, and the
//!    whole composition is deterministic under its seeds.

use nonstrict::prelude::*;
use nonstrict_netsim::Link;

/// Three mirrors with the honest primary killed at cycle 1, so the
/// transfer is served by the set's dishonest tail (the highest-indexed
/// mirrors misbehave; mirror 0 is always honest).
fn primary_dead_mirrors() -> ReplicaConfig {
    let mut rc = ReplicaConfig::seeded(0xb12a_47f1);
    rc.replicas = 3;
    rc.kill = Some(ReplicaKill {
        replica: 0,
        at_cycle: 1,
    });
    rc
}

fn byz(mirrors: u32, mode: ByzantineMode, audit_rate_pm: u32) -> ByzantineConfig {
    let mut bc = ByzantineConfig::seeded(0xb12a_47f1);
    bc.mirrors = mirrors;
    bc.mode = mode;
    bc.audit_rate_pm = audit_rate_pm;
    bc
}

#[test]
fn equivocating_survivors_are_detected_inline_and_quarantined() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let plain = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
        .with_replicas(primary_dead_mirrors());
    let honest = session.simulate(Input::Test, &plain);
    let r = session.simulate(
        Input::Test,
        &plain.with_byzantine(byz(2, ByzantineMode::Equivocate, 0)),
    );
    assert!(r.faults.completed, "the run must survive equivocation");
    assert!(
        r.integrity.divergent_units >= 1,
        "with both survivors dishonest, some unit must diverge: {:?}",
        r.integrity
    );
    assert_eq!(
        r.integrity.undetected_units, 0,
        "equivocation is digest-visible: every divergent unit is caught at its boundary"
    );
    assert!(
        r.integrity.quarantines >= 1,
        "a proven equivocator must be quarantined: {:?}",
        r.integrity
    );
    assert!(
        r.integrity.refetched_bytes > 0,
        "caught units are refetched"
    );
    // The quarantined mirror is marked in the health table, with its
    // equivocation count, and only dishonest mirrors carry either.
    let quarantined: Vec<usize> = (0..3)
        .filter(|&i| r.replica.health[i].quarantined)
        .collect();
    assert!(!quarantined.is_empty());
    for &i in &quarantined {
        assert!(i >= 1, "mirror 0 is honest (and dead), never quarantined");
        assert!(r.replica.health[i].equivocations >= 1);
    }
    assert_eq!(r.replica.health[0].equivocations, 0);
    // Detection is invisible to the program: the client executes
    // exactly what the honest fleet delivers, paying only time.
    assert_eq!(r.exec_cycles, honest.exec_cycles);
    assert_eq!(r.link_stats, honest.link_stats);
    assert!(r.integrity.integrity_cycles > 0);
}

#[test]
fn an_honest_fleet_is_byte_identical_at_every_audit_rate() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    for link in [Link::T1, Link::MODEM_28_8] {
        let plain = SimConfig::non_strict(link, OrderingSource::StaticCallGraph)
            .with_replicas(primary_dead_mirrors());
        let base = session.simulate(Input::Test, &plain);
        for audit_rate_pm in [0, 1, 50_000, 1_000_000] {
            let r = session.simulate(
                Input::Test,
                &plain.with_byzantine(byz(0, ByzantineMode::Equivocate, audit_rate_pm)),
            );
            assert_eq!(
                r, base,
                "zero dishonest mirrors must be byte-identical to no byzantine \
                 config at all (audit rate {audit_rate_pm})"
            );
            assert_eq!(r.integrity, IntegritySummary::default());
        }
    }
}

#[test]
fn a_stale_epoch_mirror_never_contributes_a_post_fence_unit() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let plain = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
        .with_replicas(primary_dead_mirrors());
    let honest = session.simulate(Input::Test, &plain);
    let r = session.simulate(
        Input::Test,
        &plain.with_byzantine(byz(2, ByzantineMode::StaleEpoch, 0)),
    );
    assert!(r.faults.completed);
    assert!(
        r.integrity.fence_refetches >= 1,
        "with the whole surviving set stale, the epoch fence must trigger \
         targeted refetches: {:?}",
        r.integrity
    );
    assert_eq!(
        r.integrity.undetected_units, 0,
        "a stale unit is digest-visible under the pinned epoch: none may link"
    );
    // The fence is exact: every refetched unit was divergent, and the
    // client ends up executing the pinned epoch's program exactly.
    assert!(r.integrity.divergent_units >= r.integrity.fence_refetches);
    assert_eq!(r.exec_cycles, honest.exec_cycles);
    assert_eq!(r.link_stats, honest.link_stats);
}

#[test]
fn collusion_is_invisible_to_digests_and_caught_by_audits() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let plain = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
        .with_replicas(primary_dead_mirrors());
    // Without audits, a digest-forging colluder links divergent bytes
    // undetected — the threat the audit sampler exists for.
    let blind = session.simulate(
        Input::Test,
        &plain.with_byzantine(byz(1, ByzantineMode::Collude, 0)),
    );
    assert_eq!(blind.integrity.audits, 0);
    // With aggressive sampling, the cross-mirror audit compares the
    // colluder against the honest survivor and catches the divergence.
    let audited = session.simulate(
        Input::Test,
        &plain.with_byzantine(byz(1, ByzantineMode::Collude, 1_000_000)),
    );
    assert!(audited.integrity.audits > 0);
    if audited.integrity.divergent_units > 0 {
        assert!(
            audited.integrity.audit_mismatches > 0,
            "an every-unit audit against an honest mirror must observe the \
             divergence: {:?}",
            audited.integrity
        );
        assert!(
            audited.integrity.undetected_units < audited.integrity.divergent_units,
            "audits must catch what the forged digests let through"
        );
    }
}

#[test]
fn byzantine_mirrors_compose_with_faults_and_outages() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let mut faults = FaultConfig::seeded(0xc4a0_5001);
    faults.loss_pm = 10_000;
    faults.corrupt_pm = 5_000;
    let mut outages = OutageConfig::seeded(0xc4a0_5002);
    outages.rate_pm = 60;
    let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
        .with_replicas(primary_dead_mirrors())
        .with_faults(faults)
        .with_outages(outages)
        .with_byzantine(byz(2, ByzantineMode::Equivocate, 100_000));
    let r = session.simulate(Input::Test, &config);
    assert!(r.faults.completed, "the composition must still terminate");
    // Every cycle lands in exactly one of the eight buckets.
    let l = r.ledger();
    assert_eq!(
        l.exec + l.stall + l.recovery + l.verify + l.resume + l.hedge + l.queue + l.integrity,
        r.total_cycles,
        "the eight-bucket ledger must stay exact under full chaos"
    );
    assert_eq!(l.integrity, r.integrity.integrity_cycles);
    assert!(r.integrity.digest_checks > 0);
    // And the whole composition is reproducible, bit for bit.
    assert_eq!(r, session.simulate(Input::Test, &config));
}
