//! Live TCP loopback tests: the real server, the real client, and the
//! socket-level chaos proxy, exercising the robustness ladder the
//! simulator only models.
//!
//! The centerpiece is the wire-level **crash-anywhere differential**:
//! disconnect at *every* unit boundary of a session, reconnect-resume
//! from the client's watermarks, and require the delivered payloads and
//! their stream-loader verification outcomes to be identical to an
//! uninterrupted run. The simulator proved this property over virtual
//! cycles; this proves it over sockets.

use std::time::Duration;

use nonstrict_core::model::OrderingSource;
use nonstrict_core::{build_plan, verify_payloads};
use nonstrict_wire::{
    ChaosConfig, ChaosProxy, ClientConfig, FaultKnobs, LoadgenConfig, ServerConfig, WireClient,
    WireServer,
};

mod common;

fn hanoi_server(config: ServerConfig) -> WireServer {
    let plan = build_plan("hanoi", OrderingSource::StaticCallGraph).expect("hanoi builds");
    WireServer::bind("127.0.0.1:0", vec![plan], config).expect("loopback bind")
}

fn fast_client(addr: std::net::SocketAddr) -> ClientConfig {
    let mut c = ClientConfig::new(addr, "hanoi");
    c.keep_payloads = true;
    c.backoff_base = Duration::from_millis(1);
    c.backoff_cap = Duration::from_millis(10);
    c
}

/// Disconnect at every unit boundary; every resumed session must be
/// indistinguishable from the uninterrupted one.
#[test]
fn crash_at_every_unit_boundary_matches_uninterrupted_run() {
    let server = hanoi_server(ServerConfig::default());
    let addr = server.local_addr();

    let baseline = WireClient::new(fast_client(addr)).run().expect("baseline");
    assert!(baseline.complete, "uninterrupted run completes");
    let total_units: u64 = baseline.units.iter().map(|&u| u64::from(u)).sum();
    assert!(total_units > 2, "hanoi streams more than a prelude");
    let baseline_methods =
        verify_payloads(baseline.payloads.as_ref().unwrap()).expect("baseline verifies");

    for k in 1..total_units {
        let mut config = fast_client(addr);
        config.disconnect_after_units = Some(k);
        let report = WireClient::new(config)
            .run()
            .unwrap_or_else(|e| panic!("crash at unit {k}: {e}"));
        assert!(report.complete, "crash at unit {k} still completes");
        assert!(
            report.connects >= 2,
            "crash at unit {k} actually reconnected"
        );
        assert_eq!(
            report.unit_crcs, baseline.unit_crcs,
            "crash at unit {k}: delivered payloads diverged"
        );
        assert_eq!(report.delivered, baseline.delivered);
        assert_eq!(report.manifest_epoch, baseline.manifest_epoch);
        assert_eq!(report.manifest_crc, baseline.manifest_crc);
        let methods = verify_payloads(report.payloads.as_ref().unwrap())
            .unwrap_or_else(|e| panic!("crash at unit {k}: verification diverged: {e}"));
        assert_eq!(methods, baseline_methods, "crash at unit {k}");
    }
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);
}

/// The chaos proxy injects socket-level faults at several seeds; every
/// client must still converge to the exact baseline payloads.
#[test]
fn chaos_seeds_converge_to_identical_payloads() {
    let server = hanoi_server(ServerConfig {
        pace_per_unit: Some(Duration::from_micros(100)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let baseline = WireClient::new(fast_client(addr)).run().expect("baseline");

    // 4 seeds locally; CI's wire-soak job elevates the count.
    for seed in 1..=common::chaos_seeds() {
        let knobs = FaultKnobs {
            seed,
            loss_pm: 30_000,
            drop_pm: 10_000,
            corrupt_pm: 30_000,
            droop_pm: 5_000,
            semantic_pm: 20_000,
        };
        let mut chaos = ChaosConfig::new(knobs);
        chaos.stall = Duration::from_millis(5);
        let proxy = ChaosProxy::spawn(addr, chaos).expect("proxy spawns");
        let mut config = fast_client(proxy.local_addr());
        config.max_attempts = 50;
        let report = WireClient::new(config)
            .run()
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.complete, "seed {seed} completes under chaos");
        assert_eq!(
            report.unit_crcs, baseline.unit_crcs,
            "seed {seed}: chaos corrupted an accepted payload"
        );
        verify_payloads(report.payloads.as_ref().unwrap())
            .unwrap_or_else(|e| panic!("seed {seed}: verification failed: {e}"));
        let stats = proxy.stop();
        assert!(stats.connections >= 1, "seed {seed} saw traffic");
    }
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);
}

/// Token-bucket admission turns the burst-exhausted tail of a thundering
/// herd away with typed Retry frames, and every client still finishes.
#[test]
fn admission_control_retries_then_completes() {
    let server = hanoi_server(ServerConfig {
        accept_burst: 2,
        accept_refill_per_sec: 20,
        retry_after_ms: 30,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let report = nonstrict_wire::run_loadgen(&LoadgenConfig {
        client: {
            let mut c = fast_client(addr);
            c.keep_payloads = false;
            c.max_attempts = 50;
            c
        },
        clients: 8,
        seed: 3,
        arrival_spread: Duration::from_millis(1),
        stores: None,
    });
    assert_eq!(report.completed, 8, "violations: {:?}", report.violations);
    assert_eq!(report.failed, 0);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(
        report.admission_retries > 0,
        "an 8-client herd against burst 2 must see Retry frames"
    );
    assert!(server.stats().retried > 0);
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);
}

/// Drain mid-stream: in-flight connections finish at a unit boundary,
/// the evicted client keeps its watermarks, and a reconnect against a
/// fresh server resumes rather than restarting.
#[test]
fn drain_evicts_at_unit_boundaries_and_clients_resume() {
    let server = hanoi_server(ServerConfig {
        // Slow the stream down so the drain lands mid-session.
        pace_per_unit: Some(Duration::from_millis(20)),
        resume_after_ms: 5,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();

    // One client limited to a single attempt: the drain evicts it, and
    // its report preserves the partial watermarks.
    let handle = std::thread::spawn(move || {
        let mut config = fast_client(addr);
        config.max_attempts = 1;
        WireClient::new(config).run()
    });
    std::thread::sleep(Duration::from_millis(120));
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean, "pacing connections drain at unit boundaries");
    assert_eq!(drained.forced, 0);
    let evicted = handle.join().unwrap();
    // A single-attempt client either got lucky and finished before the
    // drain or was evicted with partial progress; both reports keep
    // consistent watermarks.
    let report = match evicted {
        Ok(r) => r,
        Err(nonstrict_wire::ClientError::Exhausted { .. }) => return,
        Err(e) => panic!("unexpected client error: {e}"),
    };
    if !report.complete {
        assert!(report.evictions >= 1, "incomplete without an eviction");
        let partial: u64 = report.delivered.iter().map(|&d| u64::from(d)).sum();
        assert!(partial > 0, "drain should land mid-stream, not pre-Hello");
    }
}

/// A consumer draining far below the configured byte-rate floor is a
/// slow-loris attack on the send queue; the server must evict it
/// instead of letting it pin a connection slot.
#[test]
fn slow_consumer_floor_evicts_stalled_clients() {
    use std::io::Read;
    let server = hanoi_server(ServerConfig {
        min_bytes_per_sec: 1 << 20,
        slow_grace: Duration::from_millis(50),
        send_queue_depth: 1,
        write_timeout: Duration::from_millis(200),
        // Pace the stream past the grace window: hanoi is small enough
        // to vanish into the loopback socket buffer otherwise, and a
        // connection that finishes before the grace expires never meets
        // the floor check.
        pace_per_unit: Some(Duration::from_millis(20)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    // A slow-loris client: sends a valid Hello, then reads one byte per
    // 50ms — far below the 1 MiB/s floor.
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let hello = nonstrict_wire::Frame::Hello {
        version: nonstrict_wire::PROTOCOL_VERSION,
        benchmark: "hanoi".to_owned(),
        ordering: 0,
        resume: Vec::new(),
    };
    std::io::Write::write_all(&mut stream, &hello.encode()).expect("hello");
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .expect("timeout");
    // Consume one byte per 50 ms in the background — far below the
    // floor. The eviction is observed on the server's counter; the
    // loris itself only sees EOF after draining whatever the kernel
    // already buffered, which can take arbitrarily long by design.
    std::thread::spawn(move || {
        let mut buf = [0u8; 1];
        loop {
            match stream.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => std::thread::sleep(Duration::from_millis(50)),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    continue;
                }
                Err(_) => break,
            }
        }
    });
    let started = std::time::Instant::now();
    while server.stats().evicted_slow == 0 && started.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        server.stats().evicted_slow >= 1,
        "a slow-loris consumer must be evicted"
    );
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);
}
