//! Semantic guarantees of the six benchmarks: the properties the
//! experiments silently rely on.

use std::collections::HashSet;

use nonstrict::bytecode::cfg::CallGraph;
use nonstrict::reorder::static_first_use;
use nonstrict_bytecode::{Input, Interpreter};
use nonstrict_profile::collect;

#[test]
fn all_builds_are_bit_for_bit_deterministic() {
    let a = nonstrict::workloads::build_all();
    let b = nonstrict::workloads::build_all();
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.test_args, y.test_args, "{}", x.name);
        assert_eq!(x.train_args, y.train_args, "{}", x.name);
        for (cx, cy) in x.classes.iter().zip(&y.classes) {
            assert_eq!(cx.to_bytes(), cy.to_bytes(), "{}", x.name);
        }
    }
}

#[test]
fn every_benchmark_runs_cleanly_on_both_inputs() {
    for app in nonstrict::workloads::build_all() {
        for input in [Input::Test, Input::Train] {
            let mut interp = Interpreter::new(&app.program);
            interp
                .run(app.args(input), &mut ())
                .unwrap_or_else(|e| panic!("{} faulted on {input}: {e}", app.name));
            assert!(interp.executed() > 1_000, "{} {input} barely ran", app.name);
        }
    }
}

#[test]
fn train_first_uses_are_a_subset_of_some_run_and_orders_diverge() {
    for app in nonstrict::workloads::build_all() {
        let test = collect(&app, Input::Test).unwrap();
        let train = collect(&app, Input::Train).unwrap();
        // Divergence: for most programs the two inputs must not produce
        // identical first-use sequences (otherwise Train would be a
        // perfect profile). Hanoi is the legitimate exception: its train
        // input is a strict prefix of the test input (6 rings vs 6+8),
        // exactly as in the paper, so the orders coincide.
        if app.name != "Hanoi" {
            assert_ne!(
                test.profile.order(),
                train.profile.order(),
                "{}: test and train first-use orders must differ",
                app.name
            );
        }
        // But they must agree heavily — the paper's Train columns sit
        // close to Test.
        let agreement = train.profile.order_agreement(&test.profile);
        assert!(
            agreement > 0.80,
            "{}: train/test order agreement {agreement:.2}",
            app.name
        );
    }
}

#[test]
fn static_estimation_covers_every_profiled_method() {
    // Anything that actually ran must be statically reachable (the SCG
    // may overpredict via dead guards, but never underpredict).
    for app in nonstrict::workloads::build_all() {
        let order = static_first_use(&app.program);
        let cg = CallGraph::build(&app.program);
        let reachable: HashSet<_> = cg
            .reachable_from(&app.program, app.program.entry())
            .into_iter()
            .collect();
        let test = collect(&app, Input::Test).unwrap();
        for &m in test.profile.order() {
            assert!(
                reachable.contains(&m),
                "{}: executed method {m} invisible to the static call graph",
                app.name
            );
            // and the SCG must have ranked it before all never-reachable
            // methods it placed at the tail
            assert!(order.rank(&app.program, m) < app.program.method_count());
        }
    }
}

#[test]
fn scg_overpredicts_but_never_underpredicts_class_loading() {
    // Dead-guarded call sites make SCG schedule classes that never load;
    // that asymmetry (overprediction only) is what separates the paper's
    // SCG columns from its profile columns.
    for app in nonstrict::workloads::build_all() {
        let cg = CallGraph::build(&app.program);
        let static_classes: HashSet<u16> = cg
            .reachable_from(&app.program, app.program.entry())
            .into_iter()
            .map(|m| m.class.0)
            .collect();
        let test = collect(&app, Input::Test).unwrap();
        let dynamic_classes: HashSet<u16> =
            test.profile.order().iter().map(|m| m.class.0).collect();
        assert!(
            dynamic_classes.is_subset(&static_classes),
            "{}: a loaded class escaped static analysis",
            app.name
        );
    }
}

#[test]
fn generated_benchmarks_have_dead_classes_on_test_input() {
    for name in ["BIT", "JavaCup", "Jess", "JHLZip"] {
        let app = nonstrict::workloads::build_by_name(name).unwrap();
        let test = collect(&app, Input::Test).unwrap();
        let loaded: HashSet<u16> = test.profile.order().iter().map(|m| m.class.0).collect();
        assert!(
            loaded.len() < app.classes.len(),
            "{name}: expected some classes never to load ({} of {})",
            loaded.len(),
            app.classes.len()
        );
    }
}

#[test]
fn program_outputs_are_meaningful() {
    // Hanoi prints its move count; TestDes prints the round-trip
    // verdict; the generated apps print their checksums.
    let hanoi = nonstrict::workloads::hanoi::build();
    let mut interp = Interpreter::new(&hanoi.program);
    interp.run(hanoi.args(Input::Test), &mut ()).unwrap();
    assert_eq!(
        interp.output(),
        &[318],
        "hanoi solves 6+8 rings = 318 moves"
    );

    let des = nonstrict::workloads::testdes::build();
    let mut interp = Interpreter::new(&des.program);
    interp.run(des.args(Input::Train), &mut ()).unwrap();
    assert_eq!(interp.output(), &[1], "testdes round trip verifies");

    let jess = nonstrict::workloads::jess::build();
    let mut interp = Interpreter::new(&jess.program);
    interp.run(jess.args(Input::Test), &mut ()).unwrap();
    assert_eq!(interp.output().len(), 1, "jess prints one checksum");
}
