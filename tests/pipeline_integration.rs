//! Cross-crate integration: the classfile → bytecode → profile →
//! reorder → netsim → core pipeline hangs together byte for byte.

use nonstrict::core::{
    DataLayout, ExecutionModel, OrderingSource, Session, SimConfig, TransferPolicy, VerifyMode,
};
use nonstrict::netsim::{
    class_units, greedy_schedule, InterleavedEngine, Link, ParallelEngine, StrictEngine,
    TransferEngine, Weights, DELIMITER_BYTES,
};
use nonstrict::reorder::{partition_app, restructure, static_first_use, FirstUseOrder};
use nonstrict_bytecode::{Application, Input};
use nonstrict_profile::collect;

fn apps() -> Vec<Application> {
    vec![
        nonstrict::workloads::hanoi::build(),
        nonstrict::workloads::jhlzip::build(),
    ]
}

#[test]
fn serialized_class_files_are_wire_exact_for_every_benchmark() {
    for app in nonstrict::workloads::build_all() {
        for (ci, class) in app.classes.iter().enumerate() {
            let bytes = class.to_bytes();
            assert_eq!(
                bytes.len() as u32,
                class.total_size(),
                "{} class {ci}: serialized length must equal the size model",
                app.name
            );
            assert_eq!(&bytes[0..4], &[0xCA, 0xFE, 0xBA, 0xBE]);
            class.validate().unwrap();
        }
    }
}

#[test]
fn restructuring_preserves_every_byte_count() {
    for app in apps() {
        let order = static_first_use(&app.program);
        let r = restructure(&app, &order);
        for (orig, new) in app.classes.iter().zip(&r.classes) {
            assert_eq!(orig.total_size(), new.total_size());
            assert_eq!(orig.global_data_size(), new.global_data_size());
        }
    }
}

#[test]
fn partitioned_and_whole_units_carry_the_same_payload() {
    for app in apps() {
        let order = static_first_use(&app.program);
        let r = restructure(&app, &order);
        let parts = partition_app(&app);
        let whole = class_units(&app, &r, None, 0);
        let split = class_units(&app, &r, Some(&parts), 0);
        for (ci, (w, s)) in whole.iter().zip(&split).enumerate() {
            let slack = 2 * (s.methods.len() as u64 + 2); // per-unit rounding
            assert!(
                w.total().abs_diff(s.total()) <= slack,
                "{} class {ci}: {} vs {}",
                app.name,
                w.total(),
                s.total()
            );
        }
    }
}

#[test]
fn all_engines_agree_on_total_bytes_and_work_conserving_finish() {
    for app in apps() {
        let order = static_first_use(&app.program);
        let r = restructure(&app, &order);
        let units = class_units(&app, &r, None, DELIMITER_BYTES);
        let total: u64 = units.iter().map(|u| u.total()).sum();
        let link = Link::T1;
        let class_order: Vec<usize> = (0..units.len()).collect();

        let mut strict = StrictEngine::new(link, &units, &class_order);
        let mut interleaved = InterleavedEngine::new(&app, &r, &units, &order, link);
        let schedule = greedy_schedule(&app, &order, &units, &r.layouts, Weights::Static);
        let mut parallel = ParallelEngine::new(link, units.clone(), &schedule, 4);

        // The link is work-conserving under every policy: same bytes,
        // same completion time.
        assert_eq!(strict.total_bytes(), total);
        assert_eq!(interleaved.total_bytes(), total);
        assert_eq!(parallel.total_bytes(), total);
        assert_eq!(strict.finish_time(), link.cycles_for(total));
        assert_eq!(interleaved.finish_time(), link.cycles_for(total));
        assert_eq!(
            parallel.finish_time(),
            link.cycles_for(total),
            "{}",
            app.name
        );
    }
}

#[test]
fn engine_arrivals_are_monotone_within_each_class_stream() {
    let app = nonstrict::workloads::hanoi::build();
    let order = static_first_use(&app.program);
    let r = restructure(&app, &order);
    let units = class_units(&app, &r, None, DELIMITER_BYTES);
    let schedule = greedy_schedule(&app, &order, &units, &r.layouts, Weights::Static);
    let mut engine = ParallelEngine::new(Link::MODEM_28_8, units.clone(), &schedule, 2);
    for (c, u) in units.iter().enumerate() {
        let mut last = 0;
        for i in 0..u.unit_count() {
            let t = engine.unit_ready(c, i, 0);
            assert!(t >= last, "class {c} unit {i}");
            last = t;
        }
    }
}

#[test]
fn profile_collection_matches_interpreter_counts() {
    for app in apps() {
        let collected = collect(&app, Input::Test).unwrap();
        let mut interp = nonstrict_bytecode::Interpreter::new(&app.program);
        interp.run(app.args(Input::Test), &mut ()).unwrap();
        assert_eq!(
            collected.trace.total_instructions(),
            interp.executed(),
            "{}",
            app.name
        );
    }
}

#[test]
fn train_profile_covers_no_more_than_test_for_every_benchmark() {
    for app in nonstrict::workloads::build_all() {
        let session = Session::new(app).unwrap();
        let test_n = session.test.profile.executed_method_count();
        let train_n = session.train.profile.executed_method_count();
        assert!(
            train_n <= test_n,
            "{}: train covers {train_n} methods, test {test_n}",
            session.app.name
        );
    }
}

#[test]
fn strict_transfer_with_nonstrict_execution_is_a_valid_ablation() {
    // TransferPolicy::Strict + NonStrict execution = "strict with
    // overlap": between the baseline and real non-strict transfer.
    let app = nonstrict::workloads::jhlzip::build();
    let session = Session::new(app).unwrap();
    let link = Link::MODEM_28_8;
    let base = session.simulate(Input::Test, &SimConfig::strict(link));
    let overlap = SimConfig {
        link,
        ordering: OrderingSource::TestProfile,
        transfer: TransferPolicy::Strict,
        data_layout: DataLayout::Whole,
        execution: ExecutionModel::NonStrict,
        faults: None,
        verify: VerifyMode::Off,
        outages: None,
        replicas: None,
        byzantine: None,
    };
    let mut ns = overlap;
    ns.transfer = TransferPolicy::Parallel { limit: 4 };
    let r_overlap = session.simulate(Input::Test, &overlap);
    let r_ns = session.simulate(Input::Test, &ns);
    assert!(r_overlap.total_cycles <= base.total_cycles);
    // Parallel fair-sharing may delay the critical class relative to a
    // dedicated sequential stream; allow a few percent of the baseline.
    assert!(r_ns.total_cycles <= r_overlap.total_cycles + base.total_cycles / 20);
}

#[test]
fn source_order_restructuring_is_identity() {
    let app = nonstrict::workloads::hanoi::build();
    let order = FirstUseOrder::source_order(&app.program);
    let r = restructure(&app, &order);
    for (ci, layout) in r.layouts.iter().enumerate() {
        let expect: Vec<u16> = (0..app.classes[ci].methods.len() as u16).collect();
        assert_eq!(layout.file_order, expect);
        assert_eq!(app.classes[ci].to_bytes(), r.classes[ci].to_bytes());
    }
}

#[test]
fn every_benchmark_class_file_parses_back_byte_exactly() {
    for app in nonstrict::workloads::build_all() {
        for (ci, class) in app.classes.iter().enumerate() {
            let bytes = class.to_bytes();
            let parsed = nonstrict::classfile::parse(&bytes)
                .unwrap_or_else(|e| panic!("{} class {ci}: {e}", app.name));
            assert_eq!(parsed.to_bytes(), bytes, "{} class {ci}", app.name);
            parsed.validate().unwrap();
        }
    }
}

#[test]
fn every_benchmark_method_disassembles_and_reencodes_exactly() {
    use nonstrict::classfile::Attribute;
    for app in nonstrict::workloads::build_all() {
        for class in &app.classes {
            for m in &class.methods {
                let Some(Attribute::Code { code, .. }) = m.code_attribute() else {
                    continue;
                };
                let ops = nonstrict::bytecode::decode(code)
                    .unwrap_or_else(|e| panic!("{}: {e}", app.name));
                let mut re = Vec::with_capacity(code.len());
                for (_, op) in &ops {
                    op.encode_into(&mut re);
                }
                assert_eq!(&re, code, "{}", app.name);
                // and the listing renders without error
                let text = nonstrict::bytecode::listing(code, &class.constant_pool).unwrap();
                assert_eq!(text.lines().count(), ops.len());
            }
        }
    }
}
