//! The paper's headline claims, verified end to end on the full suite.
//!
//! These tests build and profile all six benchmarks once (shared via
//! `OnceLock`) and assert the *shape* of the paper's results: who wins,
//! in which direction, and roughly by how much. Absolute cell values are
//! compared in EXPERIMENTS.md, not asserted here — our substrate is a
//! reconstruction, not the authors' testbed.

use std::sync::OnceLock;

use nonstrict::core::experiment::{self, Suite};
use nonstrict::core::metrics::mean;
use nonstrict::core::{
    DataLayout, ExecutionModel, OrderingSource, SimConfig, TransferPolicy, VerifyMode,
};
use nonstrict::netsim::Link;
use nonstrict_bytecode::Input;

fn suite() -> &'static Suite {
    static SUITE: OnceLock<Suite> = OnceLock::new();
    SUITE.get_or_init(|| Suite::new().expect("all six benchmarks build and profile"))
}

#[test]
fn invocation_latency_reductions_match_the_paper_band() {
    // Paper §8: non-strict execution cuts invocation latency 31%–56% on
    // average (plain non-strict at the low end, partitioned at the top).
    let t4 = experiment::table4(suite());
    let ns = mean(
        &t4.iter()
            .flat_map(|r| [r.t1.non_strict_reduction, r.modem.non_strict_reduction])
            .collect::<Vec<_>>(),
    );
    let dp = mean(
        &t4.iter()
            .flat_map(|r| [r.t1.partitioned_reduction, r.modem.partitioned_reduction])
            .collect::<Vec<_>>(),
    );
    assert!(
        ns > 15.0 && ns < 60.0,
        "non-strict avg latency reduction {ns:.0}%"
    );
    assert!(
        dp > ns,
        "partitioning must reduce latency further: {dp:.0}% vs {ns:.0}%"
    );
    assert!(dp > 25.0, "partitioned avg latency reduction {dp:.0}%");
}

#[test]
fn every_benchmark_latency_is_ordered_strict_nonstrict_partitioned() {
    for row in experiment::table4(suite()) {
        for case in [row.t1, row.modem] {
            assert!(
                case.non_strict <= case.strict + 1e-9,
                "{}: non-strict latency must not exceed strict",
                row.name
            );
            assert!(
                case.partitioned <= case.non_strict + 1e-9,
                "{}: partitioned latency must not exceed non-strict",
                row.name
            );
        }
    }
}

#[test]
fn testdes_sees_no_latency_benefit_like_the_paper() {
    // Table 4's TestDes row: the entry class is essentially one giant
    // main method, so non-strict loading saves ~nothing (paper: 1%).
    let t4 = experiment::table4(suite());
    let row = t4.iter().find(|r| r.name == "TestDes").unwrap();
    assert!(
        row.t1.non_strict_reduction < 10.0,
        "{}",
        row.t1.non_strict_reduction
    );
    // while JavaCup and Hanoi see substantial reductions
    let cup = t4.iter().find(|r| r.name == "JavaCup").unwrap();
    assert!(
        cup.t1.non_strict_reduction > 15.0,
        "{}",
        cup.t1.non_strict_reduction
    );
}

#[test]
fn ordering_quality_ranks_scg_train_test_on_average() {
    // Tables 5–7: perfect (Test) prediction beats Train, which beats the
    // static call graph, on suite averages for both links.
    let s = suite();
    for link in [Link::T1, Link::MODEM_28_8] {
        let t = experiment::parallel_table(s, link, DataLayout::Whole);
        let scg = mean(&t.avg[0]);
        let train = mean(&t.avg[1]);
        let test = mean(&t.avg[2]);
        assert!(
            test <= train + 0.5 && train <= scg + 0.5,
            "{}: parallel avgs SCG {scg:.1} / Train {train:.1} / Test {test:.1}",
            link.name
        );
    }
    let t7 = experiment::interleaved_table(s, DataLayout::Whole);
    assert!(
        t7.avg[2] <= t7.avg[1] + 0.5 && t7.avg[1] <= t7.avg[0] + 0.5,
        "{:?}",
        t7.avg
    );
    assert!(
        t7.avg[5] <= t7.avg[4] + 0.5 && t7.avg[4] <= t7.avg[3] + 0.5,
        "{:?}",
        t7.avg
    );
}

#[test]
fn non_strict_execution_always_improves_on_the_baseline() {
    // §7.2: every non-strict configuration must beat (or tie) strict
    // execution, on every benchmark and both links.
    let s = suite();
    for session in &s.sessions {
        for link in [Link::T1, Link::MODEM_28_8] {
            let base = session
                .simulate(Input::Test, &SimConfig::strict(link))
                .total_cycles;
            for ordering in [
                OrderingSource::StaticCallGraph,
                OrderingSource::TrainProfile,
                OrderingSource::TestProfile,
            ] {
                for transfer in [
                    TransferPolicy::Parallel { limit: 4 },
                    TransferPolicy::Interleaved,
                ] {
                    let config = SimConfig {
                        link,
                        ordering,
                        transfer,
                        data_layout: DataLayout::Whole,
                        execution: ExecutionModel::NonStrict,
                        faults: None,
                        verify: VerifyMode::Off,
                        outages: None,
                        replicas: None,
                        byzantine: None,
                    };
                    let r = session.simulate(Input::Test, &config);
                    // Method delimiters add ~2 bytes per method to the
                    // wire; a fully-executed program (TestDes) can pay
                    // that without any tail to cut, so allow 0.5%.
                    assert!(
                        r.total_cycles <= base + base / 200,
                        "{} {:?} regressed past the baseline",
                        session.app.name,
                        config
                    );
                }
            }
        }
    }
}

#[test]
fn modem_gains_exceed_t1_gains_for_interleaved_test_ordering() {
    // Transfer dominates on the modem (Table 3: 89–99%), so hiding it
    // matters more there.
    let s = suite();
    let t7 = experiment::interleaved_table(s, DataLayout::Whole);
    let t1_test = t7.avg[2];
    let modem_test = t7.avg[5];
    assert!(
        modem_test <= t1_test + 1.0,
        "modem avg {modem_test:.1} should be at least as good as T1 {t1_test:.1}"
    );
}

#[test]
fn data_partitioning_helps_interleaved_transfer_on_average() {
    // Figure 6: the partitioned series sits below the whole-data series.
    let s = suite();
    let whole = experiment::interleaved_table(s, DataLayout::Whole);
    let part = experiment::interleaved_table(s, DataLayout::Partitioned);
    let avg_whole = mean(&whole.avg);
    let avg_part = mean(&part.avg);
    assert!(
        avg_part <= avg_whole + 0.5,
        "partitioning avg {avg_part:.1} vs whole {avg_part:.1}"
    );
}

#[test]
fn execution_time_reductions_reach_the_paper_band() {
    // Abstract: 25%–40% average reduction in overall execution time.
    // Our reproduction's best configurations must reach at least the
    // lower end of that band.
    let s = suite();
    let f6 = experiment::fig6(s);
    let best_avg = mean(&f6[3]); // interleaved + partitioning
    assert!(
        100.0 - best_avg >= 20.0,
        "best series should cut at least ~20%: normalized {best_avg:.1}"
    );
    let parallel_avg = mean(&f6[0]);
    assert!(
        100.0 - parallel_avg >= 8.0,
        "parallel(4) should cut at least ~8%: normalized {parallel_avg:.1}"
    );
}

#[test]
fn table3_transfer_shares_match_the_paper() {
    // %transfer is the experiment's backbone: T1 2–73%, modem 46–99%.
    for (row, paper) in experiment::table3(suite())
        .iter()
        .zip(experiment::paper::TABLE3)
    {
        let (_, _, _, t1_pct, _, modem_pct) = paper;
        assert!(
            (row.t1.pct_transfer - t1_pct).abs() < 8.0,
            "{}: T1 %transfer {:.1} vs paper {:.1}",
            row.name,
            row.t1.pct_transfer,
            t1_pct
        );
        assert!(
            (row.modem.pct_transfer - modem_pct).abs() < 20.0,
            "{}: modem %transfer {:.1} vs paper {:.1}",
            row.name,
            row.modem.pct_transfer,
            modem_pct
        );
    }
}

#[test]
fn table9_partition_shares_match_the_paper() {
    for row in experiment::table9(suite()) {
        let s = &row.summary;
        assert!(
            s.pct_in_methods > 55.0 && s.pct_in_methods < 92.0,
            "{}: in-methods {:.1}",
            row.name,
            s.pct_in_methods
        );
        assert!(
            s.pct_needed_first > 5.0 && s.pct_needed_first < 40.0,
            "{}: needed-first {:.1}",
            row.name,
            s.pct_needed_first
        );
        let total = s.pct_needed_first + s.pct_in_methods + s.pct_unused;
        assert!((total - 100.0).abs() < 1e-6);
    }
    // Jess carries the suite's largest unused share (paper: 20%).
    let t9 = experiment::table9(suite());
    let jess = t9.iter().find(|r| r.name == "Jess").unwrap();
    for other in t9.iter().filter(|r| r.name != "Jess") {
        assert!(
            jess.summary.pct_unused > other.summary.pct_unused,
            "{}",
            other.name
        );
    }
}

#[test]
fn incremental_linker_processes_only_what_ran() {
    let s = suite();
    for session in &s.sessions {
        let config = SimConfig::non_strict(Link::T1, OrderingSource::TestProfile);
        let r = session.simulate(Input::Test, &config);
        let executed = session.test.profile.executed_method_count();
        assert_eq!(
            r.link_stats.methods_resolved, executed,
            "{}",
            session.app.name
        );
        assert!(r.link_stats.classes_verified <= session.app.classes.len());
    }
}
