//! Property-style tests over the transfer simulation core and the
//! class-file substrate: invariants that must hold for *any* input, not
//! just the six benchmarks. Cases are generated from a seeded in-repo
//! RNG, so failures reproduce exactly.

use nonstrict::classfile::{ClassFileBuilder, Constant, MethodData};
use nonstrict::netsim::{
    ClassUnits, InterleavedEngine, Link, ParallelEngine, StrictEngine, TransferEngine,
};
use nonstrict::workloads::rng::StdRng;
use nonstrict_netsim::schedule::ParallelSchedule;

const CASES: u64 = 64;

/// Arbitrary class units: 1–5 classes, up to 8 methods each.
fn arb_units(rng: &mut StdRng) -> Vec<ClassUnits> {
    let classes = rng.gen_range(1usize..6);
    (0..classes)
        .map(|_| {
            let methods = (0..rng.gen_range(1usize..8))
                .map(|_| rng.gen_range(1u64..500))
                .collect();
            ClassUnits {
                prelude: rng.gen_range(1u64..2000),
                methods,
                trailing: rng.gen_range(0u64..200),
            }
        })
        .collect()
}

/// The fluid parallel engine is work-conserving: with at least one
/// stream always eligible, all bytes finish exactly when a single
/// full-bandwidth stream would finish them.
#[test]
fn parallel_engine_is_work_conserving() {
    let mut rng = StdRng::seed_from_u64(0x9a11e7);
    for _ in 0..CASES {
        let units = arb_units(&mut rng);
        let limit = rng.gen_range(1usize..6);
        let cpb = rng.gen_range(1u64..2000);
        let link = Link {
            cycles_per_byte: cpb,
            name: "prop",
        };
        let schedule = ParallelSchedule {
            class_order: (0..units.len()).collect(),
            thresholds: vec![0; units.len()],
        };
        let total: u64 = units.iter().map(ClassUnits::total).sum();
        let mut engine = ParallelEngine::new(link, units, &schedule, limit);
        assert_eq!(engine.finish_time(), link.cycles_for(total));
    }
}

/// Arrivals are monotone within every class stream and never later
/// than the all-done time, for arbitrary thresholds.
#[test]
fn parallel_arrivals_are_monotone_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xa221fe);
    for _ in 0..CASES {
        let units = arb_units(&mut rng);
        let limit = rng.gen_range(1usize..5);
        let cpb = rng.gen_range(1u64..500);
        let seed = rng.gen_range(0u64..1000);
        let link = Link {
            cycles_per_byte: cpb,
            name: "prop",
        };
        let schedule = ParallelSchedule {
            class_order: (0..units.len()).collect(),
            // simple deterministic pseudo-thresholds bounded by capacity
            thresholds: {
                let mut caps = Vec::new();
                let mut acc = 0u64;
                for u in &units {
                    caps.push(if acc == 0 { 0 } else { (seed * 7919) % acc });
                    acc += u.total();
                }
                caps
            },
        };
        let mut engine = ParallelEngine::new(link, units.clone(), &schedule, limit);
        let finish = engine.finish_time();
        for (c, u) in units.iter().enumerate() {
            let mut last = 0;
            for i in 0..u.unit_count() {
                let t = engine.unit_ready(c, i, 0);
                assert!(t >= last, "class {c} unit {i}: {t} < {last}");
                assert!(t <= finish);
                last = t;
            }
        }
    }
}

/// A demand fetch can only improve (or not change) a unit's arrival
/// versus waiting for the schedule.
#[test]
fn demand_fetch_never_delays_the_requested_class() {
    let mut rng = StdRng::seed_from_u64(0xdefe7c);
    let mut checked = 0;
    while checked < CASES {
        let units = arb_units(&mut rng);
        let cpb = rng.gen_range(1u64..500);
        if units.len() < 2 {
            continue;
        }
        checked += 1;
        let link = Link {
            cycles_per_byte: cpb,
            name: "prop",
        };
        let last = units.len() - 1;
        // Threshold forces `last` to start only after everything else.
        let cap: u64 = units[..last].iter().map(ClassUnits::total).sum();
        let schedule = ParallelSchedule {
            class_order: (0..units.len()).collect(),
            thresholds: (0..units.len())
                .map(|i| if i == last { cap } else { 0 })
                .collect(),
        };
        let mut scheduled = ParallelEngine::new(link, units.clone(), &schedule, 4);
        let mut demanded = ParallelEngine::new(link, units.clone(), &schedule, 4);
        // never ask for it: simulate everything, then read the arrival
        let f = scheduled.finish_time();
        let t_wait = scheduled.unit_ready(last, 0, f);
        // ask for it at time zero (misprediction correction)
        let t_demand = demanded.unit_ready(last, 0, 0);
        assert!(
            t_demand <= t_wait,
            "demand {t_demand} vs scheduled {t_wait}"
        );
    }
}

/// Interleaved arrival deltas equal the unit sizes times the link
/// cost: the single stream is exact.
#[test]
fn interleaved_stream_is_exact() {
    let mut rng = StdRng::seed_from_u64(0x1e4e6);
    let app = nonstrict::workloads::hanoi::build();
    let order = nonstrict::reorder::static_first_use(&app.program);
    let r = nonstrict::reorder::restructure(&app, &order);
    let units = nonstrict::netsim::class_units(&app, &r, None, 2);
    for _ in 0..CASES {
        let cpb = rng.gen_range(1u64..1000);
        let link = Link {
            cycles_per_byte: cpb,
            name: "prop",
        };
        let mut e = InterleavedEngine::new(&app, &r, &units, &order, link);
        let total: u64 = units.iter().map(ClassUnits::total).sum();
        assert_eq!(e.finish_time(), link.cycles_for(total));
        // the entry method arrives after exactly prelude + first unit
        let c = app.program.entry().class.0 as usize;
        assert_eq!(
            e.unit_ready(c, 1, 0),
            link.cycles_for(units[c].prelude + units[c].methods[0])
        );
    }
}

/// Strict transfer completes classes at exact cumulative boundaries
/// in the given order.
#[test]
fn strict_engine_matches_prefix_sums() {
    let mut rng = StdRng::seed_from_u64(0x57fe1c7);
    for _ in 0..CASES {
        let units = arb_units(&mut rng);
        let cpb = rng.gen_range(1u64..1000);
        let link = Link {
            cycles_per_byte: cpb,
            name: "prop",
        };
        let order: Vec<usize> = (0..units.len()).collect();
        let engine = StrictEngine::new(link, &units, &order);
        let mut acc = 0u64;
        for (c, u) in units.iter().enumerate() {
            acc += u.total();
            assert_eq!(engine.class_ready(c), link.cycles_for(acc));
        }
    }
}

/// Class-file byte conservation: for any synthetic class, the
/// serialized length equals the size model, and the global/method
/// split covers the file exactly.
#[test]
fn classfile_sizes_are_exact() {
    let mut rng = StdRng::seed_from_u64(0xc1a55);
    for case in 0..CASES {
        let name_count = rng.gen_range(1usize..10);
        let names: Vec<String> = (0..name_count)
            .map(|i| {
                let len = rng.gen_range(1usize..13);
                (0..len)
                    .map(|j| {
                        char::from(
                            b'a' + ((rng.gen_range(0u32..26) + i as u32 + j as u32) % 26) as u8,
                        )
                    })
                    .collect()
            })
            .collect();
        let code_lens: Vec<usize> = (0..rng.gen_range(1usize..10))
            .map(|_| rng.gen_range(1usize..200))
            .collect();
        let strings: Vec<String> = (0..rng.gen_range(0usize..6))
            .map(|_| {
                let len = rng.gen_range(0usize..41);
                (0..len)
                    .map(|_| char::from(rng.gen_range(0x20u32..0x7f) as u8))
                    .collect()
            })
            .collect();
        let ints: Vec<i32> = (0..rng.gen_range(0usize..6))
            .map(|_| rng.gen_range(i32::MIN..i32::MAX))
            .collect();

        let mut b = ClassFileBuilder::new("prop/T");
        for s in &strings {
            b.pool_mut().string(s).unwrap();
        }
        for v in &ints {
            b.pool_mut().intern(Constant::Integer(*v)).unwrap();
        }
        for (i, name) in names.iter().enumerate() {
            let len = code_lens[i % code_lens.len()];
            let mut code = vec![0x00u8; len];
            *code.last_mut().unwrap() = 0xB1; // return
            let mut md = MethodData::new(format!("{name}{i}"), "()V", code);
            md.line_numbers(vec![(0, 1), (1, 2)]);
            b.add_method(md).unwrap();
        }
        let class = b.build().unwrap();
        assert_eq!(
            class.to_bytes().len() as u32,
            class.total_size(),
            "case {case}"
        );
        let methods: u32 = class.methods.iter().map(|m| m.wire_size()).sum();
        assert_eq!(
            class.global_data_size() + methods,
            class.total_size(),
            "case {case}"
        );
    }
}
