//! Mirror fleets over real TCP: mid-stream failover, Byzantine
//! quarantine, the crash-restarting supervisor, and live epoch
//! rollover.
//!
//! The headline is the wire-level **kill-any-mirror** differential:
//! with a fleet of mirrors serving the same plan, hard-kill one at
//! *every* delivered-unit boundary (no Evict, no Bye — the socket just
//! dies) and require every client to fail over mid-stream and converge
//! to payloads byte-identical to an uninterrupted single-server run,
//! verified through the same stream loader a live non-strict JVM would
//! apply. The simulator's replica layer proved this over virtual
//! cycles (PR 5–6); this proves it over sockets.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use nonstrict_core::model::OrderingSource;
use nonstrict_core::{build_plan, verify_payloads};
use nonstrict_wire::{
    run_loadgen, ChaosConfig, ChaosProxy, ClientConfig, CrashPlan, FaultKnobs, FleetConfig,
    FleetSupervisor, LoadgenConfig, ServePlan, ServerConfig, WireClient, WireServer,
    HEALTH_FULL_PPM,
};

fn hanoi_plan(ordering: OrderingSource) -> ServePlan {
    build_plan("hanoi", ordering).expect("hanoi builds")
}

fn fleet_client(mirrors: Vec<SocketAddr>) -> ClientConfig {
    let mut c = ClientConfig::with_mirrors(mirrors, "hanoi");
    c.keep_payloads = true;
    c.backoff_base = Duration::from_millis(1);
    c.backoff_cap = Duration::from_millis(20);
    c
}

/// Hard-kill the preferred mirror at every global unit boundary; the
/// client must fail over to the surviving mirror mid-stream and still
/// deliver byte-identical, loader-clean payloads.
#[test]
fn kill_any_mirror_at_every_unit_boundary_converges() {
    let plan = hanoi_plan(OrderingSource::StaticCallGraph);
    let reference =
        WireServer::bind("127.0.0.1:0", vec![plan.clone()], ServerConfig::default()).expect("bind");
    let baseline = WireClient::new(fleet_client(vec![reference.local_addr()]))
        .run()
        .expect("baseline");
    assert!(baseline.complete);
    let total_units: u64 = baseline.units.iter().map(|&u| u64::from(u)).sum();
    assert!(total_units > 2, "hanoi streams more than a prelude");
    let baseline_methods =
        verify_payloads(baseline.payloads.as_ref().unwrap()).expect("baseline verifies");

    for k in 1..=total_units {
        let dying = WireServer::bind(
            "127.0.0.1:0",
            vec![plan.clone()],
            ServerConfig {
                kill_after_units: Some(k),
                ..ServerConfig::default()
            },
        )
        .expect("bind dying");
        let survivor = WireServer::bind("127.0.0.1:0", vec![plan.clone()], ServerConfig::default())
            .expect("bind survivor");
        let report = WireClient::new(fleet_client(vec![
            dying.local_addr(),
            survivor.local_addr(),
        ]))
        .run()
        .unwrap_or_else(|e| panic!("kill at unit {k}: {e}"));
        assert!(report.complete, "kill at unit {k} still completes");
        assert!(dying.is_killed(), "kill at unit {k} actually fired");
        assert!(
            report.failovers >= 1,
            "kill at unit {k} must force a failover"
        );
        assert_eq!(report.quarantines, 0, "a crash is not Byzantine");
        assert_eq!(
            report.unit_crcs, baseline.unit_crcs,
            "kill at unit {k}: delivered payloads diverged"
        );
        assert_eq!(report.delivered, baseline.delivered);
        let methods = verify_payloads(report.payloads.as_ref().unwrap())
            .unwrap_or_else(|e| panic!("kill at unit {k}: verification diverged: {e}"));
        assert_eq!(methods, baseline_methods, "kill at unit {k}");
        // The survivor served whatever the dead mirror could not.
        assert_eq!(
            report.mirror_units.iter().sum::<u64>(),
            u64::from(report.delivered.iter().map(|&d| u64::from(d)).sum::<u64>() as u32),
            "every accepted unit is attributed to a mirror"
        );
        // At the final boundary the dying mirror races its own kill:
        // if the writer flushes unit `total_units` before the socket
        // shutdown lands, the survivor only serves the Complete
        // handshake and contributes no units. Anywhere earlier it must
        // serve real payload.
        assert!(
            report.mirror_units[1] > 0 || k == total_units,
            "kill at unit {k}: survivor idle"
        );
    }
    let drained = reference.drain(Duration::from_secs(5));
    assert!(drained.clean);
}

/// A mirror whose proxy forges unit payloads under re-sealed frame CRCs
/// is caught by the pinned-manifest digest check at its first divergent
/// unit, quarantined, and never contributes a delivered unit.
#[test]
fn forging_mirror_is_quarantined_and_contributes_nothing() {
    let plan = hanoi_plan(OrderingSource::StaticCallGraph);
    let honest =
        WireServer::bind("127.0.0.1:0", vec![plan.clone()], ServerConfig::default()).expect("bind");
    let baseline = WireClient::new(fleet_client(vec![honest.local_addr()]))
        .run()
        .expect("baseline");

    let forged_backend =
        WireServer::bind("127.0.0.1:0", vec![plan], ServerConfig::default()).expect("bind");
    let mut chaos = ChaosConfig::new(FaultKnobs::default());
    chaos.forge_pm = 1_000_000; // forge every unit frame
    let proxy = ChaosProxy::spawn(forged_backend.local_addr(), chaos).expect("proxy");

    // The forging mirror is listed first, so it is pinned and trusted
    // until its first unit fails the digest check.
    let report = WireClient::new(fleet_client(vec![proxy.local_addr(), honest.local_addr()]))
        .run()
        .expect("session completes from the honest mirror");
    assert!(report.complete);
    assert!(report.digest_rejects >= 1, "the forgery was detected");
    assert!(report.quarantines >= 1, "the forger was quarantined");
    assert_eq!(
        report.mirror_units[0], 0,
        "a forging mirror must never contribute a delivered unit"
    );
    assert_eq!(report.mirror_health[0], 0, "quarantine zeroes health");
    assert_eq!(
        report.unit_crcs, baseline.unit_crcs,
        "the honest mirror's payloads are untouched"
    );
    verify_payloads(report.payloads.as_ref().unwrap()).expect("verifies clean");
    let stats = proxy.stop();
    assert!(stats.forges >= 1, "the proxy actually forged frames");
}

/// Two mirrors serving *different programs* under the same generation
/// is equivocation: whichever layout the client pinned first wins, and
/// the divergent mirror is quarantined at its Welcome — before a single
/// unit flows from it.
#[test]
fn equivocating_mirror_is_quarantined_at_welcome() {
    // Same benchmark name, structurally different layouts (different
    // restructure orderings), both claiming generation 0.
    let plan_a = hanoi_plan(OrderingSource::StaticCallGraph);
    let plan_b = hanoi_plan(OrderingSource::SourceOrder);
    assert_ne!(
        plan_a.manifest_epoch, plan_b.manifest_epoch,
        "the two layouts must actually diverge"
    );
    let pinned =
        WireServer::bind("127.0.0.1:0", vec![plan_a], ServerConfig::default()).expect("bind");
    let divergent =
        WireServer::bind("127.0.0.1:0", vec![plan_b], ServerConfig::default()).expect("bind");

    // The probe disconnect forces one failover after two units, so the
    // client actually visits the divergent mirror mid-session.
    let mut config = fleet_client(vec![pinned.local_addr(), divergent.local_addr()]);
    config.disconnect_after_units = Some(2);
    let report = WireClient::new(config)
        .run()
        .expect("completes from the pinned mirror");
    assert!(report.complete);
    assert!(report.equivocations >= 1, "the equivocation was detected");
    assert!(report.quarantines >= 1, "the equivocator was quarantined");
    assert_eq!(
        report.mirror_units[1], 0,
        "an equivocating mirror must never contribute a unit"
    );
    assert!(report.mirror_units[0] > 0);
    verify_payloads(report.payloads.as_ref().unwrap()).expect("verifies clean");
}

/// The supervisor kills and restarts every mirror per its seeded crash
/// plan while a client fleet streams; every client converges and the
/// cross-client invariant holds across mirrors and incarnations.
#[test]
fn supervised_fleet_survives_seeded_kills_and_restarts() {
    let plan = hanoi_plan(OrderingSource::StaticCallGraph);
    let factory: nonstrict_wire::PlanFactory = Arc::new(move |_gen| vec![plan.clone()]);
    let supervisor = FleetSupervisor::launch(
        FleetConfig {
            mirrors: 3,
            server: ServerConfig {
                // Keep sessions in flight long enough to meet a kill.
                pace_per_unit: Some(Duration::from_millis(3)),
                ..ServerConfig::default()
            },
            crash: Some(CrashPlan {
                seed: 0x5eed_f1ee7,
                kills_per_mirror: 1,
                min_uptime: Duration::from_millis(40),
                uptime_spread: Duration::from_millis(80),
            }),
            restart_delay: Duration::from_millis(25),
            health_interval: Duration::from_millis(100),
            drain_deadline: Duration::from_secs(5),
        },
        factory,
    )
    .expect("fleet launches");

    let loadgen = run_loadgen(&LoadgenConfig {
        client: {
            let mut c = fleet_client(supervisor.addrs().to_vec());
            c.keep_payloads = false;
            c.max_attempts = 60;
            c
        },
        clients: 6,
        seed: 9,
        arrival_spread: Duration::from_millis(60),
        stores: None,
    });
    assert_eq!(loadgen.completed, 6, "violations: {:?}", loadgen.violations);
    assert!(loadgen.violations.is_empty(), "{:?}", loadgen.violations);
    assert_eq!(loadgen.quarantines, 0, "honest mirrors, no quarantine");
    assert_eq!(loadgen.mirror_units.len(), 3);
    assert!(loadgen.mirror_units.iter().sum::<u64>() > 0);

    // Let every scheduled kill fire even if the clients finished fast.
    std::thread::sleep(Duration::from_millis(250));
    let report = supervisor.shutdown();
    assert_eq!(report.total_kills(), 3, "one seeded kill per mirror");
    assert_eq!(
        report.total_starts(),
        6,
        "each mirror restarted after its kill"
    );
    for m in &report.mirrors {
        assert_eq!(m.kills, 1);
        assert_eq!(m.starts, 2);
    }
}

/// A live epoch rollover mid-fleet: the generation bumps, mirrors drain
/// behind Evict fences and restart with the re-restructured plans, and
/// clients — including one caught mid-stream — refetch under the new
/// epoch instead of splicing layouts.
#[test]
fn epoch_rollover_refetches_under_the_new_generation() {
    let plan_gen0 = hanoi_plan(OrderingSource::StaticCallGraph);
    let plan_gen1 = hanoi_plan(OrderingSource::SourceOrder);
    assert_ne!(plan_gen0.manifest_epoch, plan_gen1.manifest_epoch);
    let (p0, p1) = (plan_gen0.clone(), plan_gen1.clone());
    let factory: nonstrict_wire::PlanFactory = Arc::new(move |generation| {
        vec![if generation == 0 {
            p0.clone()
        } else {
            p1.clone()
        }]
    });
    let supervisor = FleetSupervisor::launch(
        FleetConfig {
            mirrors: 2,
            server: ServerConfig {
                pace_per_unit: Some(Duration::from_millis(10)),
                resume_after_ms: 5,
                ..ServerConfig::default()
            },
            crash: None,
            restart_delay: Duration::from_millis(20),
            health_interval: Duration::from_millis(100),
            drain_deadline: Duration::from_secs(5),
        },
        factory,
    )
    .expect("fleet launches");
    let mirrors = supervisor.addrs().to_vec();

    // A pre-rollover session pins generation 0.
    let before = WireClient::new(fleet_client(mirrors.clone()))
        .run()
        .expect("pre-rollover session");
    assert!(before.complete);
    assert_eq!(before.generation, 0);
    assert_eq!(before.manifest_epoch, plan_gen0.manifest_epoch);

    // Catch a client mid-stream when the fence lands.
    let mid_config = {
        let mut c = fleet_client(mirrors.clone());
        c.max_attempts = 60;
        c
    };
    let mid = std::thread::spawn(move || WireClient::new(mid_config).run());
    std::thread::sleep(Duration::from_millis(30));
    supervisor.rollover();
    let mid = mid.join().unwrap().expect("mid-rollover session");
    assert!(mid.complete);

    // Wait for the fence to finish, then a fresh session must pin the
    // new generation and the re-restructured epoch.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let after = loop {
        let report = WireClient::new({
            let mut c = fleet_client(mirrors.clone());
            c.max_attempts = 60;
            c
        })
        .run()
        .expect("post-rollover session");
        assert!(report.complete);
        if report.generation == 1 || std::time::Instant::now() >= deadline {
            break report;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(after.generation, 1, "the fleet rolled to generation 1");
    assert_eq!(after.manifest_epoch, plan_gen1.manifest_epoch);
    verify_payloads(after.payloads.as_ref().unwrap()).expect("new layout verifies");

    // The mid-stream client pinned exactly one of the two layouts —
    // whole-generation delivery, never a splice.
    if mid.generation == 1 {
        assert_eq!(mid.manifest_epoch, plan_gen1.manifest_epoch);
        assert_eq!(mid.unit_crcs, after.unit_crcs);
    } else {
        assert_eq!(mid.manifest_epoch, plan_gen0.manifest_epoch);
        assert_eq!(mid.unit_crcs, before.unit_crcs);
    }
    verify_payloads(mid.payloads.as_ref().unwrap()).expect("mid-rollover payloads verify");

    let report = supervisor.shutdown();
    assert_eq!(report.rollovers, 1);
}

/// A single honest mirror behaves exactly like the pre-fleet client:
/// one connect, no failovers, no quarantines, full health.
#[test]
fn honest_single_mirror_matches_the_plain_client() {
    let plan = hanoi_plan(OrderingSource::StaticCallGraph);
    let server =
        WireServer::bind("127.0.0.1:0", vec![plan], ServerConfig::default()).expect("bind");
    let report = WireClient::new(fleet_client(vec![server.local_addr()]))
        .run()
        .expect("plain session");
    assert!(report.complete);
    assert_eq!(report.connects, 1);
    assert_eq!(report.failovers, 0);
    assert_eq!(report.quarantines, 0);
    assert_eq!(report.digest_rejects, 0);
    assert_eq!(report.equivocations, 0);
    assert_eq!(report.stale_welcomes, 0);
    assert_eq!(report.mirror_health, vec![HEALTH_FULL_PPM]);
    assert_eq!(
        report.mirror_units,
        vec![report.delivered.iter().map(|&d| u64::from(d)).sum::<u64>()]
    );
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);
}
