//! Shared test-support helpers for the integration suites.
//!
//! Each `tests/*.rs` binary compiles this module separately via
//! `mod common;`, so not every binary uses every helper — hence the
//! allow.
#![allow(dead_code)]

/// Chaos seed count: 4 locally, elevated in CI's chaos-smoke and
/// chaos-soak jobs via `NONSTRICT_CHAOS_SEEDS`.
pub fn chaos_seeds() -> u64 {
    std::env::var("NONSTRICT_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Seeded fuzz-case count: 64 locally, elevated in CI's fuzz-smoke job
/// via `NONSTRICT_FUZZ_CASES`.
pub fn fuzz_cases() -> usize {
    std::env::var("NONSTRICT_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Storage-fault seed count: 4 locally, elevated in CI's
/// disk-chaos-smoke job via `NONSTRICT_DISK_SEEDS`.
pub fn disk_seeds() -> u64 {
    std::env::var("NONSTRICT_DISK_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}
