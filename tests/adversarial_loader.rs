//! Adversarial-input harness for the verified-prefix streaming loader.
//!
//! The non-strict gate executes methods before their class file has
//! fully arrived, so the loader sits on a trust boundary: every byte it
//! consumes may be truncated, flipped, or hostile. This suite asserts
//! the contract the tentpole demands — **no input can panic the
//! loader**; every malformed prefix yields a typed error and every
//! well-formed stream reassembles byte-exactly:
//!
//! 1. **Exhaustive truncation** — every prefix length of every workload
//!    class file returns `Err` from the strict parser, and the streaming
//!    loader accepts byte-at-a-time delivery of the same files (so every
//!    prefix is a state it survives), reporting `Incomplete` for every
//!    cut at or inside a unit boundary.
//! 2. **Seeded mutation corpus** — deterministic bit flips over the real
//!    class files, parsed and stream-fed under random chunking. The case
//!    count elevates via `NONSTRICT_FUZZ_CASES` (CI's fuzz-smoke job).
//! 3. **Hostile structure** — oversized constant-pool counts,
//!    forward-branch-out-of-range bytecode, dangling call targets, and
//!    duplicate class names are all rejected with a diagnostic error.
//! 4. **`--verify=off` byte-identity** — verification off charges zero
//!    cycles, preserves the three-term accounting split of the seed, and
//!    reproduces the committed `results/verify.csv` rows exactly.

use std::sync::OnceLock;

use nonstrict::bytecode::{
    BytecodeError, CallKind, ClassDef, Instruction, Label, MethodDef, MethodId, Program,
};
use nonstrict::classfile::{parse, stream_units, ClassFile, StreamError, StreamLoader};
use nonstrict::core::experiment::{verify, Suite};
use nonstrict::core::{OrderingSource, SimConfig, VerifyMode};
use nonstrict::netsim::Link;
use nonstrict::workloads;
use nonstrict_bytecode::Input;
use nonstrict_core::sim::Session;
use nonstrict_workloads::rng::StdRng;

/// Every class file of every workload, serialized: the corpus all the
/// truncation and mutation passes draw from.
fn corpus() -> &'static Vec<(String, ClassFile, Vec<u8>)> {
    static CORPUS: OnceLock<Vec<(String, ClassFile, Vec<u8>)>> = OnceLock::new();
    CORPUS.get_or_init(|| {
        workloads::build_all()
            .into_iter()
            .flat_map(|app| {
                let name = app.name.clone();
                app.classes
                    .into_iter()
                    .enumerate()
                    .map(move |(i, cf)| {
                        let bytes = cf.to_bytes();
                        (format!("{name}[{i}]"), cf, bytes)
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    })
}

mod common;
use common::fuzz_cases;

#[test]
fn every_strict_prefix_of_every_class_file_is_a_typed_error() {
    for (name, _, bytes) in corpus() {
        for k in 0..bytes.len() {
            // A typed `Err` is the only acceptable outcome; reaching the
            // assertion at all means no prefix panicked.
            assert!(
                parse(&bytes[..k]).is_err(),
                "{name}: prefix of {k}/{} bytes must not parse",
                bytes.len()
            );
        }
        let full = parse(bytes).unwrap_or_else(|e| panic!("{name}: full file must parse: {e}"));
        assert_eq!(full.to_bytes(), *bytes, "{name}: parse must round-trip");
    }
}

#[test]
fn byte_at_a_time_streaming_reassembles_every_class_exactly() {
    for (name, cf, bytes) in corpus() {
        let units = stream_units(cf).unwrap_or_else(|e| panic!("{name}: units: {e}"));
        let mut loader = StreamLoader::new();
        let mut methods_seen = 0usize;
        for unit in &units {
            for b in unit {
                let events = loader
                    .feed(std::slice::from_ref(b))
                    .unwrap_or_else(|e| panic!("{name}: clean stream rejected: {e}"));
                methods_seen += events
                    .iter()
                    .filter(|e| matches!(e, nonstrict::classfile::StreamEvent::Method { .. }))
                    .count();
            }
        }
        assert!(loader.is_complete(), "{name}: all units fed");
        assert_eq!(
            methods_seen,
            cf.methods.len(),
            "{name}: one event per method"
        );
        let rebuilt = loader
            .finish()
            .unwrap_or_else(|e| panic!("{name}: finish: {e}"));
        assert_eq!(
            rebuilt.to_bytes(),
            *bytes,
            "{name}: reassembly is byte-exact"
        );
    }
}

#[test]
fn truncation_at_every_unit_boundary_reports_incomplete() {
    for (name, cf, _) in corpus() {
        let units = stream_units(cf).unwrap_or_else(|e| panic!("{name}: units: {e}"));
        for cut in 0..units.len() {
            // Deliver the first `cut` units whole, then half of the next:
            // both the boundary cut and the mid-unit cut must leave the
            // loader incomplete, and `finish` must refuse cleanly.
            let mut at_boundary = StreamLoader::new();
            let mut mid_unit = StreamLoader::new();
            for unit in &units[..cut] {
                at_boundary.feed(unit).unwrap();
                mid_unit.feed(unit).unwrap();
            }
            mid_unit.feed(&units[cut][..units[cut].len() / 2]).unwrap();
            for (label, loader) in [("boundary", at_boundary), ("mid-unit", mid_unit)] {
                assert!(!loader.is_complete(), "{name}: {label} cut at unit {cut}");
                assert!(
                    matches!(loader.finish(), Err(StreamError::Incomplete { .. })),
                    "{name}: {label} cut at unit {cut} must be Incomplete"
                );
            }
        }
    }
}

#[test]
fn seeded_bit_flips_never_panic_parser_or_stream() {
    let corpus = corpus();
    let mut rng = StdRng::seed_from_u64(0x5afe_10ad);
    for case in 0..fuzz_cases() {
        let (name, _, original) = &corpus[rng.gen_range(0..corpus.len())];
        let mut bytes = original.clone();
        for _ in 0..rng.gen_range(1..=8usize) {
            let bit = rng.gen_range(0..bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        // Strict parse: any outcome but a panic. A mutant that still
        // parses must also survive semantic validation and re-serialize.
        if let Ok(cf) = parse(&bytes) {
            let _ = cf.validate();
            let _ = cf.to_bytes();
        }
        // Streamed under random chunking: errors end the stream cleanly
        // (the loader refuses further input), they never propagate a
        // panic. `finish` on whatever remains must also be clean.
        let mut loader = StreamLoader::new();
        let mut pos = 0;
        let mut rejected = false;
        while pos < bytes.len() && !rejected {
            let take = rng.gen_range(1..=97usize).min(bytes.len() - pos);
            rejected = loader.feed(&bytes[pos..pos + take]).is_err();
            pos += take;
        }
        let _ = loader.finish();
        let _ = (case, name);
    }
}

#[test]
fn hostile_pool_counts_are_rejected_not_panicked() {
    // The count field lives at bytes 8..10 (magic u32, minor u16,
    // major u16). 0xFFFF claims ~64k slots against a file far too small
    // to hold them; 0x0000 undercuts the entries that follow. Neither
    // may panic, and the oversized claim must fail outright.
    let (name, _, original) = &corpus()[0];
    for patch in [[0xFF, 0xFF], [0x00, 0x00], [0x80, 0x01]] {
        let mut bytes = original.clone();
        bytes[8..10].copy_from_slice(&patch);
        assert!(
            parse(&bytes).is_err(),
            "{name}: pool count {patch:?} must not parse"
        );
        let mut loader = StreamLoader::new();
        if loader.feed(&bytes).is_ok() {
            assert!(
                loader.finish().is_err(),
                "{name}: pool count {patch:?} must not stream to a class"
            );
        }
    }
    // A bare header claiming a huge pool with no bytes behind it.
    let mut header = Vec::new();
    header.extend_from_slice(&0xCAFE_BABE_u32.to_be_bytes());
    header.extend_from_slice(&[0, 3, 0, 45]); // minor, major
    header.extend_from_slice(&[0xFF, 0xFF]);
    assert!(parse(&header).is_err(), "truncated hostile header");
}

#[test]
fn malformed_programs_fail_closed_with_diagnostics() {
    let main = || {
        let mut c = ClassDef::new("Main");
        c.add_method(MethodDef::new("main", 0, vec![Instruction::Return]));
        c
    };

    // Duplicate class names make lookup ambiguous: rejected by name.
    let dup = Program::new(vec![main(), main()], "Main", "main").unwrap_err();
    assert!(
        matches!(dup, BytecodeError::DuplicateClassName(ref n) if n == "Main"),
        "got {dup}"
    );

    // A dangling call target must fail verification, not surface later
    // as a bogus first-use prediction.
    let mut dangling = ClassDef::new("Main");
    dangling.add_method(MethodDef::new(
        "main",
        0,
        vec![
            Instruction::Invoke {
                kind: CallKind::Static,
                target: MethodId::new(7, 7),
            },
            Instruction::Return,
        ],
    ));
    let err = Program::new(vec![dangling], "Main", "main").unwrap_err();
    assert!(
        matches!(err, BytecodeError::BadCallTarget { .. }),
        "got {err}"
    );

    // A forward branch past the end of the method body.
    let mut oob = ClassDef::new("Main");
    oob.add_method(MethodDef::new(
        "main",
        0,
        vec![Instruction::Goto(Label(9)), Instruction::Return],
    ));
    let err = Program::new(vec![oob], "Main", "main").unwrap_err();
    assert!(
        matches!(err, BytecodeError::BadBranchTarget { target: 9, .. }),
        "got {err}"
    );

    // And the healthy path: every method of every workload re-verifies
    // under the incremental (delimiter-arrival) check.
    for app in workloads::build_all() {
        for (id, _) in app.program.iter_methods() {
            app.program
                .verify_method(id)
                .unwrap_or_else(|e| panic!("{}: {id} must re-verify: {e}", app.name));
        }
    }
}

#[test]
fn verify_off_charges_nothing_and_keeps_the_seed_accounting() {
    for app in workloads::build_all() {
        let name = app.name.clone();
        let session = Session::new(app).unwrap();
        for link in [Link::T1, Link::MODEM_28_8] {
            for config in [
                SimConfig::strict(link),
                SimConfig::non_strict(link, OrderingSource::StaticCallGraph),
            ] {
                let r = session.simulate(Input::Test, &config);
                assert_eq!(
                    r.verify_cycles, 0,
                    "{name} {}: off charges nothing",
                    link.name
                );
                // The seed's bucket split survives verbatim.
                assert_eq!(r.total_cycles, r.ledger().total(), "{name} {}", link.name);
                // And streaming verification only ever adds its own bucket.
                let s = session.simulate(Input::Test, &config.with_verify(VerifyMode::Stream));
                assert!(s.verify_cycles > 0, "{name} {}: stream charges", link.name);
                assert_eq!(s.total_cycles, s.ledger().total(), "{name} {}", link.name);
            }
        }
    }
}

#[test]
fn verify_off_rows_match_the_committed_reference_csv() {
    // The committed results/verify.csv was exported by the paper binary;
    // recomputing any one benchmark must reproduce its rows exactly —
    // the byte-identity guarantee `--verify=off` (the default) rests on.
    let committed =
        std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/results/verify.csv"))
            .expect("committed results/verify.csv");
    let session = Session::new(workloads::hanoi::build()).unwrap();
    let suite = Suite {
        sessions: vec![session],
    };
    let rows = verify::verify_sweep(&suite);
    assert_eq!(rows.len(), 6, "2 links x 3 modes for one benchmark");
    for r in &rows {
        let line = format!(
            "{},{},{},{:.1},{},{:.2},{},{},{},{},{},{},{},{},{},{},{}",
            r.name,
            r.link.name,
            r.mode.label(),
            r.normalized,
            r.verify_cycles,
            r.verify_share,
            r.invocation_latency,
            r.stall_cycles,
            r.total_cycles,
            r.ledger.exec,
            r.ledger.stall,
            r.ledger.recovery,
            r.ledger.verify,
            r.ledger.resume,
            r.ledger.hedge,
            r.ledger.queue,
            r.ledger.integrity
        );
        assert!(
            committed.lines().any(|l| l == line),
            "row {line:?} missing from committed verify.csv"
        );
        if r.mode == VerifyMode::Off {
            assert_eq!(r.verify_cycles, 0, "off rows charge nothing");
        }
    }
}
