//! Quality side of the ablation benches: do the paper's design choices
//! actually win in simulation?

use nonstrict::core::{
    DataLayout, ExecutionModel, OrderingSource, Session, SimConfig, TransferPolicy, VerifyMode,
};
use nonstrict::netsim::{class_units, greedy_schedule, ParallelEngine, TransferEngine, Weights};
use nonstrict::reorder::{restructure, static_first_use, static_first_use_plain};
use nonstrict_bytecode::Input;
use nonstrict_netsim::schedule::ParallelSchedule;
use nonstrict_netsim::Link;

#[test]
fn non_strict_gating_beats_strict_gating_under_identical_transfer() {
    // The core claim, isolated: same bytes, same engine, only the gating
    // granularity differs.
    for name in ["JHLZip", "Jess"] {
        let s = Session::new(nonstrict::workloads::build_by_name(name).unwrap()).unwrap();
        let mk = |execution| SimConfig {
            link: Link::MODEM_28_8,
            ordering: OrderingSource::StaticCallGraph,
            transfer: TransferPolicy::Parallel { limit: 4 },
            data_layout: DataLayout::Whole,
            execution,
            faults: None,
            verify: VerifyMode::Off,
            outages: None,
            replicas: None,
            byzantine: None,
        };
        let strict = s.simulate(Input::Test, &mk(ExecutionModel::Strict));
        let non_strict = s.simulate(Input::Test, &mk(ExecutionModel::NonStrict));
        assert!(
            non_strict.total_cycles < strict.total_cycles,
            "{name}: non-strict {} vs strict-gating {}",
            non_strict.total_cycles,
            strict.total_cycles
        );
        assert!(
            non_strict.invocation_latency < strict.invocation_latency,
            "{name}"
        );
    }
}

#[test]
fn loop_heuristics_win_where_loops_predict_first_use() {
    // On a program whose hot path is the loop-rich branch, the paper's
    // §4.1 heuristic predicts the true first-use order; plain DFS takes
    // the textual branch and misorders it. (On the generated suite the
    // two mostly agree — drivers call workers in body order — so this
    // constructed case is where the heuristic earns its keep.)
    use nonstrict::bytecode::builder::MethodBuilder;
    use nonstrict::bytecode::program::{ClassDef, Program};
    use nonstrict::bytecode::{Cond, MethodId};

    let looper = MethodId::new(0, 1);
    let flat = MethodId::new(0, 2);
    let mut main = MethodBuilder::new("main", 1);
    let flat_path = main.new_label();
    let join = main.new_label();
    // branch: textual arm is flat; loop-rich arm is the taken target
    main.iload(0).if_(Cond::Ne, flat_path);
    main.invoke(flat);
    main.goto(join);
    main.bind(flat_path);
    main.iconst(3).istore(1);
    let head = main.new_label();
    let exit = main.new_label();
    main.bind(head);
    main.iload(1).if_(Cond::Le, exit);
    main.invoke(looper);
    main.iinc(1, -1).goto(head);
    main.bind(exit);
    main.bind(join);
    main.ret();
    let mut c = ClassDef::new("abl/T");
    c.add_method(main.finish());
    for n in ["looper", "flat"] {
        let mut b = MethodBuilder::new(n, 0);
        b.ret();
        c.add_method(b.finish());
    }
    let p = Program::new(vec![c], "abl/T", "main").unwrap();

    let smart = static_first_use(&p);
    let plain = static_first_use_plain(&p);
    // loop-aware follows the loop-rich arm first
    assert!(
        smart.rank(&p, looper) < smart.rank(&p, flat),
        "{:?}",
        smart.order()
    );
    // plain DFS follows the textual arm first
    assert!(
        plain.rank(&p, flat) < plain.rank(&p, looper),
        "{:?}",
        plain.order()
    );
}

#[test]
fn method_delimiters_cost_less_wire_than_block_delimiters() {
    let app = nonstrict::workloads::jhlzip::build();
    let order = static_first_use(&app.program);
    let r = restructure(&app, &order);
    let method_level = class_units(&app, &r, None, 2);
    let block_level = class_units(&app, &r, None, 12);
    let m: u64 = method_level.iter().map(|u| u.total()).sum();
    let b: u64 = block_level.iter().map(|u| u.total()).sum();
    assert!(
        b > m,
        "block-level delimiters must cost more wire: {b} vs {m}"
    );
    // and the overhead is why the paper stops at method granularity
    let overhead = (b - m) as f64 / m as f64;
    assert!(overhead > 0.01, "{overhead}");
}

#[test]
fn greedy_schedule_delivers_the_first_class_sooner_than_naive() {
    // With zero thresholds everything streams at once and the entry
    // class gets 1/N of the link; the greedy schedule holds dependents
    // back until their unique bytes are due.
    let app = nonstrict::workloads::bit::build();
    let order = static_first_use(&app.program);
    let r = restructure(&app, &order);
    let units = class_units(&app, &r, None, 2);
    let greedy = greedy_schedule(&app, &order, &units, &r.layouts, Weights::Static);
    let naive = ParallelSchedule {
        class_order: greedy.class_order.clone(),
        thresholds: vec![0; units.len()],
    };
    let entry = app.program.entry().class.0 as usize;
    let mut e_greedy = ParallelEngine::new(Link::MODEM_28_8, units.clone(), &greedy, usize::MAX);
    let mut e_naive = ParallelEngine::new(Link::MODEM_28_8, units.clone(), &naive, usize::MAX);
    let t_greedy = e_greedy.unit_ready(entry, 1, 0);
    let t_naive = e_naive.unit_ready(entry, 1, 0);
    assert!(
        t_greedy < t_naive,
        "greedy should deliver main sooner: {t_greedy} vs naive {t_naive}"
    );
}

#[test]
fn restructuring_matters_source_order_loses_to_first_use_order() {
    // Without restructuring, non-strict execution still helps, but the
    // predicted-order layouts must beat source order on average.
    let s = Session::new(nonstrict::workloads::jess::build()).unwrap();
    let mk = |ordering| SimConfig {
        link: Link::MODEM_28_8,
        ordering,
        transfer: TransferPolicy::Interleaved,
        data_layout: DataLayout::Whole,
        execution: ExecutionModel::NonStrict,
        faults: None,
        verify: VerifyMode::Off,
        outages: None,
        replicas: None,
        byzantine: None,
    };
    let source = s.simulate(Input::Test, &mk(OrderingSource::SourceOrder));
    let test = s.simulate(Input::Test, &mk(OrderingSource::TestProfile));
    assert!(
        test.total_cycles < source.total_cycles,
        "first-use layout {} must beat source order {}",
        test.total_cycles,
        source.total_cycles
    );
}
