//! End-to-end properties of replica-set transfer — the robustness
//! tentpole's failover contract:
//!
//! 1. **Failover equivalence at every unit boundary** — killing the
//!    serving mirror at any delivered-unit watermark never changes what
//!    the client ends up with: the run completes, execution and every
//!    verification verdict are identical to the uninterrupted run, and
//!    the bytes delivered across the surviving mirrors sum to exactly
//!    the uninterrupted total. Only the routing (and therefore timing)
//!    may move. The boundaries are found by binary search on the
//!    checkpoint journal's delivered watermark, mirroring the outage
//!    suite, so every unit arrival of the workload is exercised.
//! 2. **A mirror dead from the start serves nothing** — its health row
//!    reports zero units and the dead flag.
//! 3. **Sole survivor fails closed** — on a two-mirror set, killing
//!    either mirror leaves no failover headroom: the session degrades
//!    to strict execution and says so.

use nonstrict::prelude::*;
use nonstrict_core::journal::SessionJournal;
use nonstrict_netsim::Link;

/// The fixed replica set under test: three perfect mirrors with the
/// default bandwidth spread, so routing always has a live runner-up.
fn three_mirrors() -> ReplicaConfig {
    let mut rc = ReplicaConfig::seeded(0xfa11_07e5);
    rc.replicas = 3;
    rc
}

/// Bytes delivered across the whole mirror set. Routing decides who
/// serves each unit; the sum is what the client actually received.
fn delivered_bytes(r: &SimResult) -> u64 {
    r.replica.health.iter().map(|h| h.bytes_served).sum()
}

#[test]
fn killing_the_serving_mirror_at_every_unit_boundary_preserves_the_run() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let plain = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
    let config = plain.with_replicas(three_mirrors());
    let single = session.simulate(Input::Test, &plain);
    let base = session.simulate(Input::Test, &config);
    assert_eq!(
        base.link_stats, single.link_stats,
        "mirror routing must not change what gets verified"
    );
    let total = base.total_cycles;

    let probe = |at: u64| -> Option<SessionJournal> {
        match session.run_until(Input::Test, &config, at) {
            RunOutcome::Interrupted(bytes) => {
                Some(SessionJournal::decode(&bytes).expect("a self-written journal always decodes"))
            }
            RunOutcome::Finished(_) => None,
        }
    };
    let delivered =
        |j: &SessionJournal| -> u64 { j.classes.iter().map(|c| u64::from(c.delivered)).sum() };

    let mut boundaries_tested = 0u32;
    let mut k = 0u64; // delivered-unit watermark to hunt for
    loop {
        // Minimal interrupt cycle whose checkpoint has >= k units
        // delivered (a run that Finished counts as "all delivered").
        let reaches = |at: u64| probe(at).is_none_or(|j| delivered(&j) >= k);
        let (mut lo, mut hi) = (0u64, total + 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if reaches(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let Some(journal) = probe(lo) else {
            break; // watermark k is only reached by running to the end
        };
        k = delivered(&journal) + 1;
        boundaries_tested += 1;
        for victim in 0..3u32 {
            let mut rc = three_mirrors();
            rc.kill = Some(ReplicaKill {
                replica: victim,
                at_cycle: lo,
            });
            let r = session.simulate(Input::Test, &plain.with_replicas(rc));
            let ctx = format!("mirror {victim} killed at boundary cycle {lo}");
            assert!(r.faults.completed, "{ctx}: the run must still finish");
            assert_eq!(r.exec_cycles, base.exec_cycles, "{ctx}: exec moved");
            assert_eq!(
                r.link_stats, base.link_stats,
                "{ctx}: a failover must not change verification verdicts"
            );
            assert_eq!(
                delivered_bytes(&r),
                delivered_bytes(&base),
                "{ctx}: the surviving mirrors must deliver exactly the same bytes"
            );
            assert!(
                !r.replica.sole_survivor,
                "{ctx}: two of three mirrors survive"
            );
        }
    }
    assert!(
        boundaries_tested >= 10,
        "the walk must visit every unit boundary of the workload, saw {boundaries_tested}"
    );
}

#[test]
fn a_mirror_dead_from_cycle_zero_serves_nothing() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let plain = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
    let mut rc = three_mirrors();
    rc.kill = Some(ReplicaKill {
        replica: 0,
        at_cycle: 0,
    });
    let r = session.simulate(Input::Test, &plain.with_replicas(rc));
    assert!(r.faults.completed);
    let h = &r.replica.health[0];
    assert!(!h.alive, "a kill at cycle 0 is dead for the whole run");
    assert_eq!(h.units_served, 0, "a dead mirror serves nothing: {h:?}");
    assert_eq!(h.bytes_served, 0);
    let base = session.simulate(Input::Test, &plain.with_replicas(three_mirrors()));
    assert_eq!(delivered_bytes(&r), delivered_bytes(&base));
    assert_eq!(r.link_stats, base.link_stats);
}

#[test]
fn sole_surviving_mirror_degrades_the_session_to_strict() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let plain = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
    for victim in 0..2u32 {
        let mut rc = three_mirrors();
        rc.replicas = 2;
        rc.kill = Some(ReplicaKill {
            replica: victim,
            at_cycle: 0,
        });
        let r = session.simulate(Input::Test, &plain.with_replicas(rc));
        assert!(r.faults.completed, "fail-closed still finishes the program");
        assert!(
            r.replica.sole_survivor,
            "killing mirror {victim} of 2 leaves one: {:?}",
            r.replica
        );
        assert!(
            r.faults.session_degraded,
            "no failover headroom: the session must fail closed to strict"
        );
        assert!(!r.replica.health[victim as usize].alive);
    }
}

#[test]
fn a_losing_hedged_fetch_never_advances_journal_watermarks() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    // The replica sweep's 5%-loss cell: recovery stalls cross the short
    // hedge deadline, duplicate fetches race the runner-up mirror, and
    // some of them win — so both winners and losers exist to account.
    let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
        .with_faults(nonstrict_core::experiment::faults::sweep_config(50_000))
        .with_replicas(nonstrict_core::experiment::replica::sweep_replicas(3));
    let base = session.simulate(Input::Test, &config);
    assert!(base.faults.completed);
    assert!(
        base.replica.hedge_wins >= 1,
        "the scenario must race hedges and have the runner-up win some: {:?}",
        base.replica
    );
    assert!(
        base.replica.hedge_wins < base.replica.hedges,
        "and lose some — a loser's duplicate bytes are the hazard under test"
    );

    let delivered =
        |j: &SessionJournal| -> u64 { j.classes.iter().map(|c| u64::from(c.delivered)).sum() };
    const DOWNTIME: u64 = 40_000_000;
    // Checkpoint across the whole run. At every interrupt cycle the
    // journal's delivered watermarks may count only bytes that are
    // durable — the hedge winner's. If a losing duplicate ever
    // advanced a watermark, the resumed session would skip refetching
    // a unit whose real bytes never arrived, and the resumed run
    // could not reproduce the uninterrupted one.
    let mut last_watermark = 0u64;
    let step = base.total_cycles / 64;
    let mut interrupted = 0u32;
    for i in 1..64 {
        let at = i * step;
        let RunOutcome::Interrupted(bytes) = session.run_until(Input::Test, &config, at) else {
            continue;
        };
        let j = SessionJournal::decode(&bytes).expect("a self-written journal always decodes");
        let d = delivered(&j);
        assert!(
            d >= last_watermark,
            "watermarks only advance with durable bytes: {d} < {last_watermark} at cycle {at}"
        );
        last_watermark = d;
        let r = session.resume(Input::Test, &config, &bytes, DOWNTIME);
        let ctx = format!("resume from cycle {at} ({d} units delivered)");
        assert!(r.faults.completed, "{ctx}");
        assert_eq!(r.exec_cycles, base.exec_cycles, "{ctx}: exec moved");
        assert_eq!(
            r.link_stats, base.link_stats,
            "{ctx}: a watermark counted bytes that were never durable"
        );
        interrupted += 1;
    }
    assert!(
        interrupted >= 32,
        "the sweep must actually interrupt mid-run, saw {interrupted}"
    );
    assert!(last_watermark > 0, "the walk must cross unit deliveries");
}
