//! End-to-end properties of the fault-injection layer and the resilient
//! transfer protocol:
//!
//! 1. **Zero-rate equivalence** — a `FaultConfig` whose rates are all
//!    zero is byte-identical to no fault config at all, for every
//!    transfer policy: the protocol must cost nothing when the link is
//!    perfect.
//! 2. **Termination** — under aggressive seeded faults, every
//!    workload × link × policy run completes (the retry cap bounds all
//!    recovery), and the accounting splits cleanly into
//!    `total = exec + stall + recovery`.
//! 3. **Determinism** — the same seed reproduces the same `SimResult`
//!    bit for bit; different seeds are allowed (and with rates this
//!    aggressive, expected somewhere) to differ.
//! 4. **Graceful degradation** — a hostile link with a hair-trigger
//!    threshold demotes classes to strict demand-fetch, and the run
//!    still completes.

use nonstrict::prelude::*;
use nonstrict_netsim::{FaultPlan, Link, OutagePlan, OutageSchedule};
use nonstrict_workloads::rng::StdRng;

mod common;
use common::chaos_seeds;

fn policies() -> [TransferPolicy; 4] {
    [
        TransferPolicy::Strict,
        TransferPolicy::Parallel { limit: 1 },
        TransferPolicy::Parallel { limit: 4 },
        TransferPolicy::Interleaved,
    ]
}

fn lossy(seed: u64) -> FaultConfig {
    let mut fc = FaultConfig::seeded(seed);
    fc.loss_pm = 100_000; // 10% per attempt
    fc.corrupt_pm = 50_000;
    fc.drop_pm = 20_000;
    fc.droop_pm = 50_000;
    fc
}

#[test]
fn zero_rate_faults_are_byte_identical_to_a_perfect_link() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    for link in [Link::T1, Link::MODEM_28_8] {
        for transfer in policies() {
            let mut perfect = SimConfig::non_strict(link, OrderingSource::StaticCallGraph);
            perfect.transfer = transfer;
            let armed = perfect.with_faults(FaultConfig::seeded(0xdead_beef));
            assert_eq!(
                session.simulate(Input::Test, &perfect),
                session.simulate(Input::Test, &armed),
                "an all-zero fault config must not perturb {transfer:?} on {}",
                link.name
            );
        }
        // The strict baseline path too.
        let base = SimConfig::strict(link);
        assert_eq!(
            session.simulate(Input::Test, &base),
            session.simulate(Input::Test, &base.with_faults(FaultConfig::seeded(7))),
        );
    }
}

#[test]
fn every_faulted_run_terminates_fully_executed() {
    for app in nonstrict::workloads::build_all() {
        let name = app.name.clone();
        let session = Session::new(app).unwrap();
        for link in [Link::T1, Link::MODEM_28_8] {
            for transfer in policies() {
                let mut config = SimConfig::non_strict(link, OrderingSource::StaticCallGraph)
                    .with_faults(lossy(0x5eed));
                config.transfer = transfer;
                let r = session.simulate(Input::Test, &config);
                assert!(r.faults.completed, "{name} {transfer:?} {}", link.name);
                assert!(r.total_cycles >= r.exec_cycles);
                assert_eq!(
                    r.total_cycles,
                    r.ledger().total(),
                    "the bucket split must be exact: {name} {transfer:?} {}",
                    link.name
                );
                assert!(
                    r.faults.retries >= r.faults.drops + r.faults.corrupted,
                    "every drop or corruption is a retry"
                );
            }
        }
    }
}

#[test]
fn same_seed_replays_bit_for_bit() {
    let session = Session::new(nonstrict::workloads::testdes::build()).unwrap();
    let config = |seed| {
        SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::TrainProfile)
            .with_faults(lossy(seed))
    };
    let a = session.simulate(Input::Test, &config(42));
    let b = session.simulate(Input::Test, &config(42));
    assert_eq!(a, b, "same seed must reproduce the run exactly");
    assert!(
        a.faults.retries > 0,
        "10% loss on a real workload must retry at least once"
    );
    // Some seed in a small family must perturb the timeline differently —
    // a seed-blind fault layer would pass determinism trivially.
    let differs = (0..8u64).any(|s| session.simulate(Input::Test, &config(s)) != a);
    assert!(differs, "fault draws must depend on the seed");
}

#[test]
fn droop_remap_is_strictly_monotone_across_random_plans() {
    let mut rng = StdRng::seed_from_u64(0xd00b_0b5e);
    for case in 0..64 {
        let mut plan = FaultPlan::perfect(rng.next_u64());
        plan.droop_pm = rng.gen_range(0..=1_000_000u32);
        // Probe around window edges at many scales plus random points:
        // the remap is piecewise linear, so the corners are where a
        // monotonicity bug would hide.
        let mut points: Vec<u64> = (0..24).map(|s| 1u64 << s).collect();
        points.extend((0..64).map(|_| rng.gen_range(0..1u64 << 34)));
        points.sort_unstable();
        for &t in &points {
            let here = plan.remap(t);
            assert!(
                here >= t,
                "case {case}: droop can only stretch time: remap({t}) = {here}"
            );
            assert!(
                plan.remap(t + 1) > here,
                "case {case}: remap must be strictly increasing at {t} (droop {} ppm)",
                plan.droop_pm
            );
        }
    }
}

#[test]
fn droop_free_plans_remap_to_the_identity() {
    let mut rng = StdRng::seed_from_u64(0x1dea_717e);
    for _ in 0..64 {
        let mut plan = FaultPlan::perfect(rng.next_u64());
        // Any mix of non-droop faults: they retime deliveries, never the
        // ambient clock.
        plan.loss_pm = rng.gen_range(0..=1_000_000u32);
        plan.corrupt_pm = rng.gen_range(0..=1_000_000u32);
        plan.drop_pm = rng.gen_range(0..=1_000_000u32);
        plan.semantic_pm = rng.gen_range(0..=1_000_000u32);
        for _ in 0..64 {
            let t = rng.gen_range(0..u64::MAX / 2);
            assert_eq!(plan.remap(t), t, "droop-free remap must be the identity");
        }
    }
}

#[test]
fn outage_remap_composed_with_droop_remap_stays_monotone() {
    // The session's wall clock is the outage schedule's base-to-wall
    // shift applied on top of the fault plan's droop stretch. Replica
    // routing leans on this composition to order unit arrivals across
    // mirrors, so it must stay monotone — and exactly the identity at
    // zero — for every seeded (plan, schedule) pair.
    for seed in 0..chaos_seeds() {
        let mut rng = StdRng::seed_from_u64(0xc0de_0000 ^ seed);
        let mut plan = FaultPlan::perfect(rng.next_u64());
        plan.droop_pm = rng.gen_range(0..=1_000_000u32);
        let outages = OutagePlan {
            seed: rng.next_u64(),
            rate_pm: rng.gen_range(0..=800_000u32),
            min_cycles: 100_000,
            max_cycles: 4_000_000,
            negotiation_cycles: 250_000,
        };
        let mut sched = OutageSchedule::new(outages);
        let compose = |sched: &mut OutageSchedule, t: u64| sched.remap(plan.remap(t));
        assert_eq!(
            compose(&mut sched, 0),
            0,
            "seed {seed}: the composed remap must be the identity at zero"
        );
        // Probe window corners at many scales plus random points, in
        // ascending order (the schedule materializes lazily forward).
        let mut points: Vec<u64> = (0..24).map(|s| 1u64 << s).collect();
        points.extend((0..64).map(|_| rng.gen_range(0..1u64 << 34)));
        points.sort_unstable();
        let mut prev_t = 0u64;
        let mut prev_wall = 0u64;
        for &t in &points {
            let wall = compose(&mut sched, t);
            assert!(
                wall >= t,
                "seed {seed}: droop and downtime only stretch time: {t} -> {wall}"
            );
            assert!(
                wall >= prev_wall,
                "seed {seed}: composed remap must be monotone: \
                 {prev_t} -> {prev_wall} but {t} -> {wall}"
            );
            assert!(
                compose(&mut sched, t + 1) > wall,
                "seed {seed}: strictly increasing at {t} (droop {} ppm)",
                plan.droop_pm
            );
            prev_t = t;
            prev_wall = wall;
        }
    }
}

#[test]
fn retry_cap_forced_successes_are_counted_not_hidden() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    // A link where every attempt fails: only the retry cap's final
    // forced-through attempt ever delivers, and each such synthetic
    // success must be reported.
    let mut fc = FaultConfig::seeded(11);
    fc.loss_pm = 1_000_000;
    let config =
        SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph).with_faults(fc);
    let r = session.simulate(Input::Test, &config);
    assert!(r.faults.completed, "the cap must still bound recovery");
    assert!(
        r.faults.forced > 0,
        "every delivery was forced; hiding them would overstate link health: {:?}",
        r.faults
    );
    // A mildly lossy link retries but never exhausts the cap.
    let mild = session.simulate(
        Input::Test,
        &SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
            .with_faults(lossy(11)),
    );
    assert!(mild.faults.retries > 0);
    assert_eq!(
        mild.faults.forced, 0,
        "10% loss must never exhaust the retry cap: {:?}",
        mild.faults
    );
}

#[test]
fn hostile_links_degrade_gracefully_to_strict_execution() {
    let session = Session::new(nonstrict::workloads::jess::build()).unwrap();
    let mut fc = lossy(3);
    fc.loss_pm = 400_000; // 40% per attempt: nearly every unit retries
    fc.corrupt_pm = 200_000;
    fc.degrade_threshold = 1; // demote a class on its first fault event
    let config =
        SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph).with_faults(fc);
    let r = session.simulate(Input::Test, &config);
    assert!(r.faults.completed, "degradation must never lose the run");
    assert!(
        r.faults.degraded_classes > 0,
        "a hair-trigger threshold under heavy faults must demote classes: {:?}",
        r.faults
    );
    // Degradation is bounded by the class count.
    let nclasses = session.app.classes.len() as u32;
    assert!(r.faults.degraded_classes <= nclasses);
    assert_eq!(r.total_cycles, r.ledger().total());
}
