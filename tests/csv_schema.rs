//! Schema pins for the committed robustness CSVs in `results/`.
//!
//! Every bucketed CSV carries the same nine-column accounting tail
//! (`total_cycles` plus the eight [`CycleLedger`] buckets, in ledger
//! order), and on every committed row the buckets sum **exactly** to
//! the total — the eight-bucket identity is a property of the shipped
//! artifacts, not only of freshly simulated runs. A regeneration that
//! broke the identity (or silently dropped a bucket column) fails here
//! before the CI byte-identity loop even runs.
//!
//! [`CycleLedger`]: nonstrict_core::metrics::CycleLedger

use std::path::PathBuf;

/// The committed CSVs that carry the accounting tail.
const BUCKETED: [&str; 7] = [
    "faults.csv",
    "verify.csv",
    "outage.csv",
    "replica.csv",
    "byzantine.csv",
    "overload.csv",
    "chaos.csv",
];

/// The accounting tail every bucketed CSV must end with, in ledger
/// order (mirrors `bucket_header` in the export module).
const TAIL: &str = "total_cycles,exec_cycles,stall_cycles,recovery_cycles,verify_cycles,\
                    resume_cycles,hedge_cycles,queue_cycles,integrity_cycles";

fn results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("results")
}

fn read(name: &str) -> String {
    let path = results_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed CSV {} must be readable: {e}", path.display()))
}

/// The last nine comma-separated fields of a row, parsed as cycles.
fn tail_values(row: &str) -> [u64; 9] {
    let fields: Vec<&str> = row.split(',').collect();
    assert!(
        fields.len() >= 9,
        "row too short for the accounting tail: {row}"
    );
    let mut out = [0u64; 9];
    for (o, f) in out.iter_mut().zip(&fields[fields.len() - 9..]) {
        *o = f
            .parse()
            .unwrap_or_else(|e| panic!("bucket column {f:?} must be a cycle count ({e}): {row}"));
    }
    out
}

#[test]
fn every_bucketed_csv_ends_with_the_eight_bucket_columns() {
    for name in BUCKETED {
        let content = read(name);
        let header = content.lines().next().unwrap_or_default();
        assert!(
            header.ends_with(TAIL),
            "{name}: header must end with the accounting tail, got {header:?}"
        );
        assert!(
            content.lines().count() >= 2,
            "{name}: must carry at least one data row"
        );
    }
}

#[test]
fn every_committed_row_sums_its_buckets_exactly_to_the_total() {
    for name in BUCKETED {
        let content = read(name);
        for (i, row) in content.lines().skip(1).enumerate() {
            let v = tail_values(row);
            let sum: u64 = v[1..].iter().sum();
            assert_eq!(
                sum, v[0],
                "{name} row {i}: the eight buckets must sum to total_cycles: {row}"
            );
        }
    }
}

#[test]
fn committed_chaos_rows_report_zero_violations_and_completion() {
    let content = read("chaos.csv");
    let header = content.lines().next().unwrap();
    let cols: Vec<&str> = header.split(',').collect();
    let idx = |name: &str| {
        cols.iter()
            .position(|c| *c == name)
            .unwrap_or_else(|| panic!("chaos.csv must carry a {name} column"))
    };
    let (violations, completed) = (idx("violations"), idx("completed"));
    for row in content.lines().skip(1) {
        let fields: Vec<&str> = row.split(',').collect();
        assert_eq!(
            fields[violations], "0",
            "a committed chaos row must pass every invariant: {row}"
        );
        assert_eq!(
            fields[completed], "true",
            "every committed run completes: {row}"
        );
    }
}
