//! End-to-end properties of the outage/checkpoint/resume subsystem —
//! the robustness tentpole's contract:
//!
//! 1. **Resume equivalence at every unit boundary** — a session killed
//!    at any delivered-unit watermark and resumed from its journal
//!    reproduces the uninterrupted run's every accounting bucket
//!    byte-for-byte, with the wall clock exactly `base + downtime`. The
//!    boundaries are found by binary search on the journal's delivered
//!    watermark, so every unit arrival of the workload is exercised
//!    (the all-prefix pattern of the adversarial loader suite, lifted
//!    to the session level).
//! 2. **Torn journals fail closed** — any corrupted checkpoint is
//!    detected (CRC/shape) and the session restarts under strict
//!    execution; the run still completes, nothing resumes from
//!    untrusted state.
//! 3. **Targeted invalidation** — a manifest-epoch bump on one class
//!    refetches only that class; the base timeline is untouched.
//! 4. **Zero-rate equivalence** — an armed-but-calm outage config is
//!    byte-identical to no outage config, for every transfer policy.
//! 5. **Seeded ambient chaos** — random outage schedules insert pure
//!    downtime: execution, stall, and verify buckets never move. The
//!    seed count elevates via `NONSTRICT_CHAOS_SEEDS` (CI's
//!    chaos-smoke job).

use nonstrict::prelude::*;
use nonstrict_core::journal::SessionJournal;
use nonstrict_netsim::Link;

mod common;
use common::chaos_seeds;

/// The downtime charged on every interrupt in this suite.
const DOWNTIME: u64 = 3_000_000;

/// Asserts a resumed run is the uninterrupted run plus pure downtime:
/// every base-timeline bucket identical, the wall clock shifted by
/// exactly the outage.
fn assert_pure_resume(base: &SimResult, r: &SimResult, downtime: u64, ctx: &str) {
    assert_eq!(r.exec_cycles, base.exec_cycles, "{ctx}: exec moved");
    assert_eq!(r.stall_cycles, base.stall_cycles, "{ctx}: stall moved");
    assert_eq!(r.verify_cycles, base.verify_cycles, "{ctx}: verify moved");
    assert_eq!(r.faults, base.faults, "{ctx}: fault stats moved");
    assert_eq!(r.link_stats, base.link_stats, "{ctx}: linker moved");
    assert_eq!(r.stalls, base.stalls, "{ctx}: stall count moved");
    assert_eq!(
        r.invocation_latency, base.invocation_latency,
        "{ctx}: latency moved"
    );
    assert_eq!(r.outage.resume_cycles, downtime, "{ctx}: resume bucket");
    assert_eq!(
        r.total_cycles,
        base.total_cycles + downtime,
        "{ctx}: wall clock must be base + downtime"
    );
    assert_eq!(r.outage.outages, 1, "{ctx}");
    assert_eq!(r.outage.resumes, 1, "{ctx}");
    assert!(!r.outage.failed_closed, "{ctx}");
}

#[test]
fn resume_at_every_unit_boundary_reproduces_the_uninterrupted_run() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
    let base = session.simulate(Input::Test, &config);
    let total = base.total_cycles;

    let probe = |at: u64| -> Option<SessionJournal> {
        match session.run_until(Input::Test, &config, at) {
            RunOutcome::Interrupted(bytes) => {
                Some(SessionJournal::decode(&bytes).expect("a self-written journal always decodes"))
            }
            RunOutcome::Finished(_) => None,
        }
    };
    let delivered =
        |j: &SessionJournal| -> u64 { j.classes.iter().map(|c| u64::from(c.delivered)).sum() };

    let mut boundaries_tested = 0u32;
    let mut k = 0u64; // delivered-unit watermark to hunt for
    loop {
        // Minimal interrupt cycle whose checkpoint has >= k units
        // delivered (a run that Finished counts as "all delivered").
        let reaches = |at: u64| probe(at).is_none_or(|j| delivered(&j) >= k);
        let (mut lo, mut hi) = (0u64, total + 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if reaches(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let Some(journal) = probe(lo) else {
            break; // watermark k is only reached by running to the end
        };
        k = delivered(&journal) + 1;
        boundaries_tested += 1;
        let outcome = session.run_until(Input::Test, &config, lo);
        let RunOutcome::Interrupted(bytes) = outcome else {
            panic!("probe said cycle {lo} interrupts");
        };
        let r = session.resume(Input::Test, &config, &bytes, DOWNTIME);
        assert_pure_resume(
            &base,
            &r,
            DOWNTIME,
            &format!("boundary at cycle {lo} ({} units delivered)", k - 1),
        );
    }
    assert!(
        boundaries_tested >= 10,
        "the walk must visit every unit boundary of the workload, saw {boundaries_tested}"
    );
}

#[test]
fn torn_journal_bytes_always_fail_closed_and_complete() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
    let base = session.simulate(Input::Test, &config);
    let RunOutcome::Interrupted(bytes) =
        session.run_until(Input::Test, &config, base.total_cycles / 2)
    else {
        panic!("mid-run interrupt must checkpoint");
    };
    let strict = session.simulate(Input::Test, &SimConfig::strict(config.link));
    // A torn write can hit any byte; sample across the whole journal
    // including both ends, plus truncation.
    let mut corruptions: Vec<Vec<u8>> = (0..bytes.len())
        .step_by(1.max(bytes.len() / 32))
        .chain([bytes.len() - 1])
        .map(|i| {
            let mut b = bytes.clone();
            b[i] ^= 0x10;
            b
        })
        .collect();
    corruptions.push(bytes[..bytes.len() / 2].to_vec());
    corruptions.push(Vec::new());
    for (i, torn) in corruptions.iter().enumerate() {
        let r = session.resume(Input::Test, &config, torn, DOWNTIME);
        assert!(
            r.outage.failed_closed,
            "corruption {i} must be detected and fail closed"
        );
        assert_eq!(r.outage.resumes, 0, "nothing may resume from torn state");
        assert!(r.faults.completed, "fail-closed still finishes the program");
        assert_eq!(
            r.total_cycles,
            strict.total_cycles + DOWNTIME,
            "fail-closed restarts under strict execution plus the downtime"
        );
    }
}

#[test]
fn epoch_bump_refetches_only_the_stale_class() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
    let base = session.simulate(Input::Test, &config);
    let RunOutcome::Interrupted(bytes) =
        session.run_until(Input::Test, &config, base.total_cycles / 2)
    else {
        panic!("mid-run interrupt must checkpoint");
    };
    let clean = session.resume(Input::Test, &config, &bytes, DOWNTIME);
    let mut journal = SessionJournal::decode(&bytes).unwrap();
    journal.classes[0].epoch ^= 0x5a5a_5a5a; // the server republished class 0
    let bumped = session.resume(Input::Test, &config, &journal.encode(), DOWNTIME);
    assert!(
        !bumped.outage.failed_closed,
        "a stale class is not a torn journal"
    );
    assert_eq!(bumped.outage.refetched_classes, 1, "only class 0 is stale");
    assert_eq!(clean.outage.refetched_classes, 0);
    assert!(
        bumped.outage.resume_cycles >= clean.outage.resume_cycles,
        "refetching cannot be free"
    );
    // The refetch is charged entirely to the resume bucket: the base
    // timeline of both resumed runs is the uninterrupted run's.
    for r in [&clean, &bumped] {
        assert_eq!(r.exec_cycles, base.exec_cycles);
        assert_eq!(r.stall_cycles, base.stall_cycles);
        assert_eq!(r.total_cycles - r.outage.resume_cycles, base.total_cycles);
    }
}

#[test]
fn zero_rate_outages_are_byte_identical_to_no_config() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    for link in [Link::T1, Link::MODEM_28_8] {
        for transfer in [
            TransferPolicy::Strict,
            TransferPolicy::Parallel { limit: 4 },
            TransferPolicy::Interleaved,
        ] {
            let mut quiet = SimConfig::non_strict(link, OrderingSource::StaticCallGraph);
            quiet.transfer = transfer;
            let armed = quiet.with_outages(OutageConfig::seeded(0xcafe));
            assert_eq!(
                session.simulate(Input::Test, &quiet),
                session.simulate(Input::Test, &armed),
                "an armed-but-calm outage config must not perturb {transfer:?} on {}",
                link.name
            );
        }
        let base = SimConfig::strict(link);
        assert_eq!(
            session.simulate(Input::Test, &base),
            session.simulate(Input::Test, &base.with_outages(OutageConfig::seeded(5))),
        );
    }
}

#[test]
fn seeded_outage_chaos_inserts_pure_downtime() {
    let session = Session::new(nonstrict::workloads::hanoi::build()).unwrap();
    for seed in 0..chaos_seeds() {
        let mut oc = OutageConfig::seeded(seed);
        oc.rate_pm = 500_000;
        oc.min_cycles = 1 << 20;
        oc.max_cycles = 1 << 24;
        let mut saw_outage = false;
        for quiet_cfg in [
            SimConfig::strict(Link::MODEM_28_8),
            SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
        ] {
            let quiet = session.simulate(Input::Test, &quiet_cfg);
            let stormy_cfg = quiet_cfg.with_outages(oc);
            let r = session.simulate(Input::Test, &stormy_cfg);
            assert_eq!(
                r,
                session.simulate(Input::Test, &stormy_cfg),
                "seed {seed}: same schedule must replay bit for bit"
            );
            assert_eq!(r.exec_cycles, quiet.exec_cycles, "seed {seed}");
            assert_eq!(r.stall_cycles, quiet.stall_cycles, "seed {seed}");
            assert_eq!(r.verify_cycles, quiet.verify_cycles, "seed {seed}");
            assert_eq!(
                r.total_cycles,
                quiet.total_cycles + r.outage.resume_cycles,
                "seed {seed}: an outage is pure inserted downtime"
            );
            assert_eq!(r.outage.resumes, r.outage.outages, "seed {seed}");
            assert!(
                r.invocation_latency >= quiet.invocation_latency,
                "seed {seed}: downtime can only delay first output"
            );
            saw_outage |= r.outage.outages > 0;
        }
        assert!(
            saw_outage,
            "seed {seed}: a 50% per-period rate must trigger at least one outage"
        );
    }
}
