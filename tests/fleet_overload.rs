//! End-to-end properties of multi-client contention — the overload
//! tentpole's fair-share contract:
//!
//! 1. **Work conservation** — the DRR scheduler never idles the egress
//!    pipe while any admitted client has backlog: a fleet arriving
//!    together drains in exactly `total_bytes * cpb` cycles, and
//!    staggered arrivals finish inside the classic busy-period bounds.
//! 2. **Quantum fairness** — over any backlogged interval, service is
//!    proportional to weight within one maximum transfer unit plus one
//!    quantum per client.
//! 3. **No starvation** — under seeded arrivals and demands, every
//!    client finishes, and no later than the global completion bound.
//! 4. **Exact accounting under pressure** — a contended fleet with
//!    admission rejections, forced-strict clients, and shed-to-journal
//!    resumes still lands every cycle in exactly one of the seven
//!    ledger buckets.
//! 5. **A fleet of one moves nothing** — every committed number comes
//!    from single-client runs; a one-client fleet (with or without
//!    admission control) must reproduce them bit for bit, so the
//!    contention layer cannot perturb any committed CSV.

use nonstrict::prelude::*;
use nonstrict_netsim::contention::jitter;

/// Deterministic demand fleet for the scheduler property tests: unit
/// sizes, counts, weights, and arrivals all drawn from the seeded
/// jitter stream.
fn seeded_demands(seed: u64, clients: usize, arrival_span: u64) -> Vec<ClientDemand> {
    (0..clients)
        .map(|i| {
            let c = i as u64;
            let units = 1 + jitter(seed, c, 1, 12);
            ClientDemand {
                weight: 1 + jitter(seed, c, 2, 4) as u32,
                arrival: jitter(seed, c, 0, arrival_span.max(1)),
                units: (0..units)
                    .map(|u| jitter(seed, c, 10 + u as u32, 9_000))
                    .collect(),
            }
        })
        .collect()
}

#[test]
fn drr_is_work_conserving() {
    const CPB: u64 = 7;
    for seed in 0..6u64 {
        // Everyone arrives together: the pipe never idles, so the last
        // finisher lands at exactly total_bytes * cpb.
        let mut together = seeded_demands(seed, 8, 1);
        for d in &mut together {
            d.arrival = 0;
        }
        let total: u64 = together.iter().map(ClientDemand::total_bytes).sum();
        let served = drr_schedule(CPB, 2_048, &together);
        assert_eq!(
            served.iter().map(|s| s.finish).max(),
            Some(total * CPB),
            "seed {seed}: a simultaneous fleet drains with zero idle"
        );

        // Staggered arrivals: the completion time sits inside the
        // busy-period bounds — the pipe cannot start before the first
        // arrival, and cannot idle once the last client has arrived.
        let staggered = seeded_demands(seed, 8, 200_000);
        let total: u64 = staggered.iter().map(ClientDemand::total_bytes).sum();
        let first = staggered.iter().map(|d| d.arrival).min().unwrap();
        let last = staggered.iter().map(|d| d.arrival).max().unwrap();
        let served = drr_schedule(CPB, 2_048, &staggered);
        let makespan = served.iter().map(|s| s.finish).max().unwrap();
        assert!(
            makespan >= first + total * CPB,
            "seed {seed}: finished before the work could have been sent"
        );
        assert!(
            makespan <= last + total * CPB,
            "seed {seed}: the pipe idled with backlog present"
        );
        for (d, s) in staggered.iter().zip(&served) {
            assert_eq!(s.bytes, d.total_bytes());
            assert_eq!(
                s.finish,
                d.arrival + s.bytes * CPB + s.queue_cycles,
                "seed {seed}: finish decomposes into arrival + service + queue"
            );
        }
    }
}

#[test]
fn drr_service_tracks_the_weight_share_within_one_unit() {
    // cpb 1 keeps the arithmetic exact. Both clients are backlogged
    // from cycle 0; the heavy one finishes first, and at that instant
    // the light one must have received (w_light / w_heavy) of the
    // heavy client's service, within one unit plus one quantum per
    // client of slack.
    const UNIT: u64 = 500;
    const QUANTUM: u64 = 1_000;
    let light = ClientDemand {
        weight: 1,
        arrival: 0,
        units: vec![UNIT; 200],
    };
    let heavy = ClientDemand {
        weight: 3,
        arrival: 0,
        units: vec![UNIT; 60],
    };
    let served = drr_schedule(1, QUANTUM, &[light, heavy.clone()]);
    let heavy_finish = served[1].finish;
    assert!(
        heavy_finish < served[0].finish,
        "three times the weight on a fifth of the backlog finishes first"
    );
    // Work conservation: every cycle up to the heavy finish moved one
    // byte, so the light client's service so far is the remainder.
    let light_served = heavy_finish - heavy.total_bytes();
    let expected = heavy.total_bytes() / 3;
    let slack = (UNIT + QUANTUM) * 4;
    assert!(
        light_served.abs_diff(expected) <= slack,
        "service must track the 1:3 weight share: got {light_served}, expected ~{expected}"
    );

    // Equal twins stay in lockstep: the finish spread is at most one
    // unit plus one quantum.
    let twin = ClientDemand {
        weight: 1,
        arrival: 0,
        units: vec![UNIT; 40],
    };
    let served = drr_schedule(1, QUANTUM, &[twin.clone(), twin]);
    assert!(
        served[0].finish.abs_diff(served[1].finish) <= UNIT + QUANTUM,
        "equal twins must finish within one round of each other: {served:?}"
    );
}

#[test]
fn drr_never_starves_a_seeded_fleet() {
    const CPB: u64 = 134;
    for seed in 0..8u64 {
        let demands = seeded_demands(seed ^ 0x5afe, 12, 1_000_000);
        let total: u64 = demands.iter().map(ClientDemand::total_bytes).sum();
        let last = demands.iter().map(|d| d.arrival).max().unwrap();
        let served = drr_schedule(CPB, 4_096, &demands);
        for (i, (d, s)) in demands.iter().zip(&served).enumerate() {
            assert!(
                s.finish >= d.arrival + s.bytes * CPB,
                "seed {seed} client {i}: finished faster than its own bytes allow"
            );
            assert!(
                s.finish <= last + total * CPB,
                "seed {seed} client {i}: starved past the global completion bound"
            );
        }
        assert_eq!(
            served,
            drr_schedule(CPB, 4_096, &demands),
            "seed {seed}: the schedule is deterministic"
        );
    }
}

#[test]
fn a_contended_fleet_accounts_every_cycle_under_full_pressure() {
    let sessions: Vec<Session> = [
        nonstrict::workloads::hanoi::build(),
        nonstrict::workloads::bit::build(),
        nonstrict::workloads::testdes::build(),
    ]
    .into_iter()
    .map(|app| Session::new(app).unwrap())
    .collect();
    let mut faults = FaultConfig::seeded(0x000f_1ee7);
    faults.loss_pm = 10_000;
    let mut replicas = ReplicaConfig::seeded(0x000f_1ee7);
    replicas.replicas = 2;
    let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph)
        .with_faults(faults)
        .with_replicas(replicas);
    // A one-token bucket with a long period forces rejections; rock-
    // bottom rungs push every queued client down the ladder.
    let spec = FleetSpec {
        arrival_span: 1_000,
        admission: Some(AdmissionSettings {
            rate: 1,
            burst: 1,
            period_cycles: 5_000_000,
        }),
        ladder: Some(ShedLadder::new(1, 2, 3).unwrap()),
        ..FleetSpec::seeded(0xc0417e47)
    };
    let clients: Vec<FleetClient> = sessions
        .iter()
        .map(|s| FleetClient {
            name: &s.app.name,
            session: s,
            link: Link::T1,
            weight: 1,
        })
        .collect();
    let fleet = run_fleet(&spec, &clients, Input::Test, &config);
    assert_eq!(
        fleet,
        run_fleet(&spec, &clients, Input::Test, &config),
        "fleet runs are deterministic"
    );
    assert!(
        fleet.rejections() > 0,
        "a one-token bucket must reject a burst of three"
    );
    assert!(
        fleet.count(ShedAction::Shed) >= 1,
        "rock-bottom rungs must shed at least one queued client"
    );
    assert!(fleet.p50_total <= fleet.p95_total && fleet.p95_total <= fleet.p99_total);
    for c in &fleet.clients {
        // Exact seven-way accounting for every outcome on the ladder —
        // rejected-then-admitted, degraded, and shed-then-resumed alike.
        assert_eq!(
            c.result.total_cycles,
            c.result.ledger().total(),
            "{} ({}): every cycle lands in exactly one bucket",
            c.name,
            c.action.label()
        );
        if c.action == ShedAction::Shed {
            // The DRR delay is the journal park, charged once to the
            // resume bucket — queue holds only the admission wait.
            assert_eq!(c.result.queue_cycles, c.admission_wait);
            assert!(
                c.result.outage.resumes > 0 || c.result.outage.failed_closed,
                "{}: a shed client resumes from its journal",
                c.name
            );
        } else {
            assert_eq!(c.result.queue_cycles, c.admission_wait + c.drr_queue);
        }
    }
}

#[test]
fn a_fleet_of_one_cannot_move_any_committed_number() {
    // Every committed CSV row comes from a single-client run. The
    // contention layer must be invisible at fleet size one — with or
    // without admission control — so regenerating those files with the
    // fleet code present stays byte-identical.
    let mut faults = FaultConfig::seeded(0x0bad_1147);
    faults.loss_pm = 10_000;
    let mut replicas = ReplicaConfig::seeded(0x0e11_ca5e);
    replicas.replicas = 2;
    let composed = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph)
        .with_faults(faults)
        .with_verify(VerifyMode::Stream)
        .with_replicas(replicas);
    let plain = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
    for app in nonstrict::workloads::build_all() {
        let session = Session::new(app).unwrap();
        for config in [&plain, &composed] {
            let solo = session.simulate(Input::Test, config);
            for admission in [None, Some(AdmissionSettings::per_period(1))] {
                let spec = FleetSpec {
                    admission,
                    ladder: Some(ShedLadder::new(1, 2, 3).unwrap()),
                    ..FleetSpec::seeded(0x0f1e_e7ed)
                };
                let clients = [FleetClient {
                    name: &session.app.name,
                    session: &session,
                    link: config.link,
                    weight: 1,
                }];
                let fleet = run_fleet(&spec, &clients, Input::Test, config);
                let c = &fleet.clients[0];
                assert_eq!(
                    c.result, solo,
                    "{}: a lone client must reproduce the solo run bit for bit",
                    session.app.name
                );
                assert_eq!(c.result.queue_cycles, 0);
                assert_eq!(c.rejections, 0);
                assert_eq!(c.action, ShedAction::None);
            }
        }
    }
}
