//! Storage-layer durability tests: the crash-anywhere differential at
//! the VFS-write granularity, real-filesystem warm restarts, and the
//! hostile on-disk corpus.
//!
//! The wire suite already proves crash-at-every-unit-boundary over
//! sockets; this suite moves the kill *inside the storage stack* — the
//! client process dies at every single mutating VFS operation its
//! durable store issues — and requires the warm restart to converge
//! byte-identical to the uninterrupted run, or fail closed to a cold
//! start that still converges. No intermediate outcome is acceptable.

use std::sync::Arc;
use std::time::Duration;

use nonstrict_core::build_plan;
use nonstrict_core::model::OrderingSource;
use nonstrict_store::{
    CacheEntry, DurableSession, FaultFs, FaultKnobs, JournalLog, RealFs, StoreError, UnitCache,
    JOURNAL_NAME,
};
use nonstrict_wire::manifest::content_digest_of;
use nonstrict_wire::{
    crc32, ClientConfig, ClientError, ServerConfig, SplitMix64, WireClient, WireServer,
};

mod common;

fn hanoi_server(config: ServerConfig) -> WireServer {
    let plan = build_plan("hanoi", OrderingSource::StaticCallGraph).expect("hanoi builds");
    WireServer::bind("127.0.0.1:0", vec![plan], config).expect("loopback bind")
}

fn fast_client(addr: std::net::SocketAddr) -> ClientConfig {
    let mut c = ClientConfig::new(addr, "hanoi");
    c.keep_payloads = true;
    c.backoff_base = Duration::from_millis(1);
    c.backoff_cap = Duration::from_millis(10);
    c
}

fn durable_client(addr: std::net::SocketAddr, fs: &Arc<FaultFs>) -> WireClient {
    WireClient::with_store(fast_client(addr), Box::new(DurableSession::new(fs.clone())))
}

/// The storage crash-anywhere differential: kill the client at every
/// mutating VFS operation its durable store performs, power-cycle the
/// store, and warm-restart. Every restart must complete with payloads
/// byte-identical to the uninterrupted baseline — whether it resumed a
/// verified warm prefix or failed closed to a cold start.
#[test]
fn crash_at_every_storage_write_converges_to_baseline() {
    let server = hanoi_server(ServerConfig::default());
    let addr = server.local_addr();

    // Baseline: uninterrupted durable run over an honest store, which
    // also measures the sweep bound — how many mutating VFS ops one
    // full session costs.
    let quiet = Arc::new(FaultFs::new(FaultKnobs::quiet(1)));
    let baseline = durable_client(addr, &quiet).run().expect("baseline");
    assert!(baseline.complete, "uninterrupted durable run completes");
    let total_ops = quiet.ops();
    assert!(
        total_ops > 4,
        "a session must cost more than a handful of store ops (got {total_ops})"
    );

    let mut warm_restores = 0u64;
    for k in 1..=total_ops {
        let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(0xd15c + k)));
        fs.set_kill_at(k);
        match durable_client(addr, &fs).run() {
            // The store op died mid-write and the session failed closed.
            Err(ClientError::Store { .. }) => {}
            Err(e) => panic!("kill at store op {k}: unexpected error {e}"),
            Ok(r) => panic!("kill at store op {k} never fired (complete={})", r.complete),
        }
        fs.crash();
        let warm = durable_client(addr, &fs)
            .run()
            .unwrap_or_else(|e| panic!("kill at store op {k}: warm restart failed: {e}"));
        assert!(warm.complete, "kill at store op {k}: restart incomplete");
        assert_eq!(
            warm.unit_crcs, baseline.unit_crcs,
            "kill at store op {k}: restarted payloads diverged"
        );
        assert_eq!(warm.delivered, baseline.delivered, "kill at store op {k}");
        assert_eq!(
            warm.manifest_epoch, baseline.manifest_epoch,
            "kill at store op {k}"
        );
        assert_eq!(
            warm.payloads, baseline.payloads,
            "kill at store op {k}: byte-level divergence"
        );
        warm_restores += warm.warm_units;
    }
    assert!(
        warm_restores > 0,
        "at least some kills must land after durable progress existed to warm-restore"
    );
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);
}

/// The process-kill probe against the *real* filesystem backend: kill
/// after N units, then restart a brand-new session over the same
/// `--journal-dir`/`--cache-dir` pair and require a warm resume that
/// never refetches what the journal already proved.
#[test]
fn realfs_process_kill_then_warm_restart_completes() {
    let server = hanoi_server(ServerConfig::default());
    let addr = server.local_addr();
    let baseline = WireClient::new(fast_client(addr)).run().expect("baseline");

    let root =
        std::env::temp_dir().join(format!("nonstrict-store-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let journal = Arc::new(RealFs::open(root.join("journal")).expect("journal dir"));
    let cache = Arc::new(RealFs::open(root.join("cache")).expect("cache dir"));

    let mut cfg = fast_client(addr);
    cfg.kill_after_units = Some(3);
    let err = WireClient::with_store(
        cfg,
        Box::new(DurableSession::split(journal.clone(), cache.clone())),
    )
    .run()
    .expect_err("the kill probe must fire");
    assert!(
        matches!(err, ClientError::Killed { delivered: 3 }),
        "unexpected kill shape: {err}"
    );

    // A brand-new client over the same directories models the restarted
    // process: nothing survives but the disk.
    let warm = WireClient::with_store(
        fast_client(addr),
        Box::new(DurableSession::split(journal, cache)),
    )
    .run()
    .expect("warm restart");
    assert!(warm.complete);
    assert_eq!(
        warm.warm_units, 3,
        "every journaled unit must resume from disk, not the wire"
    );
    assert_eq!(warm.unit_crcs, baseline.unit_crcs);
    assert_eq!(warm.payloads, baseline.payloads);

    let _ = std::fs::remove_dir_all(&root);
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);
}

/// Elevated storage faults — torn writes, fsync lies, bit rot — across
/// several seeds and repeated kill/restart cycles. However mangled the
/// store gets, the final clean restart must converge byte-identical to
/// the faultless baseline (warm prefix or cold start, never a wrong
/// byte).
#[test]
fn storage_fault_seeds_converge_after_repeated_restarts() {
    let server = hanoi_server(ServerConfig::default());
    let addr = server.local_addr();
    let baseline = WireClient::new(fast_client(addr)).run().expect("baseline");

    // 4 seeds locally; CI's disk-chaos-smoke job elevates the count.
    for seed in 1..=common::disk_seeds() {
        let fs = Arc::new(FaultFs::new(FaultKnobs {
            seed,
            torn_pm: 300_000,
            lie_pm: 120_000,
            bitrot_pm: 250_000,
        }));
        let mut rng = SplitMix64(seed ^ 0xd15c_cafe);
        // Several killed attempts, each crash giving bit rot its chance
        // to gnaw the survivors, then one clean run.
        for round in 0..4u64 {
            fs.set_kill_at(1 + rng.below(12));
            match durable_client(addr, &fs).run() {
                // The armed kill fired (or a lie-damaged store failed
                // closed); power-cycle and go again.
                Err(ClientError::Store { .. }) => {}
                // The kill index landed past the ops this (possibly
                // warm) session needed: it completed early.
                Ok(r) => {
                    assert!(r.complete, "seed {seed} round {round}");
                    break;
                }
                Err(e) => panic!("seed {seed} round {round}: {e}"),
            }
            fs.crash();
        }
        fs.crash();
        let report = durable_client(addr, &fs)
            .run()
            .unwrap_or_else(|e| panic!("seed {seed}: clean restart failed: {e}"));
        assert!(report.complete, "seed {seed} converges");
        assert_eq!(
            report.unit_crcs, baseline.unit_crcs,
            "seed {seed}: storage faults leaked a wrong byte into the session"
        );
    }
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);
}

/// Every strict prefix of an encoded `NSUM` manifest must fail closed —
/// at the raw decoder, and through session recovery when the stored
/// manifest file is the one truncated.
#[test]
fn every_manifest_prefix_truncation_fails_closed() {
    use nonstrict_store::MANIFEST_NAME;
    let server = hanoi_server(ServerConfig::default());
    let addr = server.local_addr();
    let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(11)));
    let report = durable_client(addr, &fs).run().expect("session");
    assert!(report.complete);
    let drained = server.drain(Duration::from_secs(5));
    assert!(drained.clean);

    let full = fs.durable(MANIFEST_NAME).expect("manifest persisted");
    assert!(
        nonstrict_wire::manifest::UnitManifest::decode(&full).is_ok(),
        "the stored manifest must round-trip before we start cutting it"
    );
    for len in 0..full.len() {
        let prefix = full[..len].to_vec();
        assert!(
            nonstrict_wire::manifest::UnitManifest::decode(&prefix).is_err(),
            "manifest prefix of {len}/{} bytes decoded",
            full.len()
        );
        fs.set_durable(MANIFEST_NAME, prefix);
        fs.crash();
        let mut session = DurableSession::new(fs.clone());
        let err = session
            .recover_session()
            .expect_err(&format!("manifest prefix of {len} bytes recovered"));
        assert!(
            matches!(
                err,
                StoreError::ManifestMismatch { .. } | StoreError::Malformed { .. }
            ),
            "manifest prefix of {len} bytes: wrong error shape: {err}"
        );
    }
}

// ---------------------------------------------------------------------------
// Hostile on-disk corpus
// ---------------------------------------------------------------------------

/// Manifest epoch the corpus cache entries are sealed under.
const CORPUS_EPOCH: u64 = 0x1122_3344_5566_7788;
/// Payload the pinned manifest expects for class 0 unit 0.
const CORPUS_TRUE_PAYLOAD: &[u8] = b"the unit payload the manifest pinned";
/// Payload the poisoned entry actually carries.
const CORPUS_EVIL_PAYLOAD: &[u8] = b"a self-consistent but unpinned payload";

fn corpus_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(name)
}

fn read_corpus(name: &str) -> Vec<u8> {
    std::fs::read(corpus_path(name))
        .unwrap_or_else(|e| panic!("corpus artifact {name} unreadable: {e}"))
}

/// A clean two-record journal followed by a torn tail: a frame whose
/// length prefix promises 8 bytes but whose payload was cut at 3 by the
/// power loss.
fn gen_torn_tail_journal() -> Vec<u8> {
    let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(0)));
    let log = JournalLog::new(fs.clone(), "gen.nsjl");
    log.append_record(b"alpha").expect("append");
    log.append_record(b"beta").expect("append");
    let mut bytes = fs.durable("gen.nsjl").expect("journal bytes");
    bytes.extend_from_slice(&8u32.to_le_bytes());
    bytes.extend_from_slice(b"cut");
    bytes
}

/// A journal whose last frame is fully present but fails its CRC — rot
/// or forgery, not a torn write, so recovery must refuse the whole file.
fn gen_rotted_frame_journal() -> Vec<u8> {
    let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(0)));
    let log = JournalLog::new(fs.clone(), "gen.nsjl");
    log.append_record(b"alpha").expect("append");
    log.append_record(b"beta").expect("append");
    let mut bytes = fs.durable("gen.nsjl").expect("journal bytes");
    let flip = bytes.len() - 6; // inside the last frame's payload
    bytes[flip] ^= 0x20;
    bytes
}

/// A once-valid cache entry with a single bit of post-hoc rot in the
/// payload: the CRC trailer no longer matches.
fn gen_bitrot_cache_entry() -> Vec<u8> {
    let entry = CacheEntry::sealed(CORPUS_EPOCH, 0, 0, CORPUS_TRUE_PAYLOAD.to_vec());
    let mut bytes = entry.encode();
    bytes[34] ^= 0x08; // inside the payload, past the 30-byte header
    bytes
}

/// A perfectly well-formed entry that hashes to a digest the pinned
/// manifest never issued: poisoned, not rotted. Frame checks all pass;
/// only the manifest comparison can catch it.
fn gen_wrong_digest_cache_entry() -> Vec<u8> {
    CacheEntry::sealed(CORPUS_EPOCH, 0, 0, CORPUS_EVIL_PAYLOAD.to_vec()).encode()
}

/// The committed corpus must be byte-identical to what the generators
/// produce — the artifacts are self-verifying, and
/// `NONSTRICT_WRITE_CORPUS=1 cargo test corpus_artifacts` regenerates
/// them after a deliberate format change.
#[test]
fn corpus_artifacts_match_their_generators() {
    let artifacts: [(&str, Vec<u8>); 4] = [
        ("torn-tail.nsjl", gen_torn_tail_journal()),
        ("rotted-frame.nsjl", gen_rotted_frame_journal()),
        ("bitrot-entry.nsuc", gen_bitrot_cache_entry()),
        ("wrong-digest-entry.nsuc", gen_wrong_digest_cache_entry()),
    ];
    for (name, want) in artifacts {
        if std::env::var("NONSTRICT_WRITE_CORPUS").is_ok() {
            std::fs::write(corpus_path(name), &want)
                .unwrap_or_else(|e| panic!("writing corpus {name}: {e}"));
            continue;
        }
        assert_eq!(
            read_corpus(name),
            want,
            "committed corpus artifact {name} drifted from its generator"
        );
    }
}

/// The torn-tail journal recovers exactly the clean prefix: both
/// records survive, the 7 torn bytes are truncated (and the durable
/// file compacted), and nothing of the cut frame leaks through.
#[test]
fn corpus_torn_journal_tail_truncates_to_last_valid_frame() {
    let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(0)));
    fs.set_durable(JOURNAL_NAME, read_corpus("torn-tail.nsjl"));
    let log = JournalLog::new(fs.clone(), JOURNAL_NAME);
    let recovered = log.recover().expect("torn tail is recoverable");
    assert_eq!(recovered.records, vec![b"alpha".to_vec(), b"beta".to_vec()]);
    assert_eq!(
        recovered.torn_bytes, 7,
        "4-byte length prefix + 3 cut bytes"
    );
    // The compaction rewrote the durable file: a second recovery sees a
    // clean log with no torn tail.
    let again = log.recover().expect("compacted log recovers");
    assert_eq!(again.records.len(), 2);
    assert_eq!(again.torn_bytes, 0);
}

/// The rotted-frame journal fails closed with the typed CRC error —
/// a complete-but-wrong frame means append order cannot be trusted.
#[test]
fn corpus_rotted_journal_frame_fails_closed() {
    let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(0)));
    fs.set_durable(JOURNAL_NAME, read_corpus("rotted-frame.nsjl"));
    let log = JournalLog::new(fs.clone(), JOURNAL_NAME);
    assert_eq!(
        log.recover().expect_err("rot must not recover"),
        StoreError::CrcMismatch { what: "NSJL log" }
    );
}

/// The bit-rotted cache entry is rejected at decode with the typed CRC
/// error, and through `load_verified` the payload never escapes.
#[test]
fn corpus_bitrot_cache_entry_is_rejected() {
    let bytes = read_corpus("bitrot-entry.nsuc");
    assert_eq!(
        CacheEntry::decode(&bytes).expect_err("rot must not decode"),
        StoreError::CrcMismatch {
            what: "NSUC cache entry"
        }
    );
    let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(0)));
    fs.set_durable(&UnitCache::entry_name(0, 0), bytes);
    let cache = UnitCache::new(fs);
    let expect = content_digest_of(CORPUS_EPOCH, 0, 0, CORPUS_TRUE_PAYLOAD);
    assert!(matches!(
        cache.load_verified(CORPUS_EPOCH, 0, 0, expect),
        Err(StoreError::CrcMismatch { .. })
    ));
}

/// The wrong-digest entry passes every self-consistency check — only
/// the pinned manifest can unmask it, and it must.
#[test]
fn corpus_wrong_digest_cache_entry_is_rejected() {
    let bytes = read_corpus("wrong-digest-entry.nsuc");
    let entry = CacheEntry::decode(&bytes).expect("the poison is self-consistent");
    assert_eq!(entry.payload, CORPUS_EVIL_PAYLOAD);
    let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(0)));
    fs.set_durable(&UnitCache::entry_name(0, 0), bytes);
    let cache = UnitCache::new(fs);
    let expect = content_digest_of(CORPUS_EPOCH, 0, 0, CORPUS_TRUE_PAYLOAD);
    let got = content_digest_of(CORPUS_EPOCH, 0, 0, CORPUS_EVIL_PAYLOAD);
    assert_ne!(expect, got, "the two payloads must not collide");
    assert_eq!(
        cache
            .load_verified(CORPUS_EPOCH, 0, 0, expect)
            .expect_err("poison must not load"),
        StoreError::DigestMismatch {
            class: 0,
            unit: 0,
            want: expect,
            got,
        }
    );
    let _ = crc32(&entry.payload); // the journal CRC is orthogonal to the digest
}
