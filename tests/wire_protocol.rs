//! The wire protocol against real content: frames built from an actual
//! restructured benchmark must survive encode∘decode bit for bit, fail
//! closed under truncation at *every* prefix length, and negotiate
//! resume watermarks that round-trip through the NSJR journal the
//! client persists between connections.

use nonstrict_core::model::OrderingSource;
use nonstrict_core::{build_plan, journal_from_report, resume_entries_from_journal, UnitManifest};
use nonstrict_wire::frame::read_frame;
use nonstrict_wire::{crc32, ClientReport, Frame, FrameError, ResumeEntry, PROTOCOL_VERSION};

/// One plan for the whole file: hanoi is the smallest benchmark that
/// still has multi-method classes to negotiate over.
fn plan() -> nonstrict_wire::ServePlan {
    build_plan("hanoi", OrderingSource::StaticCallGraph).expect("hanoi builds")
}

/// Every frame kind, loaded with real content from the serve plan.
fn real_frames(plan: &nonstrict_wire::ServePlan) -> Vec<Frame> {
    vec![
        Frame::Hello {
            version: PROTOCOL_VERSION,
            benchmark: plan.benchmark.clone(),
            ordering: 0,
            resume: vec![ResumeEntry {
                class: 0,
                epoch: plan.classes[0].epoch,
                delivered: 1,
            }],
        },
        Frame::Welcome {
            generation: plan.generation,
            manifest_epoch: plan.manifest_epoch,
            manifest: plan.manifest.clone(),
            classes: plan.negotiate(&[]),
        },
        Frame::Retry { after_ms: 100 },
        Frame::Unit {
            class: 0,
            unit: 0,
            payload: plan.classes[0].units[0].clone(),
        },
        Frame::Evict {
            reason: nonstrict_wire::EvictReason::Drain,
            resume_after_ms: 50,
        },
        Frame::Bye {
            classes: plan.classes.len() as u32,
            bytes: plan.total_bytes(),
        },
    ]
}

#[test]
fn every_frame_kind_round_trips_with_real_content() {
    let plan = plan();
    for frame in real_frames(&plan) {
        let bytes = frame.encode();
        let (back, consumed) = Frame::decode(&bytes).expect("round trip");
        assert_eq!(consumed, bytes.len());
        assert_eq!(back, frame);
        // The streaming reader agrees with the buffer decoder.
        let mut reader = bytes.as_slice();
        assert_eq!(read_frame(&mut reader).expect("stream read"), frame);
    }
}

#[test]
fn truncation_at_every_prefix_fails_closed() {
    let plan = plan();
    for frame in real_frames(&plan) {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut]) {
                Err(_) => {}
                Ok((got, _)) => panic!("prefix {cut}/{} decoded as {got:?}", bytes.len()),
            }
        }
    }
}

#[test]
fn forged_manifest_length_is_oversized_before_allocation() {
    let plan = plan();
    let frame = Frame::Welcome {
        generation: plan.generation,
        manifest_epoch: plan.manifest_epoch,
        manifest: plan.manifest.clone(),
        classes: plan.negotiate(&[]),
    };
    let mut bytes = frame.encode();
    // Forge the manifest's inner length field (u32 at offset 17 after
    // kind+len+generation+epoch) to a multi-gigabyte claim, then
    // re-seal the frame CRC so only the forged count is under test.
    bytes[17..21].copy_from_slice(&u32::MAX.to_le_bytes());
    let crc_at = bytes.len() - 4;
    let crc = crc32(&bytes[..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
    match Frame::decode(&bytes) {
        Err(FrameError::Oversized { declared, .. }) => {
            assert_eq!(declared, u64::from(u32::MAX));
        }
        other => panic!("forged manifest length produced {other:?}"),
    }
}

#[test]
fn resume_negotiation_round_trips_through_the_journal() {
    let plan = plan();
    // A client that delivered a partial prefix of every class.
    let delivered: Vec<u32> = plan
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| (i as u32) % (c.units.len() as u32 + 1))
        .collect();
    let report = ClientReport {
        delivered: delivered.clone(),
        units: plan.classes.iter().map(|c| c.units.len() as u32).collect(),
        epochs: plan.classes.iter().map(|c| c.epoch).collect(),
        manifest_epoch: plan.manifest_epoch,
        manifest_crc: crc32(&plan.manifest),
        ..ClientReport::default()
    };
    // Persist to an NSJR journal, reload, and offer the watermarks.
    let journal_bytes = journal_from_report(&report).encode();
    let entries = resume_entries_from_journal(&journal_bytes);
    let adverts = plan.negotiate(&entries);
    for (i, advert) in adverts.iter().enumerate() {
        assert_eq!(
            advert.start, delivered[i],
            "class {i}: journal watermark must survive negotiation"
        );
        assert_eq!(advert.epoch, plan.classes[i].epoch);
    }
    // The journal pinned the manifest the client saw.
    let manifest = UnitManifest::decode(&plan.manifest).expect("NSUM decodes");
    assert_eq!(manifest.epoch, plan.manifest_epoch);
}

#[test]
fn stale_epochs_restart_from_zero() {
    let plan = plan();
    let entries: Vec<ResumeEntry> = plan
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| ResumeEntry {
            class: i as u32,
            epoch: c.epoch.wrapping_add(1), // recorded under another layout
            delivered: 1,
        })
        .collect();
    for advert in plan.negotiate(&entries) {
        assert_eq!(advert.start, 0, "stale watermarks must not survive");
    }
    // Out-of-range watermarks are clamped out too.
    let over: Vec<ResumeEntry> = plan
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| ResumeEntry {
            class: i as u32,
            epoch: c.epoch,
            delivered: c.units.len() as u32 + 7,
        })
        .collect();
    for advert in plan.negotiate(&over) {
        assert_eq!(advert.start, 0, "impossible watermarks must not survive");
    }
}

#[test]
fn resume_edges_get_typed_verdicts_on_real_content() {
    use nonstrict_wire::ResumeVerdict;
    let plan = plan();
    let class0_units = plan.classes[0].units.len() as u32;
    let class0_epoch = plan.classes[0].epoch;

    // Watermark exactly at the total: honored, advert starts at the
    // end, nothing left to stream for that class (the server proceeds
    // straight to its Bye for a fully-delivered plan).
    let full = vec![ResumeEntry {
        class: 0,
        epoch: class0_epoch,
        delivered: class0_units,
    }];
    let (adverts, verdicts) = plan.negotiate_checked(&full);
    assert_eq!(adverts[0].start, class0_units);
    assert_eq!(
        verdicts,
        vec![ResumeVerdict::Honored {
            class: 0,
            start: class0_units,
        }]
    );

    // Watermark beyond the total: a typed out-of-range reject, never a
    // panic, and the advert restarts the class from zero.
    let beyond = vec![ResumeEntry {
        class: 0,
        epoch: class0_epoch,
        delivered: class0_units + 1,
    }];
    let (adverts, verdicts) = plan.negotiate_checked(&beyond);
    assert_eq!(adverts[0].start, 0);
    assert_eq!(
        verdicts,
        vec![ResumeVerdict::OutOfRange {
            class: 0,
            delivered: class0_units + 1,
            units: class0_units,
        }]
    );

    // Stale per-class epoch: full refetch of that class — a watermark
    // recorded under another layout must never splice into this one.
    let stale = vec![ResumeEntry {
        class: 0,
        epoch: class0_epoch.wrapping_add(1),
        delivered: 1,
    }];
    let (adverts, verdicts) = plan.negotiate_checked(&stale);
    assert_eq!(adverts[0].start, 0);
    assert_eq!(
        verdicts,
        vec![ResumeVerdict::StaleEpoch {
            class: 0,
            offered: class0_epoch.wrapping_add(1),
            served: class0_epoch,
        }]
    );

    // A class id the plan never served: typed unknown-class reject.
    let unknown = vec![ResumeEntry {
        class: u32::MAX,
        epoch: 1,
        delivered: 1,
    }];
    let (_, verdicts) = plan.negotiate_checked(&unknown);
    assert_eq!(
        verdicts,
        vec![ResumeVerdict::UnknownClass { class: u32::MAX }]
    );
}

#[test]
fn orderings_produce_distinct_wire_plans_with_shared_vocabulary() {
    // The wire ordering table and the simulator agree on every code.
    for (name, code) in nonstrict_wire::config::ORDERINGS {
        let source = nonstrict_core::ordering_from_wire(code)
            .unwrap_or_else(|| panic!("wire ordering {name} has no simulator source"));
        assert_eq!(nonstrict_core::ordering_to_wire(source), code);
        assert_eq!(nonstrict_wire::config::ordering_code(name).unwrap(), code);
    }
}
