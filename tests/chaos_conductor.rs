//! End-to-end properties of the chaos conductor — the composed
//! cross-layer robustness contract:
//!
//! 1. **Crash-anywhere ≡ uninterrupted, composed** — a scenario
//!    composing link faults, verified-prefix streaming, ambient
//!    outages, a replica set with a mid-run kill, and a Byzantine
//!    mirror, interrupted and resumed at **every** unit boundary,
//!    reproduces the uninterrupted run's base timeline at each one
//!    (PR 3's single-dimension guarantee extended to arbitrary
//!    compositions).
//! 2. **Global invariants on seeded compositions** — every subset of
//!    dimensions, under seeded rates, passes the invariant checker:
//!    eight-bucket ledger exactness, watermark/clock monotonicity,
//!    fail-closed on torn journals, quiet byte-identity.
//! 3. **Determinism** — equal scenarios produce equal reports, and a
//!    repro artifact replays to identical text, bit for bit.
//! 4. **Shrinking** — a seeded known-bad scenario (a real failure
//!    predicate run against the real simulator) shrinks to a minimal
//!    repro whose artifact still fails the same way when replayed.
//! 5. **Overload composition** — fleet scenarios keep per-client
//!    ledger exactness and complete under admission + shed pressure.

use nonstrict::prelude::*;
use nonstrict_core::chaos::{self, ChaosScenario, OverloadDims};
use nonstrict_netsim::Link;

mod common;
use common::chaos_seeds;

/// The downtime charged on every differential interrupt.
const DOWNTIME: u64 = 3_000_000;

fn session() -> Session {
    Session::new(nonstrict::workloads::hanoi::build()).unwrap()
}

/// The full composed storm: every single-client dimension active.
fn storm(seed: u64) -> ChaosScenario {
    let mut fc = FaultConfig::seeded(seed);
    fc.loss_pm = 15_000;
    fc.corrupt_pm = 8_000;
    fc.semantic_pm = 3_000;
    let mut oc = OutageConfig::seeded(seed ^ 0x0abe);
    oc.rate_pm = 150_000;
    oc.min_cycles = 1 << 20;
    oc.max_cycles = 1 << 23;
    let mut rc = ReplicaConfig::seeded(seed ^ 0x5eed);
    rc.replicas = 3;
    rc.kill = Some(ReplicaKill {
        replica: 1,
        at_cycle: 30_000_000,
    });
    let mut bc = ByzantineConfig::seeded(seed ^ 0xb12a);
    bc.mirrors = 1;
    ChaosScenario::new("Hanoi", Link::MODEM_28_8, OrderingSource::StaticCallGraph)
        .with_verify(VerifyMode::Stream)
        .with_faults(fc)
        .with_outages(oc)
        .with_replicas(rc)
        .with_byzantine(bc)
}

#[test]
fn crash_anywhere_equals_uninterrupted_for_the_composed_storm() {
    let session = session();
    let sc = storm(7);
    let report = chaos::crash_anywhere(&session, &sc, DOWNTIME);
    assert!(
        report.boundaries >= 10,
        "the walk must visit every unit boundary, saw {}",
        report.boundaries
    );
    assert!(
        report.passed(),
        "composed crash/resume diverged:\n{}",
        report
            .divergences
            .iter()
            .map(|d| format!("  {d}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_dimension_subsets_pass_every_global_invariant() {
    let session = session();
    for seed in 0..chaos_seeds() {
        let full = storm(seed);
        // Dimension subsets: quiet, each alone, pairs, and the storm.
        let subsets: Vec<ChaosScenario> = vec![
            ChaosScenario::new("Hanoi", Link::MODEM_28_8, OrderingSource::StaticCallGraph),
            ChaosScenario {
                outages: None,
                replicas: None,
                byzantine: None,
                verify: VerifyMode::Off,
                ..full.clone()
            },
            ChaosScenario {
                faults: None,
                replicas: None,
                byzantine: None,
                ..full.clone()
            },
            ChaosScenario {
                faults: None,
                outages: None,
                byzantine: None,
                verify: VerifyMode::Off,
                ..full.clone()
            },
            ChaosScenario {
                outages: None,
                ..full.clone()
            },
            full.clone(),
            full.clone().with_interrupt(25_000_000, DOWNTIME),
        ];
        for sc in subsets {
            let report = chaos::run_scenario(&session, &sc);
            assert!(
                report.passed(),
                "seed {seed}, scenario [{}]: {:?}",
                sc.label(),
                report.violations
            );
            assert_eq!(
                report,
                chaos::run_scenario(&session, &sc),
                "seed {seed}, scenario [{}] must replay bit for bit",
                sc.label()
            );
        }
    }
}

#[test]
fn quiet_scenarios_are_byte_identical_to_stripped_runs() {
    let session = session();
    // Armed-but-quiet in every dimension at once: all the machinery
    // described, none of it active — must match the bare config.
    let sc = ChaosScenario::new("Hanoi", Link::T1, OrderingSource::StaticCallGraph)
        .with_faults(FaultConfig::seeded(1))
        .with_outages(OutageConfig::seeded(2))
        .with_replicas(ReplicaConfig::seeded(3))
        .with_byzantine(ByzantineConfig::seeded(4))
        .with_overload(OverloadDims::seeded(5));
    assert!(sc.is_quiet());
    let report = chaos::run_scenario(&session, &sc);
    assert!(report.passed(), "{:?}", report.violations);
    let bare = session.simulate(
        Input::Test,
        &SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph),
    );
    assert_eq!(report.result, bare, "armed-but-quiet must not perturb");
}

#[test]
fn a_known_bad_scenario_shrinks_to_a_replayable_repro() {
    let session = session();
    // The "failure" predicate is a real property of the real
    // simulator: the run retried at least one unit delivery. The storm
    // trips it; the minimal repro must too, deterministically.
    let mut failing =
        |sc: &ChaosScenario| chaos::run_scenario(&session, sc).result.faults.retries >= 1;
    let seeded = storm(3).with_interrupt(20_000_000, DOWNTIME);
    assert!(failing(&seeded), "the seeded scenario must fail to start");
    let out = chaos::shrink(&seeded, &mut failing);
    assert!(out.tests_run <= chaos::SHRINK_BUDGET);
    let min = &out.scenario;
    assert!(failing(min), "the minimized scenario must still fail");
    // Shrinking dropped the dimensions irrelevant to a retry.
    assert!(
        min.outages.is_none(),
        "outages are pure downtime, not retries"
    );
    assert!(
        min.interrupt.is_none(),
        "the crash is irrelevant to retries"
    );
    assert_eq!(min.verify, VerifyMode::Off);
    // The artifact round-trips and replays to identical text.
    let artifact = min.encode();
    assert_eq!(ChaosScenario::decode(&artifact).unwrap(), *min);
    let first = chaos::replay_repro(&artifact).unwrap();
    let second = chaos::replay_repro(&artifact).unwrap();
    assert_eq!(first, second, "a repro artifact must replay bit for bit");
    assert!(
        first.contains("chaos replay"),
        "report names itself: {first}"
    );
}

#[test]
fn committed_repro_corpus_replays_bit_for_bit_and_passes() {
    let corpus = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut artifacts: Vec<_> = std::fs::read_dir(&corpus)
        .expect("the committed corpus directory exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "nscr"))
        .collect();
    artifacts.sort();
    assert!(
        artifacts.len() >= 4,
        "the corpus must keep its seed artifacts, found {artifacts:?}"
    );
    for path in artifacts {
        let text = std::fs::read_to_string(&path).unwrap();
        let sc = ChaosScenario::decode(&text)
            .unwrap_or_else(|e| panic!("{} must decode: {e}", path.display()));
        let first = chaos::replay_repro(&text).unwrap();
        assert_eq!(
            first,
            chaos::replay_repro(&text).unwrap(),
            "{} must replay bit for bit",
            path.display()
        );
        assert!(
            first.contains("invariants: PASS"),
            "{} [{}] must pass every invariant:\n{first}",
            path.display(),
            sc.label()
        );
    }
}

#[test]
fn disk_dimension_composes_with_interrupts_and_round_trips() {
    use nonstrict_core::DiskDims;
    let session = session();
    // Armed but quiet: a seeded disk with zero rates must not perturb.
    let quiet = ChaosScenario::new("Hanoi", Link::T1, OrderingSource::StaticCallGraph)
        .with_disk(DiskDims::seeded(11));
    assert!(quiet.is_quiet(), "zero-rate disk dims are quiet");

    // Active storage faults composed with link faults and a mid-run
    // interrupt: the checkpoint journal crosses the faulty store, and
    // whatever the store does to it — intact, torn, lost — the resumed
    // run must converge or fail closed, never diverge.
    let mut dd = DiskDims::seeded(11);
    dd.torn_pm = 400_000;
    dd.lie_pm = 150_000;
    dd.bitrot_pm = 120_000;
    let mut fc = FaultConfig::seeded(4);
    fc.loss_pm = 10_000;
    let sc = ChaosScenario::new("Hanoi", Link::MODEM_28_8, OrderingSource::StaticCallGraph)
        .with_verify(VerifyMode::Stream)
        .with_faults(fc)
        .with_disk(dd)
        .with_interrupt(25_000_000, DOWNTIME);
    assert!(sc.label().contains("disk"), "label: {}", sc.label());
    let report = chaos::run_scenario(&session, &sc);
    assert!(report.passed(), "{:?}", report.violations);
    assert_eq!(
        report,
        chaos::run_scenario(&session, &sc),
        "disk-faulted scenarios must replay bit for bit"
    );
    // The NSCR artifact carries the disk keys and round-trips.
    let artifact = sc.encode();
    assert!(artifact.contains("disk.torn_pm"), "{artifact}");
    assert_eq!(ChaosScenario::decode(&artifact).unwrap(), sc);
    let first = chaos::replay_repro(&artifact).unwrap();
    assert_eq!(first, chaos::replay_repro(&artifact).unwrap());

    // Without an interrupt the conductor probes a grid of journal
    // round trips under the same dims; several seeds must pass the
    // fail-closed contract.
    for seed in 0..chaos_seeds() {
        let mut probe_dims = dd;
        probe_dims.seed = seed;
        let probe = ChaosScenario::new("Hanoi", Link::T1, OrderingSource::StaticCallGraph)
            .with_disk(probe_dims);
        let report = chaos::run_scenario(&session, &probe);
        assert!(report.passed(), "seed {seed}: {:?}", report.violations);
    }
}

#[test]
fn overload_compositions_keep_per_client_exactness() {
    let session = session();
    let mut ov = OverloadDims::seeded(9);
    ov.clients = 6;
    ov.admit_rate = 2;
    ov.ladder = Some(ShedLadder::new(2_000_000, 20_000_000, 200_000_000).unwrap());
    let mut fc = FaultConfig::seeded(5);
    fc.loss_pm = 10_000;
    let sc = ChaosScenario::new("Hanoi", Link::T1, OrderingSource::StaticCallGraph)
        .with_faults(fc)
        .with_overload(ov);
    let report = chaos::run_scenario(&session, &sc);
    assert!(report.passed(), "{:?}", report.violations);
    let fd = report
        .fleet
        .expect("an overload scenario reports the fleet");
    assert_eq!(fd.clients, 6);
    assert!(fd.p99_total >= fd.p50_total);
    // Overload + interrupt is rejected at the artifact boundary.
    let conflict = sc.clone().with_interrupt(1, 1).encode();
    assert!(matches!(
        ChaosScenario::decode(&conflict),
        Err(nonstrict_core::chaos::ScenarioError::Conflict(_))
    ));
    // Deterministic fleet replay.
    assert_eq!(report, chaos::run_scenario(&session, &sc));
}
