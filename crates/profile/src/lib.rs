//! # nonstrict-profile
//!
//! Execution traces and first-use profiling — the measurement half of the
//! BIT analog (Lee & Zorn's bytecode instrumentation tool, which the
//! paper uses to "generate our first-use profiles, to perform the
//! reordering, and to simulate the execution of the restructured class
//! files", §6).
//!
//! * [`trace::ExecutionTrace`] — a compact segment trace of one program
//!   run: `(enter | run | exit)*`, replayable by the transfer
//!   co-simulator.
//! * [`first_use::FirstUseProfile`] — the order in which methods were
//!   first invoked, plus per-method executed-byte counts; drives the
//!   profile-guided reordering (§4.2) and the transfer schedules' unique-
//!   byte thresholds (§5.1).
//! * [`collector::TraceCollector`] — an [`nonstrict_bytecode::EventSink`]
//!   that records both at once.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collector;
pub mod first_use;
pub mod trace;

pub use collector::{collect, Collected, TraceCollector};
pub use first_use::FirstUseProfile;
pub use trace::{ExecutionTrace, TraceEvent};
