//! Compact segment traces of program executions.

use nonstrict_bytecode::MethodId;

/// One trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Control entered `method` (call or program start).
    Enter(MethodId),
    /// `count` consecutive instructions executed inside `method`.
    Run {
        /// The executing method.
        method: MethodId,
        /// Instructions in this segment.
        count: u64,
    },
    /// Control left `method` (return).
    Exit(MethodId),
}

/// A whole-run trace: the exact dynamic instruction stream, segmented at
/// every control transfer between methods.
///
/// Replaying a trace against a cycles-per-instruction model and a
/// transfer engine reproduces the paper's cycle-level co-simulation: the
/// `Enter` events are exactly the points where non-strict execution may
/// stall on a missing method delimiter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutionTrace {
    events: Vec<TraceEvent>,
    total_instructions: u64,
}

impl ExecutionTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        ExecutionTrace::default()
    }

    /// Appends an event, coalescing consecutive `Run`s of the same
    /// method and dropping empty runs.
    pub fn push(&mut self, event: TraceEvent) {
        if let TraceEvent::Run { method, count } = event {
            if count == 0 {
                return;
            }
            self.total_instructions += count;
            if let Some(TraceEvent::Run {
                method: lm,
                count: lc,
            }) = self.events.last_mut()
            {
                if *lm == method {
                    *lc += count;
                    return;
                }
            }
        }
        self.events.push(event);
    }

    /// The events in order.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total dynamic instruction count (Table 2's "Dynamic Instrs").
    #[must_use]
    pub fn total_instructions(&self) -> u64 {
        self.total_instructions
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Methods in first-entry order (derivable view; the profiler keeps
    /// its own copy with byte counts).
    #[must_use]
    pub fn first_entry_order(&self) -> Vec<MethodId> {
        let mut seen = std::collections::HashSet::new();
        let mut order = Vec::new();
        for e in &self.events {
            if let TraceEvent::Enter(m) = e {
                if seen.insert(*m) {
                    order.push(*m);
                }
            }
        }
        order
    }

    /// Dynamic instruction count per method, keyed by `MethodId`.
    #[must_use]
    pub fn instructions_per_method(&self) -> std::collections::HashMap<MethodId, u64> {
        let mut map = std::collections::HashMap::new();
        for e in &self.events {
            if let TraceEvent::Run { method, count } = e {
                *map.entry(*method).or_insert(0) += count;
            }
        }
        map
    }
}

impl Extend<TraceEvent> for ExecutionTrace {
    fn extend<T: IntoIterator<Item = TraceEvent>>(&mut self, iter: T) {
        for e in iter {
            self.push(e);
        }
    }
}

impl FromIterator<TraceEvent> for ExecutionTrace {
    fn from_iter<T: IntoIterator<Item = TraceEvent>>(iter: T) -> Self {
        let mut t = ExecutionTrace::new();
        t.extend(iter);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u16) -> MethodId {
        MethodId::new(0, i)
    }

    #[test]
    fn consecutive_runs_coalesce() {
        let mut t = ExecutionTrace::new();
        t.push(TraceEvent::Enter(m(0)));
        t.push(TraceEvent::Run {
            method: m(0),
            count: 3,
        });
        t.push(TraceEvent::Run {
            method: m(0),
            count: 4,
        });
        assert_eq!(t.len(), 2);
        assert_eq!(t.total_instructions(), 7);
    }

    #[test]
    fn zero_runs_dropped() {
        let mut t = ExecutionTrace::new();
        t.push(TraceEvent::Run {
            method: m(0),
            count: 0,
        });
        assert!(t.is_empty());
    }

    #[test]
    fn first_entry_order_dedupes() {
        let t: ExecutionTrace = vec![
            TraceEvent::Enter(m(0)),
            TraceEvent::Enter(m(1)),
            TraceEvent::Exit(m(1)),
            TraceEvent::Enter(m(1)),
            TraceEvent::Enter(m(2)),
        ]
        .into_iter()
        .collect();
        assert_eq!(t.first_entry_order(), vec![m(0), m(1), m(2)]);
    }

    #[test]
    fn per_method_counts() {
        let t: ExecutionTrace = vec![
            TraceEvent::Run {
                method: m(0),
                count: 5,
            },
            TraceEvent::Enter(m(1)),
            TraceEvent::Run {
                method: m(1),
                count: 2,
            },
            TraceEvent::Exit(m(1)),
            TraceEvent::Run {
                method: m(0),
                count: 5,
            },
        ]
        .into_iter()
        .collect();
        let per = t.instructions_per_method();
        assert_eq!(per[&m(0)], 10);
        assert_eq!(per[&m(1)], 2);
        assert_eq!(t.total_instructions(), 12);
    }
}
