//! First-use profiles (§4.2 of the paper).

use std::collections::HashMap;

use nonstrict_bytecode::{MethodId, Program};

/// The product of one profiling run: the order in which methods were
/// first invoked, and how many code bytes of each method actually
/// executed.
///
/// The executed-byte counts are what the profile-guided transfer schedule
/// uses as "unique bytes" thresholds: *"for the profile driven estimation
/// technique, unique bytes are accumulated using the total size of the
/// instructions executed from the procedures that a class file is
/// dependent on"* (§5.1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FirstUseProfile {
    order: Vec<MethodId>,
    rank: HashMap<MethodId, usize>,
    executed_bytes: HashMap<MethodId, u32>,
    dynamic_instructions: u64,
}

impl FirstUseProfile {
    /// Assembles a profile from raw observations.
    #[must_use]
    pub fn from_parts(
        order: Vec<MethodId>,
        executed_bytes: HashMap<MethodId, u32>,
        dynamic_instructions: u64,
    ) -> Self {
        let rank = order.iter().enumerate().map(|(i, &m)| (m, i)).collect();
        FirstUseProfile {
            order,
            rank,
            executed_bytes,
            dynamic_instructions,
        }
    }

    /// Methods in first-invocation order. The entry method is first.
    #[must_use]
    pub fn order(&self) -> &[MethodId] {
        &self.order
    }

    /// The position of `method` in the first-use order, if it executed.
    #[must_use]
    pub fn rank(&self, method: MethodId) -> Option<usize> {
        self.rank.get(&method).copied()
    }

    /// Whether `method` executed at all during the profiled run.
    #[must_use]
    pub fn executed(&self, method: MethodId) -> bool {
        self.rank.contains_key(&method)
    }

    /// Code bytes of `method` that executed at least once (0 if it never
    /// ran).
    #[must_use]
    pub fn executed_bytes(&self, method: MethodId) -> u32 {
        self.executed_bytes.get(&method).copied().unwrap_or(0)
    }

    /// Total dynamic instructions of the profiled run.
    #[must_use]
    pub fn dynamic_instructions(&self) -> u64 {
        self.dynamic_instructions
    }

    /// Number of methods that executed.
    #[must_use]
    pub fn executed_method_count(&self) -> usize {
        self.order.len()
    }

    /// Fraction (0–1) of `program`'s methods this profile covers.
    #[must_use]
    pub fn coverage(&self, program: &Program) -> f64 {
        if program.method_count() == 0 {
            return 0.0;
        }
        self.order.len() as f64 / program.method_count() as f64
    }

    /// How well this profile predicts another run's first-use order:
    /// fraction of `other`'s first-use sequence whose *relative order* is
    /// preserved here (pairs both profiles saw, ordered identically).
    /// 1.0 means perfect prediction (e.g. profiling the test input and
    /// running the test input).
    #[must_use]
    pub fn order_agreement(&self, other: &FirstUseProfile) -> f64 {
        let common: Vec<MethodId> = other
            .order
            .iter()
            .copied()
            .filter(|m| self.executed(*m))
            .collect();
        if common.len() < 2 {
            return 1.0;
        }
        let mut agree = 0u64;
        let mut total = 0u64;
        for i in 0..common.len() {
            for j in (i + 1)..common.len() {
                total += 1;
                let (a, b) = (common[i], common[j]);
                if self.rank(a) < self.rank(b) {
                    agree += 1;
                }
            }
        }
        agree as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u16) -> MethodId {
        MethodId::new(0, i)
    }

    fn profile(order: &[u16]) -> FirstUseProfile {
        let order: Vec<MethodId> = order.iter().map(|&i| m(i)).collect();
        let bytes = order.iter().map(|&id| (id, 10)).collect();
        FirstUseProfile::from_parts(order, bytes, 100)
    }

    #[test]
    fn rank_reflects_order() {
        let p = profile(&[0, 2, 1]);
        assert_eq!(p.rank(m(0)), Some(0));
        assert_eq!(p.rank(m(2)), Some(1));
        assert_eq!(p.rank(m(1)), Some(2));
        assert_eq!(p.rank(m(9)), None);
        assert!(p.executed(m(2)) && !p.executed(m(9)));
    }

    #[test]
    fn executed_bytes_default_zero() {
        let p = profile(&[0]);
        assert_eq!(p.executed_bytes(m(0)), 10);
        assert_eq!(p.executed_bytes(m(5)), 0);
    }

    #[test]
    fn identical_profiles_agree_fully() {
        let p = profile(&[0, 1, 2, 3]);
        assert_eq!(p.order_agreement(&p), 1.0);
    }

    #[test]
    fn reversed_profiles_disagree() {
        let p = profile(&[0, 1, 2, 3]);
        let q = profile(&[3, 2, 1, 0]);
        assert_eq!(p.order_agreement(&q), 0.0);
    }

    #[test]
    fn partial_overlap_scores_between() {
        let p = profile(&[0, 1, 2]);
        let q = profile(&[0, 2, 1, 7]); // 7 unknown to p, ignored
        let score = p.order_agreement(&q);
        assert!(score > 0.0 && score < 1.0, "{score}");
    }
}
