//! The instrumentation sink: runs a program once, producing its trace and
//! first-use profile together.

use std::collections::HashMap;

use nonstrict_bytecode::{Application, EventSink, Input, InterpError, Interpreter, MethodId};

use crate::first_use::FirstUseProfile;
use crate::trace::{ExecutionTrace, TraceEvent};

/// An [`EventSink`] that builds an [`ExecutionTrace`] and first-use order
/// while the interpreter runs.
#[derive(Debug, Default)]
pub struct TraceCollector {
    trace: ExecutionTrace,
    order: Vec<MethodId>,
    seen: std::collections::HashSet<MethodId>,
}

impl TraceCollector {
    /// Creates an empty collector.
    #[must_use]
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Consumes the collector, returning the trace and first-use order.
    #[must_use]
    pub fn into_parts(self) -> (ExecutionTrace, Vec<MethodId>) {
        (self.trace, self.order)
    }
}

impl EventSink for TraceCollector {
    fn method_enter(&mut self, method: MethodId) {
        if self.seen.insert(method) {
            self.order.push(method);
        }
        self.trace.push(TraceEvent::Enter(method));
    }

    fn run(&mut self, method: MethodId, count: u64) {
        self.trace.push(TraceEvent::Run { method, count });
    }

    fn method_exit(&mut self, method: MethodId) {
        self.trace.push(TraceEvent::Exit(method));
    }
}

/// Everything one instrumented run produces.
#[derive(Debug, Clone)]
pub struct Collected {
    /// The full segment trace.
    pub trace: ExecutionTrace,
    /// The first-use profile (order + executed bytes).
    pub profile: FirstUseProfile,
    /// `main`'s return value, if any.
    pub result: Option<i64>,
    /// Percent of static instructions executed (Table 2's "% Executed").
    pub executed_static_percent: f64,
    /// Values printed by the program (for workload correctness checks).
    pub output: Vec<i64>,
}

/// Runs `app` on `input` under instrumentation.
///
/// This is the crate's one-call entry point: it interprets the program
/// for real and returns the trace, the first-use profile, and the
/// run's outputs.
///
/// # Errors
///
/// Propagates interpreter faults ([`InterpError`]).
pub fn collect(app: &Application, input: Input) -> Result<Collected, InterpError> {
    let mut interp = Interpreter::new(&app.program);
    let mut sink = TraceCollector::new();
    let result = interp.run(app.args(input), &mut sink)?;
    let executed_static_percent = interp.executed_static_percent();
    let per_method_bytes = interp.executed_code_bytes();
    let output = interp.output().to_vec();
    let (trace, order) = sink.into_parts();

    let mut executed_bytes: HashMap<MethodId, u32> = HashMap::with_capacity(order.len());
    for &m in &order {
        executed_bytes.insert(m, per_method_bytes[app.program.global_index(m)]);
    }
    let profile = FirstUseProfile::from_parts(order, executed_bytes, trace.total_instructions());
    Ok(Collected {
        trace,
        profile,
        result,
        executed_static_percent,
        output,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_bytecode::builder::MethodBuilder;
    use nonstrict_bytecode::program::{ClassDef, Program};
    use nonstrict_bytecode::Cond;

    fn sample_app() -> Application {
        // main calls b then a; a loops.
        let mut a = MethodBuilder::new("a", 0);
        a.iconst(5).istore(0);
        let head = a.new_label();
        let exit = a.new_label();
        a.bind(head);
        a.iload(0).if_(Cond::Eq, exit);
        a.iinc(0, -1).goto(head);
        a.bind(exit);
        a.ret();
        let mut b = MethodBuilder::new("b", 0);
        b.ret();
        let mut main = MethodBuilder::new("main", 0);
        main.invoke(MethodId::new(0, 2)); // b first
        main.invoke(MethodId::new(0, 1)); // then a
        main.invoke(MethodId::new(0, 2)); // b again
        main.ret();
        let mut c = ClassDef::new("p/T");
        c.add_method(main.finish());
        c.add_method(a.finish());
        c.add_method(b.finish());
        let program = Program::new(vec![c], "p/T", "main").unwrap();
        Application::from_program("sample", program, 100).unwrap()
    }

    #[test]
    fn first_use_order_is_invocation_order() {
        let app = sample_app();
        let got = collect(&app, Input::Test).unwrap();
        assert_eq!(
            got.profile.order(),
            &[
                MethodId::new(0, 0),
                MethodId::new(0, 2),
                MethodId::new(0, 1)
            ]
        );
    }

    #[test]
    fn trace_totals_match_profile() {
        let app = sample_app();
        let got = collect(&app, Input::Test).unwrap();
        assert_eq!(
            got.trace.total_instructions(),
            got.profile.dynamic_instructions()
        );
        assert!(got.trace.total_instructions() > 10);
    }

    #[test]
    fn executed_bytes_positive_for_run_methods() {
        let app = sample_app();
        let got = collect(&app, Input::Test).unwrap();
        for &m in got.profile.order() {
            assert!(
                got.profile.executed_bytes(m) > 0,
                "{m} should have executed bytes"
            );
        }
    }

    #[test]
    fn collect_is_deterministic() {
        let app = sample_app();
        let a = collect(&app, Input::Test).unwrap();
        let b = collect(&app, Input::Test).unwrap();
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.profile, b.profile);
    }

    #[test]
    fn full_coverage_in_sample() {
        let app = sample_app();
        let got = collect(&app, Input::Test).unwrap();
        assert!((got.executed_static_percent - 100.0).abs() < 1e-9);
        assert_eq!(got.profile.coverage(&app.program), 1.0);
    }
}
