//! Machine-readable export of every experiment: one CSV per table plus
//! the Figure 6 series, with measured and published values side by side.
//!
//! `paper csv [dir]` (the bench crate's binary) drives this; downstream
//! plotting or regression tooling can diff the files across runs.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use nonstrict_netsim::Link;

use crate::experiment::{self, paper, Suite};
use crate::model::DataLayout;

/// Writes every table and figure as CSV into `dir` (created if needed).
///
/// Returns the paths written, in table order.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export_csv(suite: &Suite, dir: &Path) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let mut written = Vec::new();
    let mut emit = |name: &str, content: String| -> io::Result<()> {
        let path = dir.join(name);
        let mut f = fs::File::create(&path)?;
        f.write_all(content.as_bytes())?;
        written.push(path);
        Ok(())
    };

    // Table 2
    let mut t2 = String::from(
        "program,files,size_kb,dyn_test_k,dyn_train_k,static_k,executed_pct,methods,instrs_per_method\n",
    );
    for r in experiment::table2(suite) {
        t2.push_str(&format!(
            "{},{},{:.1},{:.0},{:.0},{:.1},{:.1},{},{:.1}\n",
            r.name,
            r.total_files,
            r.size_kb,
            r.dyn_test_k,
            r.dyn_train_k,
            r.static_k,
            r.executed_pct,
            r.total_methods,
            r.instrs_per_method
        ));
    }
    emit("table2.csv", t2)?;

    // Table 3
    let mut t3 = String::from(
        "program,cpi,exec_mcycles,t1_transfer_mcycles,t1_pct_transfer,modem_transfer_mcycles,modem_pct_transfer\n",
    );
    for r in experiment::table3(suite) {
        t3.push_str(&format!(
            "{},{},{:.1},{:.1},{:.1},{:.1},{:.1}\n",
            r.name,
            r.cpi,
            r.exec_mcycles,
            r.t1.transfer_mcycles,
            r.t1.pct_transfer,
            r.modem.transfer_mcycles,
            r.modem.pct_transfer
        ));
    }
    emit("table3.csv", t3)?;

    // Table 4
    let mut t4 = String::from(
        "program,link,strict_mcycles,non_strict_mcycles,non_strict_reduction_pct,partitioned_mcycles,partitioned_reduction_pct\n",
    );
    for r in experiment::table4(suite) {
        for (link, c) in [("t1", r.t1), ("modem", r.modem)] {
            t4.push_str(&format!(
                "{},{},{:.2},{:.2},{:.1},{:.2},{:.1}\n",
                r.name,
                link,
                c.strict,
                c.non_strict,
                c.non_strict_reduction,
                c.partitioned,
                c.partitioned_reduction
            ));
        }
    }
    emit("table4.csv", t4)?;

    // Tables 5/6
    for (name, link) in [("table5.csv", Link::T1), ("table6.csv", Link::MODEM_28_8)] {
        let t = experiment::parallel_table(suite, link, DataLayout::Whole);
        let mut out = String::from("program,ordering,limit,normalized_pct,paper_normalized_pct\n");
        let paper_rows = if link == Link::T1 {
            &paper::TABLE5_T1
        } else {
            &paper::TABLE6_MODEM
        };
        for row in &t.rows {
            let pi = paper::NAMES
                .iter()
                .position(|n| *n == row.name)
                .unwrap_or(0);
            for (o, ordering) in experiment::ORDERINGS.iter().enumerate() {
                for (l, limit) in ["1", "2", "4", "inf"].iter().enumerate() {
                    out.push_str(&format!(
                        "{},{},{},{:.1},{:.0}\n",
                        row.name,
                        ordering.label(),
                        limit,
                        row.cells[o][l],
                        paper_rows[pi][o][l]
                    ));
                }
            }
        }
        emit(name, out)?;
    }

    // Table 7 + Table 10 halves share a shape.
    let six_cols = |t: &experiment::InterleavedTable,
                    paper_rows: &dyn Fn(usize) -> [f64; 6]|
     -> String {
        let mut out = String::from("program,link,ordering,normalized_pct,paper_normalized_pct\n");
        for row in &t.rows {
            let pi = paper::NAMES
                .iter()
                .position(|n| *n == row.name)
                .unwrap_or(0);
            let p = paper_rows(pi);
            for (k, link) in ["t1", "modem"].iter().enumerate() {
                for (o, ordering) in experiment::ORDERINGS.iter().enumerate() {
                    out.push_str(&format!(
                        "{},{},{},{:.1},{:.0}\n",
                        row.name,
                        link,
                        ordering.label(),
                        row.cols[k * 3 + o],
                        p[k * 3 + o]
                    ));
                }
            }
        }
        out
    };
    let t7 = experiment::interleaved_table(suite, DataLayout::Whole);
    emit(
        "table7.csv",
        six_cols(&t7, &|i| {
            let r = paper::TABLE7[i];
            [r.0, r.1, r.2, r.3, r.4, r.5]
        }),
    )?;

    // Table 8
    let mut t8 = String::from(
        "program,cpool_pct,field_pct,attrib_pct,intfc_pct,utf8_pct,ints_pct,string_pct,mref_pct,fref_pct\n",
    );
    for r in experiment::table8(suite) {
        t8.push_str(&format!(
            "{},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1},{:.1}\n",
            r.name,
            r.global[0],
            r.global[1],
            r.global[2],
            r.global[3],
            r.pool[0],
            r.pool[1],
            r.pool[5],
            r.pool[8],
            r.pool[7]
        ));
    }
    emit("table8.csv", t8)?;

    // Table 9
    let mut t9 =
        String::from("program,local_kb,global_kb,needed_first_pct,in_methods_pct,unused_pct\n");
    for r in experiment::table9(suite) {
        let s = r.summary;
        t9.push_str(&format!(
            "{},{:.1},{:.1},{:.1},{:.1},{:.1}\n",
            r.name, s.local_kb, s.global_kb, s.pct_needed_first, s.pct_in_methods, s.pct_unused
        ));
    }
    emit("table9.csv", t9)?;

    // Table 10
    let (t10p, t10i) = experiment::table10(suite);
    emit(
        "table10_parallel.csv",
        six_cols(&t10p, &|i| paper::TABLE10[i].0),
    )?;
    emit(
        "table10_interleaved.csv",
        six_cols(&t10i, &|i| paper::TABLE10[i].1),
    )?;

    // Figure 6
    let series_names = [
        "parallel",
        "parallel_partitioned",
        "interleaved",
        "interleaved_partitioned",
    ];
    let f6 = experiment::fig6(suite);
    let mut fig = String::from("series,link,ordering,normalized_pct,paper_normalized_pct\n");
    for (si, series) in f6.iter().enumerate() {
        for (k, link) in ["t1", "modem"].iter().enumerate() {
            for (o, ordering) in experiment::ORDERINGS.iter().enumerate() {
                fig.push_str(&format!(
                    "{},{},{},{:.1},{:.0}\n",
                    series_names[si],
                    link,
                    ordering.label(),
                    series[k * 3 + o],
                    paper::FIG6[si][k * 3 + o]
                ));
            }
        }
    }
    emit("fig6.csv", fig)?;

    // Every accounting bucket, appended to each robustness CSV in the
    // same order (the ledger is exact: the eight buckets sum to
    // total_cycles).
    let bucket_header = ",total_cycles,exec_cycles,stall_cycles,recovery_cycles,verify_cycles,resume_cycles,hedge_cycles,queue_cycles,integrity_cycles\n";
    let bucket_cols = |total: u64, l: &crate::metrics::CycleLedger| -> String {
        format!(
            ",{},{},{},{},{},{},{},{},{}\n",
            total, l.exec, l.stall, l.recovery, l.verify, l.resume, l.hedge, l.queue, l.integrity
        )
    };

    // Fault sweep (robustness extension; no paper column — the original
    // evaluation assumes a perfect link).
    let mut fl = String::from(
        "program,link,ordering,loss_ppm,normalized_pct,recovery_share_pct,retries,drops,corrupted,degraded_classes,session_degraded,completed",
    );
    fl.push_str(bucket_header);
    for r in experiment::faults::fault_sweep(suite) {
        fl.push_str(&format!(
            "{},{},{},{},{:.1},{:.2},{},{},{},{},{},{}",
            r.name,
            r.link.name,
            r.ordering.label(),
            r.loss_pm,
            r.normalized,
            r.recovery_share,
            r.retries,
            r.drops,
            r.corrupted,
            r.degraded_classes,
            r.session_degraded,
            r.completed
        ));
        fl.push_str(&bucket_cols(r.total_cycles, &r.ledger));
    }
    emit("faults.csv", fl)?;

    // Verification sweep (robustness extension; no paper column — the
    // original evaluation assumes verification is free).
    let mut vf = String::from(
        "program,link,verify_mode,normalized_pct,verify_cycles,verify_share_pct,invocation_latency,stall_cycles",
    );
    vf.push_str(bucket_header);
    for r in experiment::verify::verify_sweep(suite) {
        vf.push_str(&format!(
            "{},{},{},{:.1},{},{:.2},{},{}",
            r.name,
            r.link.name,
            r.mode.label(),
            r.normalized,
            r.verify_cycles,
            r.verify_share,
            r.invocation_latency,
            r.stall_cycles
        ));
        vf.push_str(&bucket_cols(r.total_cycles, &r.ledger));
    }
    emit("verify.csv", vf)?;

    // Outage sweep (robustness extension; no paper column — the original
    // evaluation assumes the connection survives the whole download).
    let mut og = String::from(
        "program,link,rate_ppm,outage_cycles,normalized_pct,resume_share_pct,outages,resumes,pure_downtime",
    );
    og.push_str(bucket_header);
    for r in experiment::outage::outage_sweep(suite) {
        og.push_str(&format!(
            "{},{},{},{},{:.1},{:.2},{},{},{}",
            r.name,
            r.link.name,
            r.rate_pm,
            r.outage_cycles,
            r.normalized,
            r.resume_share,
            r.outages,
            r.resumes,
            r.pure_downtime
        ));
        og.push_str(&bucket_cols(r.total_cycles, &r.ledger));
    }
    emit("outage.csv", og)?;

    // Replica sweep (robustness extension; no paper column — the
    // original evaluation assumes a single origin server).
    let mut rp = String::from(
        "program,link,replicas,loss_ppm,normalized_pct,hedge_share_pct,hedges,hedge_wins,failovers,min_health_ppm,completed",
    );
    rp.push_str(bucket_header);
    for r in experiment::replica::replica_sweep(suite) {
        rp.push_str(&format!(
            "{},{},{},{},{:.1},{:.2},{},{},{},{},{}",
            r.name,
            r.link.name,
            r.replicas,
            r.loss_pm,
            r.normalized,
            r.hedge_share,
            r.hedges,
            r.hedge_wins,
            r.failovers,
            r.min_health_ppm,
            r.completed
        ));
        rp.push_str(&bucket_cols(r.total_cycles, &r.ledger));
    }
    emit("replica.csv", rp)?;

    // Byzantine sweep (robustness extension; no paper column — the
    // original evaluation assumes every mirror serves the published
    // bytes).
    let mut bz = String::from(
        "program,link,replicas,byzantine,mode,audit_rate_ppm,normalized_pct,integrity_share_pct,manifest_pins,digest_checks,divergent_units,undetected_units,audits,audit_mismatches,quarantines,fence_refetches,refetched_bytes,completed",
    );
    bz.push_str(bucket_header);
    for r in experiment::byzantine::byzantine_sweep(suite) {
        bz.push_str(&format!(
            "{},{},{},{},{},{},{:.1},{:.2},{},{},{},{},{},{},{},{},{},{}",
            r.name,
            r.link.name,
            r.replicas,
            r.byzantine,
            r.mode.label(),
            r.audit_rate_pm,
            r.normalized,
            r.integrity_share,
            r.manifest_pins,
            r.digest_checks,
            r.divergent_units,
            r.undetected_units,
            r.audits,
            r.audit_mismatches,
            r.quarantines,
            r.fence_refetches,
            r.refetched_bytes,
            r.completed
        ));
        bz.push_str(&bucket_cols(r.total_cycles, &r.ledger));
    }
    emit("byzantine.csv", bz)?;

    // Overload sweep (robustness extension; no paper column — the
    // original evaluation assumes one client per server).
    let mut ov = String::from(
        "clients,mix,admit_rate,rejections,served,hedge_dropped,forced_strict,shed,p50_total,p95_total,p99_total,queue_share_pct",
    );
    ov.push_str(bucket_header);
    for r in experiment::overload::overload_sweep(suite) {
        ov.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{:.2}",
            r.clients,
            r.mix,
            r.admit_rate,
            r.rejections,
            r.served,
            r.hedge_dropped,
            r.forced_strict,
            r.shed,
            r.p50_total,
            r.p95_total,
            r.p99_total,
            r.queue_share
        ));
        ov.push_str(&bucket_cols(r.total_cycles, &r.ledger));
    }
    emit("overload.csv", ov)?;

    // Chaos sweep (robustness extension; no paper column — composed
    // cross-layer scenarios under the conductor's invariant checker).
    let mut ch = String::from(
        "program,link,scenario,clients,normalized_pct,violations,outages,resumes,degraded_classes,completed",
    );
    ch.push_str(bucket_header);
    for r in experiment::chaos::chaos_sweep(suite) {
        ch.push_str(&format!(
            "{},{},{},{},{:.1},{},{},{},{},{}",
            r.name,
            r.link.name,
            r.scenario,
            r.clients,
            r.normalized,
            r.violations,
            r.outages,
            r.resumes,
            r.degraded,
            r.completed
        ));
        ch.push_str(&bucket_cols(r.total_cycles, &r.ledger));
    }
    emit("chaos.csv", ch)?;

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    #[test]
    fn export_writes_all_files_with_headers() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let dir = std::env::temp_dir().join(format!("nonstrict-export-{}", std::process::id()));
        let files = export_csv(&suite, &dir).unwrap();
        assert_eq!(files.len(), 18);
        for f in &files {
            let content = fs::read_to_string(f).unwrap();
            let mut lines = content.lines();
            let header = lines.next().unwrap();
            assert!(header.contains(','), "{f:?} header");
            assert!(lines.count() >= 1, "{f:?} must carry at least one row");
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
