//! The incremental JVM linking model (§3.1).
//!
//! Linking a Java binary performs **verification**, **preparation**, and
//! **resolution**. Strict JVMs do all of it after the whole class file
//! arrives; non-strict execution splits the work across arrival events:
//!
//! * verification steps 1–2 (class-file structure, global data) run as
//!   soon as the **global data** arrives — preparation (static-storage
//!   allocation) happens here too;
//! * step 3 runs as each **method** arrives;
//! * step 4 runs as each method first **executes**;
//! * resolution is **lazy**: a symbolic reference resolves at first use.
//!
//! The paper charges no cycles for these steps (and notes that signed or
//! fault-isolated code could skip verification entirely); this model
//! therefore enforces *ordering* — it panics in debug builds if the
//! co-simulator ever verifies out of order — and counts events so tests
//! and reports can show the incremental pipeline working.

/// Link-time state of one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassLinkState {
    /// Nothing arrived yet.
    Unloaded,
    /// Global data arrived: structure verified (steps 1–2), statics
    /// prepared.
    GlobalsVerified,
}

/// Link-time state of one method.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MethodLinkState {
    /// Step 3 ran (method bytes arrived and were checked).
    pub verified: bool,
    /// Step 4 ran and symbolic references resolved (first execution).
    pub resolved: bool,
}

/// Counters the linker accumulates over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Classes whose global data was verified (steps 1–2).
    pub classes_verified: usize,
    /// Methods verified on arrival (step 3).
    pub methods_verified: usize,
    /// Methods resolved at first execution (step 4 + lazy resolution).
    pub methods_resolved: usize,
}

/// Tracks incremental linking across a simulated run.
#[derive(Debug, Clone)]
pub struct IncrementalLinker {
    classes: Vec<ClassLinkState>,
    methods: Vec<Vec<MethodLinkState>>,
    stats: LinkStats,
}

impl IncrementalLinker {
    /// A linker for `method_counts[c]` methods per class.
    #[must_use]
    pub fn new(method_counts: &[usize]) -> Self {
        IncrementalLinker {
            classes: vec![ClassLinkState::Unloaded; method_counts.len()],
            methods: method_counts
                .iter()
                .map(|&n| vec![MethodLinkState::default(); n])
                .collect(),
            stats: LinkStats::default(),
        }
    }

    /// Global data of `class` arrived: run verification steps 1–2 and
    /// preparation. Idempotent.
    pub fn globals_arrived(&mut self, class: usize) {
        if self.classes[class] == ClassLinkState::Unloaded {
            self.classes[class] = ClassLinkState::GlobalsVerified;
            self.stats.classes_verified += 1;
        }
    }

    /// Method bytes arrived: run verification step 3. Idempotent.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the class's global data has not arrived —
    /// the transfer engines always deliver the prelude first, so this
    /// would be a simulator bug.
    pub fn method_arrived(&mut self, class: usize, method: usize) {
        debug_assert_eq!(
            self.classes[class],
            ClassLinkState::GlobalsVerified,
            "method bytes cannot precede the class prelude"
        );
        let m = &mut self.methods[class][method];
        if !m.verified {
            m.verified = true;
            self.stats.methods_verified += 1;
        }
    }

    /// Method first executed: run step 4 and resolve its references.
    /// Idempotent.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the method was never verified (executed
    /// before arrival — a gating bug in the co-simulator).
    pub fn method_executed(&mut self, class: usize, method: usize) {
        let m = &mut self.methods[class][method];
        debug_assert!(m.verified, "execution before arrival verification");
        if !m.resolved {
            m.resolved = true;
            self.stats.methods_resolved += 1;
        }
    }

    /// The accumulated counters.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// Link-time state of `class`, for checkpoint snapshots.
    #[must_use]
    pub fn class_state(&self, class: usize) -> ClassLinkState {
        self.classes[class]
    }

    /// Link-time state of `class`'s method at layout position `method`,
    /// for checkpoint snapshots.
    #[must_use]
    pub fn method_state(&self, class: usize, method: usize) -> MethodLinkState {
        self.methods[class][method]
    }

    /// Whether every executed method followed the arrival pipeline.
    #[must_use]
    pub fn consistent(&self) -> bool {
        self.methods
            .iter()
            .flatten()
            .all(|m| !m.resolved || m.verified)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_counts_each_step_once() {
        let mut l = IncrementalLinker::new(&[2, 1]);
        l.globals_arrived(0);
        l.globals_arrived(0);
        l.method_arrived(0, 1);
        l.method_arrived(0, 1);
        l.method_executed(0, 1);
        l.method_executed(0, 1);
        let s = l.stats();
        assert_eq!(s.classes_verified, 1);
        assert_eq!(s.methods_verified, 1);
        assert_eq!(s.methods_resolved, 1);
        assert!(l.consistent());
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "ordering enforced in debug builds")]
    #[should_panic(expected = "method bytes cannot precede the class prelude")]
    fn method_before_prelude_is_a_bug() {
        let mut l = IncrementalLinker::new(&[1]);
        l.method_arrived(0, 0);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "ordering enforced in debug builds")]
    #[should_panic(expected = "execution before arrival")]
    fn execute_before_arrival_is_a_bug() {
        let mut l = IncrementalLinker::new(&[1]);
        l.globals_arrived(0);
        l.method_executed(0, 0);
    }
}
