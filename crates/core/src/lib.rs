//! # nonstrict-core
//!
//! The paper's primary contribution, assembled: **non-strict execution**
//! of mobile programs with transfer/execution overlap, plus the
//! cycle-level co-simulation that evaluates it.
//!
//! * [`model`] — one configuration type ([`model::SimConfig`]) spanning
//!   the paper's whole design space: execution model (strict vs
//!   non-strict), ordering source (source order, static call graph,
//!   Train profile, Test profile), transfer policy (strict sequential,
//!   parallel with a concurrent-file limit, interleaved), and data
//!   layout (whole vs partitioned globals).
//! * [`linker`] — the incremental JVM linking model of §3.1:
//!   verification steps keyed to what has arrived, preparation at
//!   global-data arrival, lazy resolution at first execution.
//! * [`sim`] — the event-driven co-simulator: replays a real execution
//!   trace against a transfer engine, stalling at method delimiters that
//!   have not arrived ([`sim::simulate`] / [`sim::Session`]).
//! * [`journal`] — the durable session checkpoint journal: per-class
//!   delivered/verified watermarks plus a CRC'd manifest epoch, with
//!   torn-write detection and the reconnect negotiation that decides
//!   between resume, targeted invalidation, and fail-closed restart.
//! * [`manifest`] — the content-addressed unit manifest the
//!   Byzantine-tolerant transfer layer pins from the origin before any
//!   unit flows: per-unit digests bound to the restructure epoch,
//!   framed fail-closed like the journal.
//! * [`fleet`] — the multi-client fleet driver: N sessions behind one
//!   server egress pipe with token-bucket admission, deficit-round-
//!   robin fair sharing, the load-shed ladder, and the exact seventh
//!   `queue_cycles` accounting bucket.
//! * [`chaos`] — the chaos conductor: composed cross-layer fault
//!   scenarios ([`chaos::ChaosScenario`], serialized as `NSCR` repro
//!   artifacts), a crash-anywhere differential engine, a global
//!   invariant checker, and a delta-debugging scenario shrinker.
//! * [`metrics`] — normalized execution time and reduction helpers,
//!   plus the seven-bucket [`metrics::CycleLedger`] exactness check.
//! * [`jit`] — the paper's §8 extension, implemented: JIT compilation
//!   overlapped with transfer versus inline compile-at-first-use.
//! * [`experiment`] — one runner per paper table and figure
//!   (Tables 2–10, Figure 6), with the paper's published numbers for
//!   side-by-side comparison.
//! * [`report`] — paper-style text rendering of every experiment.
//! * [`export`] — CSV export of every experiment for plotting/regression.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod experiment;
pub mod export;
pub mod fleet;
pub mod jit;
pub mod journal;
pub mod linker;
pub mod manifest;
pub mod metrics;
pub mod model;
pub mod report;
pub mod serve;
pub mod sim;

pub use chaos::{
    crash_anywhere, replay_repro, run_scenario, shrink, ChaosReport, ChaosScenario, ChaosViolation,
    DifferentialReport, DiskDims, InterruptDims, OverloadDims, ScenarioError, ShrinkOutcome,
};
pub use fleet::{run_fleet, AdmissionSettings, ClientOutcome, FleetClient, FleetResult, FleetSpec};
pub use journal::{negotiate, JournalError, Negotiation, SessionJournal, SessionManifest};
pub use manifest::{
    build_manifest, content_digest_of, ManifestError, UnitManifest, MANIFEST_MAGIC,
    MANIFEST_VERSION,
};
pub use metrics::CycleLedger;
pub use model::{
    ByzantineConfig, DataLayout, ExecutionModel, FaultConfig, OrderingSource, OutageConfig,
    ReplicaConfig, ReplicaKill, SimConfig, TransferPolicy, VerifyMode,
};
pub use serve::{
    build_plan, journal_from_report, ordering_from_wire, ordering_to_wire, plan_from_session,
    resume_entries_from_journal, verify_payloads, ServeError,
};
pub use sim::{
    simulate, FaultSummary, IntegritySummary, InterruptSpec, OutageSummary, ReplicaSummary,
    RunOutcome, Session, SimResult, VERIFY_CYCLES_PER_GLOBAL_BYTE,
};
