//! Overlapping Just-In-Time **compilation** with transfer — the paper's
//! §8 future-work extension, implemented.
//!
//! > "If compilation can take place as the class files are being
//! > transferred, then the latency of transfer and compilation can
//! > overlap."
//!
//! Two JIT strategies run over the same non-strict interleaved transfer:
//!
//! * [`JitStrategy::AtFirstUse`] — the classic 1998 JIT: each method
//!   compiles *inline* at its first invocation, stalling execution for
//!   the full compile cost (after its bytes arrive).
//! * [`JitStrategy::Overlapped`] — a background compiler consumes
//!   methods in **arrival order** while the stream is still coming in;
//!   execution waits for `max(arrival, compile-finish)` instead of
//!   paying compile pauses inline; compilation demanded by execution
//!   preempts the background queue, so overlapping never loses.
//!
//! Compile cost is modelled as cycles per bytecode byte, the standard
//! first-order JIT cost model. On slow links transfer hides compilation
//! under *either* strategy (the next method's bytes are later than the
//! current pause anyway); the overlap pays off on fast links, where
//! inline pauses are exposed but a background compiler has already
//! worked through the stream — exactly the trade-off the paper predicts
//! for just-in-time versus "way ahead of time" compilation.

use nonstrict_bytecode::{Input, MethodId};
use nonstrict_netsim::{class_units, ClassUnits, InterleavedEngine, Link, TransferEngine};
use nonstrict_profile::TraceEvent;

use crate::model::OrderingSource;
use crate::sim::Session;

/// When methods get compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JitStrategy {
    /// Compile inline at first invocation (execution pays the pause).
    AtFirstUse,
    /// Compile in arrival order on a background compiler, overlapped
    /// with transfer.
    Overlapped,
}

/// JIT cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitConfig {
    /// Compilation cycles per bytecode byte. The paper's JIT
    /// contemporaries spent on the order of thousands of cycles per
    /// byte; `0` disables compilation entirely.
    pub cycles_per_code_byte: u64,
    /// The strategy under test.
    pub strategy: JitStrategy,
}

/// Outcome of a JIT co-simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JitResult {
    /// Total cycles to program completion.
    pub total_cycles: u64,
    /// Pure bytecode-execution cycles.
    pub exec_cycles: u64,
    /// Total compilation cycles spent (both strategies compile every
    /// method they touch; `Overlapped` compiles the whole stream).
    pub compile_cycles: u64,
    /// Cycles execution spent waiting (for bytes or for the compiler).
    pub stall_cycles: u64,
}

/// Simulates non-strict interleaved transfer with JIT compilation.
///
/// Restricted to interleaved transfer (arrivals are closed-form, so the
/// background-compiler timeline is too); orderings behave exactly as in
/// [`Session::simulate`].
#[must_use]
pub fn simulate_jit(
    session: &Session,
    input: Input,
    link: Link,
    ordering: OrderingSource,
    jit: &JitConfig,
) -> JitResult {
    let app = &session.app;
    let restructured = session.restructured(ordering);
    let order = session.order(ordering);
    let units = class_units(app, restructured, None, nonstrict_netsim::DELIMITER_BYTES);
    let mut engine = InterleavedEngine::new(app, restructured, &units, order, link);

    // Per-method compile cost (unscaled code bytes — compilation reads
    // the real bytecode, not the wire encoding).
    let cost = |m: MethodId| -> u64 {
        u64::from(app.program.method(m).code_size()) * jit.cycles_per_code_byte
    };

    // Background-compiler work queue: methods in arrival (= stream)
    // order with their arrival times and compile costs.
    let mut queue: Vec<(u64, usize, u64)> = Vec::with_capacity(app.program.method_count());
    if jit.strategy == JitStrategy::Overlapped {
        for &m in order.order() {
            let c = m.class.0 as usize;
            let pos = restructured.layouts[c].position_of(m.method);
            let arrival = engine.unit_ready(c, ClassUnits::method_unit(pos), 0);
            queue.push((arrival, app.program.global_index(m), cost(m)));
        }
        queue.sort_unstable_by_key(|&(arrival, _, _)| arrival);
    }
    let mut compiler = Compiler {
        free_at: 0,
        queue,
        next: 0,
        compiled: vec![false; app.program.method_count()],
        compile_cycles: 0,
    };

    // Replay the trace.
    let trace = &session.collected(input).trace;
    let cpi = app.cpi;
    let mut clock = 0u64;
    let mut stall_cycles = 0u64;
    for event in trace.events() {
        match *event {
            TraceEvent::Enter(m) => {
                let c = m.class.0 as usize;
                let pos = restructured.layouts[c].position_of(m.method);
                let arrival = engine.unit_ready(c, ClassUnits::method_unit(pos), clock);
                let g = app.program.global_index(m);
                let ready = match jit.strategy {
                    JitStrategy::Overlapped => compiler.demand(g, arrival, cost(m), clock),
                    JitStrategy::AtFirstUse => {
                        let mut ready = arrival;
                        if !compiler.compiled[g] {
                            compiler.compiled[g] = true;
                            let pause = cost(m);
                            compiler.compile_cycles += pause;
                            ready = ready.max(clock) + pause;
                        }
                        ready
                    }
                };
                if ready > clock {
                    stall_cycles += ready - clock;
                    clock = ready;
                }
            }
            TraceEvent::Run { method: _, count } => clock += count * cpi,
            TraceEvent::Exit(_) => {}
        }
    }

    JitResult {
        total_cycles: clock,
        exec_cycles: trace.total_instructions() * cpi,
        compile_cycles: compiler.compile_cycles,
        stall_cycles,
    }
}

/// The background compiler: processes arrived methods in stream order
/// during idle time; execution demands preempt the queue.
struct Compiler {
    free_at: u64,
    /// `(arrival, global method index, cost)` in arrival order.
    queue: Vec<(u64, usize, u64)>,
    next: usize,
    compiled: Vec<bool>,
    compile_cycles: u64,
}

impl Compiler {
    /// Performs background compilation that completes by `now`.
    fn advance(&mut self, now: u64) {
        while self.next < self.queue.len() {
            let (arrival, g, cost) = self.queue[self.next];
            if self.compiled[g] {
                self.next += 1;
                continue;
            }
            let start = self.free_at.max(arrival);
            if start.saturating_add(cost) <= now {
                self.free_at = start + cost;
                self.compiled[g] = true;
                self.compile_cycles += cost;
                self.next += 1;
            } else {
                break;
            }
        }
    }

    /// Execution needs method `g` now: returns the cycle it is ready,
    /// preempting the background queue if it is not compiled yet.
    fn demand(&mut self, g: usize, arrival: u64, cost: u64, now: u64) -> u64 {
        self.advance(now);
        if self.compiled[g] {
            return arrival; // compiled implies arrived
        }
        self.compiled[g] = true;
        self.compile_cycles += cost;
        let done = self.free_at.max(arrival).max(now) + cost;
        self.free_at = done;
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::SimConfig;
    use crate::model::{DataLayout, ExecutionModel, TransferPolicy};

    fn session() -> Session {
        Session::new(nonstrict_workloads::jhlzip::build()).unwrap()
    }

    #[test]
    fn zero_cost_jit_matches_the_plain_simulation() {
        let s = session();
        let jit = JitConfig {
            cycles_per_code_byte: 0,
            strategy: JitStrategy::AtFirstUse,
        };
        let r = simulate_jit(
            &s,
            Input::Test,
            Link::MODEM_28_8,
            OrderingSource::TestProfile,
            &jit,
        );
        let plain = s.simulate(
            Input::Test,
            &SimConfig {
                link: Link::MODEM_28_8,
                ordering: OrderingSource::TestProfile,
                transfer: TransferPolicy::Interleaved,
                data_layout: DataLayout::Whole,
                execution: ExecutionModel::NonStrict,
                faults: None,
                verify: crate::model::VerifyMode::Off,
                outages: None,
                replicas: None,
                byzantine: None,
            },
        );
        assert_eq!(r.total_cycles, plain.total_cycles);
        assert_eq!(r.compile_cycles, 0);
    }

    #[test]
    fn slow_links_hide_compilation_under_either_strategy() {
        // On the modem, the next method's bytes arrive later than any
        // compile pause finishes, so even inline compilation hides
        // behind transfer — overlapping matches it without ever losing.
        let s = session();
        let jit_cost = 2_000; // cycles per bytecode byte
        let run = |strategy| {
            simulate_jit(
                &s,
                Input::Test,
                Link::MODEM_28_8,
                OrderingSource::TestProfile,
                &JitConfig {
                    cycles_per_code_byte: jit_cost,
                    strategy,
                },
            )
        };
        let inline = run(JitStrategy::AtFirstUse);
        let overlapped = run(JitStrategy::Overlapped);
        assert!(overlapped.total_cycles <= inline.total_cycles);
        let zero = simulate_jit(
            &s,
            Input::Test,
            Link::MODEM_28_8,
            OrderingSource::TestProfile,
            &JitConfig {
                cycles_per_code_byte: 0,
                strategy: JitStrategy::Overlapped,
            },
        );
        let visible = overlapped.total_cycles - zero.total_cycles;
        assert!(
            visible * 10 < overlapped.compile_cycles.max(1),
            "compilation should be ~hidden on the modem: {visible} visible of {}",
            overlapped.compile_cycles
        );
    }

    #[test]
    fn fast_links_expose_inline_pauses_that_overlap_hides() {
        let s = session();
        let fast = Link::from_bandwidth(10_000_000, 500_000_000).unwrap();
        let jit = |strategy| {
            simulate_jit(
                &s,
                Input::Test,
                fast,
                OrderingSource::TestProfile,
                &JitConfig {
                    cycles_per_code_byte: 20_000,
                    strategy,
                },
            )
        };
        let inline = jit(JitStrategy::AtFirstUse);
        let overlapped = jit(JitStrategy::Overlapped);
        assert!(
            overlapped.total_cycles < inline.total_cycles,
            "background compilation must win on a fast link: {} vs {}",
            overlapped.total_cycles,
            inline.total_cycles
        );
    }

    #[test]
    fn compile_accounting_is_consistent() {
        let s = session();
        let jit = JitConfig {
            cycles_per_code_byte: 500,
            strategy: JitStrategy::AtFirstUse,
        };
        let r = simulate_jit(&s, Input::Test, Link::T1, OrderingSource::TestProfile, &jit);
        // inline JIT compiles exactly the executed methods
        let expected: u64 = s
            .test
            .profile
            .order()
            .iter()
            .map(|&m| u64::from(s.app.program.method(m).code_size()) * 500)
            .sum();
        assert_eq!(r.compile_cycles, expected);
        assert!(r.total_cycles >= r.exec_cycles + r.compile_cycles);
    }
}
