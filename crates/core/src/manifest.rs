//! The content-addressed unit manifest the Byzantine-tolerant transfer
//! layer pins before any unit flows.
//!
//! A replica set is only as trustworthy as its least honest mirror: a
//! stale or malicious mirror can serve bytes that pass the link-level
//! CRC perfectly — the CRC travels *with* the bytes, so whoever forges
//! the bytes forges the trailer too. The defense is to move the
//! fingerprints out of band: before transfer starts, the client fetches
//! this manifest **from the origin**, verifies its frame, and pins its
//! digest. Every delivered unit is then checked against its manifest
//! entry at the unit boundary, so a mirror serving wrong bytes is
//! detected one unit after it first diverges, quarantined, and failed
//! over like a dead mirror.
//!
//! The wire format is framed exactly like the NSJR session journal:
//! magic, version, content, CRC32 trailer over every preceding byte. A
//! torn write, truncation, or bit flip anywhere makes
//! [`UnitManifest::decode`] return an error — a manifest either decodes
//! exactly or not at all, and an undecodable manifest means the session
//! fails closed before transferring anything.
//!
//! Each entry is digested under the manifest's **restructure epoch**:
//! when the origin re-restructures mid-fleet, every unit digest moves
//! with the epoch, which is what lets the client's epoch fence detect a
//! mirror still serving the previous layout and refetch exactly the
//! affected units.

use nonstrict_netsim::{crc32, ClassUnits};

/// Manifest magic: identifies the frame and its byte order.
pub const MANIFEST_MAGIC: [u8; 4] = *b"NSUM";

/// Current manifest wire-format version.
pub const MANIFEST_VERSION: u16 = 1;

/// Why a manifest frame could not be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManifestError {
    /// The buffer does not start with [`MANIFEST_MAGIC`].
    BadMagic,
    /// The version field is newer than this reader understands.
    BadVersion(u16),
    /// The buffer ended before the declared content did (torn write).
    Truncated,
    /// The CRC32 trailer does not match the content.
    CrcMismatch,
    /// Structurally impossible content.
    Malformed(&'static str),
    /// A declared count exceeds its sanity cap. Rejected *before* any
    /// buffer is allocated — a forged length field (the CRC is not a
    /// MAC) must not make the decoder reserve gigabytes.
    Oversized {
        /// Which field declared the count.
        what: &'static str,
        /// The declared value.
        declared: u64,
        /// The cap it violated (see `nonstrict_wire::caps`).
        cap: u64,
    },
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::BadMagic => write!(f, "manifest magic mismatch"),
            ManifestError::BadVersion(v) => write!(f, "unsupported manifest version {v}"),
            ManifestError::Truncated => write!(f, "manifest truncated (torn write)"),
            ManifestError::CrcMismatch => write!(f, "manifest CRC mismatch"),
            ManifestError::Malformed(what) => write!(f, "malformed manifest: {what}"),
            ManifestError::Oversized {
                what,
                declared,
                cap,
            } => write!(
                f,
                "oversized manifest {what}: declared {declared}, cap {cap}"
            ),
        }
    }
}

impl std::error::Error for ManifestError {}

/// The content-addressed unit manifest: one digest per transfer unit,
/// all bound to the restructure epoch they were published under.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitManifest {
    /// Restructure-epoch id: the combined layout fingerprint
    /// ([`crate::journal::SessionManifest::epoch`]) of the restructured
    /// program this manifest describes. Re-restructuring moves the
    /// epoch, and with it every unit digest.
    pub epoch: u64,
    /// Per-class, per-unit content digests, in stream order (unit 0 is
    /// the prelude).
    pub unit_digests: Vec<Vec<u32>>,
}

impl UnitManifest {
    /// The digest of one unit under `epoch`: a fingerprint of the
    /// unit's identity and size bound to the restructure epoch. The
    /// co-simulator models content at unit-size granularity, so the
    /// size-bound digest is exactly the fingerprint the real system
    /// would compute over the unit's bytes (see
    /// `nonstrict_classfile::unit_digest` for the byte-level version).
    ///
    /// FNV-1a rather than CRC: CRC32 is affine, so an epoch bump would
    /// shift *every* unit digest by the same XOR constant, and that
    /// uniform frame difference can cancel inside the outer frame CRC
    /// of [`UnitManifest::digest`]. The non-linear mix keeps per-unit
    /// shifts independent.
    #[must_use]
    pub fn digest_of(epoch: u64, class: u32, unit: u32, size: u64) -> u32 {
        let mut buf = [0u8; 24];
        buf[..8].copy_from_slice(&epoch.to_le_bytes());
        buf[8..12].copy_from_slice(&class.to_le_bytes());
        buf[12..16].copy_from_slice(&unit.to_le_bytes());
        buf[16..24].copy_from_slice(&size.to_le_bytes());
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &buf {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        #[allow(clippy::cast_possible_truncation)]
        {
            (h ^ (h >> 32)) as u32
        }
    }

    /// Builds the manifest the origin publishes for `units` under
    /// `epoch`.
    #[must_use]
    pub fn build(units: &[ClassUnits], epoch: u64) -> UnitManifest {
        let unit_digests = units
            .iter()
            .enumerate()
            .map(|(c, u)| {
                let class = u32::try_from(c).expect("class index fits u32");
                (0..u.unit_count())
                    .map(|i| {
                        let unit = u32::try_from(i).expect("unit index fits u32");
                        let size = u.boundary(i) - if i == 0 { 0 } else { u.boundary(i - 1) };
                        Self::digest_of(epoch, class, unit, size)
                    })
                    .collect()
            })
            .collect();
        UnitManifest {
            epoch,
            unit_digests,
        }
    }

    /// Serializes the manifest: magic, version, epoch, per-class digest
    /// lists, CRC32 trailer — the same fail-closed framing as the
    /// session journal.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(usize::try_from(self.wire_bytes()).unwrap_or(64));
        buf.extend_from_slice(&MANIFEST_MAGIC);
        buf.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        let nclasses = u32::try_from(self.unit_digests.len()).expect("class count fits u32");
        buf.extend_from_slice(&nclasses.to_le_bytes());
        for class in &self.unit_digests {
            let n = u32::try_from(class.len()).expect("unit count fits u32");
            buf.extend_from_slice(&n.to_le_bytes());
            for d in class {
                buf.extend_from_slice(&d.to_le_bytes());
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Deserializes and integrity-checks a manifest frame.
    ///
    /// # Errors
    ///
    /// Any structural or integrity problem — wrong magic, unknown
    /// version, truncation, CRC mismatch, trailing garbage — is an
    /// error; a manifest either decodes exactly or not at all.
    pub fn decode(bytes: &[u8]) -> Result<UnitManifest, ManifestError> {
        if bytes.len() < MANIFEST_MAGIC.len() + 2 + 8 + 4 + 4 {
            return Err(ManifestError::Truncated);
        }
        if bytes[..4] != MANIFEST_MAGIC {
            return Err(ManifestError::BadMagic);
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("len"));
        if crc32(content) != stored {
            return Err(ManifestError::CrcMismatch);
        }
        let mut pos = 4;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ManifestError> {
            let end = pos.checked_add(n).ok_or(ManifestError::Truncated)?;
            if end > content.len() {
                return Err(ManifestError::Truncated);
            }
            let s = &content[*pos..end];
            *pos = end;
            Ok(s)
        };
        let version = u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("len"));
        if version != MANIFEST_VERSION {
            return Err(ManifestError::BadVersion(version));
        }
        let epoch = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("len"));
        // Length-prefix sanity: every declared count is checked against
        // its cap AND the bytes actually remaining before any Vec is
        // reserved — a forged count re-sealed under a fresh CRC must
        // not make the decoder allocate gigabytes.
        let checked = |pos: usize, what: &'static str, n: u32, cap: usize, each: usize| {
            if u64::from(n) > cap as u64 {
                return Err(ManifestError::Oversized {
                    what,
                    declared: u64::from(n),
                    cap: cap as u64,
                });
            }
            let n = n as usize;
            if n.checked_mul(each)
                .is_none_or(|need| need > content.len().saturating_sub(pos))
            {
                return Err(ManifestError::Truncated);
            }
            Ok(n)
        };
        let nclasses = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len"));
        let nclasses = checked(
            pos,
            "class count",
            nclasses,
            nonstrict_wire::caps::MAX_CLASSES,
            4,
        )?;
        let mut unit_digests = Vec::with_capacity(nclasses);
        for _ in 0..nclasses {
            let n = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("len"));
            let n = checked(
                pos,
                "unit count",
                n,
                nonstrict_wire::caps::MAX_UNITS_PER_CLASS,
                4,
            )?;
            let mut class = Vec::with_capacity(n);
            for _ in 0..n {
                class.push(u32::from_le_bytes(
                    take(&mut pos, 4)?.try_into().expect("len"),
                ));
            }
            unit_digests.push(class);
        }
        if pos != content.len() {
            return Err(ManifestError::Malformed("trailing bytes after content"));
        }
        Ok(UnitManifest {
            epoch,
            unit_digests,
        })
    }

    /// Exact wire size of the encoded frame, without encoding: this is
    /// what the client's initial pin (and every epoch-fence re-pin)
    /// pays on the link.
    #[must_use]
    pub fn wire_bytes(&self) -> u64 {
        let header = 4 + 2 + 8 + 4;
        let body: u64 = self
            .unit_digests
            .iter()
            .map(|c| 4 + 4 * c.len() as u64)
            .sum();
        header + body + 4
    }

    /// The pinned manifest digest: the frame's own CRC trailer, i.e.
    /// the CRC32 of every encoded byte *before* the trailer. (Hashing
    /// the whole frame including the trailer would be useless: CRC32
    /// of a message with its own CRC appended is the constant residue
    /// `0x2144_DF1C` for every message.) The client stores this in its
    /// session journal (format v3) so a reconnect can tell whether the
    /// origin's manifest moved while it was away.
    #[must_use]
    pub fn digest(&self) -> u32 {
        let frame = self.encode();
        crc32(&frame[..frame.len() - 4])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UnitManifest {
        UnitManifest {
            epoch: 0x1234_5678_9abc_def0,
            unit_digests: vec![vec![1, 2, 3], vec![], vec![0xdead_beef]],
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let m = sample();
        let bytes = m.encode();
        assert_eq!(bytes.len() as u64, m.wire_bytes());
        assert_eq!(UnitManifest::decode(&bytes).unwrap(), m);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                assert!(
                    UnitManifest::decode(&bad).is_err(),
                    "flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            assert!(
                UnitManifest::decode(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(UnitManifest::decode(&padded).is_err());
    }

    #[test]
    fn forged_counts_are_oversized_before_allocation() {
        let bytes = sample().encode();
        let reseal = |mut b: Vec<u8>, at: usize, v: u32| {
            b[at..at + 4].copy_from_slice(&v.to_le_bytes());
            let crc_at = b.len() - 4;
            let crc = crc32(&b[..crc_at]);
            b[crc_at..].copy_from_slice(&crc.to_le_bytes());
            b
        };
        // Class count sits after magic (4) + version (2) + epoch (8).
        let nclasses_at = 14;
        let huge = reseal(bytes.clone(), nclasses_at, u32::MAX);
        assert!(matches!(
            UnitManifest::decode(&huge),
            Err(ManifestError::Oversized {
                what: "class count",
                ..
            })
        ));
        // Under the cap but beyond the bytes present: truncated, still
        // before any allocation.
        let hollow = reseal(bytes.clone(), nclasses_at, 10_000);
        assert_eq!(UnitManifest::decode(&hollow), Err(ManifestError::Truncated));
        // First per-class unit count sits right after the class count.
        let forged_units = reseal(bytes, nclasses_at + 4, u32::MAX);
        assert!(matches!(
            UnitManifest::decode(&forged_units),
            Err(ManifestError::Oversized {
                what: "unit count",
                ..
            })
        ));
    }

    #[test]
    fn digests_move_with_epoch_class_unit_and_size() {
        let base = UnitManifest::digest_of(7, 1, 2, 100);
        assert_eq!(base, UnitManifest::digest_of(7, 1, 2, 100));
        assert_ne!(base, UnitManifest::digest_of(8, 1, 2, 100));
        assert_ne!(base, UnitManifest::digest_of(7, 2, 2, 100));
        assert_ne!(base, UnitManifest::digest_of(7, 1, 3, 100));
        assert_ne!(base, UnitManifest::digest_of(7, 1, 2, 101));
    }

    #[test]
    fn a_restructure_moves_every_unit_digest() {
        let units = vec![ClassUnits {
            prelude: 100,
            methods: vec![40, 60],
            trailing: 8,
        }];
        let before = UnitManifest::build(&units, 1);
        let after = UnitManifest::build(&units, 2);
        assert_eq!(before.unit_digests[0].len(), units[0].unit_count());
        for (b, a) in before.unit_digests[0].iter().zip(&after.unit_digests[0]) {
            assert_ne!(b, a, "an epoch bump must move every unit digest");
        }
        assert_ne!(before.digest(), after.digest());
    }
}
