//! The content-addressed unit manifest — simulator-side view.
//!
//! The NSUM codec itself now lives at the bottom of the stack, in
//! [`nonstrict_wire::manifest`], where both this simulator and the real
//! wire client reach the same integrity arithmetic: the wire client
//! pins the manifest from its first Welcome and verifies every
//! delivered unit's *content* digest against it, while the
//! co-simulator — which models content at unit-size granularity —
//! fingerprints units by their size under the restructure epoch. This
//! module re-exports the codec and keeps the simulator's builder:
//! [`build_manifest`] digests a [`ClassUnits`] layout with the
//! size-bound [`UnitManifest::digest_of`], exactly the fingerprint the
//! real system computes over the unit's bytes (see
//! `nonstrict_classfile::unit_digest` for the byte-level version and
//! [`nonstrict_wire::manifest::content_digest_of`] for the wire's).

use nonstrict_netsim::ClassUnits;

pub use nonstrict_wire::manifest::{
    content_digest_of, ManifestError, UnitManifest, MANIFEST_MAGIC, MANIFEST_VERSION,
};

/// Builds the manifest the simulated origin publishes for `units` under
/// `epoch`: one size-bound digest per transfer unit (unit 0 is the
/// prelude), all bound to the restructure epoch so a re-restructure
/// moves every digest.
#[must_use]
pub fn build_manifest(units: &[ClassUnits], epoch: u64) -> UnitManifest {
    let unit_digests = units
        .iter()
        .enumerate()
        .map(|(c, u)| {
            let class = u32::try_from(c).expect("class index fits u32");
            (0..u.unit_count())
                .map(|i| {
                    let unit = u32::try_from(i).expect("unit index fits u32");
                    let size = u.boundary(i) - if i == 0 { 0 } else { u.boundary(i - 1) };
                    UnitManifest::digest_of(epoch, class, unit, size)
                })
                .collect()
        })
        .collect();
    UnitManifest {
        epoch,
        unit_digests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_restructure_moves_every_unit_digest() {
        let units = vec![ClassUnits {
            prelude: 100,
            methods: vec![40, 60],
            trailing: 8,
        }];
        let before = build_manifest(&units, 1);
        let after = build_manifest(&units, 2);
        assert_eq!(before.unit_digests[0].len(), units[0].unit_count());
        for (b, a) in before.unit_digests[0].iter().zip(&after.unit_digests[0]) {
            assert_ne!(b, a, "an epoch bump must move every unit digest");
        }
        assert_ne!(before.digest(), after.digest());
    }

    #[test]
    fn built_manifests_round_trip_through_the_wire_codec() {
        let units = vec![
            ClassUnits {
                prelude: 64,
                methods: vec![16, 32, 48],
                trailing: 4,
            },
            ClassUnits {
                prelude: 128,
                methods: vec![],
                trailing: 0,
            },
        ];
        let m = build_manifest(&units, 9);
        assert_eq!(UnitManifest::decode(&m.encode()).unwrap(), m);
    }
}
