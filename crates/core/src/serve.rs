//! The bridge between the simulator's content model and the real wire.
//!
//! `nonstrict-wire` deliberately knows nothing about class files,
//! benchmarks, or journals — it streams opaque unit bytes and
//! negotiates opaque watermarks. This module supplies the content side:
//!
//! * [`build_plan`] turns a benchmark into a [`ServePlan`]: profile,
//!   order, restructure, then split every restructured class file into
//!   its **actual** non-strict transfer units
//!   (`nonstrict_classfile::stream_units` — prelude bytes first, then
//!   one delimiter-closed unit per method), with per-class epochs
//!   derived from the real unit digests and the NSUM manifest frame
//!   attached for clients to pin.
//! * [`resume_entries_from_journal`] and [`journal_from_report`]
//!   convert between the NSJR session journal and the compact
//!   watermarks the wire's Hello frame carries, so an evicted client's
//!   resume offer is exactly what its journal proves it holds.
//! * [`verify_payloads`] feeds delivered unit bytes back through the
//!   class-file [`StreamLoader`] — the same verified-prefix validation
//!   a live non-strict JVM applies — which is what the wire-level
//!   crash-anywhere differential uses to show that an interrupted,
//!   resumed session verifies identically to an uninterrupted one.

use nonstrict_bytecode::InterpError;
use nonstrict_classfile::stream::{stream_digests, stream_units};
use nonstrict_classfile::{ClassFileError, StreamLoader};
use nonstrict_netsim::crc32;
use nonstrict_wire::{ClassPlan, ResumeEntry, ServePlan};

use crate::journal::{ClassCheckpoint, SessionJournal, SessionManifest};
use crate::manifest::{content_digest_of, UnitManifest};
use crate::model::OrderingSource;
use crate::sim::Session;

/// Why a serve plan could not be built.
#[derive(Debug)]
pub enum ServeError {
    /// The benchmark name is not one of the six workloads.
    UnknownBenchmark(String),
    /// Profiling the workload failed.
    Interp(InterpError),
    /// Serializing a restructured class failed.
    ClassFile(ClassFileError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownBenchmark(name) => {
                write!(
                    f,
                    "unknown benchmark {name:?}; use bit|hanoi|javacup|jess|jhlzip|testdes"
                )
            }
            ServeError::Interp(e) => write!(f, "profiling failed: {e}"),
            ServeError::ClassFile(e) => write!(f, "class serialization failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<InterpError> for ServeError {
    fn from(e: InterpError) -> Self {
        ServeError::Interp(e)
    }
}

impl From<ClassFileError> for ServeError {
    fn from(e: ClassFileError) -> Self {
        ServeError::ClassFile(e)
    }
}

/// Maps a wire ordering code (see `nonstrict_wire::config::ORDERINGS`)
/// to the simulator's [`OrderingSource`].
#[must_use]
pub fn ordering_from_wire(code: u8) -> Option<OrderingSource> {
    match code {
        0 => Some(OrderingSource::StaticCallGraph),
        1 => Some(OrderingSource::TrainProfile),
        2 => Some(OrderingSource::TestProfile),
        3 => Some(OrderingSource::SourceOrder),
        _ => None,
    }
}

/// Maps an [`OrderingSource`] to its wire code.
#[must_use]
pub fn ordering_to_wire(source: OrderingSource) -> u8 {
    match source {
        OrderingSource::StaticCallGraph => 0,
        OrderingSource::TrainProfile => 1,
        OrderingSource::TestProfile => 2,
        OrderingSource::SourceOrder => 3,
    }
}

/// Builds the serve plan for `benchmark` under `ordering`: the complete
/// pipeline from workload to wire-ready bytes.
///
/// # Errors
///
/// [`ServeError::UnknownBenchmark`] for names outside the six
/// workloads; profiling and serialization failures otherwise.
pub fn build_plan(benchmark: &str, ordering: OrderingSource) -> Result<ServePlan, ServeError> {
    let app = nonstrict_workloads::build_by_name(benchmark)
        .ok_or_else(|| ServeError::UnknownBenchmark(benchmark.to_owned()))?;
    let session = Session::new(app)?;
    plan_from_session(&session, benchmark, ordering).map_err(ServeError::from)
}

/// [`build_plan`] for an already-profiled [`Session`] (the differential
/// tests reuse one session across many plans).
///
/// # Errors
///
/// Propagates serialization failures from the restructured classes.
pub fn plan_from_session(
    session: &Session,
    benchmark: &str,
    ordering: OrderingSource,
) -> Result<ServePlan, ClassFileError> {
    let restructured = session.restructured(ordering);
    let mut classes = Vec::with_capacity(restructured.classes.len());
    let mut class_epochs = Vec::with_capacity(restructured.classes.len());
    let mut method_counts = Vec::with_capacity(restructured.classes.len());
    for class in &restructured.classes {
        let units = stream_units(class)?;
        let digests = stream_digests(class)?;
        // Per-class layout epoch: a CRC over the real unit digests, so
        // any byte change in any unit moves the epoch and invalidates
        // resume watermarks recorded under the old layout.
        let mut digest_bytes = Vec::with_capacity(8 * digests.len());
        for d in &digests {
            digest_bytes.extend_from_slice(&d.to_le_bytes());
        }
        let epoch = crc32(&digest_bytes);
        class_epochs.push(epoch);
        method_counts.push(class.methods.len());
        classes.push(ClassPlan { epoch, units });
    }
    let manifest_epoch = SessionManifest::new(class_epochs, method_counts).epoch;
    // The wire manifest digests the units' actual bytes (not their
    // sizes, as the co-simulator's size-granular model does): the
    // client verifies every delivered unit's content against this
    // pinned table, so a mirror serving same-size wrong bytes is
    // caught at the first divergent unit.
    let unit_digests = classes
        .iter()
        .enumerate()
        .map(|(ci, class)| {
            let ci = u32::try_from(ci).expect("class index fits u32");
            class
                .units
                .iter()
                .enumerate()
                .map(|(ui, payload)| {
                    let ui = u32::try_from(ui).expect("unit index fits u32");
                    content_digest_of(manifest_epoch, ci, ui, payload)
                })
                .collect()
        })
        .collect();
    let manifest = UnitManifest {
        epoch: manifest_epoch,
        unit_digests,
    }
    .encode();
    Ok(ServePlan {
        benchmark: benchmark.to_ascii_lowercase(),
        // Fresh plans start at generation 0; the fleet supervisor
        // stamps the live generation on every restart and rollover.
        generation: 0,
        manifest_epoch,
        manifest,
        classes,
    })
}

/// Extracts the wire resume watermarks an NSJR journal proves: one
/// entry per class with a nonzero delivered count. A journal that fails
/// to decode yields no watermarks — the fail-closed reading — so the
/// session restarts fresh rather than resuming from untrusted state.
#[must_use]
pub fn resume_entries_from_journal(bytes: &[u8]) -> Vec<ResumeEntry> {
    let Ok(journal) = SessionJournal::decode(bytes) else {
        return Vec::new();
    };
    journal
        .classes
        .iter()
        .enumerate()
        .filter(|(_, cp)| cp.delivered > 0)
        .map(|(ci, cp)| ResumeEntry {
            class: u32::try_from(ci).unwrap_or(u32::MAX),
            epoch: cp.epoch,
            delivered: cp.delivered,
        })
        .collect()
}

/// Builds the NSJR journal a wire client checkpoints: per-class epochs
/// and delivered watermarks from the session report, everything else
/// pristine. Encoding this and handing it to
/// [`resume_entries_from_journal`] round-trips exactly the watermarks
/// the report held — the persistence path an evicted client uses
/// between connections.
#[must_use]
pub fn journal_from_report(report: &nonstrict_wire::ClientReport) -> SessionJournal {
    let classes = report
        .delivered
        .iter()
        .zip(&report.epochs)
        .zip(&report.units)
        .map(|((&delivered, &epoch), &units)| {
            // Unit 0 is the prelude, so a class with U units has U-1
            // methods.
            let methods = units.saturating_sub(1) as usize;
            let mut cp = ClassCheckpoint::fresh(epoch, methods);
            cp.delivered = delivered;
            cp
        })
        .collect();
    SessionJournal {
        manifest_epoch: report.manifest_epoch,
        manifest_digest: report.manifest_crc,
        next_event: 0,
        clock: 0,
        exec_cycles: 0,
        stall_cycles: 0,
        recovery_cycles: 0,
        verify_cycles: 0,
        resume_cycles: 0,
        hedge_cycles: 0,
        integrity_cycles: 0,
        stalls: 0,
        outages: 0,
        resumes: report.evictions + report.stream_faults,
        refetched_classes: 0,
        invocation_latency: None,
        session_degraded: false,
        classes,
        fetch_log: Vec::new(),
    }
}

/// Feeds delivered per-class unit payloads back through the class-file
/// [`StreamLoader`] — the verified-prefix validation a non-strict JVM
/// performs on arrival — and checks every class reassembles completely.
/// Returns the total number of methods verified.
///
/// # Errors
///
/// A description of the first class that fails validation or arrives
/// incomplete.
pub fn verify_payloads(payloads: &[Vec<Vec<u8>>]) -> Result<usize, String> {
    let mut methods = 0usize;
    for (ci, units) in payloads.iter().enumerate() {
        let mut loader = StreamLoader::new();
        for unit in units {
            loader
                .feed(unit)
                .map_err(|e| format!("class {ci}: stream validation failed: {e}"))?;
        }
        if !loader.is_complete() {
            return Err(format!(
                "class {ci}: incomplete after {} units ({} methods)",
                units.len(),
                loader.methods_received()
            ));
        }
        methods += loader.methods_received();
        loader
            .finish()
            .map_err(|e| format!("class {ci}: reassembly failed: {e}"))?;
    }
    Ok(methods)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_codes_round_trip() {
        for source in [
            OrderingSource::StaticCallGraph,
            OrderingSource::TrainProfile,
            OrderingSource::TestProfile,
            OrderingSource::SourceOrder,
        ] {
            assert_eq!(ordering_from_wire(ordering_to_wire(source)), Some(source));
        }
        assert_eq!(ordering_from_wire(99), None);
    }

    #[test]
    fn plan_serves_real_units_that_reassemble() {
        let plan = build_plan("hanoi", OrderingSource::StaticCallGraph).unwrap();
        assert!(!plan.classes.is_empty());
        assert!(plan.total_units() > plan.classes.len(), "methods stream");
        // Every class's units reassemble through the stream loader.
        let payloads: Vec<Vec<Vec<u8>>> = plan.classes.iter().map(|c| c.units.clone()).collect();
        let methods = verify_payloads(&payloads).unwrap();
        assert!(methods > 0);
        // The manifest frame decodes and matches the served layout.
        let manifest = UnitManifest::decode(&plan.manifest).unwrap();
        assert_eq!(manifest.epoch, plan.manifest_epoch);
        assert_eq!(manifest.unit_digests.len(), plan.classes.len());
    }

    #[test]
    fn unknown_benchmark_is_a_typed_error() {
        assert!(matches!(
            build_plan("fortran", OrderingSource::StaticCallGraph),
            Err(ServeError::UnknownBenchmark(_))
        ));
    }

    #[test]
    fn orderings_move_epochs_when_layouts_differ() {
        let app = nonstrict_workloads::build_by_name("hanoi").unwrap();
        let session = Session::new(app).unwrap();
        let source = plan_from_session(&session, "hanoi", OrderingSource::SourceOrder).unwrap();
        let scg = plan_from_session(&session, "hanoi", OrderingSource::StaticCallGraph).unwrap();
        // Restructuring permutes methods; any class whose order moved
        // must carry a moved epoch.
        let moved = source
            .classes
            .iter()
            .zip(&scg.classes)
            .filter(|(a, b)| a.units != b.units)
            .count();
        let epochs_moved = source
            .classes
            .iter()
            .zip(&scg.classes)
            .filter(|(a, b)| a.epoch != b.epoch)
            .count();
        assert_eq!(moved, epochs_moved);
    }

    #[test]
    fn journal_round_trips_wire_watermarks() {
        let report = nonstrict_wire::ClientReport {
            delivered: vec![3, 0, 5],
            units: vec![4, 2, 5],
            epochs: vec![0xaaaa, 0xbbbb, 0xcccc],
            manifest_epoch: 0x1234_5678,
            manifest_crc: 0x9abc_def0,
            ..Default::default()
        };
        let journal = journal_from_report(&report);
        let entries = resume_entries_from_journal(&journal.encode());
        assert_eq!(
            entries,
            vec![
                ResumeEntry {
                    class: 0,
                    epoch: 0xaaaa,
                    delivered: 3
                },
                ResumeEntry {
                    class: 2,
                    epoch: 0xcccc,
                    delivered: 5
                },
            ]
        );
        // A torn journal yields no watermarks: fail closed to fresh.
        let mut torn = journal.encode();
        torn.truncate(torn.len() / 2);
        assert!(resume_entries_from_journal(&torn).is_empty());
    }
}
