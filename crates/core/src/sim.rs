//! The co-simulator: execution replay against a transfer engine.
//!
//! A real execution trace (from the interpreter) is replayed at the
//! per-program CPI; every `Enter` event is a potential stall point where
//! the paper's non-strict JVM checks for the method's delimiter. The
//! transfer side is a fluid engine ([`nonstrict_netsim`]); both sides
//! share one cycle clock, giving exactly the paper's "overlap execution
//! with transfer" accounting, including demand fetches on misprediction
//! and transfer termination when execution finishes first.

use nonstrict_bytecode::{method_verify_cost, Application, Input, InterpError};
use nonstrict_netsim::{
    add_checksum_overhead, class_units, crc32, greedy_schedule, ClassUnits, FaultedEngine,
    InterleavedEngine, OutageSchedule, ParallelEngine, ReplicaEngine, ReplicaHealth, StrictEngine,
    TransferEngine, Weights, DELIMITER_BYTES, DIGEST_CHECK_CYCLES, MAX_REPLICAS,
};
use nonstrict_profile::{collect, Collected, TraceEvent};
use nonstrict_reorder::{
    partition_app, restructure, static_first_use, ClassLayout, ClassPartition, FirstUseOrder,
    RestructuredApp,
};

use crate::journal::{
    negotiate, ClassCheckpoint, FetchRecord, Negotiation, SessionJournal, SessionManifest,
};
use crate::linker::{ClassLinkState, IncrementalLinker, LinkStats};
use crate::manifest::build_manifest;
use crate::metrics::CycleLedger;
use crate::model::{
    DataLayout, ExecutionModel, OrderingSource, SimConfig, TransferPolicy, VerifyMode,
};

/// Per-byte cycle charge for verification steps 1–2: structural checks
/// and constant-pool cross-references over a class's global data, run
/// once when the prelude (global data) finishes arriving.
pub const VERIFY_CYCLES_PER_GLOBAL_BYTE: u64 = 2;

/// Fault-recovery summary of one run: how the resilient protocol and
/// graceful degradation behaved. All-zero (with `completed` true) on a
/// perfect link.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultSummary {
    /// Stalled cycles attributable to fault recovery (timeouts,
    /// retransmissions, backoff, reconnects, droop) rather than plain
    /// transfer wait.
    pub recovery_cycles: u64,
    /// Retransmissions the protocol performed across the transfer.
    pub retries: u64,
    /// Connection drops survived.
    pub drops: u64,
    /// Units that arrived corrupted (CRC mismatch) and were re-sent.
    pub corrupted: u64,
    /// Units that passed CRC but failed semantic validation, were
    /// quarantined, and refetched.
    pub quarantined: u64,
    /// Deliveries whose final allowed attempt was itself drawn to fail
    /// and was forced through by the retry cap. The cap converts
    /// livelock into bounded recovery, so a non-zero count means the
    /// link was bad enough that the bound did real work — worth a
    /// warning in any report.
    pub forced: u64,
    /// Classes demoted from non-strict streaming to strict demand-fetch
    /// by degradation pressure.
    pub degraded_classes: u32,
    /// Whether the whole session fell back to strict execution.
    pub session_degraded: bool,
    /// Whether execution ran to completion (always true: the retry cap
    /// bounds every delivery, so no run can livelock).
    pub completed: bool,
}

/// The outcome of one simulated remote execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Total cycles from transfer initiation to program completion
    /// (remaining transfer is terminated, as in the paper).
    pub total_cycles: u64,
    /// Pure execution cycles (dynamic instructions × CPI).
    pub exec_cycles: u64,
    /// Cycles spent stalled waiting for bytes (transfer wait only; the
    /// fault-recovery share of stalls is in
    /// [`FaultSummary::recovery_cycles`], the outage share in
    /// [`OutageSummary::resume_cycles`], and the hedging share in
    /// [`ReplicaSummary::hedge_cycles`], so `total = exec + stall +
    /// recovery + verify + resume + hedge + queue + integrity`).
    pub stall_cycles: u64,
    /// Cycles the session spent queued behind other clients at the
    /// shared server egress — DRR contention delay plus admission
    /// backoff wait — the seventh accounting bucket. Zero outside a
    /// fleet: a single client on a dedicated link never queues.
    pub queue_cycles: u64,
    /// Cycles spent verifying class-file prefixes before execution was
    /// allowed past them (zero under [`VerifyMode::Off`]).
    pub verify_cycles: u64,
    /// Invocation latency: cycles until the entry method could begin
    /// (Table 4).
    pub invocation_latency: u64,
    /// Number of stall events.
    pub stalls: u32,
    /// Incremental-linking event counts (§3.1).
    pub link_stats: LinkStats,
    /// Fault-protocol and degradation accounting.
    pub faults: FaultSummary,
    /// Outage-and-resume accounting.
    pub outage: OutageSummary,
    /// Replica-set routing, hedging, and failover accounting.
    pub replica: ReplicaSummary,
    /// Manifest-integrity and Byzantine-protection accounting.
    pub integrity: IntegritySummary,
}

/// Manifest-integrity summary of one run: the content-addressed
/// manifest pinned from the origin, per-unit digest checks, quarantines
/// of equivocating mirrors, cross-mirror audits, and epoch-fence
/// refetches. All-zero when no Byzantine protection is armed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IntegritySummary {
    /// Cycles charged to transfer integrity — manifest pinning, wasted
    /// divergent deliveries and their quarantine teardown, per-unit
    /// digest checks, cross-mirror audit arbitration, and epoch-fence
    /// re-pins — split out of stalls as the eighth accounting bucket:
    /// `total = exec + stall + recovery + verify + resume + hedge +
    /// queue + integrity`.
    pub integrity_cycles: u64,
    /// Whether the manifest layer was armed at all.
    pub armed: bool,
    /// Manifest pins performed: the initial origin pin plus every
    /// epoch-fence or reconnect re-pin.
    pub manifest_pins: u32,
    /// Per-unit digest checks performed against the pinned manifest.
    pub digest_checks: u64,
    /// Deliveries whose bytes diverged from the manifest digest.
    pub divergent_units: u64,
    /// Divergent deliveries that slipped past the inline digest check
    /// (manifest-colluding mirrors forge digests; only cross-mirror
    /// audits catch them).
    pub undetected_units: u64,
    /// Cross-mirror audits performed (a fraction of units re-fetched
    /// from a second mirror and compared byte-for-byte).
    pub audits: u64,
    /// Audits whose second copy disagreed with the first.
    pub audit_mismatches: u64,
    /// Mirrors expelled from the candidate set for serving divergent
    /// bytes.
    pub quarantines: u32,
    /// Units refetched because a stale-epoch mirror served the
    /// pre-fence layout past the restructure fence.
    pub fence_refetches: u64,
    /// Bytes refetched from honest mirrors to replace divergent
    /// deliveries (includes the back-refetch of everything a colluding
    /// mirror had served before being caught).
    pub refetched_bytes: u64,
}

/// Replica-set summary of one run: health-scored routing, hedged
/// duplicate fetches, and failover across the mirror set. All-zero
/// when replica routing is inactive (`replicas` 0).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaSummary {
    /// Stalled cycles attributable to hedging — the deadline wait
    /// before each winning duplicate plus every issue/cancel overhead
    /// — split out of stalls as the sixth accounting bucket:
    /// `total = exec + stall + recovery + verify + resume + hedge +
    /// queue + integrity`.
    pub hedge_cycles: u64,
    /// Hedged duplicate fetches issued.
    pub hedges: u64,
    /// Hedges whose duplicate arrived (verified) first.
    pub hedge_wins: u64,
    /// Serving-mirror switches at unit boundaries (failover or hedge
    /// winner switch).
    pub failovers: u64,
    /// Mirrors in the replica set (0 when routing is inactive).
    pub replicas: u32,
    /// Whether routing was ever down to a sole surviving mirror — the
    /// session fails closed to strict execution from that point.
    pub sole_survivor: bool,
    /// Per-mirror health and accounting; `health[..replicas as usize]`
    /// are the meaningful entries.
    pub health: [ReplicaHealth; MAX_REPLICAS],
}

/// Outage-and-resume summary of one run: full connection losses
/// survived, journal-backed resumes performed, and every cycle charged
/// to downtime, reconnect negotiation, or stale-class refetch. All-zero
/// when nothing interrupted the run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OutageSummary {
    /// Cycles the session spent down or resuming: outage downtime,
    /// reconnect negotiation, and the refetch/re-verify of classes a
    /// manifest-epoch change invalidated. The fifth accounting bucket:
    /// `total = exec + stall + recovery + verify + resume + hedge +
    /// queue + integrity`.
    pub resume_cycles: u64,
    /// Full connection losses the session survived.
    pub outages: u32,
    /// Journal-backed resumes performed.
    pub resumes: u32,
    /// Classes invalidated and refetched after a manifest-epoch
    /// mismatch (targeted invalidation, not a full restart).
    pub refetched_classes: u32,
    /// Whether an unreadable journal forced the fail-closed path: the
    /// cache was discarded and the session restarted under strict
    /// execution.
    pub failed_closed: bool,
}

/// Where to kill a run and how long the client stays down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptSpec {
    /// Base-timeline cycle at which the connection and client die
    /// together; the run checkpoints at the first trace-event boundary
    /// at or past it.
    pub at_cycle: u64,
    /// Cycles the client stays down before reconnecting, charged to the
    /// resume bucket on top of whatever the negotiation finds.
    pub outage_cycles: u64,
}

/// What [`Session::run_until`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// The run completed before the interrupt point. Boxed: a full
    /// [`SimResult`] dwarfs the journal-bytes variant.
    Finished(Box<SimResult>),
    /// The run was killed; the encoded [`SessionJournal`] is what
    /// survived on the client's durable storage.
    Interrupted(Vec<u8>),
}

/// Everything a replay needs besides the engine, bundled so the replay
/// signature stays readable.
#[derive(Clone, Copy)]
struct ReplayEnv<'a> {
    config: &'a SimConfig,
    layouts: &'a [ClassLayout],
    units: &'a [ClassUnits],
    exec_cycles: u64,
}

/// State carried into a resumed replay after a successful negotiation.
struct ResumeCarry {
    /// The trusted journal, with stale classes already re-stamped to
    /// the current epochs.
    journal: SessionJournal,
    /// Cycles to charge to the resume bucket up front: outage downtime
    /// plus the targeted refetch/re-verify of stale classes (and the
    /// manifest re-pin, when the origin's manifest moved while the
    /// client was away).
    extra_resume: u64,
    /// Stale classes refetched during negotiation.
    refetched: u32,
    /// Manifest re-pins the negotiation performed because the pinned
    /// digest no longer matched the origin's current manifest.
    repins: u32,
}

/// How a replay starts and stops.
enum ReplayMode {
    /// Fresh run to completion.
    Run,
    /// Fresh run, killed at the first event boundary at or past
    /// `at_cycle` (if the run lasts that long).
    RunUntil {
        at_cycle: u64,
    },
    Resume(Box<ResumeCarry>),
}

/// The replay's full mutable state, split out so an interrupt can
/// serialize it into a [`SessionJournal`] and a resume can restore it.
struct ReplayState {
    clock: u64,
    exec_done: u64,
    stall_cycles: u64,
    recovery_cycles: u64,
    verify_cycles: u64,
    resume_cycles: u64,
    hedge_cycles: u64,
    integrity_cycles: u64,
    manifest_repins: u32,
    stalls: u32,
    outages: u32,
    resumes: u32,
    refetched_classes: u32,
    invocation_latency: Option<u64>,
    globals_verified: Vec<bool>,
    methods_verified: Vec<Vec<bool>>,
    stall_events: Vec<u64>,
    demoted: Vec<bool>,
    degraded_classes: u32,
    session_degraded: bool,
    /// Which `(class, unit)` pairs have been requested from the engine
    /// at least once; only first requests drive engine state.
    requested: Vec<Vec<bool>>,
    /// First request per `(class, unit)`, in order, with its base-time
    /// instant — replaying these against a fresh engine reconstructs
    /// the server's transfer state exactly.
    fetch_log: Vec<FetchRecord>,
    next_event: usize,
}

/// Applies a config's ambient outages to a closed-form baseline result.
/// An outage freezes the client and the link together, so the base
/// timeline is undisturbed: wall time is base time plus the downtime of
/// every outage that began before it, and each crossed outage is one
/// journal-backed resume.
fn ambient_shift(
    config: &SimConfig,
    base_total: u64,
    base_latency: u64,
) -> (u64, u64, OutageSummary) {
    let Some(oc) = config.active_outages() else {
        return (base_total, base_latency, OutageSummary::default());
    };
    let mut sched = OutageSchedule::new(oc.plan());
    let shift = sched.shift_before(base_total);
    let n = sched.outages_before(base_total);
    let latency = sched.remap(base_latency);
    (
        base_total + shift,
        latency,
        OutageSummary {
            resume_cycles: shift,
            outages: n,
            resumes: n,
            refetched_classes: 0,
            failed_closed: false,
        },
    )
}

impl SimResult {
    /// Overlap efficiency: fraction of total time the CPU was executing
    /// rather than stalled (1.0 = transfer fully hidden after
    /// invocation).
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            return 1.0;
        }
        self.exec_cycles as f64 / self.total_cycles as f64
    }

    /// The run's eight-bucket [`CycleLedger`], for exactness checks:
    /// `ledger().assert_exact(total_cycles, ...)` holds for every
    /// result this crate produces, fleet or single-client.
    #[must_use]
    pub fn ledger(&self) -> CycleLedger {
        CycleLedger {
            exec: self.exec_cycles,
            stall: self.stall_cycles,
            recovery: self.faults.recovery_cycles,
            verify: self.verify_cycles,
            resume: self.outage.resume_cycles,
            hedge: self.replica.hedge_cycles,
            queue: self.queue_cycles,
            integrity: self.integrity.integrity_cycles,
        }
    }
}

/// A prepared benchmark: traces collected on both inputs, orderings and
/// partitions computed once, ready to simulate any [`SimConfig`]
/// cheaply.
///
/// ```
/// use nonstrict_core::{OrderingSource, Session, SimConfig};
/// use nonstrict_netsim::Link;
/// use nonstrict_bytecode::Input;
///
/// # fn main() -> Result<(), nonstrict_bytecode::InterpError> {
/// let session = Session::new(nonstrict_workloads::hanoi::build())?;
/// let strict = session.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
/// let ns = session.simulate(
///     Input::Test,
///     &SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
/// );
/// assert!(ns.invocation_latency < strict.invocation_latency);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    /// The application under test.
    pub app: Application,
    /// Instrumented Test-input run.
    pub test: Collected,
    /// Instrumented Train-input run.
    pub train: Collected,
    orders: [FirstUseOrder; 4],
    restructured: [RestructuredApp; 4],
    partitions: Vec<ClassPartition>,
}

fn order_slot(source: OrderingSource) -> usize {
    match source {
        OrderingSource::SourceOrder => 0,
        OrderingSource::StaticCallGraph => 1,
        OrderingSource::TrainProfile => 2,
        OrderingSource::TestProfile => 3,
    }
}

impl Session {
    /// Runs both inputs under instrumentation and precomputes orderings,
    /// layouts, and partitions.
    ///
    /// # Errors
    ///
    /// Propagates interpreter faults from the profiling runs.
    pub fn new(app: Application) -> Result<Self, InterpError> {
        let test = collect(&app, Input::Test)?;
        let train = collect(&app, Input::Train)?;
        let scg = static_first_use(&app.program);
        let source = FirstUseOrder::source_order(&app.program);
        let train_order = FirstUseOrder::from_profile(&app.program, &train.profile, &scg);
        let test_order = FirstUseOrder::from_profile(&app.program, &test.profile, &scg);
        let orders = [source, scg, train_order, test_order];
        let restructured = [
            restructure(&app, &orders[0]),
            restructure(&app, &orders[1]),
            restructure(&app, &orders[2]),
            restructure(&app, &orders[3]),
        ];
        let partitions = partition_app(&app);
        Ok(Session {
            app,
            test,
            train,
            orders,
            restructured,
            partitions,
        })
    }

    /// The first-use ordering for `source`.
    #[must_use]
    pub fn order(&self, source: OrderingSource) -> &FirstUseOrder {
        &self.orders[order_slot(source)]
    }

    /// The restructured layout for `source`.
    #[must_use]
    pub fn restructured(&self, source: OrderingSource) -> &RestructuredApp {
        &self.restructured[order_slot(source)]
    }

    /// The per-class global-data partitions.
    #[must_use]
    pub fn partitions(&self) -> &[ClassPartition] {
        &self.partitions
    }

    /// Transfer units for one configuration.
    #[must_use]
    pub fn units_for(&self, config: &SimConfig) -> Vec<ClassUnits> {
        let delim = match config.execution {
            ExecutionModel::NonStrict => DELIMITER_BYTES,
            ExecutionModel::Strict => 0,
        };
        let parts = match config.data_layout {
            DataLayout::Whole => None,
            DataLayout::Partitioned => Some(self.partitions.as_slice()),
        };
        let mut units = class_units(&self.app, self.restructured(config.ordering), parts, delim);
        if config.active_faults().is_some() {
            // The resilient protocol CRC32-stamps every non-empty unit so
            // corruption is detectable; the trailer bytes ride the wire.
            add_checksum_overhead(&mut units);
        }
        units
    }

    /// Pure execution cycles on `input`.
    #[must_use]
    pub fn exec_cycles(&self, input: Input) -> u64 {
        self.collected(input).trace.total_instructions() * self.app.cpi
    }

    /// Cycles to verify class `c`'s global data (steps 1–2).
    fn global_verify_cost(&self, c: usize) -> u64 {
        u64::from(self.app.classes[c].global_data_size()) * VERIFY_CYCLES_PER_GLOBAL_BYTE
    }

    /// Cycles to verify one method of class `c` (steps 3–4).
    fn method_verify_cost_at(&self, c: usize, m: usize) -> u64 {
        method_verify_cost(&self.app.program.classes()[c].methods[m])
    }

    /// Cycles to verify class `c` in full: global data plus every
    /// method. Charged on whole-file verification and on the full-file
    /// re-verify a degradation demotion forces.
    fn class_verify_cost(&self, c: usize) -> u64 {
        let methods: u64 = self.app.program.classes()[c]
            .methods
            .iter()
            .map(method_verify_cost)
            .sum();
        self.global_verify_cost(c) + methods
    }

    /// Cycles to verify the whole application, as the strict baseline
    /// must before running.
    fn full_verify_cost(&self) -> u64 {
        (0..self.app.classes.len())
            .map(|c| self.class_verify_cost(c))
            .sum()
    }

    /// The instrumented run for `input`.
    #[must_use]
    pub fn collected(&self, input: Input) -> &Collected {
        match input {
            Input::Test => &self.test,
            Input::Train => &self.train,
        }
    }

    /// Simulates one configuration on `input`.
    #[must_use]
    pub fn simulate(&self, input: Input, config: &SimConfig) -> SimResult {
        let units = self.units_for(config);
        let order = self.order(config.ordering);
        let layouts = &self.restructured(config.ordering).layouts;
        let exec_cycles = self.exec_cycles(input);

        if config.is_baseline() {
            // The paper's base case: one class at a time in source
            // order, execution strictly after transfer — total is the
            // exact sum (Table 3). When verification is on, every class
            // is verified in full as it loads, before execution.
            let verify_cycles = match config.verify {
                VerifyMode::Off => 0,
                VerifyMode::Stream | VerifyMode::Full => self.full_verify_cost(),
            };
            let entry_verify = match config.verify {
                VerifyMode::Off => 0,
                VerifyMode::Stream | VerifyMode::Full => {
                    self.class_verify_cost(self.app.program.entry().class.0 as usize)
                }
            };
            let class_order: Vec<usize> = (0..units.len()).collect();
            let mut engine = StrictEngine::new(config.link, &units, &class_order);
            let entry_class = self.app.program.entry().class.0 as usize;
            let perfect_finish = engine.finish_time();
            if let Some(fc) = config.active_faults() {
                // Same transfer through the faulted link: everything
                // beyond the perfect-link finish is recovery time.
                let mut faulted = FaultedEngine::new(
                    StrictEngine::new(config.link, &units, &class_order),
                    fc.plan(),
                    &units,
                    config.link,
                );
                let entry_unit = units[entry_class].unit_count() - 1;
                let base_latency = faulted.unit_ready(entry_class, entry_unit, 0) + entry_verify;
                let finish = faulted.finish_time();
                let stats = faulted.fault_stats();
                let (total_cycles, invocation_latency, outage) =
                    ambient_shift(config, finish + verify_cycles + exec_cycles, base_latency);
                return SimResult {
                    total_cycles,
                    exec_cycles,
                    stall_cycles: perfect_finish,
                    queue_cycles: 0,
                    verify_cycles,
                    invocation_latency,
                    stalls: 1,
                    link_stats: LinkStats::default(),
                    faults: FaultSummary {
                        recovery_cycles: finish - perfect_finish,
                        retries: stats.retries,
                        drops: stats.drops,
                        corrupted: stats.corrupted,
                        quarantined: stats.quarantined,
                        forced: stats.forced,
                        degraded_classes: 0,
                        session_degraded: false,
                        completed: true,
                    },
                    outage,
                    // The strict baseline downloads from the primary
                    // mirror, whose seed and link are exactly the
                    // session's — replica routing never perturbs it,
                    // and with no mirror choice there is nothing for a
                    // byzantine plan to subvert.
                    replica: ReplicaSummary::default(),
                    integrity: IntegritySummary::default(),
                };
            }
            let (total_cycles, invocation_latency, outage) = ambient_shift(
                config,
                perfect_finish + verify_cycles + exec_cycles,
                engine.class_ready(entry_class) + entry_verify,
            );
            return SimResult {
                total_cycles,
                exec_cycles,
                stall_cycles: perfect_finish,
                queue_cycles: 0,
                verify_cycles,
                invocation_latency,
                stalls: 1,
                link_stats: LinkStats::default(),
                faults: FaultSummary {
                    completed: true,
                    ..FaultSummary::default()
                },
                outage,
                replica: ReplicaSummary::default(),
                integrity: IntegritySummary::default(),
            };
        }

        let mut engine = self.build_engine(config, &units, order, layouts);
        let env = ReplayEnv {
            config,
            layouts,
            units: &units,
            exec_cycles,
        };
        match self.replay(input, &env, engine.as_mut(), ReplayMode::Run) {
            RunOutcome::Finished(r) => *r,
            RunOutcome::Interrupted(_) => unreachable!("an uninterrupted replay always finishes"),
        }
    }

    /// Builds the transfer engine for one configuration. Resume uses
    /// this too: a journal is replayed against a *fresh* engine built
    /// exactly like the one that died.
    fn build_engine(
        &self,
        config: &SimConfig,
        units: &[ClassUnits],
        order: &FirstUseOrder,
        layouts: &[ClassLayout],
    ) -> Box<dyn TransferEngine> {
        let class_order_fu: Vec<usize> = order.class_order().iter().map(|c| c.0 as usize).collect();
        let weights = match config.ordering {
            OrderingSource::TrainProfile => Weights::Profile(&self.train.profile),
            OrderingSource::TestProfile => Weights::Profile(&self.test.profile),
            _ => Weights::Static,
        };
        let mut engine: Box<dyn TransferEngine> = match config.transfer {
            TransferPolicy::Strict => {
                Box::new(StrictEngine::new(config.link, units, &class_order_fu))
            }
            TransferPolicy::Parallel { limit } => {
                let schedule = greedy_schedule(&self.app, order, units, layouts, weights);
                Box::new(ParallelEngine::new(
                    config.link,
                    units.to_vec(),
                    &schedule,
                    limit,
                ))
            }
            TransferPolicy::Interleaved => Box::new(InterleavedEngine::new(
                &self.app,
                self.restructured(config.ordering),
                units,
                order,
                config.link,
            )),
        };
        if let Some(rc) = config.active_replicas() {
            // The replica set owns fault modeling: each mirror runs the
            // session's fault/outage rates under its own sub-seed, so
            // the single-origin FaultedEngine wrapper is not stacked on
            // top. An active byzantine config arms the manifest layer
            // on top of the routing; `None` is bit-identical to an
            // unarmored replica engine.
            let plan = config.active_byzantine().map(|bc| {
                let manifest = build_manifest(units, self.manifest(config).epoch);
                bc.plan(manifest.wire_bytes())
            });
            engine = Box::new(ReplicaEngine::with_integrity(
                engine,
                &rc.profiles(config),
                rc.hedge_deadline_cycles,
                units,
                config.link,
                plan.as_ref(),
            ));
        } else if let Some(fc) = config.active_faults() {
            engine = Box::new(FaultedEngine::new(engine, fc.plan(), units, config.link));
        }
        engine
    }

    /// Replays the input's trace against `engine`, optionally starting
    /// from a restored checkpoint or stopping at an interrupt point.
    ///
    /// The replay runs entirely on the **base timeline**: an outage
    /// freezes the client and the link together, so everything that
    /// happens after a resume happens at exactly the base instants it
    /// would have without the outage. Downtime is accounted separately
    /// in the resume bucket and added to wall time at the end.
    fn replay(
        &self,
        input: Input,
        env: &ReplayEnv<'_>,
        engine: &mut dyn TransferEngine,
        mode: ReplayMode,
    ) -> RunOutcome {
        let ReplayEnv {
            config,
            layouts,
            units,
            exec_cycles,
        } = *env;
        let trace = &self.collected(input).trace;
        let mut linker = IncrementalLinker::new(
            &self
                .app
                .classes
                .iter()
                .map(|c| c.methods.len())
                .collect::<Vec<_>>(),
        );
        let cpi = self.app.cpi;
        let nclasses = units.len();

        // Verified-prefix bookkeeping: which prefixes have already paid
        // their verification charge. Steps 1–2 run once per class when
        // its global data is first needed; steps 3–4 run once per method
        // at its delimiter. Execution may not pass a gate until the
        // prefix behind it is verified, so every charge advances the
        // clock.
        let verify = config.verify;

        // Graceful degradation (fault protocol): when the combined
        // misprediction-plus-fault pressure on a class crosses the
        // threshold, the class is demoted from non-strict streaming to
        // strict demand-fetch — every later entry waits for the whole
        // class, trading overlap for stability. When a majority of
        // classes degrade, the whole session falls back to strict
        // execution.
        let degrade_threshold = config.active_faults().map_or(0, |fc| fc.degrade_threshold);

        // Failing closed from the sole surviving mirror: when a kill
        // leaves the replica set with one live mirror, every entry from
        // that base instant on executes strictly.
        let strict_from = config
            .active_replicas()
            .and_then(|rc| rc.sole_survivor_from());

        let mut st = ReplayState {
            clock: 0,
            exec_done: 0,
            stall_cycles: 0,
            recovery_cycles: 0,
            verify_cycles: 0,
            resume_cycles: 0,
            hedge_cycles: 0,
            integrity_cycles: 0,
            manifest_repins: 0,
            stalls: 0,
            outages: 0,
            resumes: 0,
            refetched_classes: 0,
            invocation_latency: None,
            globals_verified: vec![false; nclasses],
            methods_verified: self
                .app
                .program
                .classes()
                .iter()
                .map(|c| vec![false; c.methods.len()])
                .collect(),
            stall_events: vec![0; nclasses],
            demoted: vec![false; nclasses],
            degraded_classes: 0,
            session_degraded: false,
            requested: units.iter().map(|u| vec![false; u.unit_count()]).collect(),
            fetch_log: Vec::new(),
            next_event: 0,
        };

        let stop_at = match mode {
            ReplayMode::RunUntil { at_cycle } => Some(at_cycle),
            ReplayMode::Run | ReplayMode::Resume(_) => None,
        };
        if !matches!(mode, ReplayMode::Resume(_)) {
            // Manifest pinning: before any unit flows, the client
            // fetches the content-addressed unit manifest from the
            // origin, verifies its frame, and pins its digest — the
            // trust root every later digest check compares against.
            // Zero when no byzantine plan is armed; resumed runs
            // restore the pre-crash charge from the journal instead.
            let pin = self.manifest_pin_cost(config, units);
            st.clock += pin;
            st.integrity_cycles += pin;
        }
        if let ReplayMode::Resume(carry) = mode {
            let j = &carry.journal;
            st.clock = j.clock;
            st.exec_done = j.exec_cycles;
            st.stall_cycles = j.stall_cycles;
            st.recovery_cycles = j.recovery_cycles;
            st.verify_cycles = j.verify_cycles;
            st.resume_cycles = j.resume_cycles + carry.extra_resume;
            st.hedge_cycles = j.hedge_cycles;
            st.integrity_cycles = j.integrity_cycles;
            st.manifest_repins = carry.repins;
            st.stalls = j.stalls;
            st.outages = j.outages + 1;
            st.resumes = j.resumes + 1;
            st.refetched_classes = j.refetched_classes + carry.refetched;
            st.invocation_latency = j.invocation_latency;
            st.session_degraded = j.session_degraded;
            st.next_event = usize::try_from(j.next_event).unwrap_or(usize::MAX);
            for (c, cp) in j.classes.iter().enumerate() {
                st.globals_verified[c] = cp.globals_verified;
                st.methods_verified[c].copy_from_slice(&cp.methods_verified);
                st.demoted[c] = cp.demoted;
                st.stall_events[c] = cp.stall_events;
                if cp.demoted {
                    st.degraded_classes += 1;
                }
                // The linker's verdicts rebuild by replaying its
                // idempotent arrival calls from the journaled bitmaps.
                if cp.linker_globals {
                    linker.globals_arrived(c);
                    for (pos, &v) in cp.linker_verified.iter().enumerate() {
                        if v {
                            linker.method_arrived(c, pos);
                        }
                    }
                    for (pos, &r) in cp.linker_resolved.iter().enumerate() {
                        if r {
                            linker.method_executed(c, pos);
                        }
                    }
                }
            }
            // Cross-session cache consistency: the server's transfer
            // state is reconstructed by replaying the demand-request
            // log against the fresh engine. Every scheduling decision
            // an engine makes is driven by first requests, so identical
            // requests at identical base instants rebuild identical
            // state.
            for f in &j.fetch_log {
                let _ = engine.unit_ready(f.class as usize, f.unit as usize, f.at);
                st.requested[f.class as usize][f.unit as usize] = true;
            }
            st.fetch_log.clone_from(&j.fetch_log);
        }

        let events = trace.events();
        while st.next_event < events.len() {
            if let Some(at) = stop_at {
                if st.clock >= at {
                    // The connection (and client) die here; what the
                    // client persisted is the journal.
                    let journal = self.checkpoint(config, units, engine, &linker, &st);
                    return RunOutcome::Interrupted(journal.encode());
                }
            }
            match events[st.next_event] {
                TraceEvent::Enter(m) => {
                    let c = m.class.0 as usize;
                    let pos = layouts[c].position_of(m.method);
                    if !st.session_degraded && strict_from.is_some_and(|t| st.clock >= t) {
                        st.session_degraded = true;
                    }
                    // Whole-file verification cannot begin before the
                    // whole file arrived, so `VerifyMode::Full` forfeits
                    // non-strict overlap and gates on the last unit.
                    let strict_entry = config.execution == ExecutionModel::Strict
                        || st.session_degraded
                        || st.demoted[c]
                        || verify == VerifyMode::Full;
                    let unit = if strict_entry {
                        // Strict execution waits for the entire class.
                        units[c].unit_count() - 1
                    } else {
                        ClassUnits::method_unit(pos)
                    };
                    if !st.requested[c][unit] {
                        st.requested[c][unit] = true;
                        st.fetch_log.push(FetchRecord {
                            class: u32::try_from(c).expect("class index fits u32"),
                            unit: u32::try_from(unit).expect("unit index fits u32"),
                            replica: engine.serving_replica(c, unit),
                            at: st.clock,
                        });
                    }
                    let ready = engine.unit_ready(c, unit, st.clock);
                    if ready > st.clock {
                        let stall = ready - st.clock;
                        let fault_part = engine.last_fault_delay().min(stall);
                        let hedge_part = engine.last_hedge_delay().min(stall - fault_part);
                        let integrity_part = engine
                            .last_integrity_delay()
                            .min(stall - fault_part - hedge_part);
                        st.recovery_cycles += fault_part;
                        st.hedge_cycles += hedge_part;
                        st.integrity_cycles += integrity_part;
                        st.stall_cycles += stall - fault_part - hedge_part - integrity_part;
                        st.stalls += 1;
                        st.stall_events[c] += 1;
                        st.clock = ready;
                    }
                    if degrade_threshold > 0 && !st.demoted[c] {
                        let pressure = st.stall_events[c] + engine.class_fault_events(c);
                        if pressure >= u64::from(degrade_threshold) {
                            st.demoted[c] = true;
                            st.degraded_classes += 1;
                            if u64::from(st.degraded_classes) * 2 > nclasses as u64 {
                                st.session_degraded = true;
                            }
                            if verify == VerifyMode::Stream {
                                // Demotion refetches the class as one
                                // strict file; the incremental
                                // verdicts are discarded and the whole
                                // file is re-verified from scratch.
                                let cost = self.class_verify_cost(c);
                                st.verify_cycles += cost;
                                st.clock += cost;
                                st.globals_verified[c] = true;
                                for v in &mut st.methods_verified[c] {
                                    *v = true;
                                }
                            }
                        }
                    }
                    if verify != VerifyMode::Off {
                        if !st.globals_verified[c] {
                            // Steps 1–2: the class's global data just
                            // became needed; verify it before any of
                            // its methods may run.
                            st.globals_verified[c] = true;
                            let cost = self.global_verify_cost(c);
                            st.verify_cycles += cost;
                            st.clock += cost;
                        }
                        if strict_entry {
                            // The whole file is present: verify every
                            // still-unverified method before entry.
                            for mi in 0..st.methods_verified[c].len() {
                                if !st.methods_verified[c][mi] {
                                    st.methods_verified[c][mi] = true;
                                    let cost = self.method_verify_cost_at(c, mi);
                                    st.verify_cycles += cost;
                                    st.clock += cost;
                                }
                            }
                        } else {
                            let mi = m.method as usize;
                            if !st.methods_verified[c][mi] {
                                st.methods_verified[c][mi] = true;
                                // Steps 3–4 run for real: the method is
                                // re-verified against the finished
                                // program, exactly what the streaming
                                // loader does at delimiter arrival.
                                let check = self.app.program.verify_method(m);
                                debug_assert!(
                                    check.is_ok(),
                                    "streamed method failed re-verification: {check:?}"
                                );
                                let _ = check;
                                let cost = self.method_verify_cost_at(c, mi);
                                st.verify_cycles += cost;
                                st.clock += cost;
                            }
                        }
                    }
                    linker.globals_arrived(c);
                    linker.method_arrived(c, pos);
                    linker.method_executed(c, pos);
                    if st.invocation_latency.is_none() {
                        st.invocation_latency = Some(st.clock);
                    }
                }
                TraceEvent::Run { method: _, count } => {
                    st.clock += count * cpi;
                    st.exec_done += count * cpi;
                }
                TraceEvent::Exit(_) => {}
            }
            st.next_event += 1;
        }

        debug_assert!(linker.consistent());
        debug_assert_eq!(
            st.exec_done, exec_cycles,
            "the replay must execute the whole trace"
        );
        CycleLedger {
            exec: exec_cycles,
            stall: st.stall_cycles,
            recovery: st.recovery_cycles,
            verify: st.verify_cycles,
            hedge: st.hedge_cycles,
            integrity: st.integrity_cycles,
            ..CycleLedger::default()
        }
        .assert_exact(
            st.clock,
            "every base-clock advance must land in exactly one accounting bucket",
        );
        let mut invocation_latency = st.invocation_latency.unwrap_or(0);
        if let Some(oc) = config.active_outages() {
            // Ambient outages freeze the client and the link together,
            // so the base timeline is undisturbed: wall time is base
            // time plus the downtime of every outage crossed, and each
            // crossed outage is one journal-backed resume.
            let mut sched = OutageSchedule::new(oc.plan());
            st.resume_cycles += sched.shift_before(st.clock);
            let n = sched.outages_before(st.clock);
            st.outages += n;
            st.resumes += n;
            invocation_latency = sched.remap(invocation_latency);
        }
        let total_cycles = st.clock + st.resume_cycles;
        CycleLedger {
            exec: exec_cycles,
            stall: st.stall_cycles,
            recovery: st.recovery_cycles,
            verify: st.verify_cycles,
            resume: st.resume_cycles,
            hedge: st.hedge_cycles,
            queue: 0,
            integrity: st.integrity_cycles,
        }
        .assert_exact(total_cycles, "replay completion");
        let stats = engine.fault_stats();
        let rstats = engine.replica_stats();
        let istats = engine.integrity_stats();
        RunOutcome::Finished(Box::new(SimResult {
            total_cycles,
            exec_cycles,
            stall_cycles: st.stall_cycles,
            queue_cycles: 0,
            verify_cycles: st.verify_cycles,
            invocation_latency,
            stalls: st.stalls,
            link_stats: linker.stats(),
            faults: FaultSummary {
                recovery_cycles: st.recovery_cycles,
                retries: stats.retries,
                drops: stats.drops,
                corrupted: stats.corrupted,
                quarantined: stats.quarantined,
                forced: stats.forced,
                degraded_classes: st.degraded_classes,
                session_degraded: st.session_degraded,
                completed: true,
            },
            outage: OutageSummary {
                resume_cycles: st.resume_cycles,
                outages: st.outages,
                resumes: st.resumes,
                refetched_classes: st.refetched_classes,
                failed_closed: false,
            },
            replica: ReplicaSummary {
                // The bucket is what the replay actually charged; the
                // engine's counters describe the routing itself.
                hedge_cycles: st.hedge_cycles,
                hedges: rstats.hedges,
                hedge_wins: rstats.hedge_wins,
                failovers: rstats.failovers,
                replicas: rstats.replicas,
                sole_survivor: rstats.sole_survivor,
                health: rstats.health,
            },
            integrity: IntegritySummary {
                integrity_cycles: st.integrity_cycles,
                armed: istats.armed,
                // The engine counts epoch-fence re-pins; the replay
                // charges the initial origin pin, and a reconnect
                // negotiation may have re-pinned a moved manifest.
                manifest_pins: istats.manifest_pins + u32::from(istats.armed) + st.manifest_repins,
                digest_checks: istats.digest_checks,
                divergent_units: istats.divergent_units,
                undetected_units: istats.undetected_units,
                audits: istats.audits,
                audit_mismatches: istats.audit_mismatches,
                quarantines: istats.quarantines,
                fence_refetches: istats.fence_refetches,
                refetched_bytes: istats.refetched_bytes,
            },
        }))
    }

    /// Snapshots a dying replay into a durable [`SessionJournal`]:
    /// delivered watermarks probed from the engine, verification
    /// verdicts, linker state, the accounting ledger, and the
    /// demand-request log.
    fn checkpoint(
        &self,
        config: &SimConfig,
        units: &[ClassUnits],
        engine: &mut dyn TransferEngine,
        linker: &IncrementalLinker,
        st: &ReplayState,
    ) -> SessionJournal {
        let manifest = self.manifest(config);
        let classes = (0..units.len())
            .map(|c| {
                // Streams deliver strictly in order, so the first unit
                // not yet arrived is the exact watermark. The probe may
                // demand-start an idle class inside the dying engine,
                // but that engine dies with this crash — the resumed
                // engine is rebuilt from the fetch log alone.
                let mut delivered = 0u32;
                for u in 0..units[c].unit_count() {
                    if engine.unit_ready(c, u, st.clock) > st.clock {
                        break;
                    }
                    delivered = u32::try_from(u + 1).expect("unit count fits u32");
                }
                let nm = st.methods_verified[c].len();
                ClassCheckpoint {
                    epoch: manifest.class_epochs[c],
                    delivered,
                    globals_verified: st.globals_verified[c],
                    methods_verified: st.methods_verified[c].clone(),
                    linker_globals: linker.class_state(c) == ClassLinkState::GlobalsVerified,
                    linker_verified: (0..nm)
                        .map(|p| linker.method_state(c, p).verified)
                        .collect(),
                    linker_resolved: (0..nm)
                        .map(|p| linker.method_state(c, p).resolved)
                        .collect(),
                    demoted: st.demoted[c],
                    stall_events: st.stall_events[c],
                }
            })
            .collect();
        // v3: the pinned manifest digest rides in the journal so a
        // reconnect can tell whether the origin's manifest moved while
        // the client was away (zero when no byzantine plan is armed).
        let manifest_digest = if config.active_byzantine().is_some() {
            build_manifest(units, manifest.epoch).digest()
        } else {
            0
        };
        SessionJournal {
            manifest_epoch: manifest.epoch,
            manifest_digest,
            next_event: st.next_event as u64,
            clock: st.clock,
            exec_cycles: st.exec_done,
            stall_cycles: st.stall_cycles,
            recovery_cycles: st.recovery_cycles,
            verify_cycles: st.verify_cycles,
            resume_cycles: st.resume_cycles,
            hedge_cycles: st.hedge_cycles,
            integrity_cycles: st.integrity_cycles,
            stalls: st.stalls,
            outages: st.outages,
            resumes: st.resumes,
            refetched_classes: st.refetched_classes,
            invocation_latency: st.invocation_latency,
            session_degraded: st.session_degraded,
            classes,
            fetch_log: st.fetch_log.clone(),
        }
    }

    /// The server's current view of the session's transfer manifest
    /// under `config`: a CRC fingerprint of every class's restructured
    /// unit layout. Restructuring a class between sessions (different
    /// ordering, data layout, checksum overhead, …) moves exactly that
    /// class's epoch, which is what lets reconnect negotiation
    /// invalidate stale classes without touching the rest.
    #[must_use]
    pub fn manifest(&self, config: &SimConfig) -> SessionManifest {
        let units = self.units_for(config);
        let class_epochs = units
            .iter()
            .map(|u| {
                let mut buf = Vec::with_capacity(8 * u.unit_count());
                buf.extend_from_slice(&u.prelude.to_le_bytes());
                for &m in &u.methods {
                    buf.extend_from_slice(&m.to_le_bytes());
                }
                buf.extend_from_slice(&u.trailing.to_le_bytes());
                crc32(&buf)
            })
            .collect();
        let method_counts = self
            .app
            .program
            .classes()
            .iter()
            .map(|c| c.methods.len())
            .collect();
        SessionManifest::new(class_epochs, method_counts)
    }

    /// What the initial manifest pin costs under `config`: the
    /// manifest's wire transfer on the session link plus one frame
    /// verification. Zero when no byzantine plan is armed, so unarmored
    /// runs stay byte-identical.
    fn manifest_pin_cost(&self, config: &SimConfig, units: &[ClassUnits]) -> u64 {
        if config.active_byzantine().is_none() {
            return 0;
        }
        let manifest = build_manifest(units, self.manifest(config).epoch);
        config.link.cycles_for(manifest.wire_bytes()) + DIGEST_CHECK_CYCLES
    }

    /// Runs `config` on `input` but kills the session — connection and
    /// client together — at the first trace-event boundary at or past
    /// base cycle `at_cycle`, returning the encoded journal the client
    /// persisted. Completes normally if the run finishes first.
    #[must_use]
    pub fn run_until(&self, input: Input, config: &SimConfig, at_cycle: u64) -> RunOutcome {
        if config.is_baseline() {
            let r = self.simulate(input, config);
            if at_cycle >= r.total_cycles {
                return RunOutcome::Finished(Box::new(r));
            }
            // The strict baseline has no replay state to checkpoint:
            // its journal is a ledger entry, and the sequential
            // download resumes from its byte watermark with nothing
            // lost.
            let manifest = self.manifest(config);
            let classes = manifest
                .class_epochs
                .iter()
                .zip(&manifest.method_counts)
                .map(|(&e, &n)| ClassCheckpoint::fresh(e, n))
                .collect();
            let journal = SessionJournal {
                manifest_epoch: manifest.epoch,
                manifest_digest: 0,
                next_event: 0,
                clock: at_cycle,
                exec_cycles: 0,
                stall_cycles: at_cycle,
                recovery_cycles: 0,
                verify_cycles: 0,
                resume_cycles: 0,
                hedge_cycles: 0,
                integrity_cycles: 0,
                stalls: 0,
                outages: 0,
                resumes: 0,
                refetched_classes: 0,
                invocation_latency: None,
                session_degraded: false,
                classes,
                fetch_log: Vec::new(),
            };
            return RunOutcome::Interrupted(journal.encode());
        }
        let units = self.units_for(config);
        let order = self.order(config.ordering);
        let layouts = &self.restructured(config.ordering).layouts;
        let exec_cycles = self.exec_cycles(input);
        let mut engine = self.build_engine(config, &units, order, layouts);
        let env = ReplayEnv {
            config,
            layouts,
            units: &units,
            exec_cycles,
        };
        self.replay(
            input,
            &env,
            engine.as_mut(),
            ReplayMode::RunUntil { at_cycle },
        )
    }

    /// Reconnects with a stored journal after `downtime` cycles of
    /// outage and runs the session to completion.
    ///
    /// The negotiation validates the journal first: a torn or corrupt
    /// journal **fails closed** (cache discarded, strict restart); a
    /// structurally incompatible one starts fresh; otherwise classes
    /// whose manifest epoch moved are refetched and re-verified inside
    /// the resume window while every intact watermark survives. A
    /// successfully resumed run reproduces the uninterrupted run's base
    /// timeline exactly: every bucket except `resume` is identical, and
    /// `total = uninterrupted total + resume`. Invocation latency stays
    /// on the base timeline (wall latency is recoverable by adding the
    /// resume cycles that preceded it).
    #[must_use]
    pub fn resume(
        &self,
        input: Input,
        config: &SimConfig,
        journal_bytes: &[u8],
        downtime: u64,
    ) -> SimResult {
        let manifest = self.manifest(config);
        match negotiate(journal_bytes, &manifest) {
            Negotiation::Resume { journal, stale } => {
                if config.is_baseline() {
                    // The sequential download resumes from its byte
                    // watermark: nothing pre-crash is lost or redone.
                    let mut r = self.simulate(input, config);
                    let carried = journal.resume_cycles + downtime;
                    r.total_cycles += carried;
                    r.outage.resume_cycles += carried;
                    r.outage.outages += journal.outages + 1;
                    r.outage.resumes += journal.resumes + 1;
                    return r;
                }
                let units = self.units_for(config);
                let mut journal = *journal;
                let mut extra = downtime;
                for &c in &stale {
                    extra += self.refetch_cost(
                        config,
                        &units,
                        &mut journal.classes[c],
                        manifest.class_epochs[c],
                        c,
                    );
                }
                let refetched = u32::try_from(stale.len()).unwrap_or(u32::MAX);
                // Epoch fencing across the outage: if the origin
                // re-restructured while the client was away, the pinned
                // manifest digest no longer matches — re-pin the new
                // manifest inside the resume window before any further
                // digest check can be trusted.
                let mut repins = 0;
                if config.active_byzantine().is_some() {
                    let current = build_manifest(&units, manifest.epoch);
                    if journal.manifest_digest != current.digest() {
                        extra += config.link.cycles_for(current.wire_bytes()) + DIGEST_CHECK_CYCLES;
                        repins = 1;
                    }
                }
                let order = self.order(config.ordering);
                let layouts = &self.restructured(config.ordering).layouts;
                let exec_cycles = self.exec_cycles(input);
                let mut engine = self.build_engine(config, &units, order, layouts);
                let env = ReplayEnv {
                    config,
                    layouts,
                    units: &units,
                    exec_cycles,
                };
                let mode = ReplayMode::Resume(Box::new(ResumeCarry {
                    journal,
                    extra_resume: extra,
                    refetched,
                    repins,
                }));
                match self.replay(input, &env, engine.as_mut(), mode) {
                    RunOutcome::Finished(r) => *r,
                    RunOutcome::Interrupted(_) => {
                        unreachable!("a resumed run has no interrupt point")
                    }
                }
            }
            Negotiation::Fresh => self.restart_fail_closed(input, config, downtime, false),
            Negotiation::FailClosed(_) => self.restart_fail_closed(input, config, downtime, true),
        }
    }

    /// Charges the targeted invalidation of one stale class: refetch
    /// the delivered prefix through the link and re-verify every
    /// verdict the journal held, all inside the resume window. The
    /// restored state then matches the pre-crash state exactly, under
    /// the new epoch.
    fn refetch_cost(
        &self,
        config: &SimConfig,
        units: &[ClassUnits],
        cp: &mut ClassCheckpoint,
        new_epoch: u32,
        c: usize,
    ) -> u64 {
        let delivered_bytes = match cp.delivered {
            0 => 0,
            d => units[c].boundary(d as usize - 1),
        };
        let mut cost = config.link.cycles_for(delivered_bytes);
        if config.verify != VerifyMode::Off {
            if cp.globals_verified {
                cost += self.global_verify_cost(c);
            }
            for (mi, &v) in cp.methods_verified.iter().enumerate() {
                if v {
                    cost += self.method_verify_cost_at(c, mi);
                }
            }
        }
        cp.epoch = new_epoch;
        cost
    }

    /// The fail-closed restart: the cached units and journal are
    /// discarded and the session reruns under strict execution (the
    /// safe fallback), with the outage downtime charged to the resume
    /// bucket. The pre-crash wall time is unrecoverable by construction
    /// — the journal that recorded it is exactly the thing that could
    /// not be trusted — so the restarted ledger begins at zero.
    fn restart_fail_closed(
        &self,
        input: Input,
        config: &SimConfig,
        downtime: u64,
        failed_closed: bool,
    ) -> SimResult {
        let strict = SimConfig {
            verify: config.verify,
            faults: config.faults,
            ..SimConfig::strict(config.link)
        };
        let mut r = self.simulate(input, &strict);
        r.total_cycles += downtime;
        r.outage = OutageSummary {
            resume_cycles: downtime,
            outages: 1,
            resumes: 0,
            refetched_classes: 0,
            failed_closed,
        };
        r
    }

    /// One-shot interrupt-and-resume: kills the run per `spec`, then
    /// reconnects with the surviving journal bytes. The headline
    /// invariant — a run interrupted at **any** cycle resumes to
    /// identical results plus exactly the outage cost — is proven by
    /// the round trip through the encoded journal: any serialization
    /// or reconstruction bug breaks the equality.
    #[must_use]
    pub fn simulate_interrupted(
        &self,
        input: Input,
        config: &SimConfig,
        spec: &InterruptSpec,
    ) -> SimResult {
        match self.run_until(input, config, spec.at_cycle) {
            RunOutcome::Finished(r) => *r,
            RunOutcome::Interrupted(bytes) => {
                self.resume(input, config, &bytes, spec.outage_cycles)
            }
        }
    }
}

/// One-shot convenience: prepares a [`Session`] and simulates a single
/// configuration. Prefer building a [`Session`] when sweeping
/// configurations — profiling runs dominate the cost.
///
/// # Errors
///
/// Propagates interpreter faults from the profiling runs.
pub fn simulate(
    app: &Application,
    input: Input,
    config: &SimConfig,
) -> Result<SimResult, InterpError> {
    let session = Session::new(app.clone())?;
    Ok(session.simulate(input, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_netsim::Link;

    fn session() -> Session {
        Session::new(nonstrict_workloads::hanoi::build()).unwrap()
    }

    fn all_nonstrict_configs(link: Link) -> Vec<SimConfig> {
        let mut out = Vec::new();
        for ordering in [
            OrderingSource::StaticCallGraph,
            OrderingSource::TrainProfile,
            OrderingSource::TestProfile,
        ] {
            for transfer in [
                TransferPolicy::Parallel { limit: 1 },
                TransferPolicy::Parallel { limit: 4 },
                TransferPolicy::Parallel { limit: usize::MAX },
                TransferPolicy::Interleaved,
            ] {
                for data_layout in [DataLayout::Whole, DataLayout::Partitioned] {
                    out.push(SimConfig {
                        link,
                        ordering,
                        transfer,
                        data_layout,
                        execution: ExecutionModel::NonStrict,
                        faults: None,
                        verify: VerifyMode::Off,
                        outages: None,
                        replicas: None,
                        byzantine: None,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn baseline_total_is_exec_plus_transfer() {
        let s = session();
        let base = s.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
        assert_eq!(base.total_cycles, base.exec_cycles + base.stall_cycles);
        assert!(base.invocation_latency > 0);
    }

    #[test]
    fn non_strict_beats_baseline_on_modem() {
        let s = session();
        let base = s.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
        for config in all_nonstrict_configs(Link::MODEM_28_8) {
            let r = s.simulate(Input::Test, &config);
            assert!(
                r.total_cycles <= base.total_cycles,
                "{config:?} regressed: {} vs base {}",
                r.total_cycles,
                base.total_cycles
            );
        }
    }

    #[test]
    fn total_cycles_never_below_exec_or_latency_plus_exec() {
        let s = session();
        for config in all_nonstrict_configs(Link::T1) {
            let r = s.simulate(Input::Test, &config);
            assert!(r.total_cycles >= r.exec_cycles);
            assert!(r.total_cycles >= r.invocation_latency + r.exec_cycles);
            assert_eq!(r.total_cycles, r.exec_cycles + r.stall_cycles);
        }
    }

    #[test]
    fn perfect_profile_never_loses_to_train_or_scg_on_average() {
        let s = session();
        let run = |ordering| {
            let config = SimConfig {
                link: Link::MODEM_28_8,
                ordering,
                transfer: TransferPolicy::Interleaved,
                data_layout: DataLayout::Whole,
                execution: ExecutionModel::NonStrict,
                faults: None,
                verify: VerifyMode::Off,
                outages: None,
                replicas: None,
                byzantine: None,
            };
            s.simulate(Input::Test, &config).total_cycles
        };
        let test = run(OrderingSource::TestProfile);
        let scg = run(OrderingSource::StaticCallGraph);
        assert!(
            test <= scg,
            "perfect interleaved order cannot lose to SCG: {test} vs {scg}"
        );
    }

    #[test]
    fn linker_sees_every_executed_method_once() {
        let s = session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let r = s.simulate(Input::Test, &config);
        let executed = s.test.profile.executed_method_count();
        assert_eq!(r.link_stats.methods_resolved, executed);
        assert_eq!(r.link_stats.methods_verified, executed);
        assert!(r.link_stats.classes_verified <= s.app.classes.len());
    }

    #[test]
    fn invocation_latency_orders_strict_nonstrict_partitioned() {
        let s = session();
        let strict = s.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
        let ns = s.simulate(
            Input::Test,
            &SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
        );
        let mut part_cfg = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
        part_cfg.data_layout = DataLayout::Partitioned;
        let part = s.simulate(Input::Test, &part_cfg);
        assert!(ns.invocation_latency < strict.invocation_latency);
        assert!(part.invocation_latency <= ns.invocation_latency);
    }

    #[test]
    fn results_are_deterministic() {
        let s = session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::TrainProfile);
        let a = s.simulate(Input::Test, &config);
        let b = s.simulate(Input::Test, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn verify_off_charges_nothing_and_matches_legacy_results() {
        let s = session();
        for config in all_nonstrict_configs(Link::MODEM_28_8) {
            let off = s.simulate(Input::Test, &config);
            assert_eq!(off.verify_cycles, 0);
            assert_eq!(
                off,
                s.simulate(Input::Test, &config.with_verify(VerifyMode::Off))
            );
        }
    }

    #[test]
    fn verify_accounting_identity_holds_in_every_mode() {
        let s = session();
        let mut rc = crate::model::ReplicaConfig::seeded(0x5e7);
        rc.replicas = 3;
        rc.hedge_deadline_cycles = 500_000;
        let mut fc = crate::model::FaultConfig::seeded(0x5e7);
        fc.loss_pm = 50_000;
        fc.corrupt_pm = 10_000;
        for mode in [VerifyMode::Off, VerifyMode::Stream, VerifyMode::Full] {
            for base in [
                SimConfig::strict(Link::MODEM_28_8),
                SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
                SimConfig::non_strict(Link::T1, OrderingSource::TrainProfile),
                SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
                    .with_replicas(rc),
                SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
                    .with_faults(fc)
                    .with_replicas(rc),
            ] {
                let r = s.simulate(Input::Test, &base.with_verify(mode));
                assert_eq!(
                    r.total_cycles,
                    r.exec_cycles
                        + r.stall_cycles
                        + r.faults.recovery_cycles
                        + r.verify_cycles
                        + r.outage.resume_cycles
                        + r.replica.hedge_cycles,
                    "{mode:?} {base:?}"
                );
                if mode == VerifyMode::Off {
                    assert_eq!(r.verify_cycles, 0);
                } else {
                    assert!(r.verify_cycles > 0, "{mode:?} must charge verification");
                }
            }
        }
    }

    #[test]
    fn single_mirror_replica_config_is_byte_identical() {
        let s = session();
        for base in [
            SimConfig::strict(Link::MODEM_28_8),
            SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
            SimConfig::non_strict(Link::T1, OrderingSource::TrainProfile),
        ] {
            let solo = base.with_replicas(crate::model::ReplicaConfig::seeded(0xabc));
            assert_eq!(
                s.simulate(Input::Test, &base),
                s.simulate(Input::Test, &solo),
                "one mirror must be the single origin, bit for bit: {base:?}"
            );
        }
    }

    #[test]
    fn replica_runs_are_deterministic_and_report_the_set() {
        let s = session();
        let mut rc = crate::model::ReplicaConfig::seeded(11);
        rc.replicas = 3;
        let mut fc = crate::model::FaultConfig::seeded(11);
        fc.loss_pm = 100_000;
        let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
            .with_faults(fc)
            .with_replicas(rc);
        let a = s.simulate(Input::Test, &config);
        assert_eq!(a, s.simulate(Input::Test, &config));
        assert_eq!(a.replica.replicas, 3);
        assert!(a.faults.completed);
        assert!(
            a.replica.health[..3].iter().any(|h| h.units_served > 0),
            "someone must serve the units"
        );
    }

    #[test]
    fn sole_surviving_mirror_fails_closed_to_strict() {
        let s = session();
        let mut rc = crate::model::ReplicaConfig::seeded(21);
        rc.replicas = 2;
        rc.kill = Some(crate::model::ReplicaKill {
            replica: 1,
            at_cycle: 0,
        });
        let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph)
            .with_replicas(rc);
        let r = s.simulate(Input::Test, &config);
        assert!(r.replica.sole_survivor, "mirror 1 died before unit one");
        assert!(
            r.faults.session_degraded,
            "a sole survivor must fail closed to strict execution"
        );
        assert!(r.faults.completed);
        assert!(!r.replica.health[1].alive);
    }

    #[test]
    fn stream_verification_keeps_overlap_full_forfeits_it() {
        let s = session();
        let base = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
        let off = s.simulate(Input::Test, &base);
        let stream = s.simulate(Input::Test, &base.with_verify(VerifyMode::Stream));
        let full = s.simulate(Input::Test, &base.with_verify(VerifyMode::Full));
        // Streaming verification charges cycles but keeps the gate at
        // the method delimiter; whole-file verification waits for the
        // entire class, so it can only be slower.
        assert!(stream.total_cycles >= off.total_cycles);
        assert!(full.total_cycles >= stream.total_cycles);
        assert!(full.invocation_latency >= stream.invocation_latency);
        // Stream only verifies executed classes' prefixes; full pays
        // for whole classes at strict gates — equal only if every
        // method of every entered class executes.
        assert!(stream.verify_cycles <= full.verify_cycles);
    }

    #[test]
    fn interrupt_and_resume_reproduces_the_uninterrupted_run() {
        let s = session();
        let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
        let base = s.simulate(Input::Test, &config);
        let spec = InterruptSpec {
            at_cycle: base.total_cycles / 2,
            outage_cycles: 2_000_000,
        };
        let r = s.simulate_interrupted(Input::Test, &config, &spec);
        // Every bucket except resume is byte-identical to the
        // uninterrupted run; the total grows by exactly the downtime.
        assert_eq!(r.exec_cycles, base.exec_cycles);
        assert_eq!(r.stall_cycles, base.stall_cycles);
        assert_eq!(r.verify_cycles, base.verify_cycles);
        assert_eq!(r.faults, base.faults);
        assert_eq!(r.link_stats, base.link_stats);
        assert_eq!(r.invocation_latency, base.invocation_latency);
        assert_eq!(r.stalls, base.stalls);
        assert_eq!(r.outage.resume_cycles, spec.outage_cycles);
        assert_eq!(r.outage.outages, 1);
        assert_eq!(r.outage.resumes, 1);
        assert_eq!(r.outage.refetched_classes, 0);
        assert!(!r.outage.failed_closed);
        assert_eq!(r.total_cycles, base.total_cycles + spec.outage_cycles);
    }

    #[test]
    fn interrupt_past_the_end_finishes_normally() {
        let s = session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let base = s.simulate(Input::Test, &config);
        let spec = InterruptSpec {
            at_cycle: base.total_cycles + 1,
            outage_cycles: 1_000,
        };
        assert_eq!(s.simulate_interrupted(Input::Test, &config, &spec), base);
    }

    #[test]
    fn ambient_outages_insert_pure_downtime() {
        let s = session();
        let mut oc = crate::model::OutageConfig::seeded(7);
        oc.rate_pm = 600_000;
        oc.min_cycles = 1 << 20;
        oc.max_cycles = 1 << 24;
        for base_cfg in [
            SimConfig::strict(Link::MODEM_28_8),
            SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
        ] {
            let base = s.simulate(Input::Test, &base_cfg);
            let r = s.simulate(Input::Test, &base_cfg.with_outages(oc));
            assert!(
                r.outage.outages > 0,
                "a stormy modem run must cross outages"
            );
            assert_eq!(r.outage.resumes, r.outage.outages);
            assert_eq!(r.exec_cycles, base.exec_cycles);
            assert_eq!(r.stall_cycles, base.stall_cycles);
            assert_eq!(r.verify_cycles, base.verify_cycles);
            assert_eq!(r.total_cycles, base.total_cycles + r.outage.resume_cycles);
            assert!(r.invocation_latency >= base.invocation_latency);
        }
    }

    #[test]
    fn torn_journal_fails_closed_to_strict() {
        let s = session();
        let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
        let base = s.simulate(Input::Test, &config);
        let RunOutcome::Interrupted(mut bytes) =
            s.run_until(Input::Test, &config, base.total_cycles / 2)
        else {
            panic!("mid-run interrupt must produce a journal");
        };
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        let r = s.resume(Input::Test, &config, &bytes, 1_000_000);
        let strict = s.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
        assert!(r.outage.failed_closed);
        assert_eq!(r.outage.resumes, 0);
        assert!(r.faults.completed);
        assert_eq!(r.total_cycles, strict.total_cycles + 1_000_000);
        assert_eq!(r.exec_cycles, strict.exec_cycles);
    }

    #[test]
    fn epoch_bump_triggers_targeted_refetch_only() {
        let s = session();
        let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
        let base = s.simulate(Input::Test, &config);
        let RunOutcome::Interrupted(bytes) =
            s.run_until(Input::Test, &config, base.total_cycles / 2)
        else {
            panic!("mid-run interrupt must produce a journal");
        };
        // The server restructured one class while the client was away:
        // re-stamp that class's epoch in the stored journal so the
        // reconnect negotiation sees a mismatch against the manifest.
        let mut journal = SessionJournal::decode(&bytes).unwrap();
        journal.classes[0].epoch ^= 0xdead_beef;
        let clean = s.resume(Input::Test, &config, &bytes, 0);
        let bumped = s.resume(Input::Test, &config, &journal.encode(), 0);
        assert_eq!(bumped.outage.refetched_classes, 1);
        assert!(!bumped.outage.failed_closed);
        // Targeted invalidation charges the refetch to the resume
        // bucket and nothing else: the base timeline is untouched.
        assert_eq!(bumped.exec_cycles, clean.exec_cycles);
        assert_eq!(bumped.stall_cycles, clean.stall_cycles);
        assert_eq!(bumped.verify_cycles, clean.verify_cycles);
        assert!(bumped.outage.resume_cycles >= clean.outage.resume_cycles);
        assert_eq!(
            bumped.total_cycles - bumped.outage.resume_cycles,
            clean.total_cycles - clean.outage.resume_cycles
        );
    }

    #[test]
    fn stream_verifies_each_executed_method_once() {
        let s = session();
        let base = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let r = s.simulate(Input::Test, &base.with_verify(VerifyMode::Stream));
        // Each executed method is charged exactly once, plus each
        // entered class's global data exactly once.
        let expected: u64 = s
            .app
            .program
            .iter_methods()
            .filter(|(id, _)| s.test.profile.executed(*id))
            .map(|(_, m)| nonstrict_bytecode::method_verify_cost(m))
            .sum();
        assert!(r.verify_cycles >= expected, "per-method charges present");
    }
}
