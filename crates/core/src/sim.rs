//! The co-simulator: execution replay against a transfer engine.
//!
//! A real execution trace (from the interpreter) is replayed at the
//! per-program CPI; every `Enter` event is a potential stall point where
//! the paper's non-strict JVM checks for the method's delimiter. The
//! transfer side is a fluid engine ([`nonstrict_netsim`]); both sides
//! share one cycle clock, giving exactly the paper's "overlap execution
//! with transfer" accounting, including demand fetches on misprediction
//! and transfer termination when execution finishes first.

use nonstrict_bytecode::{method_verify_cost, Application, Input, InterpError};
use nonstrict_netsim::{
    add_checksum_overhead, class_units, greedy_schedule, ClassUnits, FaultedEngine,
    InterleavedEngine, ParallelEngine, StrictEngine, TransferEngine, Weights, DELIMITER_BYTES,
};
use nonstrict_profile::{collect, Collected, TraceEvent};
use nonstrict_reorder::{
    partition_app, restructure, static_first_use, ClassPartition, FirstUseOrder, RestructuredApp,
};

use crate::linker::{IncrementalLinker, LinkStats};
use crate::model::{
    DataLayout, ExecutionModel, OrderingSource, SimConfig, TransferPolicy, VerifyMode,
};

/// Per-byte cycle charge for verification steps 1–2: structural checks
/// and constant-pool cross-references over a class's global data, run
/// once when the prelude (global data) finishes arriving.
pub const VERIFY_CYCLES_PER_GLOBAL_BYTE: u64 = 2;

/// Fault-recovery summary of one run: how the resilient protocol and
/// graceful degradation behaved. All-zero (with `completed` true) on a
/// perfect link.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultSummary {
    /// Stalled cycles attributable to fault recovery (timeouts,
    /// retransmissions, backoff, reconnects, droop) rather than plain
    /// transfer wait.
    pub recovery_cycles: u64,
    /// Retransmissions the protocol performed across the transfer.
    pub retries: u64,
    /// Connection drops survived.
    pub drops: u64,
    /// Units that arrived corrupted (CRC mismatch) and were re-sent.
    pub corrupted: u64,
    /// Units that passed CRC but failed semantic validation, were
    /// quarantined, and refetched.
    pub quarantined: u64,
    /// Classes demoted from non-strict streaming to strict demand-fetch
    /// by degradation pressure.
    pub degraded_classes: u32,
    /// Whether the whole session fell back to strict execution.
    pub session_degraded: bool,
    /// Whether execution ran to completion (always true: the retry cap
    /// bounds every delivery, so no run can livelock).
    pub completed: bool,
}

/// The outcome of one simulated remote execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimResult {
    /// Total cycles from transfer initiation to program completion
    /// (remaining transfer is terminated, as in the paper).
    pub total_cycles: u64,
    /// Pure execution cycles (dynamic instructions × CPI).
    pub exec_cycles: u64,
    /// Cycles spent stalled waiting for bytes (transfer wait only; the
    /// fault-recovery share of stalls is in
    /// [`FaultSummary::recovery_cycles`], so `total = exec + stall +
    /// recovery + verify`).
    pub stall_cycles: u64,
    /// Cycles spent verifying class-file prefixes before execution was
    /// allowed past them (zero under [`VerifyMode::Off`]).
    pub verify_cycles: u64,
    /// Invocation latency: cycles until the entry method could begin
    /// (Table 4).
    pub invocation_latency: u64,
    /// Number of stall events.
    pub stalls: u32,
    /// Incremental-linking event counts (§3.1).
    pub link_stats: LinkStats,
    /// Fault-protocol and degradation accounting.
    pub faults: FaultSummary,
}

impl SimResult {
    /// Overlap efficiency: fraction of total time the CPU was executing
    /// rather than stalled (1.0 = transfer fully hidden after
    /// invocation).
    #[must_use]
    pub fn busy_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            return 1.0;
        }
        self.exec_cycles as f64 / self.total_cycles as f64
    }
}

/// A prepared benchmark: traces collected on both inputs, orderings and
/// partitions computed once, ready to simulate any [`SimConfig`]
/// cheaply.
///
/// ```
/// use nonstrict_core::{OrderingSource, Session, SimConfig};
/// use nonstrict_netsim::Link;
/// use nonstrict_bytecode::Input;
///
/// # fn main() -> Result<(), nonstrict_bytecode::InterpError> {
/// let session = Session::new(nonstrict_workloads::hanoi::build())?;
/// let strict = session.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
/// let ns = session.simulate(
///     Input::Test,
///     &SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
/// );
/// assert!(ns.invocation_latency < strict.invocation_latency);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Session {
    /// The application under test.
    pub app: Application,
    /// Instrumented Test-input run.
    pub test: Collected,
    /// Instrumented Train-input run.
    pub train: Collected,
    orders: [FirstUseOrder; 4],
    restructured: [RestructuredApp; 4],
    partitions: Vec<ClassPartition>,
}

fn order_slot(source: OrderingSource) -> usize {
    match source {
        OrderingSource::SourceOrder => 0,
        OrderingSource::StaticCallGraph => 1,
        OrderingSource::TrainProfile => 2,
        OrderingSource::TestProfile => 3,
    }
}

impl Session {
    /// Runs both inputs under instrumentation and precomputes orderings,
    /// layouts, and partitions.
    ///
    /// # Errors
    ///
    /// Propagates interpreter faults from the profiling runs.
    pub fn new(app: Application) -> Result<Self, InterpError> {
        let test = collect(&app, Input::Test)?;
        let train = collect(&app, Input::Train)?;
        let scg = static_first_use(&app.program);
        let source = FirstUseOrder::source_order(&app.program);
        let train_order = FirstUseOrder::from_profile(&app.program, &train.profile, &scg);
        let test_order = FirstUseOrder::from_profile(&app.program, &test.profile, &scg);
        let orders = [source, scg, train_order, test_order];
        let restructured = [
            restructure(&app, &orders[0]),
            restructure(&app, &orders[1]),
            restructure(&app, &orders[2]),
            restructure(&app, &orders[3]),
        ];
        let partitions = partition_app(&app);
        Ok(Session {
            app,
            test,
            train,
            orders,
            restructured,
            partitions,
        })
    }

    /// The first-use ordering for `source`.
    #[must_use]
    pub fn order(&self, source: OrderingSource) -> &FirstUseOrder {
        &self.orders[order_slot(source)]
    }

    /// The restructured layout for `source`.
    #[must_use]
    pub fn restructured(&self, source: OrderingSource) -> &RestructuredApp {
        &self.restructured[order_slot(source)]
    }

    /// The per-class global-data partitions.
    #[must_use]
    pub fn partitions(&self) -> &[ClassPartition] {
        &self.partitions
    }

    /// Transfer units for one configuration.
    #[must_use]
    pub fn units_for(&self, config: &SimConfig) -> Vec<ClassUnits> {
        let delim = match config.execution {
            ExecutionModel::NonStrict => DELIMITER_BYTES,
            ExecutionModel::Strict => 0,
        };
        let parts = match config.data_layout {
            DataLayout::Whole => None,
            DataLayout::Partitioned => Some(self.partitions.as_slice()),
        };
        let mut units = class_units(&self.app, self.restructured(config.ordering), parts, delim);
        if config.active_faults().is_some() {
            // The resilient protocol CRC32-stamps every non-empty unit so
            // corruption is detectable; the trailer bytes ride the wire.
            add_checksum_overhead(&mut units);
        }
        units
    }

    /// Pure execution cycles on `input`.
    #[must_use]
    pub fn exec_cycles(&self, input: Input) -> u64 {
        self.collected(input).trace.total_instructions() * self.app.cpi
    }

    /// Cycles to verify class `c`'s global data (steps 1–2).
    fn global_verify_cost(&self, c: usize) -> u64 {
        u64::from(self.app.classes[c].global_data_size()) * VERIFY_CYCLES_PER_GLOBAL_BYTE
    }

    /// Cycles to verify one method of class `c` (steps 3–4).
    fn method_verify_cost_at(&self, c: usize, m: usize) -> u64 {
        method_verify_cost(&self.app.program.classes()[c].methods[m])
    }

    /// Cycles to verify class `c` in full: global data plus every
    /// method. Charged on whole-file verification and on the full-file
    /// re-verify a degradation demotion forces.
    fn class_verify_cost(&self, c: usize) -> u64 {
        let methods: u64 = self.app.program.classes()[c]
            .methods
            .iter()
            .map(method_verify_cost)
            .sum();
        self.global_verify_cost(c) + methods
    }

    /// Cycles to verify the whole application, as the strict baseline
    /// must before running.
    fn full_verify_cost(&self) -> u64 {
        (0..self.app.classes.len())
            .map(|c| self.class_verify_cost(c))
            .sum()
    }

    /// The instrumented run for `input`.
    #[must_use]
    pub fn collected(&self, input: Input) -> &Collected {
        match input {
            Input::Test => &self.test,
            Input::Train => &self.train,
        }
    }

    /// Simulates one configuration on `input`.
    #[must_use]
    pub fn simulate(&self, input: Input, config: &SimConfig) -> SimResult {
        let units = self.units_for(config);
        let order = self.order(config.ordering);
        let layouts = &self.restructured(config.ordering).layouts;
        let exec_cycles = self.exec_cycles(input);

        if config.is_baseline() {
            // The paper's base case: one class at a time in source
            // order, execution strictly after transfer — total is the
            // exact sum (Table 3). When verification is on, every class
            // is verified in full as it loads, before execution.
            let verify_cycles = match config.verify {
                VerifyMode::Off => 0,
                VerifyMode::Stream | VerifyMode::Full => self.full_verify_cost(),
            };
            let entry_verify = match config.verify {
                VerifyMode::Off => 0,
                VerifyMode::Stream | VerifyMode::Full => {
                    self.class_verify_cost(self.app.program.entry().class.0 as usize)
                }
            };
            let class_order: Vec<usize> = (0..units.len()).collect();
            let mut engine = StrictEngine::new(config.link, &units, &class_order);
            let entry_class = self.app.program.entry().class.0 as usize;
            let perfect_finish = engine.finish_time();
            if let Some(fc) = config.active_faults() {
                // Same transfer through the faulted link: everything
                // beyond the perfect-link finish is recovery time.
                let mut faulted = FaultedEngine::new(
                    StrictEngine::new(config.link, &units, &class_order),
                    fc.plan(),
                    &units,
                    config.link,
                );
                let entry_unit = units[entry_class].unit_count() - 1;
                let invocation_latency =
                    faulted.unit_ready(entry_class, entry_unit, 0) + entry_verify;
                let finish = faulted.finish_time();
                let stats = faulted.fault_stats();
                return SimResult {
                    total_cycles: finish + verify_cycles + exec_cycles,
                    exec_cycles,
                    stall_cycles: perfect_finish,
                    verify_cycles,
                    invocation_latency,
                    stalls: 1,
                    link_stats: LinkStats::default(),
                    faults: FaultSummary {
                        recovery_cycles: finish - perfect_finish,
                        retries: stats.retries,
                        drops: stats.drops,
                        corrupted: stats.corrupted,
                        quarantined: stats.quarantined,
                        degraded_classes: 0,
                        session_degraded: false,
                        completed: true,
                    },
                };
            }
            return SimResult {
                total_cycles: perfect_finish + verify_cycles + exec_cycles,
                exec_cycles,
                stall_cycles: perfect_finish,
                verify_cycles,
                invocation_latency: engine.class_ready(entry_class) + entry_verify,
                stalls: 1,
                link_stats: LinkStats::default(),
                faults: FaultSummary {
                    completed: true,
                    ..FaultSummary::default()
                },
            };
        }

        let class_order_fu: Vec<usize> = order.class_order().iter().map(|c| c.0 as usize).collect();
        let weights = match config.ordering {
            OrderingSource::TrainProfile => Weights::Profile(&self.train.profile),
            OrderingSource::TestProfile => Weights::Profile(&self.test.profile),
            _ => Weights::Static,
        };
        let mut engine: Box<dyn TransferEngine> = match config.transfer {
            TransferPolicy::Strict => {
                Box::new(StrictEngine::new(config.link, &units, &class_order_fu))
            }
            TransferPolicy::Parallel { limit } => {
                let schedule = greedy_schedule(&self.app, order, &units, layouts, weights);
                Box::new(ParallelEngine::new(
                    config.link,
                    units.clone(),
                    &schedule,
                    limit,
                ))
            }
            TransferPolicy::Interleaved => Box::new(InterleavedEngine::new(
                &self.app,
                self.restructured(config.ordering),
                &units,
                order,
                config.link,
            )),
        };
        if let Some(fc) = config.active_faults() {
            engine = Box::new(FaultedEngine::new(engine, fc.plan(), &units, config.link));
        }

        self.replay(input, config, layouts, &units, engine.as_mut(), exec_cycles)
    }

    /// Replays the input's trace against `engine`.
    fn replay(
        &self,
        input: Input,
        config: &SimConfig,
        layouts: &[nonstrict_reorder::ClassLayout],
        units: &[ClassUnits],
        engine: &mut dyn TransferEngine,
        exec_cycles: u64,
    ) -> SimResult {
        let trace = &self.collected(input).trace;
        let mut linker = IncrementalLinker::new(
            &self
                .app
                .classes
                .iter()
                .map(|c| c.methods.len())
                .collect::<Vec<_>>(),
        );
        let cpi = self.app.cpi;
        let mut clock: u64 = 0;
        let mut stall_cycles: u64 = 0;
        let mut recovery_cycles: u64 = 0;
        let mut verify_cycles: u64 = 0;
        let mut stalls: u32 = 0;
        let mut invocation_latency: Option<u64> = None;

        // Verified-prefix bookkeeping: which prefixes have already paid
        // their verification charge. Steps 1–2 run once per class when
        // its global data is first needed; steps 3–4 run once per method
        // at its delimiter. Execution may not pass a gate until the
        // prefix behind it is verified, so every charge advances the
        // clock.
        let verify = config.verify;
        let mut globals_verified: Vec<bool> = vec![false; units.len()];
        let mut methods_verified: Vec<Vec<bool>> = self
            .app
            .program
            .classes()
            .iter()
            .map(|c| vec![false; c.methods.len()])
            .collect();

        // Graceful degradation (fault protocol): when the combined
        // misprediction-plus-fault pressure on a class crosses the
        // threshold, the class is demoted from non-strict streaming to
        // strict demand-fetch — every later entry waits for the whole
        // class, trading overlap for stability. When a majority of
        // classes degrade, the whole session falls back to strict
        // execution.
        let degrade_threshold = config.active_faults().map_or(0, |fc| fc.degrade_threshold);
        let nclasses = units.len();
        let mut stall_events: Vec<u64> = vec![0; nclasses];
        let mut demoted: Vec<bool> = vec![false; nclasses];
        let mut degraded_classes: u32 = 0;
        let mut session_degraded = false;

        for event in trace.events() {
            match *event {
                TraceEvent::Enter(m) => {
                    let c = m.class.0 as usize;
                    let pos = layouts[c].position_of(m.method);
                    // Whole-file verification cannot begin before the
                    // whole file arrived, so `VerifyMode::Full` forfeits
                    // non-strict overlap and gates on the last unit.
                    let strict_entry = config.execution == ExecutionModel::Strict
                        || session_degraded
                        || demoted[c]
                        || verify == VerifyMode::Full;
                    let unit = if strict_entry {
                        // Strict execution waits for the entire class.
                        units[c].unit_count() - 1
                    } else {
                        ClassUnits::method_unit(pos)
                    };
                    let ready = engine.unit_ready(c, unit, clock);
                    if ready > clock {
                        let stall = ready - clock;
                        let fault_part = engine.last_fault_delay().min(stall);
                        recovery_cycles += fault_part;
                        stall_cycles += stall - fault_part;
                        stalls += 1;
                        stall_events[c] += 1;
                        clock = ready;
                    }
                    if degrade_threshold > 0 && !demoted[c] {
                        let pressure = stall_events[c] + engine.class_fault_events(c);
                        if pressure >= u64::from(degrade_threshold) {
                            demoted[c] = true;
                            degraded_classes += 1;
                            if u64::from(degraded_classes) * 2 > nclasses as u64 {
                                session_degraded = true;
                            }
                            if verify == VerifyMode::Stream {
                                // Demotion refetches the class as one
                                // strict file; the incremental
                                // verdicts are discarded and the whole
                                // file is re-verified from scratch.
                                let cost = self.class_verify_cost(c);
                                verify_cycles += cost;
                                clock += cost;
                                globals_verified[c] = true;
                                for v in &mut methods_verified[c] {
                                    *v = true;
                                }
                            }
                        }
                    }
                    if verify != VerifyMode::Off {
                        if !globals_verified[c] {
                            // Steps 1–2: the class's global data just
                            // became needed; verify it before any of
                            // its methods may run.
                            globals_verified[c] = true;
                            let cost = self.global_verify_cost(c);
                            verify_cycles += cost;
                            clock += cost;
                        }
                        if strict_entry {
                            // The whole file is present: verify every
                            // still-unverified method before entry.
                            for mi in 0..methods_verified[c].len() {
                                if !methods_verified[c][mi] {
                                    methods_verified[c][mi] = true;
                                    let cost = self.method_verify_cost_at(c, mi);
                                    verify_cycles += cost;
                                    clock += cost;
                                }
                            }
                        } else {
                            let mi = m.method as usize;
                            if !methods_verified[c][mi] {
                                methods_verified[c][mi] = true;
                                // Steps 3–4 run for real: the method is
                                // re-verified against the finished
                                // program, exactly what the streaming
                                // loader does at delimiter arrival.
                                let check = self.app.program.verify_method(m);
                                debug_assert!(
                                    check.is_ok(),
                                    "streamed method failed re-verification: {check:?}"
                                );
                                let _ = check;
                                let cost = self.method_verify_cost_at(c, mi);
                                verify_cycles += cost;
                                clock += cost;
                            }
                        }
                    }
                    linker.globals_arrived(c);
                    linker.method_arrived(c, pos);
                    linker.method_executed(c, pos);
                    if invocation_latency.is_none() {
                        invocation_latency = Some(clock);
                    }
                }
                TraceEvent::Run { method: _, count } => {
                    clock += count * cpi;
                }
                TraceEvent::Exit(_) => {}
            }
        }

        debug_assert!(linker.consistent());
        debug_assert_eq!(
            clock,
            exec_cycles + stall_cycles + recovery_cycles + verify_cycles,
            "every clock advance must land in exactly one accounting bucket"
        );
        let stats = engine.fault_stats();
        SimResult {
            total_cycles: clock,
            exec_cycles,
            stall_cycles,
            verify_cycles,
            invocation_latency: invocation_latency.unwrap_or(0),
            stalls,
            link_stats: linker.stats(),
            faults: FaultSummary {
                recovery_cycles,
                retries: stats.retries,
                drops: stats.drops,
                corrupted: stats.corrupted,
                quarantined: stats.quarantined,
                degraded_classes,
                session_degraded,
                completed: true,
            },
        }
    }
}

/// One-shot convenience: prepares a [`Session`] and simulates a single
/// configuration. Prefer building a [`Session`] when sweeping
/// configurations — profiling runs dominate the cost.
///
/// # Errors
///
/// Propagates interpreter faults from the profiling runs.
pub fn simulate(
    app: &Application,
    input: Input,
    config: &SimConfig,
) -> Result<SimResult, InterpError> {
    let session = Session::new(app.clone())?;
    Ok(session.simulate(input, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_netsim::Link;

    fn session() -> Session {
        Session::new(nonstrict_workloads::hanoi::build()).unwrap()
    }

    fn all_nonstrict_configs(link: Link) -> Vec<SimConfig> {
        let mut out = Vec::new();
        for ordering in [
            OrderingSource::StaticCallGraph,
            OrderingSource::TrainProfile,
            OrderingSource::TestProfile,
        ] {
            for transfer in [
                TransferPolicy::Parallel { limit: 1 },
                TransferPolicy::Parallel { limit: 4 },
                TransferPolicy::Parallel { limit: usize::MAX },
                TransferPolicy::Interleaved,
            ] {
                for data_layout in [DataLayout::Whole, DataLayout::Partitioned] {
                    out.push(SimConfig {
                        link,
                        ordering,
                        transfer,
                        data_layout,
                        execution: ExecutionModel::NonStrict,
                        faults: None,
                        verify: VerifyMode::Off,
                    });
                }
            }
        }
        out
    }

    #[test]
    fn baseline_total_is_exec_plus_transfer() {
        let s = session();
        let base = s.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
        assert_eq!(base.total_cycles, base.exec_cycles + base.stall_cycles);
        assert!(base.invocation_latency > 0);
    }

    #[test]
    fn non_strict_beats_baseline_on_modem() {
        let s = session();
        let base = s.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
        for config in all_nonstrict_configs(Link::MODEM_28_8) {
            let r = s.simulate(Input::Test, &config);
            assert!(
                r.total_cycles <= base.total_cycles,
                "{config:?} regressed: {} vs base {}",
                r.total_cycles,
                base.total_cycles
            );
        }
    }

    #[test]
    fn total_cycles_never_below_exec_or_latency_plus_exec() {
        let s = session();
        for config in all_nonstrict_configs(Link::T1) {
            let r = s.simulate(Input::Test, &config);
            assert!(r.total_cycles >= r.exec_cycles);
            assert!(r.total_cycles >= r.invocation_latency + r.exec_cycles);
            assert_eq!(r.total_cycles, r.exec_cycles + r.stall_cycles);
        }
    }

    #[test]
    fn perfect_profile_never_loses_to_train_or_scg_on_average() {
        let s = session();
        let run = |ordering| {
            let config = SimConfig {
                link: Link::MODEM_28_8,
                ordering,
                transfer: TransferPolicy::Interleaved,
                data_layout: DataLayout::Whole,
                execution: ExecutionModel::NonStrict,
                faults: None,
                verify: VerifyMode::Off,
            };
            s.simulate(Input::Test, &config).total_cycles
        };
        let test = run(OrderingSource::TestProfile);
        let scg = run(OrderingSource::StaticCallGraph);
        assert!(
            test <= scg,
            "perfect interleaved order cannot lose to SCG: {test} vs {scg}"
        );
    }

    #[test]
    fn linker_sees_every_executed_method_once() {
        let s = session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let r = s.simulate(Input::Test, &config);
        let executed = s.test.profile.executed_method_count();
        assert_eq!(r.link_stats.methods_resolved, executed);
        assert_eq!(r.link_stats.methods_verified, executed);
        assert!(r.link_stats.classes_verified <= s.app.classes.len());
    }

    #[test]
    fn invocation_latency_orders_strict_nonstrict_partitioned() {
        let s = session();
        let strict = s.simulate(Input::Test, &SimConfig::strict(Link::MODEM_28_8));
        let ns = s.simulate(
            Input::Test,
            &SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
        );
        let mut part_cfg = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
        part_cfg.data_layout = DataLayout::Partitioned;
        let part = s.simulate(Input::Test, &part_cfg);
        assert!(ns.invocation_latency < strict.invocation_latency);
        assert!(part.invocation_latency <= ns.invocation_latency);
    }

    #[test]
    fn results_are_deterministic() {
        let s = session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::TrainProfile);
        let a = s.simulate(Input::Test, &config);
        let b = s.simulate(Input::Test, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn verify_off_charges_nothing_and_matches_legacy_results() {
        let s = session();
        for config in all_nonstrict_configs(Link::MODEM_28_8) {
            let off = s.simulate(Input::Test, &config);
            assert_eq!(off.verify_cycles, 0);
            assert_eq!(
                off,
                s.simulate(Input::Test, &config.with_verify(VerifyMode::Off))
            );
        }
    }

    #[test]
    fn verify_accounting_identity_holds_in_every_mode() {
        let s = session();
        for mode in [VerifyMode::Off, VerifyMode::Stream, VerifyMode::Full] {
            for base in [
                SimConfig::strict(Link::MODEM_28_8),
                SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph),
                SimConfig::non_strict(Link::T1, OrderingSource::TrainProfile),
            ] {
                let r = s.simulate(Input::Test, &base.with_verify(mode));
                assert_eq!(
                    r.total_cycles,
                    r.exec_cycles + r.stall_cycles + r.faults.recovery_cycles + r.verify_cycles,
                    "{mode:?} {base:?}"
                );
                if mode == VerifyMode::Off {
                    assert_eq!(r.verify_cycles, 0);
                } else {
                    assert!(r.verify_cycles > 0, "{mode:?} must charge verification");
                }
            }
        }
    }

    #[test]
    fn stream_verification_keeps_overlap_full_forfeits_it() {
        let s = session();
        let base = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
        let off = s.simulate(Input::Test, &base);
        let stream = s.simulate(Input::Test, &base.with_verify(VerifyMode::Stream));
        let full = s.simulate(Input::Test, &base.with_verify(VerifyMode::Full));
        // Streaming verification charges cycles but keeps the gate at
        // the method delimiter; whole-file verification waits for the
        // entire class, so it can only be slower.
        assert!(stream.total_cycles >= off.total_cycles);
        assert!(full.total_cycles >= stream.total_cycles);
        assert!(full.invocation_latency >= stream.invocation_latency);
        // Stream only verifies executed classes' prefixes; full pays
        // for whole classes at strict gates — equal only if every
        // method of every entered class executes.
        assert!(stream.verify_cycles <= full.verify_cycles);
    }

    #[test]
    fn stream_verifies_each_executed_method_once() {
        let s = session();
        let base = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let r = s.simulate(Input::Test, &base.with_verify(VerifyMode::Stream));
        // Each executed method is charged exactly once, plus each
        // entered class's global data exactly once.
        let expected: u64 = s
            .app
            .program
            .iter_methods()
            .filter(|(id, _)| s.test.profile.executed(*id))
            .map(|(_, m)| nonstrict_bytecode::method_verify_cost(m))
            .sum();
        assert!(r.verify_cycles >= expected, "per-method charges present");
    }
}
