//! Result metrics, normalized the way the paper reports them.

/// Normalized execution time as a percent of the strict baseline
/// (§7.2): 60 means 60% of the base — a 40% improvement. Smaller is
/// better.
#[must_use]
pub fn normalized_percent(cycles: u64, baseline_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        return 0.0;
    }
    100.0 * cycles as f64 / baseline_cycles as f64
}

/// Percent reduction relative to a baseline (Table 4's parenthesized
/// numbers). Positive means improvement.
#[must_use]
pub fn reduction_percent(cycles: u64, baseline_cycles: u64) -> f64 {
    100.0 - normalized_percent(cycles, baseline_cycles)
}

/// Arithmetic mean, for the paper's "AVG" rows.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Converts cycles on the paper's 500 MHz Alpha to seconds (the
/// parenthesized seconds in Table 3).
#[must_use]
pub fn cycles_to_seconds(cycles: u64) -> f64 {
    cycles as f64 / 500.0e6
}

/// Share of the run's total time spent in fault recovery, as a percent.
/// Zero on a perfect link; the degradation report's headline column.
#[must_use]
pub fn recovery_share_percent(recovery_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * recovery_cycles as f64 / total_cycles as f64
}

/// Share of the run's total time spent verifying class-file prefixes,
/// as a percent. Zero under `VerifyMode::Off`; the verification
/// report's headline column.
#[must_use]
pub fn verify_share_percent(verify_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * verify_cycles as f64 / total_cycles as f64
}

/// Share of the run's total time spent down or resuming — outage
/// downtime, reconnect negotiation, and stale-class refetch — as a
/// percent. Zero when no outage interrupted the run; the outage
/// report's headline column.
#[must_use]
pub fn resume_share_percent(resume_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * resume_cycles as f64 / total_cycles as f64
}

/// Share of the run's total time spent hedging demand fetches —
/// deadline waits plus issue/cancel overhead — as a percent. Zero
/// outside a replica set; the replica report's headline column.
#[must_use]
pub fn hedge_share_percent(hedge_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * hedge_cycles as f64 / total_cycles as f64
}

/// Fraction of runs that executed to completion, as a percent. The
/// resilient protocol's retry cap makes this 100 by construction; the
/// report still computes it from the results rather than asserting it.
#[must_use]
pub fn completion_rate_percent(completed: usize, total: usize) -> f64 {
    if total == 0 {
        return 100.0;
    }
    100.0 * completed as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_examples_from_the_paper() {
        // "a percent normalized execution time of 60 means ... a 40%
        // improvement"
        assert!((normalized_percent(60, 100) - 60.0).abs() < 1e-12);
        assert!((reduction_percent(60, 100) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_safe() {
        assert_eq!(normalized_percent(5, 0), 0.0);
    }

    #[test]
    fn mean_handles_empty_and_typical() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_share_and_completion_rate() {
        assert_eq!(recovery_share_percent(0, 1_000), 0.0);
        assert!((recovery_share_percent(250, 1_000) - 25.0).abs() < 1e-12);
        assert_eq!(recovery_share_percent(5, 0), 0.0);
        assert_eq!(verify_share_percent(0, 1_000), 0.0);
        assert!((verify_share_percent(100, 1_000) - 10.0).abs() < 1e-12);
        assert_eq!(verify_share_percent(5, 0), 0.0);
        assert!((resume_share_percent(250, 1_000) - 25.0).abs() < 1e-12);
        assert_eq!(resume_share_percent(5, 0), 0.0);
        assert!((hedge_share_percent(50, 1_000) - 5.0).abs() < 1e-12);
        assert_eq!(hedge_share_percent(5, 0), 0.0);
        assert_eq!(completion_rate_percent(0, 0), 100.0);
        assert!((completion_rate_percent(3, 4) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_on_a_500mhz_alpha() {
        // Table 3: 1141 Mcycles ≈ 2.3 s
        let s = cycles_to_seconds(1_141_000_000);
        assert!((s - 2.282).abs() < 0.01);
    }
}
