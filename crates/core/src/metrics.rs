//! Result metrics, normalized the way the paper reports them.

/// Normalized execution time as a percent of the strict baseline
/// (§7.2): 60 means 60% of the base — a 40% improvement. Smaller is
/// better.
#[must_use]
pub fn normalized_percent(cycles: u64, baseline_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        return 0.0;
    }
    100.0 * cycles as f64 / baseline_cycles as f64
}

/// Percent reduction relative to a baseline (Table 4's parenthesized
/// numbers). Positive means improvement.
#[must_use]
pub fn reduction_percent(cycles: u64, baseline_cycles: u64) -> f64 {
    100.0 - normalized_percent(cycles, baseline_cycles)
}

/// Arithmetic mean, for the paper's "AVG" rows.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Converts cycles on the paper's 500 MHz Alpha to seconds (the
/// parenthesized seconds in Table 3).
#[must_use]
pub fn cycles_to_seconds(cycles: u64) -> f64 {
    cycles as f64 / 500.0e6
}

/// Share of the run's total time spent in fault recovery, as a percent.
/// Zero on a perfect link; the degradation report's headline column.
#[must_use]
pub fn recovery_share_percent(recovery_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * recovery_cycles as f64 / total_cycles as f64
}

/// Share of the run's total time spent verifying class-file prefixes,
/// as a percent. Zero under `VerifyMode::Off`; the verification
/// report's headline column.
#[must_use]
pub fn verify_share_percent(verify_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * verify_cycles as f64 / total_cycles as f64
}

/// Share of the run's total time spent down or resuming — outage
/// downtime, reconnect negotiation, and stale-class refetch — as a
/// percent. Zero when no outage interrupted the run; the outage
/// report's headline column.
#[must_use]
pub fn resume_share_percent(resume_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * resume_cycles as f64 / total_cycles as f64
}

/// Share of the run's total time spent hedging demand fetches —
/// deadline waits plus issue/cancel overhead — as a percent. Zero
/// outside a replica set; the replica report's headline column.
#[must_use]
pub fn hedge_share_percent(hedge_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * hedge_cycles as f64 / total_cycles as f64
}

/// Share of the run's total time spent queued behind other clients at
/// the shared server egress (DRR contention delay plus admission
/// backoff), as a percent. Zero outside a fleet; the overload report's
/// headline column.
#[must_use]
pub fn queue_share_percent(queue_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * queue_cycles as f64 / total_cycles as f64
}

/// Share of the run's total time spent on transfer integrity —
/// manifest pinning, digest-mismatch refetches, cross-mirror audit
/// arbitration, and epoch-fence refetches — as a percent. Zero when no
/// Byzantine protection is armed; the byzantine report's headline
/// column.
#[must_use]
pub fn integrity_share_percent(integrity_cycles: u64, total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    100.0 * integrity_cycles as f64 / total_cycles as f64
}

/// Nearest-rank percentile of `sorted` (ascending), `p` in `[0, 100]`.
/// Returns 0 for an empty slice. `p50`/`p95`/`p99` of per-client fleet
/// totals are reported with this.
#[must_use]
pub fn percentile(sorted: &[u64], p: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let p = p.min(100) as usize;
    // Nearest-rank: the ⌈p/100 · n⌉-th smallest value (1-indexed).
    let rank = (p * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// The eight exact accounting buckets of one run. Every cycle of a
/// session's total lands in exactly one bucket:
///
/// `total = exec + stall + recovery + verify + resume + hedge + queue + integrity`
///
/// The identity is debug-asserted at every place a total is formed via
/// [`CycleLedger::assert_exact`], so a new bucket is added in exactly
/// one place (here) and every call site inherits it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CycleLedger {
    /// Pure execution cycles.
    pub exec: u64,
    /// Transfer-wait stall cycles (fault, outage, hedge, queue, and
    /// integrity shares split out into their own buckets).
    pub stall: u64,
    /// Fault-recovery cycles.
    pub recovery: u64,
    /// Prefix-verification cycles.
    pub verify: u64,
    /// Outage downtime, reconnect negotiation, and refetch cycles.
    pub resume: u64,
    /// Hedged-fetch deadline waits and issue/cancel overhead.
    pub hedge: u64,
    /// Server-egress queueing delay plus admission backoff wait.
    pub queue: u64,
    /// Byzantine-protection cycles: manifest pinning, per-unit digest
    /// mismatch refetches, cross-mirror audit arbitration, and
    /// epoch-fence refetches.
    pub integrity: u64,
}

impl CycleLedger {
    /// The sum of all eight buckets.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.exec
            + self.stall
            + self.recovery
            + self.verify
            + self.resume
            + self.hedge
            + self.queue
            + self.integrity
    }

    /// Debug-asserts that `total` is exactly the eight-bucket sum.
    /// `context` names the call site in the failure message.
    pub fn assert_exact(&self, total: u64, context: &str) {
        debug_assert_eq!(
            total,
            self.total(),
            "{context}: total = exec + stall + recovery + verify + resume + hedge + queue \
             + integrity ({} + {} + {} + {} + {} + {} + {} + {})",
            self.exec,
            self.stall,
            self.recovery,
            self.verify,
            self.resume,
            self.hedge,
            self.queue,
            self.integrity,
        );
        let _ = (total, context);
    }
}

/// Fraction of runs that executed to completion, as a percent. The
/// resilient protocol's retry cap makes this 100 by construction; the
/// report still computes it from the results rather than asserting it.
#[must_use]
pub fn completion_rate_percent(completed: usize, total: usize) -> f64 {
    if total == 0 {
        return 100.0;
    }
    100.0 * completed as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_examples_from_the_paper() {
        // "a percent normalized execution time of 60 means ... a 40%
        // improvement"
        assert!((normalized_percent(60, 100) - 60.0).abs() < 1e-12);
        assert!((reduction_percent(60, 100) - 40.0).abs() < 1e-12);
    }

    #[test]
    fn zero_baseline_is_safe() {
        assert_eq!(normalized_percent(5, 0), 0.0);
    }

    #[test]
    fn mean_handles_empty_and_typical() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn recovery_share_and_completion_rate() {
        assert_eq!(recovery_share_percent(0, 1_000), 0.0);
        assert!((recovery_share_percent(250, 1_000) - 25.0).abs() < 1e-12);
        assert_eq!(recovery_share_percent(5, 0), 0.0);
        assert_eq!(verify_share_percent(0, 1_000), 0.0);
        assert!((verify_share_percent(100, 1_000) - 10.0).abs() < 1e-12);
        assert_eq!(verify_share_percent(5, 0), 0.0);
        assert!((resume_share_percent(250, 1_000) - 25.0).abs() < 1e-12);
        assert_eq!(resume_share_percent(5, 0), 0.0);
        assert!((hedge_share_percent(50, 1_000) - 5.0).abs() < 1e-12);
        assert_eq!(hedge_share_percent(5, 0), 0.0);
        assert!((integrity_share_percent(80, 1_000) - 8.0).abs() < 1e-12);
        assert_eq!(integrity_share_percent(5, 0), 0.0);
        assert_eq!(completion_rate_percent(0, 0), 100.0);
        assert!((completion_rate_percent(3, 4) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn queue_share_and_percentiles() {
        assert_eq!(queue_share_percent(0, 1_000), 0.0);
        assert!((queue_share_percent(300, 1_000) - 30.0).abs() < 1e-12);
        assert_eq!(queue_share_percent(5, 0), 0.0);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 0), 7);
        assert_eq!(percentile(&[7], 100), 7);
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[10, 20, 30], 50), 20);
    }

    #[test]
    fn ledger_totals_and_asserts() {
        let l = CycleLedger {
            exec: 1,
            stall: 2,
            recovery: 3,
            verify: 4,
            resume: 5,
            hedge: 6,
            queue: 7,
            integrity: 8,
        };
        assert_eq!(l.total(), 36);
        l.assert_exact(36, "test");
    }

    #[test]
    #[should_panic(expected = "total = exec + stall")]
    #[cfg(debug_assertions)]
    fn ledger_rejects_a_leaked_cycle() {
        CycleLedger::default().assert_exact(1, "leak");
    }

    #[test]
    fn seconds_on_a_500mhz_alpha() {
        // Table 3: 1141 Mcycles ≈ 2.3 s
        let s = cycles_to_seconds(1_141_000_000);
        assert!((s - 2.282).abs() < 0.01);
    }
}
