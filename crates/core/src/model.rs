//! Simulation configuration: the paper's design space as one type.

use nonstrict_netsim::byzantine::{ByzantineMode, ByzantinePlan};
use nonstrict_netsim::faults::FaultPlan;
use nonstrict_netsim::outage::OutagePlan;
use nonstrict_netsim::replica::{replica_seed, ReplicaProfile, MAX_REPLICAS};
use nonstrict_netsim::Link;

/// How method first-use order is predicted (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingSource {
    /// No restructuring: methods stay in source order (the baseline
    /// layout).
    SourceOrder,
    /// Static first-use estimation over the interprocedural CFG (§4.1) —
    /// the paper's "SCG" columns.
    StaticCallGraph,
    /// First-use profile from the **Train** input (§4.2) — realistic
    /// profile guidance.
    TrainProfile,
    /// First-use profile from the **Test** input — perfect prediction,
    /// the paper's upper bound.
    TestProfile,
}

impl OrderingSource {
    /// The paper's column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OrderingSource::SourceOrder => "Src",
            OrderingSource::StaticCallGraph => "SCG",
            OrderingSource::TrainProfile => "Train",
            OrderingSource::TestProfile => "Test",
        }
    }
}

/// How bytes move (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferPolicy {
    /// One class at a time, to completion, full bandwidth — the 1998
    /// JVM's behaviour.
    Strict,
    /// Parallel file transfer: up to `limit` classes share bandwidth,
    /// started by the greedy dependency schedule, corrected by demand
    /// fetches (§5.1). Use `usize::MAX` for the paper's "Inf." column.
    Parallel {
        /// Maximum concurrently transferring class files.
        limit: usize,
    },
    /// The single virtual interleaved file (§5.2).
    Interleaved,
}

impl TransferPolicy {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            TransferPolicy::Strict => "strict".to_owned(),
            TransferPolicy::Parallel { limit: usize::MAX } => "par(inf)".to_owned(),
            TransferPolicy::Parallel { limit } => format!("par({limit})"),
            TransferPolicy::Interleaved => "ilv".to_owned(),
        }
    }
}

/// When a method may begin executing (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionModel {
    /// A method runs only after its whole class file arrived.
    Strict,
    /// A method runs once the class's global data and the method's own
    /// data, code, and delimiter arrived.
    NonStrict,
}

/// How each class's global data is laid out on the wire (§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLayout {
    /// All global data precedes the first method.
    Whole,
    /// Needed-first slice up front, per-method GMD chunks, unused data
    /// trailing.
    Partitioned,
}

/// Link-fault injection settings: a seeded, deterministic description
/// of an unreliable link plus the recovery protocol's degradation
/// threshold. Rates are parts-per-million so the config stays `Copy`,
/// `Eq`, and `Hash` like the rest of [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Seed for every fault draw; same seed, same run, bit for bit.
    pub seed: u64,
    /// Per-attempt unit-loss probability (ppm).
    pub loss_pm: u32,
    /// Per-attempt unit-corruption probability (ppm).
    pub corrupt_pm: u32,
    /// Per-attempt connection-drop probability (ppm).
    pub drop_pm: u32,
    /// Fraction of delivery time (ppm) spent in half-rate droop windows.
    pub droop_pm: u32,
    /// Per-attempt semantic-corruption probability (ppm): the unit
    /// passes CRC but fails incremental validation, is quarantined, and
    /// refetched like a corrupt unit.
    pub semantic_pm: u32,
    /// Reconnect latency after a drop, in cycles.
    pub reconnect_cycles: u64,
    /// Misprediction-plus-fault pressure (stalls + retransmissions) on a
    /// class before it is demoted from non-strict streaming to strict
    /// demand-fetch; 0 disables degradation.
    pub degrade_threshold: u32,
}

impl FaultConfig {
    /// Default reconnect latency (~2 ms on the 500 MHz Alpha).
    pub const DEFAULT_RECONNECT_CYCLES: u64 = 1_000_000;

    /// Default degradation threshold: a class tolerates this many
    /// combined stall-plus-retry events before falling back to strict.
    pub const DEFAULT_DEGRADE_THRESHOLD: u32 = 24;

    /// A fault config with every rate zero under `seed` — the protocol
    /// is armed but the link is perfect.
    #[must_use]
    pub fn seeded(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            loss_pm: 0,
            corrupt_pm: 0,
            drop_pm: 0,
            droop_pm: 0,
            semantic_pm: 0,
            reconnect_cycles: Self::DEFAULT_RECONNECT_CYCLES,
            degrade_threshold: Self::DEFAULT_DEGRADE_THRESHOLD,
        }
    }

    /// Whether any fault can actually occur. An inactive config charges
    /// no checksum overhead and perturbs no timeline: results are
    /// byte-identical to a perfect-link run.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.loss_pm > 0
            || self.corrupt_pm > 0
            || self.drop_pm > 0
            || self.droop_pm > 0
            || self.semantic_pm > 0
    }

    /// The netsim-level realization of this config.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            loss_pm: self.loss_pm,
            corrupt_pm: self.corrupt_pm,
            drop_pm: self.drop_pm,
            droop_pm: self.droop_pm,
            semantic_pm: self.semantic_pm,
            reconnect_cycles: self.reconnect_cycles,
        }
    }
}

/// Connection-outage injection settings: a seeded, deterministic
/// description of full connection losses (client partitioned or killed)
/// layered on top of whatever [`FaultConfig`] does to the live link.
/// Rates are parts-per-million per
/// [`nonstrict_netsim::OUTAGE_PERIOD_CYCLES`] so the config stays
/// `Copy`, `Eq`, and `Hash` like the rest of [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OutageConfig {
    /// Seed for every outage draw; same seed, same outages, bit for
    /// bit.
    pub seed: u64,
    /// Probability (ppm) that each outage-draw period suffers a full
    /// connection loss.
    pub rate_pm: u32,
    /// Shortest connection-loss duration, in cycles.
    pub min_cycles: u64,
    /// Longest connection-loss duration, in cycles.
    pub max_cycles: u64,
    /// Reconnect handshake paid after every outage: link
    /// re-establishment plus journal validation before bytes flow
    /// again.
    pub negotiation_cycles: u64,
}

impl OutageConfig {
    /// Default resume-negotiation latency (~1 ms on the 500 MHz Alpha):
    /// connection setup plus the journal CRC/epoch exchange.
    pub const DEFAULT_NEGOTIATION_CYCLES: u64 = 500_000;

    /// Default shortest outage (~8 ms on the Alpha).
    pub const DEFAULT_MIN_CYCLES: u64 = 1 << 22;

    /// Default longest outage (~537 ms on the Alpha).
    pub const DEFAULT_MAX_CYCLES: u64 = 1 << 28;

    /// An outage config with rate zero under `seed` — the resume
    /// machinery is armed but the connection never actually dies.
    #[must_use]
    pub fn seeded(seed: u64) -> OutageConfig {
        OutageConfig {
            seed,
            rate_pm: 0,
            min_cycles: Self::DEFAULT_MIN_CYCLES,
            max_cycles: Self::DEFAULT_MAX_CYCLES,
            negotiation_cycles: Self::DEFAULT_NEGOTIATION_CYCLES,
        }
    }

    /// Whether an outage can actually occur. An inactive config
    /// perturbs no timeline: results are byte-identical to an
    /// uninterrupted run.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.rate_pm > 0 && self.max_cycles > 0
    }

    /// The netsim-level realization of this config.
    #[must_use]
    pub fn plan(&self) -> OutagePlan {
        OutagePlan {
            seed: self.seed,
            rate_pm: self.rate_pm,
            min_cycles: self.min_cycles,
            max_cycles: self.max_cycles,
            negotiation_cycles: self.negotiation_cycles,
        }
    }
}

/// One mirror killed mid-run, for failover testing: the replica stops
/// serving at the given base-timeline cycle; routing fails over to the
/// surviving mirrors at the next unit boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaKill {
    /// Index of the mirror that dies (0-based).
    pub replica: u32,
    /// Base-timeline cycle at which it dies.
    pub at_cycle: u64,
}

/// Replica-set transfer settings: N mirrors of the restructured
/// program, each with its own bandwidth spread and independently
/// seeded fault/outage profile derived from the session config. Stays
/// `Copy`, `Eq`, and `Hash` like the rest of [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaConfig {
    /// Base seed; mirror `i` draws from
    /// [`nonstrict_netsim::replica::replica_seed`]`(seed, i)`, and
    /// mirror 0 keeps the base seed exactly.
    pub seed: u64,
    /// Number of mirrors. 1 is the single origin: byte-identical to no
    /// replica config at all.
    pub replicas: u32,
    /// Per-mirror bandwidth spread (ppm): mirror `i`'s cycles-per-byte
    /// is the base link's scaled by `1 + i * spread_pm / 1e6`.
    pub spread_pm: u32,
    /// Stall deadline (cycles) past which a demand fetch is hedged to
    /// the second-best mirror; 0 disables hedging.
    pub hedge_deadline_cycles: u64,
    /// Optional mid-run mirror death, for failover testing.
    pub kill: Option<ReplicaKill>,
}

impl ReplicaConfig {
    /// Hard cap on mirrors (mirrors netsim's fixed-size summaries).
    pub const MAX_REPLICAS: u32 = MAX_REPLICAS as u32;

    /// Default bandwidth spread: each further mirror is 15% slower.
    pub const DEFAULT_SPREAD_PM: u32 = 150_000;

    /// Default hedge deadline (~4 ms on the 500 MHz Alpha): long enough
    /// that only fault-recovery stalls trigger duplicates.
    pub const DEFAULT_HEDGE_DEADLINE_CYCLES: u64 = 2_000_000;

    /// A single-origin replica config under `seed` — the routing
    /// machinery is armed but there is nothing to choose between.
    #[must_use]
    pub fn seeded(seed: u64) -> ReplicaConfig {
        ReplicaConfig {
            seed,
            replicas: 1,
            spread_pm: Self::DEFAULT_SPREAD_PM,
            hedge_deadline_cycles: Self::DEFAULT_HEDGE_DEADLINE_CYCLES,
            kill: None,
        }
    }

    /// Whether there is an actual choice of mirrors. A one-mirror set
    /// perturbs no timeline: results are byte-identical to no replica
    /// config at all.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.replicas >= 2
    }

    /// The base-timeline cycle from which the session must fail closed
    /// to strict execution because a kill leaves a sole surviving
    /// mirror, if this config has one.
    #[must_use]
    pub fn sole_survivor_from(&self) -> Option<u64> {
        match self.kill {
            Some(k) if self.replicas == 2 && k.replica < self.replicas => Some(k.at_cycle),
            _ => None,
        }
    }

    /// The netsim-level mirror profiles this config and the session's
    /// fault/outage settings lower to. Mirror `i` runs the session's
    /// fault rates under its own sub-seed (a perfect plan when faults
    /// are off) and the session's outage rates under its own sub-seed
    /// (quiet when outages are off); server-side outage draws are
    /// salted apart from the client-side ambient schedule.
    #[must_use]
    pub fn profiles(&self, config: &SimConfig) -> Vec<ReplicaProfile> {
        let n = self.replicas.clamp(1, Self::MAX_REPLICAS);
        (0..n)
            .map(|i| {
                let cpb = u128::from(config.link.cycles_per_byte)
                    * (1_000_000 + u128::from(self.spread_pm) * u128::from(i))
                    / 1_000_000;
                let link = Link {
                    cycles_per_byte: u64::try_from(cpb).unwrap_or(u64::MAX),
                    name: config.link.name,
                };
                let faults = config.active_faults().map_or_else(
                    || FaultPlan::perfect(replica_seed(self.seed, i)),
                    |fc| {
                        let mut plan = fc.plan();
                        plan.seed = replica_seed(plan.seed, i);
                        plan
                    },
                );
                let outages = config.active_outages().map_or_else(
                    || OutagePlan::quiet(replica_seed(self.seed, i)),
                    |oc| {
                        let mut plan = oc.plan();
                        plan.seed = replica_seed(plan.seed ^ 0x6d69_7272_6f72_5f73, i);
                        plan
                    },
                );
                let dead_from = self.kill.filter(|k| k.replica == i).map(|k| k.at_cycle);
                ReplicaProfile {
                    link,
                    faults,
                    outages,
                    dead_from,
                }
            })
            .collect()
    }
}

/// Byzantine-misbehavior injection settings: how many of the replica
/// set's mirrors serve wrong bytes, in which way, and how aggressively
/// the client cross-audits the fleet. Only meaningful layered on an
/// active [`ReplicaConfig`]; stays `Copy`, `Eq`, and `Hash` like the
/// rest of [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ByzantineConfig {
    /// Seed for every misbehavior and audit draw; same seed, same
    /// divergences, bit for bit.
    pub seed: u64,
    /// Number of misbehaving mirrors. The *highest-indexed* `mirrors`
    /// replicas of the set misbehave, so mirror 0 (the base-seed
    /// origin) stays honest whenever `mirrors < replicas`. 0 is an
    /// all-honest fleet: byte-identical to no byzantine config at all,
    /// at any audit rate.
    pub mirrors: u32,
    /// What the misbehaving mirrors do.
    pub mode: ByzantineMode,
    /// Cross-mirror audit sampling rate (ppm): the fraction of units
    /// re-fetched from a second mirror and compared byte-for-byte,
    /// which is the only defense that catches manifest-colluding
    /// mirrors.
    pub audit_rate_pm: u32,
}

impl ByzantineConfig {
    /// Default cross-mirror audit rate: 5% of units.
    pub const DEFAULT_AUDIT_RATE_PM: u32 = 50_000;

    /// A byzantine config with zero misbehaving mirrors under `seed` —
    /// the manifest layer is described but never armed.
    #[must_use]
    pub fn seeded(seed: u64) -> ByzantineConfig {
        ByzantineConfig {
            seed,
            mirrors: 0,
            mode: ByzantineMode::default(),
            audit_rate_pm: Self::DEFAULT_AUDIT_RATE_PM,
        }
    }

    /// Whether any mirror can actually misbehave. An inactive config
    /// arms no manifest layer, charges no integrity cycles, and
    /// perturbs no timeline: results are byte-identical to an honest
    /// fleet.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.mirrors >= 1
    }

    /// The netsim-level realization of this config. `manifest_bytes`
    /// is the wire size of the session's unit manifest, which the
    /// client re-pins after an epoch fence.
    #[must_use]
    pub fn plan(&self, manifest_bytes: u64) -> ByzantinePlan {
        ByzantinePlan {
            seed: self.seed,
            byzantine: self.mirrors,
            mode: self.mode,
            audit_rate_pm: self.audit_rate_pm,
            manifest_bytes,
        }
    }
}

/// When class-file verification runs and how much of it gates
/// execution (§3.1.1's five-step check mapped onto the stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyMode {
    /// No verification is charged or gated — the seed repo's behaviour,
    /// and the default, so existing results stay byte-identical.
    #[default]
    Off,
    /// Verified-prefix streaming: steps 1–2 run when a class's global
    /// data arrives, steps 3–4 run per method at delimiter arrival; a
    /// method may execute only once its prefix is verified. A class
    /// demoted to strict demand-fetch pays a full-file re-verify.
    Stream,
    /// Whole-file verification: every class is verified in full before
    /// any of its methods may run, as a strict 1998 JVM would.
    Full,
}

impl VerifyMode {
    /// Short label for reports and CSV columns.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Stream => "stream",
            VerifyMode::Full => "full",
        }
    }

    /// Parses a CLI-style label (the inverse of [`Self::label`]).
    #[must_use]
    pub fn parse(s: &str) -> Option<VerifyMode> {
        match s {
            "off" => Some(VerifyMode::Off),
            "stream" => Some(VerifyMode::Stream),
            "full" => Some(VerifyMode::Full),
            _ => None,
        }
    }
}

/// One complete simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// The network link.
    pub link: Link,
    /// First-use ordering source.
    pub ordering: OrderingSource,
    /// Transfer policy.
    pub transfer: TransferPolicy,
    /// Global-data layout.
    pub data_layout: DataLayout,
    /// Execution model.
    pub execution: ExecutionModel,
    /// Link-fault injection; `None` (or an all-zero config) is a
    /// perfect link.
    pub faults: Option<FaultConfig>,
    /// Verification mode: whether execution is gated on verified
    /// prefixes and verify cycles are charged.
    pub verify: VerifyMode,
    /// Full connection-loss injection; `None` (or a zero-rate config)
    /// never interrupts the session.
    pub outages: Option<OutageConfig>,
    /// Replica-set transfer; `None` (or a one-mirror config) is the
    /// single origin server.
    pub replicas: Option<ReplicaConfig>,
    /// Byzantine-misbehavior injection over the replica set; `None`
    /// (or a zero-mirror config, or no active replica set to misbehave
    /// in) is an honest fleet with no manifest layer armed.
    pub byzantine: Option<ByzantineConfig>,
}

impl SimConfig {
    /// The paper's baseline: strict execution, strict sequential
    /// transfer, source order, whole globals. Its total time is exactly
    /// `transfer + execution` with no overlap (Table 3).
    #[must_use]
    pub fn strict(link: Link) -> Self {
        SimConfig {
            link,
            ordering: OrderingSource::SourceOrder,
            transfer: TransferPolicy::Strict,
            data_layout: DataLayout::Whole,
            execution: ExecutionModel::Strict,
            faults: None,
            verify: VerifyMode::Off,
            outages: None,
            replicas: None,
            byzantine: None,
        }
    }

    /// A typical non-strict configuration: restructured by `ordering`,
    /// parallel transfer with the HTTP/1.1-style limit of four.
    #[must_use]
    pub fn non_strict(link: Link, ordering: OrderingSource) -> Self {
        SimConfig {
            link,
            ordering,
            transfer: TransferPolicy::Parallel { limit: 4 },
            data_layout: DataLayout::Whole,
            execution: ExecutionModel::NonStrict,
            faults: None,
            verify: VerifyMode::Off,
            outages: None,
            replicas: None,
            byzantine: None,
        }
    }

    /// This configuration with fault injection enabled.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// This configuration with `verify` as its verification mode.
    #[must_use]
    pub fn with_verify(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }

    /// This configuration with outage injection enabled.
    #[must_use]
    pub fn with_outages(mut self, outages: OutageConfig) -> Self {
        self.outages = Some(outages);
        self
    }

    /// This configuration with replica-set transfer enabled.
    #[must_use]
    pub fn with_replicas(mut self, replicas: ReplicaConfig) -> Self {
        self.replicas = Some(replicas);
        self
    }

    /// This configuration with byzantine misbehavior injected into the
    /// replica set.
    #[must_use]
    pub fn with_byzantine(mut self, byzantine: ByzantineConfig) -> Self {
        self.byzantine = Some(byzantine);
        self
    }

    /// The fault config, if it can actually perturb the run. An
    /// all-zero config is normalized away here so every consumer treats
    /// it exactly like `None`.
    #[must_use]
    pub fn active_faults(&self) -> Option<FaultConfig> {
        self.faults.filter(FaultConfig::is_active)
    }

    /// The outage config, if it can actually interrupt the run. A
    /// zero-rate config is normalized away here so every consumer
    /// treats it exactly like `None` — outage-free runs stay
    /// byte-identical to the committed results.
    #[must_use]
    pub fn active_outages(&self) -> Option<OutageConfig> {
        self.outages.filter(OutageConfig::is_active)
    }

    /// The replica config, if there is an actual choice of mirrors. A
    /// one-mirror set is normalized away here so every consumer treats
    /// it exactly like `None` — single-origin runs stay byte-identical
    /// to the committed results.
    #[must_use]
    pub fn active_replicas(&self) -> Option<ReplicaConfig> {
        self.replicas.filter(ReplicaConfig::is_active)
    }

    /// The byzantine config, if a mirror can actually misbehave. A
    /// zero-mirror config — or any byzantine config without an active
    /// replica set to misbehave inside — is normalized away here so
    /// every consumer treats it exactly like `None`: honest-fleet runs
    /// stay byte-identical to the committed results at any audit rate.
    #[must_use]
    pub fn active_byzantine(&self) -> Option<ByzantineConfig> {
        self.active_replicas()?;
        self.byzantine.filter(ByzantineConfig::is_active)
    }

    /// Whether this is the no-overlap strict baseline.
    #[must_use]
    pub fn is_baseline(&self) -> bool {
        self.execution == ExecutionModel::Strict && self.transfer == TransferPolicy::Strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(OrderingSource::StaticCallGraph.label(), "SCG");
        assert_eq!(OrderingSource::TrainProfile.label(), "Train");
        assert_eq!(TransferPolicy::Parallel { limit: 4 }.label(), "par(4)");
        assert_eq!(
            TransferPolicy::Parallel { limit: usize::MAX }.label(),
            "par(inf)"
        );
    }

    #[test]
    fn baseline_detection() {
        assert!(SimConfig::strict(Link::T1).is_baseline());
        assert!(!SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph).is_baseline());
    }

    #[test]
    fn inactive_fault_configs_are_normalized_away() {
        let zero = FaultConfig::seeded(42);
        assert!(!zero.is_active());
        let cfg = SimConfig::strict(Link::T1).with_faults(zero);
        assert_eq!(
            cfg.active_faults(),
            None,
            "all-zero rates behave like a perfect link"
        );
        let mut lossy = zero;
        lossy.loss_pm = 10_000;
        assert_eq!(cfg.with_faults(lossy).active_faults(), Some(lossy));
    }

    #[test]
    fn verify_mode_labels_round_trip() {
        for mode in [VerifyMode::Off, VerifyMode::Stream, VerifyMode::Full] {
            assert_eq!(VerifyMode::parse(mode.label()), Some(mode));
        }
        assert_eq!(VerifyMode::parse("streaming"), None);
        assert_eq!(VerifyMode::default(), VerifyMode::Off);
    }

    #[test]
    fn inactive_outage_configs_are_normalized_away() {
        let zero = OutageConfig::seeded(42);
        assert!(!zero.is_active());
        let cfg = SimConfig::strict(Link::T1).with_outages(zero);
        assert_eq!(
            cfg.active_outages(),
            None,
            "a zero-rate outage config never interrupts"
        );
        let mut stormy = zero;
        stormy.rate_pm = 10_000;
        assert_eq!(cfg.with_outages(stormy).active_outages(), Some(stormy));
        let mut zero_len = stormy;
        zero_len.max_cycles = 0;
        assert!(!zero_len.is_active(), "zero-length outages are no outages");
    }

    #[test]
    fn outage_config_lowers_to_a_matching_plan() {
        let mut oc = OutageConfig::seeded(7);
        oc.rate_pm = 2_000;
        let plan = oc.plan();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.rate_pm, 2_000);
        assert_eq!(plan.min_cycles, OutageConfig::DEFAULT_MIN_CYCLES);
        assert_eq!(plan.max_cycles, OutageConfig::DEFAULT_MAX_CYCLES);
        assert_eq!(
            plan.negotiation_cycles,
            OutageConfig::DEFAULT_NEGOTIATION_CYCLES
        );
    }

    #[test]
    fn semantic_rate_alone_activates_the_fault_config() {
        let mut fc = FaultConfig::seeded(9);
        assert!(!fc.is_active());
        fc.semantic_pm = 5_000;
        assert!(fc.is_active());
        assert_eq!(fc.plan().semantic_pm, 5_000);
    }

    #[test]
    fn single_origin_replica_configs_are_normalized_away() {
        let solo = ReplicaConfig::seeded(42);
        assert!(!solo.is_active());
        let cfg = SimConfig::strict(Link::T1).with_replicas(solo);
        assert_eq!(
            cfg.active_replicas(),
            None,
            "one mirror is the single origin"
        );
        let mut pair = solo;
        pair.replicas = 2;
        assert_eq!(cfg.with_replicas(pair).active_replicas(), Some(pair));
    }

    #[test]
    fn replica_profiles_spread_bandwidth_and_seeds() {
        let mut rc = ReplicaConfig::seeded(7);
        rc.replicas = 3;
        let mut fc = FaultConfig::seeded(99);
        fc.loss_pm = 1_000;
        let cfg = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph).with_faults(fc);
        let profiles = rc.profiles(&cfg);
        assert_eq!(profiles.len(), 3);
        assert_eq!(
            profiles[0].link.cycles_per_byte,
            Link::T1.cycles_per_byte,
            "mirror 0 is the base link"
        );
        assert!(profiles[1].link.cycles_per_byte > profiles[0].link.cycles_per_byte);
        assert!(profiles[2].link.cycles_per_byte > profiles[1].link.cycles_per_byte);
        assert_eq!(profiles[0].faults.seed, 99, "mirror 0 keeps the base seed");
        assert_ne!(profiles[1].faults.seed, profiles[2].faults.seed);
        assert!(profiles.iter().all(|p| p.faults.loss_pm == 1_000));
        assert!(profiles.iter().all(|p| p.outages.is_quiet()));
        assert!(profiles.iter().all(|p| p.dead_from.is_none()));
    }

    #[test]
    fn sole_survivor_needs_a_kill_on_a_two_mirror_set() {
        let mut rc = ReplicaConfig::seeded(1);
        rc.replicas = 2;
        assert_eq!(rc.sole_survivor_from(), None);
        rc.kill = Some(ReplicaKill {
            replica: 0,
            at_cycle: 500,
        });
        assert_eq!(rc.sole_survivor_from(), Some(500));
        rc.replicas = 3;
        assert_eq!(rc.sole_survivor_from(), None, "two mirrors survive");
        let profiles = rc.profiles(&SimConfig::strict(Link::T1));
        assert_eq!(profiles[0].dead_from, Some(500));
        assert_eq!(profiles[1].dead_from, None);
    }

    #[test]
    fn inactive_byzantine_configs_are_normalized_away() {
        let honest = ByzantineConfig::seeded(42);
        assert!(!honest.is_active());
        let mut rc = ReplicaConfig::seeded(7);
        rc.replicas = 3;
        let cfg = SimConfig::strict(Link::T1)
            .with_replicas(rc)
            .with_byzantine(honest);
        assert_eq!(
            cfg.active_byzantine(),
            None,
            "zero misbehaving mirrors is an honest fleet"
        );
        let mut byz = honest;
        byz.mirrors = 1;
        assert_eq!(cfg.with_byzantine(byz).active_byzantine(), Some(byz));
    }

    #[test]
    fn byzantine_without_an_active_replica_set_is_inert() {
        let mut byz = ByzantineConfig::seeded(3);
        byz.mirrors = 2;
        let solo = SimConfig::strict(Link::T1).with_byzantine(byz);
        assert_eq!(
            solo.active_byzantine(),
            None,
            "no replica set means no mirrors to misbehave"
        );
        let one_mirror = solo.with_replicas(ReplicaConfig::seeded(7));
        assert_eq!(one_mirror.active_byzantine(), None);
    }

    #[test]
    fn byzantine_config_lowers_to_a_matching_plan() {
        let mut bc = ByzantineConfig::seeded(11);
        bc.mirrors = 2;
        bc.mode = ByzantineMode::Collude;
        bc.audit_rate_pm = 125_000;
        let plan = bc.plan(4_096);
        assert_eq!(plan.seed, 11);
        assert_eq!(plan.byzantine, 2);
        assert_eq!(plan.mode, ByzantineMode::Collude);
        assert_eq!(plan.audit_rate_pm, 125_000);
        assert_eq!(plan.manifest_bytes, 4_096);
    }

    #[test]
    fn fault_config_lowers_to_a_matching_plan() {
        let mut fc = FaultConfig::seeded(7);
        fc.loss_pm = 1_000;
        fc.droop_pm = 2_000;
        let plan = fc.plan();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.loss_pm, 1_000);
        assert_eq!(plan.droop_pm, 2_000);
        assert_eq!(plan.reconnect_cycles, FaultConfig::DEFAULT_RECONNECT_CYCLES);
    }
}
