//! Simulation configuration: the paper's design space as one type.

use nonstrict_netsim::Link;

/// How method first-use order is predicted (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingSource {
    /// No restructuring: methods stay in source order (the baseline
    /// layout).
    SourceOrder,
    /// Static first-use estimation over the interprocedural CFG (§4.1) —
    /// the paper's "SCG" columns.
    StaticCallGraph,
    /// First-use profile from the **Train** input (§4.2) — realistic
    /// profile guidance.
    TrainProfile,
    /// First-use profile from the **Test** input — perfect prediction,
    /// the paper's upper bound.
    TestProfile,
}

impl OrderingSource {
    /// The paper's column label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            OrderingSource::SourceOrder => "Src",
            OrderingSource::StaticCallGraph => "SCG",
            OrderingSource::TrainProfile => "Train",
            OrderingSource::TestProfile => "Test",
        }
    }
}

/// How bytes move (§5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransferPolicy {
    /// One class at a time, to completion, full bandwidth — the 1998
    /// JVM's behaviour.
    Strict,
    /// Parallel file transfer: up to `limit` classes share bandwidth,
    /// started by the greedy dependency schedule, corrected by demand
    /// fetches (§5.1). Use `usize::MAX` for the paper's "Inf." column.
    Parallel {
        /// Maximum concurrently transferring class files.
        limit: usize,
    },
    /// The single virtual interleaved file (§5.2).
    Interleaved,
}

impl TransferPolicy {
    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            TransferPolicy::Strict => "strict".to_owned(),
            TransferPolicy::Parallel { limit: usize::MAX } => "par(inf)".to_owned(),
            TransferPolicy::Parallel { limit } => format!("par({limit})"),
            TransferPolicy::Interleaved => "ilv".to_owned(),
        }
    }
}

/// When a method may begin executing (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionModel {
    /// A method runs only after its whole class file arrived.
    Strict,
    /// A method runs once the class's global data and the method's own
    /// data, code, and delimiter arrived.
    NonStrict,
}

/// How each class's global data is laid out on the wire (§7.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataLayout {
    /// All global data precedes the first method.
    Whole,
    /// Needed-first slice up front, per-method GMD chunks, unused data
    /// trailing.
    Partitioned,
}

/// One complete simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimConfig {
    /// The network link.
    pub link: Link,
    /// First-use ordering source.
    pub ordering: OrderingSource,
    /// Transfer policy.
    pub transfer: TransferPolicy,
    /// Global-data layout.
    pub data_layout: DataLayout,
    /// Execution model.
    pub execution: ExecutionModel,
}

impl SimConfig {
    /// The paper's baseline: strict execution, strict sequential
    /// transfer, source order, whole globals. Its total time is exactly
    /// `transfer + execution` with no overlap (Table 3).
    #[must_use]
    pub fn strict(link: Link) -> Self {
        SimConfig {
            link,
            ordering: OrderingSource::SourceOrder,
            transfer: TransferPolicy::Strict,
            data_layout: DataLayout::Whole,
            execution: ExecutionModel::Strict,
        }
    }

    /// A typical non-strict configuration: restructured by `ordering`,
    /// parallel transfer with the HTTP/1.1-style limit of four.
    #[must_use]
    pub fn non_strict(link: Link, ordering: OrderingSource) -> Self {
        SimConfig {
            link,
            ordering,
            transfer: TransferPolicy::Parallel { limit: 4 },
            data_layout: DataLayout::Whole,
            execution: ExecutionModel::NonStrict,
        }
    }

    /// Whether this is the no-overlap strict baseline.
    #[must_use]
    pub fn is_baseline(&self) -> bool {
        self.execution == ExecutionModel::Strict && self.transfer == TransferPolicy::Strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_columns() {
        assert_eq!(OrderingSource::StaticCallGraph.label(), "SCG");
        assert_eq!(OrderingSource::TrainProfile.label(), "Train");
        assert_eq!(TransferPolicy::Parallel { limit: 4 }.label(), "par(4)");
        assert_eq!(TransferPolicy::Parallel { limit: usize::MAX }.label(), "par(inf)");
    }

    #[test]
    fn baseline_detection() {
        assert!(SimConfig::strict(Link::T1).is_baseline());
        assert!(!SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph).is_baseline());
    }
}
