//! The chaos conductor: composed cross-layer fault scenarios.
//!
//! PRs 1–6 built six independent fault dimensions — link faults,
//! semantic quarantine, outages/checkpoint-resume, replica
//! kills/hedging, fleet overload, and Byzantine mirrors — each swept
//! alone; PR 10 added a seventh, storage faults, where the interrupt
//! journal's disk round trip crosses a fault-injecting store. This
//! module composes **any subset** of them into one seeded,
//! deterministic run and checks the composition against the global
//! contracts the per-dimension suites established:
//!
//! * [`ChaosScenario`] — a declarative, serializable description of one
//!   composed run: benchmark, structural dimensions (link, ordering,
//!   transfer, layout, execution, verify), and the six fault
//!   dimensions, each optional. The text form ([`ChaosScenario::encode`]
//!   / [`ChaosScenario::decode`], `NSCR 1`) is the repro artifact
//!   format replayed by `paper chaos --repro`.
//! * [`run_scenario`] — runs the scenario and applies the **global
//!   invariant checker**: eight-bucket ledger exactness (checked in
//!   release builds too, not just via `debug_assert`), all-dimensions-
//!   quiet byte-identity, journal watermark/clock monotonicity,
//!   fail-closed degradation on a torn journal, and a mid-run
//!   crash/resume equivalence probe.
//! * [`crash_anywhere`] — the differential engine: interrupts and
//!   resumes the composed run at **every** unit boundary (found by
//!   binary search on the journal's delivered watermark, the PR 3
//!   pattern lifted to arbitrary compositions) and records any bucket
//!   that diverges from the uninterrupted run instead of panicking, so
//!   the shrinker can consume failures.
//! * [`shrink`] — a delta-debugging minimizer: drops whole dimensions,
//!   then binary-searches rates, seeds, and interrupt points down to a
//!   minimal still-failing scenario, bounded by a predicate-call
//!   budget.
//! * [`replay_repro`] — decodes a repro artifact, rebuilds the
//!   benchmark session, reruns the scenario, and renders a
//!   deterministic report — same text, bit for bit, on every replay.
//!
//! The overload dimension drives [`crate::fleet::run_fleet`] and is
//! checked for per-client ledger exactness; it cannot be combined with
//! an interrupt point (a fleet has no single journal to crash), which
//! [`ChaosScenario::decode`] rejects as [`ScenarioError::Conflict`].

use std::fmt;
use std::sync::Arc;

use nonstrict_bytecode::Input;
use nonstrict_netsim::byzantine::ByzantineMode;
use nonstrict_netsim::contention::ShedLadder;
use nonstrict_netsim::Link;
use nonstrict_store::{FaultFs, JournalLog};
use nonstrict_wire::SplitMix64;

use crate::fleet::{run_fleet, AdmissionSettings, FleetClient, FleetSpec};
use crate::journal::SessionJournal;
use crate::model::{
    ByzantineConfig, DataLayout, ExecutionModel, FaultConfig, OrderingSource, OutageConfig,
    ReplicaConfig, ReplicaKill, SimConfig, TransferPolicy, VerifyMode,
};
use crate::sim::{RunOutcome, Session, SimResult};

/// Magic first line of the serialized scenario format.
pub const SCENARIO_MAGIC: &str = "NSCR";

/// Current scenario format version.
pub const SCENARIO_VERSION: u32 = 1;

/// The overload dimension: how many clients contend for the scenario
/// link as a shared egress pipe, under which admission and shed
/// settings. Lowered to a [`crate::fleet::FleetSpec`] by
/// [`run_scenario`]. Inactive below two clients, mirroring the other
/// dimensions' armed-but-quiet normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OverloadDims {
    /// Fleet seed: arrival offsets and backoff jitter.
    pub seed: u64,
    /// Number of contending clients (all running this scenario's
    /// benchmark); 0 or 1 is no contention at all.
    pub clients: u32,
    /// Per-client access-link spread (ppm): client `i`'s
    /// cycles-per-byte is the scenario link's scaled by
    /// `1 + i * spread_pm / 1e6`.
    pub spread_pm: u32,
    /// Token-bucket admission rate per period; 0 disables admission
    /// control.
    pub admit_rate: u32,
    /// Load-shed ladder; `None` serves every client unmodified.
    pub ladder: Option<ShedLadder>,
}

impl OverloadDims {
    /// An overload config with a single client under `seed` — the
    /// fleet machinery is armed but there is no one to contend with.
    #[must_use]
    pub fn seeded(seed: u64) -> OverloadDims {
        OverloadDims {
            seed,
            clients: 1,
            spread_pm: ReplicaConfig::DEFAULT_SPREAD_PM,
            admit_rate: 0,
            ladder: None,
        }
    }

    /// Whether any contention can actually occur.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.clients >= 2
    }
}

/// Where to crash the composed run: the interrupt dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterruptDims {
    /// Base-timeline cycle of the kill.
    pub at_cycle: u64,
    /// Client downtime before the reconnect, charged to the resume
    /// bucket.
    pub downtime: u64,
}

/// The storage-fault dimension: the journal written at a crash no
/// longer lives in perfect memory but passes through a
/// [`nonstrict_store::FaultFs`] with these knobs — torn appends, fsync
/// lies, post-hoc bit rot. The invariant is the store's contract: a
/// journal that survives the round trip intact resumes exactly; one
/// that does not must be *detected* and degrade to a fail-closed
/// restart that still completes. Inactive with all rates zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DiskDims {
    /// Storage-fault seed.
    pub seed: u64,
    /// Per-append probability (ppm) the power cut tears the write at a
    /// seeded byte.
    pub torn_pm: u32,
    /// Per-operation probability (ppm) an acknowledged write never
    /// becomes durable.
    pub lie_pm: u32,
    /// Per-file probability (ppm) of one flipped bit after the crash.
    pub bitrot_pm: u32,
}

impl DiskDims {
    /// A disk config armed under `seed` with every fault rate zero.
    #[must_use]
    pub fn seeded(seed: u64) -> DiskDims {
        DiskDims {
            seed,
            torn_pm: 0,
            lie_pm: 0,
            bitrot_pm: 0,
        }
    }

    /// Whether any storage fault can actually fire.
    #[must_use]
    pub fn is_active(&self) -> bool {
        self.torn_pm > 0 || self.lie_pm > 0 || self.bitrot_pm > 0
    }
}

/// One composed chaos scenario: every structural dimension plus any
/// subset of the seven fault dimensions, fully seeded and
/// deterministic. Equal scenarios produce bit-identical runs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ChaosScenario {
    /// Benchmark name ([`nonstrict_workloads::build_by_name`]).
    pub bench: String,
    /// The network link (and the fleet egress under overload).
    pub link: Link,
    /// First-use ordering source.
    pub ordering: OrderingSource,
    /// Transfer policy.
    pub transfer: TransferPolicy,
    /// Global-data layout.
    pub data_layout: DataLayout,
    /// Execution model.
    pub execution: ExecutionModel,
    /// Verification mode.
    pub verify: VerifyMode,
    /// Link-fault dimension.
    pub faults: Option<FaultConfig>,
    /// Outage dimension.
    pub outages: Option<OutageConfig>,
    /// Replica-set dimension.
    pub replicas: Option<ReplicaConfig>,
    /// Byzantine-mirror dimension.
    pub byzantine: Option<ByzantineConfig>,
    /// Overload dimension (fleet contention).
    pub overload: Option<OverloadDims>,
    /// Crash/resume dimension.
    pub interrupt: Option<InterruptDims>,
    /// Storage-fault dimension (the journal's disk round trip).
    pub disk: Option<DiskDims>,
}

impl ChaosScenario {
    /// A quiet scenario: every fault dimension absent.
    #[must_use]
    pub fn new(bench: &str, link: Link, ordering: OrderingSource) -> ChaosScenario {
        ChaosScenario {
            bench: bench.to_owned(),
            link,
            ordering,
            transfer: TransferPolicy::Parallel { limit: 4 },
            data_layout: DataLayout::Whole,
            execution: ExecutionModel::NonStrict,
            verify: VerifyMode::Off,
            faults: None,
            outages: None,
            replicas: None,
            byzantine: None,
            overload: None,
            interrupt: None,
            disk: None,
        }
    }

    /// This scenario with the link-fault dimension set.
    #[must_use]
    pub fn with_faults(mut self, fc: FaultConfig) -> Self {
        self.faults = Some(fc);
        self
    }

    /// This scenario with the outage dimension set.
    #[must_use]
    pub fn with_outages(mut self, oc: OutageConfig) -> Self {
        self.outages = Some(oc);
        self
    }

    /// This scenario with the replica dimension set.
    #[must_use]
    pub fn with_replicas(mut self, rc: ReplicaConfig) -> Self {
        self.replicas = Some(rc);
        self
    }

    /// This scenario with the byzantine dimension set.
    #[must_use]
    pub fn with_byzantine(mut self, bc: ByzantineConfig) -> Self {
        self.byzantine = Some(bc);
        self
    }

    /// This scenario with the overload dimension set.
    #[must_use]
    pub fn with_overload(mut self, ov: OverloadDims) -> Self {
        self.overload = Some(ov);
        self
    }

    /// This scenario with the crash/resume dimension set.
    #[must_use]
    pub fn with_interrupt(mut self, at_cycle: u64, downtime: u64) -> Self {
        self.interrupt = Some(InterruptDims { at_cycle, downtime });
        self
    }

    /// This scenario with the storage-fault dimension set.
    #[must_use]
    pub fn with_disk(mut self, d: DiskDims) -> Self {
        self.disk = Some(d);
        self
    }

    /// This scenario with `verify` as its verification mode.
    #[must_use]
    pub fn with_verify(mut self, verify: VerifyMode) -> Self {
        self.verify = verify;
        self
    }

    /// The single-client [`SimConfig`] this scenario lowers to.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        SimConfig {
            link: self.link,
            ordering: self.ordering,
            transfer: self.transfer,
            data_layout: self.data_layout,
            execution: self.execution,
            verify: self.verify,
            faults: self.faults,
            outages: self.outages,
            replicas: self.replicas,
            byzantine: self.byzantine,
        }
    }

    /// The overload dimension, if it can actually contend.
    #[must_use]
    pub fn active_overload(&self) -> Option<OverloadDims> {
        self.overload.filter(OverloadDims::is_active)
    }

    /// The storage-fault dimension, if any fault can actually fire.
    #[must_use]
    pub fn active_disk(&self) -> Option<DiskDims> {
        self.disk.filter(DiskDims::is_active)
    }

    /// Whether every fault dimension is absent or armed-but-inactive:
    /// such a scenario must be byte-identical to the stripped run (the
    /// all-rates-zero identity every per-dimension suite pins).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        let c = self.config();
        c.active_faults().is_none()
            && c.active_outages().is_none()
            && c.active_replicas().is_none()
            && c.active_byzantine().is_none()
            && self.active_overload().is_none()
            && self.interrupt.is_none()
            && self.active_disk().is_none()
    }

    /// Short `+`-joined label of the *active* dimensions, `"quiet"`
    /// when none are.
    #[must_use]
    pub fn label(&self) -> String {
        let c = self.config();
        let mut parts = Vec::new();
        if c.active_faults().is_some() {
            parts.push("faults");
        }
        if self.verify != VerifyMode::Off {
            parts.push("verify");
        }
        if c.active_outages().is_some() {
            parts.push("outage");
        }
        if c.active_replicas().is_some() {
            parts.push("replicas");
        }
        if c.active_byzantine().is_some() {
            parts.push("byz");
        }
        if self.active_overload().is_some() {
            parts.push("overload");
        }
        if self.interrupt.is_some() {
            parts.push("crash");
        }
        if self.active_disk().is_some() {
            parts.push("disk");
        }
        if parts.is_empty() {
            "quiet".to_owned()
        } else {
            parts.join("+")
        }
    }

    /// Serializes this scenario as an `NSCR 1` repro artifact:
    /// newline-terminated `key = value` lines in a fixed order, so
    /// `encode ∘ decode` is the identity and equal scenarios produce
    /// identical bytes.
    #[must_use]
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("{SCENARIO_MAGIC} {SCENARIO_VERSION}\n");
        let _ = writeln!(s, "bench = {}", self.bench);
        let _ = writeln!(s, "link = {}", encode_link(self.link));
        let _ = writeln!(s, "ordering = {}", encode_ordering(self.ordering));
        let _ = writeln!(s, "transfer = {}", encode_transfer(self.transfer));
        let _ = writeln!(s, "layout = {}", encode_layout(self.data_layout));
        let _ = writeln!(s, "execution = {}", encode_execution(self.execution));
        let _ = writeln!(s, "verify = {}", self.verify.label());
        if let Some(fc) = self.faults {
            let _ = writeln!(s, "fault.seed = {}", fc.seed);
            let _ = writeln!(s, "fault.loss_pm = {}", fc.loss_pm);
            let _ = writeln!(s, "fault.corrupt_pm = {}", fc.corrupt_pm);
            let _ = writeln!(s, "fault.drop_pm = {}", fc.drop_pm);
            let _ = writeln!(s, "fault.droop_pm = {}", fc.droop_pm);
            let _ = writeln!(s, "fault.semantic_pm = {}", fc.semantic_pm);
            let _ = writeln!(s, "fault.reconnect_cycles = {}", fc.reconnect_cycles);
            let _ = writeln!(s, "fault.degrade_threshold = {}", fc.degrade_threshold);
        }
        if let Some(oc) = self.outages {
            let _ = writeln!(s, "outage.seed = {}", oc.seed);
            let _ = writeln!(s, "outage.rate_pm = {}", oc.rate_pm);
            let _ = writeln!(s, "outage.min_cycles = {}", oc.min_cycles);
            let _ = writeln!(s, "outage.max_cycles = {}", oc.max_cycles);
            let _ = writeln!(s, "outage.negotiation_cycles = {}", oc.negotiation_cycles);
        }
        if let Some(rc) = self.replicas {
            let _ = writeln!(s, "replica.seed = {}", rc.seed);
            let _ = writeln!(s, "replica.replicas = {}", rc.replicas);
            let _ = writeln!(s, "replica.spread_pm = {}", rc.spread_pm);
            let _ = writeln!(
                s,
                "replica.hedge_deadline_cycles = {}",
                rc.hedge_deadline_cycles
            );
            if let Some(k) = rc.kill {
                let _ = writeln!(s, "replica.kill = {}@{}", k.replica, k.at_cycle);
            }
        }
        if let Some(bc) = self.byzantine {
            let _ = writeln!(s, "byz.seed = {}", bc.seed);
            let _ = writeln!(s, "byz.mirrors = {}", bc.mirrors);
            let _ = writeln!(s, "byz.mode = {}", bc.mode.label());
            let _ = writeln!(s, "byz.audit_rate_pm = {}", bc.audit_rate_pm);
        }
        if let Some(ov) = self.overload {
            let _ = writeln!(s, "overload.seed = {}", ov.seed);
            let _ = writeln!(s, "overload.clients = {}", ov.clients);
            let _ = writeln!(s, "overload.spread_pm = {}", ov.spread_pm);
            let _ = writeln!(s, "overload.admit_rate = {}", ov.admit_rate);
            if let Some(l) = ov.ladder {
                let _ = writeln!(
                    s,
                    "overload.ladder = {}/{}/{}",
                    l.drop_hedges, l.force_strict, l.shed
                );
            }
        }
        if let Some(i) = self.interrupt {
            let _ = writeln!(s, "interrupt.at_cycle = {}", i.at_cycle);
            let _ = writeln!(s, "interrupt.downtime = {}", i.downtime);
        }
        if let Some(d) = self.disk {
            let _ = writeln!(s, "disk.seed = {}", d.seed);
            let _ = writeln!(s, "disk.torn_pm = {}", d.torn_pm);
            let _ = writeln!(s, "disk.lie_pm = {}", d.lie_pm);
            let _ = writeln!(s, "disk.bitrot_pm = {}", d.bitrot_pm);
        }
        s
    }

    /// Parses an `NSCR 1` repro artifact (the inverse of
    /// [`Self::encode`]). Accepts blank lines and `#` comments; keys
    /// may appear in any order but at most once; a dimension's section
    /// materializes (with seeded defaults) as soon as any of its keys
    /// appears.
    ///
    /// # Errors
    ///
    /// Every malformed input maps to a typed [`ScenarioError`] — the
    /// repro loader never panics on hostile bytes.
    pub fn decode(text: &str) -> Result<ChaosScenario, ScenarioError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(ScenarioError::BadMagic)?;
        let mut hp = header.split_ascii_whitespace();
        if hp.next() != Some(SCENARIO_MAGIC) {
            return Err(ScenarioError::BadMagic);
        }
        let version: u32 = hp
            .next()
            .and_then(|v| v.parse().ok())
            .ok_or(ScenarioError::BadMagic)?;
        if version != SCENARIO_VERSION {
            return Err(ScenarioError::BadVersion(version));
        }
        if hp.next().is_some() {
            return Err(ScenarioError::BadMagic);
        }

        let mut sc = ChaosScenario::new("", Link::T1, OrderingSource::StaticCallGraph);
        let mut seen: Vec<String> = Vec::new();
        let mut kill: Option<(u32, u64)> = None;
        let mut ladder: Option<(u64, u64, u64)> = None;
        for raw in lines {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim(), v.trim()))
                .ok_or_else(|| ScenarioError::BadLine(line.to_owned()))?;
            if seen.iter().any(|s| s == key) {
                return Err(ScenarioError::DuplicateKey(key.to_owned()));
            }
            seen.push(key.to_owned());
            let bad = || ScenarioError::BadValue {
                key: key.to_owned(),
                value: value.to_owned(),
            };
            // Typed numeric parsers, shared by every section.
            macro_rules! num {
                () => {
                    value.parse().map_err(|_| bad())?
                };
            }
            match key {
                "bench" => sc.bench = value.to_owned(),
                "link" => sc.link = decode_link(value).ok_or_else(bad)?,
                "ordering" => sc.ordering = decode_ordering(value).ok_or_else(bad)?,
                "transfer" => sc.transfer = decode_transfer(value).ok_or_else(bad)?,
                "layout" => sc.data_layout = decode_layout(value).ok_or_else(bad)?,
                "execution" => sc.execution = decode_execution(value).ok_or_else(bad)?,
                "verify" => sc.verify = VerifyMode::parse(value).ok_or_else(bad)?,
                "fault.seed" => sc.faults.get_or_insert(FaultConfig::seeded(0)).seed = num!(),
                "fault.loss_pm" => sc.faults.get_or_insert(FaultConfig::seeded(0)).loss_pm = num!(),
                "fault.corrupt_pm" => {
                    sc.faults.get_or_insert(FaultConfig::seeded(0)).corrupt_pm = num!();
                }
                "fault.drop_pm" => sc.faults.get_or_insert(FaultConfig::seeded(0)).drop_pm = num!(),
                "fault.droop_pm" => {
                    sc.faults.get_or_insert(FaultConfig::seeded(0)).droop_pm = num!();
                }
                "fault.semantic_pm" => {
                    sc.faults.get_or_insert(FaultConfig::seeded(0)).semantic_pm = num!();
                }
                "fault.reconnect_cycles" => {
                    sc.faults
                        .get_or_insert(FaultConfig::seeded(0))
                        .reconnect_cycles = num!();
                }
                "fault.degrade_threshold" => {
                    sc.faults
                        .get_or_insert(FaultConfig::seeded(0))
                        .degrade_threshold = num!();
                }
                "outage.seed" => sc.outages.get_or_insert(OutageConfig::seeded(0)).seed = num!(),
                "outage.rate_pm" => {
                    sc.outages.get_or_insert(OutageConfig::seeded(0)).rate_pm = num!();
                }
                "outage.min_cycles" => {
                    sc.outages.get_or_insert(OutageConfig::seeded(0)).min_cycles = num!();
                }
                "outage.max_cycles" => {
                    sc.outages.get_or_insert(OutageConfig::seeded(0)).max_cycles = num!();
                }
                "outage.negotiation_cycles" => {
                    sc.outages
                        .get_or_insert(OutageConfig::seeded(0))
                        .negotiation_cycles = num!();
                }
                "replica.seed" => sc.replicas.get_or_insert(ReplicaConfig::seeded(0)).seed = num!(),
                "replica.replicas" => {
                    sc.replicas.get_or_insert(ReplicaConfig::seeded(0)).replicas = num!();
                }
                "replica.spread_pm" => {
                    sc.replicas
                        .get_or_insert(ReplicaConfig::seeded(0))
                        .spread_pm = num!();
                }
                "replica.hedge_deadline_cycles" => {
                    sc.replicas
                        .get_or_insert(ReplicaConfig::seeded(0))
                        .hedge_deadline_cycles = num!();
                }
                "replica.kill" => {
                    let (r, at) = value.split_once('@').ok_or_else(bad)?;
                    kill = Some((
                        r.parse().map_err(|_| bad())?,
                        at.parse().map_err(|_| bad())?,
                    ));
                }
                "byz.seed" => sc.byzantine.get_or_insert(ByzantineConfig::seeded(0)).seed = num!(),
                "byz.mirrors" => {
                    sc.byzantine
                        .get_or_insert(ByzantineConfig::seeded(0))
                        .mirrors = num!();
                }
                "byz.mode" => {
                    sc.byzantine.get_or_insert(ByzantineConfig::seeded(0)).mode =
                        ByzantineMode::parse(value).ok_or_else(bad)?;
                }
                "byz.audit_rate_pm" => {
                    sc.byzantine
                        .get_or_insert(ByzantineConfig::seeded(0))
                        .audit_rate_pm = num!();
                }
                "overload.seed" => sc.overload.get_or_insert(OverloadDims::seeded(0)).seed = num!(),
                "overload.clients" => {
                    sc.overload.get_or_insert(OverloadDims::seeded(0)).clients = num!();
                }
                "overload.spread_pm" => {
                    sc.overload.get_or_insert(OverloadDims::seeded(0)).spread_pm = num!();
                }
                "overload.admit_rate" => {
                    sc.overload
                        .get_or_insert(OverloadDims::seeded(0))
                        .admit_rate = num!();
                }
                "overload.ladder" => {
                    let mut it = value.splitn(3, '/');
                    let mut part = || -> Result<u64, ScenarioError> {
                        it.next().ok_or_else(bad)?.parse().map_err(|_| bad())
                    };
                    ladder = Some((part()?, part()?, part()?));
                }
                "interrupt.at_cycle" => {
                    sc.interrupt
                        .get_or_insert(InterruptDims {
                            at_cycle: 0,
                            downtime: 0,
                        })
                        .at_cycle = num!();
                }
                "interrupt.downtime" => {
                    sc.interrupt
                        .get_or_insert(InterruptDims {
                            at_cycle: 0,
                            downtime: 0,
                        })
                        .downtime = num!();
                }
                "disk.seed" => sc.disk.get_or_insert(DiskDims::seeded(0)).seed = num!(),
                "disk.torn_pm" => sc.disk.get_or_insert(DiskDims::seeded(0)).torn_pm = num!(),
                "disk.lie_pm" => sc.disk.get_or_insert(DiskDims::seeded(0)).lie_pm = num!(),
                "disk.bitrot_pm" => {
                    sc.disk.get_or_insert(DiskDims::seeded(0)).bitrot_pm = num!();
                }
                _ => return Err(ScenarioError::UnknownKey(key.to_owned())),
            }
        }
        if sc.bench.is_empty() {
            return Err(ScenarioError::MissingKey("bench"));
        }
        if let Some((replica, at_cycle)) = kill {
            let rc = sc
                .replicas
                .as_mut()
                .ok_or(ScenarioError::MissingKey("replica.seed"))?;
            rc.kill = Some(ReplicaKill { replica, at_cycle });
        }
        if let Some((drop_hedges, force_strict, shed)) = ladder {
            let ov = sc
                .overload
                .as_mut()
                .ok_or(ScenarioError::MissingKey("overload.seed"))?;
            ov.ladder = Some(
                ShedLadder::new(drop_hedges, force_strict, shed).map_err(|_| {
                    ScenarioError::BadValue {
                        key: "overload.ladder".to_owned(),
                        value: format!("{drop_hedges}/{force_strict}/{shed}"),
                    }
                })?,
            );
        }
        if sc.active_overload().is_some() && sc.interrupt.is_some() {
            return Err(ScenarioError::Conflict(
                "interrupt cannot compose with overload: a fleet has no single journal to crash",
            ));
        }
        Ok(sc)
    }
}

/// Typed decoding errors for the `NSCR` repro format: hostile or stale
/// artifacts fail closed with a diagnosable reason, never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The first line is not `NSCR <version>`.
    BadMagic,
    /// A version this reader does not understand.
    BadVersion(u32),
    /// A line that is neither blank, a comment, nor `key = value`.
    BadLine(String),
    /// A key this reader does not know.
    UnknownKey(String),
    /// A key appeared twice.
    DuplicateKey(String),
    /// A value failed to parse for its key.
    BadValue {
        /// The offending key.
        key: String,
        /// The offending value.
        value: String,
    },
    /// A required key is missing (or a dependent key appeared without
    /// its section anchor).
    MissingKey(&'static str),
    /// Two dimensions that cannot compose were both requested.
    Conflict(&'static str),
    /// The benchmark name matches no known workload.
    UnknownBench(String),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::BadMagic => {
                write!(
                    f,
                    "not a scenario file: expected `{SCENARIO_MAGIC} {SCENARIO_VERSION}`"
                )
            }
            ScenarioError::BadVersion(v) => {
                write!(
                    f,
                    "scenario version {v} is not supported (max {SCENARIO_VERSION})"
                )
            }
            ScenarioError::BadLine(l) => write!(f, "malformed line: {l}"),
            ScenarioError::UnknownKey(k) => write!(f, "unknown key: {k}"),
            ScenarioError::DuplicateKey(k) => write!(f, "duplicate key: {k}"),
            ScenarioError::BadValue { key, value } => write!(f, "bad value for {key}: {value}"),
            ScenarioError::MissingKey(k) => write!(f, "missing key: {k}"),
            ScenarioError::Conflict(why) => write!(f, "conflicting dimensions: {why}"),
            ScenarioError::UnknownBench(b) => write!(f, "unknown benchmark: {b}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn encode_link(link: Link) -> String {
    if link == Link::T1 {
        "t1".to_owned()
    } else if link == Link::MODEM_28_8 {
        "modem".to_owned()
    } else {
        format!("cpb:{}", link.cycles_per_byte)
    }
}

fn decode_link(s: &str) -> Option<Link> {
    if let Some(l) = Link::by_name(s) {
        return Some(l);
    }
    let cpb: u64 = s.strip_prefix("cpb:")?.parse().ok()?;
    Some(Link {
        cycles_per_byte: cpb.max(1),
        name: "custom",
    })
}

fn encode_ordering(o: OrderingSource) -> &'static str {
    match o {
        OrderingSource::SourceOrder => "src",
        OrderingSource::StaticCallGraph => "scg",
        OrderingSource::TrainProfile => "train",
        OrderingSource::TestProfile => "test",
    }
}

fn decode_ordering(s: &str) -> Option<OrderingSource> {
    match s {
        "src" => Some(OrderingSource::SourceOrder),
        "scg" => Some(OrderingSource::StaticCallGraph),
        "train" => Some(OrderingSource::TrainProfile),
        "test" => Some(OrderingSource::TestProfile),
        _ => None,
    }
}

fn encode_transfer(t: TransferPolicy) -> String {
    match t {
        TransferPolicy::Strict => "strict".to_owned(),
        TransferPolicy::Parallel { limit: usize::MAX } => "parinf".to_owned(),
        TransferPolicy::Parallel { limit } => format!("par{limit}"),
        TransferPolicy::Interleaved => "ilv".to_owned(),
    }
}

fn decode_transfer(s: &str) -> Option<TransferPolicy> {
    match s {
        "strict" => Some(TransferPolicy::Strict),
        "parinf" => Some(TransferPolicy::Parallel { limit: usize::MAX }),
        "ilv" => Some(TransferPolicy::Interleaved),
        _ => {
            let limit: usize = s.strip_prefix("par")?.parse().ok()?;
            (limit > 0).then_some(TransferPolicy::Parallel { limit })
        }
    }
}

fn encode_layout(d: DataLayout) -> &'static str {
    match d {
        DataLayout::Whole => "whole",
        DataLayout::Partitioned => "part",
    }
}

fn decode_layout(s: &str) -> Option<DataLayout> {
    match s {
        "whole" => Some(DataLayout::Whole),
        "part" => Some(DataLayout::Partitioned),
        _ => None,
    }
}

fn encode_execution(e: ExecutionModel) -> &'static str {
    match e {
        ExecutionModel::Strict => "strict",
        ExecutionModel::NonStrict => "nonstrict",
    }
}

fn decode_execution(s: &str) -> Option<ExecutionModel> {
    match s {
        "strict" => Some(ExecutionModel::Strict),
        "nonstrict" => Some(ExecutionModel::NonStrict),
        _ => None,
    }
}

/// One global-invariant violation found by [`run_scenario`] or
/// [`crash_anywhere`]. A passing scenario produces none.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosViolation {
    /// `total_cycles` is not the eight-bucket sum.
    LedgerInexact {
        /// Fleet client index (0 for single-client scenarios).
        client: u32,
        /// The reported total.
        total: u64,
        /// The bucket sum.
        sum: u64,
    },
    /// An all-dimensions-quiet scenario diverged from the stripped run.
    ZeroIdentityBroken,
    /// A later checkpoint delivered fewer units than an earlier one.
    WatermarkRegression {
        /// Interrupt cycle of the later checkpoint.
        at_cycle: u64,
        /// Units delivered at the earlier checkpoint.
        prev: u64,
        /// Units delivered at the later checkpoint.
        next: u64,
    },
    /// A later checkpoint's journal clock ran backwards.
    ClockRegression {
        /// Interrupt cycle of the later checkpoint.
        at_cycle: u64,
        /// Clock at the earlier checkpoint.
        prev: u64,
        /// Clock at the later checkpoint.
        next: u64,
    },
    /// A torn journal did not degrade fail-closed (or the fail-closed
    /// restart did not complete).
    FailOpen(&'static str),
    /// A crash/resume round trip diverged from the uninterrupted run.
    CrashDivergence(BoundaryDivergence),
    /// The composed run did not execute the program to completion.
    Incomplete,
}

impl fmt::Display for ChaosViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosViolation::LedgerInexact { client, total, sum } => write!(
                f,
                "ledger inexact for client {client}: total {total} != bucket sum {sum}"
            ),
            ChaosViolation::ZeroIdentityBroken => {
                write!(f, "quiet scenario diverged from the stripped run")
            }
            ChaosViolation::WatermarkRegression {
                at_cycle,
                prev,
                next,
            } => write!(
                f,
                "delivered watermark regressed at cycle {at_cycle}: {prev} -> {next}"
            ),
            ChaosViolation::ClockRegression {
                at_cycle,
                prev,
                next,
            } => write!(
                f,
                "journal clock regressed at cycle {at_cycle}: {prev} -> {next}"
            ),
            ChaosViolation::FailOpen(why) => write!(f, "fail-closed violation: {why}"),
            ChaosViolation::CrashDivergence(d) => write!(f, "{d}"),
            ChaosViolation::Incomplete => write!(f, "program did not run to completion"),
        }
    }
}

/// One diverging field of a crash/resume round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundaryDivergence {
    /// The interrupt cycle probed.
    pub at_cycle: u64,
    /// Units delivered at the checkpoint.
    pub delivered: u64,
    /// The diverging quantity.
    pub field: &'static str,
    /// Its value in the uninterrupted run.
    pub base: u64,
    /// Its value in the resumed run.
    pub resumed: u64,
}

impl fmt::Display for BoundaryDivergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "crash at cycle {} ({} units delivered): {} diverged, base {} vs resumed {}",
            self.at_cycle, self.delivered, self.field, self.base, self.resumed
        )
    }
}

/// Aggregate fleet numbers for overload scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FleetDigest {
    /// Clients in the fleet.
    pub clients: u32,
    /// Median per-client total cycles.
    pub p50_total: u64,
    /// 99th-percentile per-client total cycles.
    pub p99_total: u64,
    /// Admission rejections across the fleet.
    pub rejections: u64,
    /// Queue cycles across the fleet.
    pub queue_cycles: u64,
}

/// What [`run_scenario`] produced: the composed result plus every
/// invariant violation the global checker found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    /// The scenario run.
    pub scenario: ChaosScenario,
    /// The final result: resumed when the interrupt dimension is set,
    /// client 0's outcome under overload, the plain run otherwise.
    pub result: SimResult,
    /// Fleet aggregates, for overload scenarios.
    pub fleet: Option<FleetDigest>,
    /// Invariant violations, in discovery order; empty on a pass.
    pub violations: Vec<ChaosViolation>,
}

impl ChaosReport {
    /// Whether every global invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Scales the scenario link for fleet client `i` the way the CLI's
/// `--client-spread` does: `1 + i * spread_pm / 1e6` cycles per byte.
fn client_link(base: Link, spread_pm: u32, i: u32) -> Link {
    let cpb = u128::from(base.cycles_per_byte)
        * (1_000_000 + u128::from(spread_pm) * u128::from(i))
        / 1_000_000;
    Link {
        cycles_per_byte: u64::try_from(cpb).unwrap_or(u64::MAX),
        name: base.name,
    }
}

/// Runs one composed scenario on a prepared `session` (which must be
/// the scenario's benchmark) and applies the global invariant checker.
/// Deterministic: equal scenarios produce equal reports, bit for bit.
#[must_use]
pub fn run_scenario(session: &Session, sc: &ChaosScenario) -> ChaosReport {
    let config = sc.config();
    let mut violations = Vec::new();

    // Overload path: the fleet has no single journal, so the interrupt
    // dimension is rejected at decode time and ignored here.
    if let Some(ov) = sc.active_overload() {
        let spec = FleetSpec {
            admission: (ov.admit_rate > 0).then(|| AdmissionSettings::per_period(ov.admit_rate)),
            ladder: ov.ladder,
            egress: sc.link,
            ..FleetSpec::seeded(ov.seed)
        };
        let clients: Vec<FleetClient> = (0..ov.clients)
            .map(|i| FleetClient {
                name: &sc.bench,
                session,
                link: client_link(sc.link, ov.spread_pm, i),
                weight: 1,
            })
            .collect();
        let fleet = run_fleet(&spec, &clients, Input::Test, &config);
        for (i, c) in fleet.clients.iter().enumerate() {
            check_ledger(
                &c.result,
                u32::try_from(i).unwrap_or(u32::MAX),
                &mut violations,
            );
            if !c.result.faults.completed {
                violations.push(ChaosViolation::Incomplete);
            }
        }
        let result = fleet.clients[0].result;
        return ChaosReport {
            scenario: sc.clone(),
            result,
            fleet: Some(FleetDigest {
                clients: ov.clients,
                p50_total: fleet.p50_total,
                p99_total: fleet.p99_total,
                rejections: fleet.rejections(),
                queue_cycles: fleet.queue_cycles(),
            }),
            violations,
        };
    }

    let base = session.simulate(Input::Test, &config);
    check_ledger(&base, 0, &mut violations);
    if !base.faults.completed {
        violations.push(ChaosViolation::Incomplete);
    }

    // All-rates-zero byte-identity: an armed-but-quiet scenario must
    // match the fully stripped config exactly.
    if sc.is_quiet() {
        let stripped = SimConfig {
            faults: None,
            outages: None,
            replicas: None,
            byzantine: None,
            ..config
        };
        if base != session.simulate(Input::Test, &stripped) {
            violations.push(ChaosViolation::ZeroIdentityBroken);
        }
    }

    check_watermarks(session, &config, base.total_cycles, &mut violations);
    check_fail_closed(session, &config, base.total_cycles, &mut violations);

    // The storage dimension alone (no interrupt point chosen): probe a
    // fixed grid of crash cycles, pushing each journal through the
    // fault store to verify the detect-or-resume-exactly contract.
    if sc.interrupt.is_none() {
        if let Some(dims) = sc.active_disk() {
            const PROBES: u64 = 4;
            for p in 1..=PROBES {
                let at = base.total_cycles * p / (PROBES + 1);
                let RunOutcome::Interrupted(bytes) = session.run_until(Input::Test, &config, at)
                else {
                    break;
                };
                check_disk_resume(session, &config, &bytes, &dims, p, None, &mut violations);
            }
        }
    }

    let result = match sc.interrupt {
        None => base,
        Some(i) => {
            let r = match session.run_until(Input::Test, &config, i.at_cycle) {
                RunOutcome::Finished(r) => *r,
                RunOutcome::Interrupted(bytes) => match sc.active_disk() {
                    // The journal crosses a faulty disk on its way back.
                    Some(dims) => {
                        let r = check_disk_resume(
                            session,
                            &config,
                            &bytes,
                            &dims,
                            0,
                            Some(i.downtime),
                            &mut violations,
                        );
                        let Some(r) = r else {
                            // The store failed closed and the cold
                            // restart completed: that is the composed
                            // result.
                            return ChaosReport {
                                scenario: sc.clone(),
                                result: base,
                                fleet: None,
                                violations,
                            };
                        };
                        r
                    }
                    None => session.resume(Input::Test, &config, &bytes, i.downtime),
                },
            };
            check_ledger(&r, 0, &mut violations);
            for d in compare_resume(&base, &r, &config, i.at_cycle) {
                violations.push(ChaosViolation::CrashDivergence(d));
            }
            r
        }
    };

    ChaosReport {
        scenario: sc.clone(),
        result,
        fleet: None,
        violations,
    }
}

/// Eight-bucket exactness, checked in release builds too (the sim's own
/// `debug_assert` vanishes exactly where soak runs live).
fn check_ledger(r: &SimResult, client: u32, violations: &mut Vec<ChaosViolation>) {
    let sum = r.ledger().total();
    if sum != r.total_cycles {
        violations.push(ChaosViolation::LedgerInexact {
            client,
            total: r.total_cycles,
            sum,
        });
    }
}

/// Journal watermark/clock monotonicity: checkpoints taken later in
/// the run never deliver fewer units or report an earlier clock.
/// Probes a fixed grid of interrupt points (the exhaustive walk is
/// [`crash_anywhere`]'s job).
fn check_watermarks(
    session: &Session,
    config: &SimConfig,
    total: u64,
    violations: &mut Vec<ChaosViolation>,
) {
    const PROBES: u64 = 8;
    let mut prev: Option<(u64, u64)> = None; // (delivered, clock)
    for p in 1..=PROBES {
        let at = total * p / (PROBES + 1);
        let RunOutcome::Interrupted(bytes) = session.run_until(Input::Test, config, at) else {
            break;
        };
        let Ok(journal) = SessionJournal::decode(&bytes) else {
            violations.push(ChaosViolation::FailOpen(
                "self-written journal failed to decode",
            ));
            break;
        };
        let delivered: u64 = journal.classes.iter().map(|c| u64::from(c.delivered)).sum();
        if let Some((pd, pc)) = prev {
            if delivered < pd {
                violations.push(ChaosViolation::WatermarkRegression {
                    at_cycle: at,
                    prev: pd,
                    next: delivered,
                });
            }
            if journal.clock < pc {
                violations.push(ChaosViolation::ClockRegression {
                    at_cycle: at,
                    prev: pc,
                    next: journal.clock,
                });
            }
        }
        prev = Some((delivered, journal.clock));
    }
}

/// Fail-closed degradation ordering: a torn mid-run journal must be
/// detected, resume nothing, and still complete under the strict
/// fallback.
fn check_fail_closed(
    session: &Session,
    config: &SimConfig,
    total: u64,
    violations: &mut Vec<ChaosViolation>,
) {
    let RunOutcome::Interrupted(mut bytes) = session.run_until(Input::Test, config, total / 2)
    else {
        return;
    };
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    let r = session.resume(Input::Test, config, &bytes, 1_000_000);
    if !r.outage.failed_closed {
        violations.push(ChaosViolation::FailOpen("torn journal was not detected"));
        return;
    }
    if r.outage.resumes != 0 {
        violations.push(ChaosViolation::FailOpen("torn journal resumed watermarks"));
    }
    if !r.faults.completed {
        violations.push(ChaosViolation::FailOpen(
            "fail-closed restart did not complete",
        ));
    }
}

/// Pushes one interrupt journal through a seeded [`FaultFs`] round
/// trip — append under the scenario's storage-fault knobs, power cut,
/// recover. Returns the bytes a warm restart reads back, or `None`
/// when the store lost them (torn tail) or rejected them (rot, a
/// typed fail-closed error). `salt` decorrelates multiple probes of
/// the same scenario.
fn disk_roundtrip(bytes: &[u8], d: &DiskDims, salt: u64) -> Option<Vec<u8>> {
    let fs = Arc::new(FaultFs::new(nonstrict_store::FaultKnobs {
        seed: d.seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        torn_pm: 0,
        lie_pm: d.lie_pm,
        bitrot_pm: d.bitrot_pm,
    }));
    let log = JournalLog::new(fs.clone(), "sim.nsjl");
    let mut rng = SplitMix64(d.seed ^ salt ^ 0x6469_736b);
    if rng.hit_pm(d.torn_pm) {
        // The power cut lands mid-append: kill at the header write or
        // the frame write, leaving a seeded prefix of it durable.
        fs.set_kill_at(1 + rng.below(2));
    }
    let _ = log.append_record(bytes);
    fs.crash();
    match log.recover() {
        Ok(r) => r.records.into_iter().next(),
        Err(_) => None,
    }
}

/// Applies the storage-dimension contract to one interrupt journal:
/// a journal that survives its disk round trip byte-identical resumes
/// normally (result returned for the caller's resume-equivalence
/// check); one the store lost or rejected must degrade to a restart
/// that is fail-closed **and still completes** (returns `None`).
fn check_disk_resume(
    session: &Session,
    config: &SimConfig,
    bytes: &[u8],
    dims: &DiskDims,
    salt: u64,
    downtime: Option<u64>,
    violations: &mut Vec<ChaosViolation>,
) -> Option<SimResult> {
    let downtime = downtime.unwrap_or(1_000_000);
    match disk_roundtrip(bytes, dims, salt) {
        Some(back) if back == *bytes => Some(session.resume(Input::Test, config, &back, downtime)),
        Some(_) => {
            // Recovery handed back different bytes it believed valid —
            // the store's own detection contract is broken.
            violations.push(ChaosViolation::FailOpen(
                "disk round trip altered the journal undetected",
            ));
            None
        }
        None => {
            let r = session.resume(Input::Test, config, &[], downtime);
            if !r.outage.failed_closed {
                violations.push(ChaosViolation::FailOpen(
                    "journal lost to storage faults was not detected",
                ));
            }
            if !r.faults.completed {
                violations.push(ChaosViolation::FailOpen(
                    "fail-closed restart after storage loss did not complete",
                ));
            }
            None
        }
    }
}

/// Compares a resumed run against the uninterrupted run under the
/// composed-resume contract: the base timeline is untouched (every
/// bucket except resume identical), the wall clock is base plus the
/// resume bucket's growth, and exactly one more outage/resume is
/// recorded. Invocation latency is compared only when no ambient
/// outage schedule is active: ambient outages remap latency onto the
/// wall clock, which an interrupt legitimately shifts.
fn compare_resume(
    base: &SimResult,
    r: &SimResult,
    config: &SimConfig,
    at_cycle: u64,
) -> Vec<BoundaryDivergence> {
    let mut out = Vec::new();
    let delivered = 0; // caller-specific; crash_anywhere overwrites it
    let mut diff = |field: &'static str, b: u64, v: u64| {
        if b != v {
            out.push(BoundaryDivergence {
                at_cycle,
                delivered,
                field,
                base: b,
                resumed: v,
            });
        }
    };
    if r.outage.failed_closed {
        diff("failed_closed", 0, 1);
        return out;
    }
    diff("exec_cycles", base.exec_cycles, r.exec_cycles);
    diff("stall_cycles", base.stall_cycles, r.stall_cycles);
    diff("verify_cycles", base.verify_cycles, r.verify_cycles);
    diff(
        "recovery_cycles",
        base.faults.recovery_cycles,
        r.faults.recovery_cycles,
    );
    diff(
        "hedge_cycles",
        base.replica.hedge_cycles,
        r.replica.hedge_cycles,
    );
    diff(
        "integrity_cycles",
        base.integrity.integrity_cycles,
        r.integrity.integrity_cycles,
    );
    diff("queue_cycles", base.queue_cycles, r.queue_cycles);
    diff("retries", base.faults.retries, r.faults.retries);
    diff("drops", base.faults.drops, r.faults.drops);
    diff("corrupted", base.faults.corrupted, r.faults.corrupted);
    diff("quarantined", base.faults.quarantined, r.faults.quarantined);
    diff("stalls", u64::from(base.stalls), u64::from(r.stalls));
    diff(
        "degraded_classes",
        u64::from(base.faults.degraded_classes),
        u64::from(r.faults.degraded_classes),
    );
    diff("hedges", base.replica.hedges, r.replica.hedges);
    diff("failovers", base.replica.failovers, r.replica.failovers);
    diff(
        "divergent_units",
        base.integrity.divergent_units,
        r.integrity.divergent_units,
    );
    diff("audits", base.integrity.audits, r.integrity.audits);
    // Base-timeline equality: total minus the resume bucket matches.
    diff(
        "base_timeline_total",
        base.total_cycles - base.outage.resume_cycles,
        r.total_cycles - r.outage.resume_cycles,
    );
    diff(
        "outages",
        u64::from(base.outage.outages) + 1,
        u64::from(r.outage.outages),
    );
    diff(
        "resumes",
        u64::from(base.outage.resumes) + 1,
        u64::from(r.outage.resumes),
    );
    if config.active_outages().is_none() {
        diff(
            "invocation_latency",
            base.invocation_latency,
            r.invocation_latency,
        );
    }
    out
}

/// What the differential engine found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DifferentialReport {
    /// Distinct unit boundaries interrupted.
    pub boundaries: u32,
    /// Every divergence found, in boundary order; empty on a pass.
    pub divergences: Vec<BoundaryDivergence>,
}

impl DifferentialReport {
    /// Whether crash-anywhere equivalence held at every boundary.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The crash-anywhere differential engine: interrupts the composed
/// scenario at **every** unit boundary (binary search on the journal's
/// delivered-unit watermark), resumes each from its journal with
/// `downtime` cycles of outage, and records every field that diverges
/// from the uninterrupted run. Overload scenarios are out of scope (no
/// single journal) and return an empty pass.
#[must_use]
pub fn crash_anywhere(session: &Session, sc: &ChaosScenario, downtime: u64) -> DifferentialReport {
    if sc.active_overload().is_some() {
        return DifferentialReport {
            boundaries: 0,
            divergences: Vec::new(),
        };
    }
    let config = sc.config();
    let base = session.simulate(Input::Test, &config);
    let total = base.total_cycles;

    let probe = |at: u64| -> Option<u64> {
        match session.run_until(Input::Test, &config, at) {
            RunOutcome::Interrupted(bytes) => {
                let j = SessionJournal::decode(&bytes).ok()?;
                Some(j.classes.iter().map(|c| u64::from(c.delivered)).sum())
            }
            RunOutcome::Finished(_) => None,
        }
    };

    let mut boundaries = 0u32;
    let mut divergences = Vec::new();
    let mut k = 0u64; // delivered-unit watermark to hunt for
    loop {
        // Minimal interrupt cycle whose checkpoint has >= k units
        // delivered (a run that finished counts as "all delivered").
        let reaches = |at: u64| probe(at).is_none_or(|d| d >= k);
        let (mut lo, mut hi) = (0u64, total + 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if reaches(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let Some(delivered) = probe(lo) else {
            break; // watermark k is only reached by running to the end
        };
        k = delivered + 1;
        boundaries += 1;
        let RunOutcome::Interrupted(bytes) = session.run_until(Input::Test, &config, lo) else {
            divergences.push(BoundaryDivergence {
                at_cycle: lo,
                delivered,
                field: "probe_stability",
                base: 1,
                resumed: 0,
            });
            continue;
        };
        let r = session.resume(Input::Test, &config, &bytes, downtime);
        for mut d in compare_resume(&base, &r, &config, lo) {
            d.delivered = delivered;
            divergences.push(d);
        }
    }
    DifferentialReport {
        boundaries,
        divergences,
    }
}

/// What [`shrink`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShrinkOutcome {
    /// The minimized still-failing scenario.
    pub scenario: ChaosScenario,
    /// Predicate invocations spent.
    pub tests_run: u32,
}

/// Hard cap on predicate invocations per [`shrink`] call: scenarios
/// are expensive to run, and delta debugging converges long before
/// this.
pub const SHRINK_BUDGET: u32 = 600;

/// Delta-debugging minimizer: given a scenario for which `failing`
/// returns `true`, returns a (locally) minimal scenario that still
/// fails. Passes run to fixpoint under [`SHRINK_BUDGET`]:
///
/// 1. **Dimensions** — drop whole fault dimensions (disk, interrupt,
///    byzantine, replicas, outages, faults, overload, verify).
/// 2. **Rates and sizes** — binary-search every surviving numeric knob
///    toward zero, keeping the smallest still-failing value.
/// 3. **Seeds** — zero every surviving seed.
/// 4. **Interrupt point** — binary-search the crash cycle and downtime
///    toward zero.
///
/// The predicate must be deterministic (every runner here is); it is
/// never called on the input scenario itself.
pub fn shrink(
    sc: &ChaosScenario,
    failing: &mut dyn FnMut(&ChaosScenario) -> bool,
) -> ShrinkOutcome {
    let mut best = sc.clone();
    let mut tests_run = 0u32;
    let mut check = |cand: &ChaosScenario, tests_run: &mut u32| -> bool {
        if *tests_run >= SHRINK_BUDGET {
            return false;
        }
        *tests_run += 1;
        failing(cand)
    };

    loop {
        let before = best.clone();

        // Pass 1: drop whole dimensions, most-derived first (byzantine
        // needs replicas, so it goes before them).
        let drops: [fn(&mut ChaosScenario); 8] = [
            |s| s.disk = None,
            |s| s.interrupt = None,
            |s| s.byzantine = None,
            |s| {
                s.replicas = None;
                s.byzantine = None;
            },
            |s| s.outages = None,
            |s| s.faults = None,
            |s| s.overload = None,
            |s| s.verify = VerifyMode::Off,
        ];
        for drop in drops {
            let mut cand = best.clone();
            drop(&mut cand);
            if cand != best && check(&cand, &mut tests_run) {
                best = cand;
            }
        }

        // Pass 2+3: shrink every surviving numeric knob toward zero.
        // Each entry reads the current value and writes a candidate.
        type Knob = (
            fn(&ChaosScenario) -> Option<u64>,
            fn(&mut ChaosScenario, u64),
        );
        let knobs: &[Knob] = &[
            (
                |s| s.faults.map(|f| u64::from(f.loss_pm)),
                |s, v| set_fault(s, |f| f.loss_pm = v as u32),
            ),
            (
                |s| s.faults.map(|f| u64::from(f.corrupt_pm)),
                |s, v| set_fault(s, |f| f.corrupt_pm = v as u32),
            ),
            (
                |s| s.faults.map(|f| u64::from(f.drop_pm)),
                |s, v| set_fault(s, |f| f.drop_pm = v as u32),
            ),
            (
                |s| s.faults.map(|f| u64::from(f.droop_pm)),
                |s, v| set_fault(s, |f| f.droop_pm = v as u32),
            ),
            (
                |s| s.faults.map(|f| u64::from(f.semantic_pm)),
                |s, v| set_fault(s, |f| f.semantic_pm = v as u32),
            ),
            (
                |s| s.faults.map(|f| f.seed),
                |s, v| set_fault(s, |f| f.seed = v),
            ),
            (
                |s| s.outages.map(|o| u64::from(o.rate_pm)),
                |s, v| set_outage(s, |o| o.rate_pm = v as u32),
            ),
            (
                |s| s.outages.map(|o| o.seed),
                |s, v| set_outage(s, |o| o.seed = v),
            ),
            (
                |s| s.replicas.map(|r| u64::from(r.replicas)),
                |s, v| set_replica(s, |r| r.replicas = v as u32),
            ),
            (
                |s| s.replicas.map(|r| r.seed),
                |s, v| set_replica(s, |r| r.seed = v),
            ),
            (
                |s| s.byzantine.map(|b| u64::from(b.mirrors)),
                |s, v| set_byz(s, |b| b.mirrors = v as u32),
            ),
            (
                |s| s.byzantine.map(|b| u64::from(b.audit_rate_pm)),
                |s, v| set_byz(s, |b| b.audit_rate_pm = v as u32),
            ),
            (
                |s| s.byzantine.map(|b| b.seed),
                |s, v| set_byz(s, |b| b.seed = v),
            ),
            (
                |s| s.overload.map(|o| u64::from(o.clients)),
                |s, v| set_overload(s, |o| o.clients = v as u32),
            ),
            (
                |s| s.overload.map(|o| o.seed),
                |s, v| set_overload(s, |o| o.seed = v),
            ),
            (
                |s| s.interrupt.map(|i| i.at_cycle),
                |s, v| {
                    if let Some(i) = s.interrupt.as_mut() {
                        i.at_cycle = v;
                    }
                },
            ),
            (
                |s| s.interrupt.map(|i| i.downtime),
                |s, v| {
                    if let Some(i) = s.interrupt.as_mut() {
                        i.downtime = v;
                    }
                },
            ),
            (
                |s| s.disk.map(|d| u64::from(d.torn_pm)),
                |s, v| set_disk(s, |d| d.torn_pm = v as u32),
            ),
            (
                |s| s.disk.map(|d| u64::from(d.lie_pm)),
                |s, v| set_disk(s, |d| d.lie_pm = v as u32),
            ),
            (
                |s| s.disk.map(|d| u64::from(d.bitrot_pm)),
                |s, v| set_disk(s, |d| d.bitrot_pm = v as u32),
            ),
            (
                |s| s.disk.map(|d| d.seed),
                |s, v| set_disk(s, |d| d.seed = v),
            ),
        ];
        for (get, set) in knobs {
            let Some(hi) = get(&best) else { continue };
            if hi == 0 {
                continue;
            }
            // Try zero outright, then bisect (lo known-pass, hi
            // known-fail) down to the smallest still-failing value.
            let with = |base: &ChaosScenario, v: u64| {
                let mut cand = base.clone();
                set(&mut cand, v);
                cand
            };
            let zeroed = with(&best, 0);
            if check(&zeroed, &mut tests_run) {
                best = zeroed;
                continue;
            }
            let (mut lo, mut hi) = (0u64, hi);
            while hi - lo > 1 {
                let mid = lo + (hi - lo) / 2;
                if check(&with(&best, mid), &mut tests_run) {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            if Some(hi) < get(&best) {
                best = with(&best, hi);
            }
        }

        if best == before || tests_run >= SHRINK_BUDGET {
            break;
        }
    }
    ShrinkOutcome {
        scenario: best,
        tests_run,
    }
}

fn set_fault(s: &mut ChaosScenario, f: impl FnOnce(&mut FaultConfig)) {
    if let Some(fc) = s.faults.as_mut() {
        f(fc);
    }
}

fn set_outage(s: &mut ChaosScenario, f: impl FnOnce(&mut OutageConfig)) {
    if let Some(oc) = s.outages.as_mut() {
        f(oc);
    }
}

fn set_replica(s: &mut ChaosScenario, f: impl FnOnce(&mut ReplicaConfig)) {
    if let Some(rc) = s.replicas.as_mut() {
        f(rc);
    }
}

fn set_byz(s: &mut ChaosScenario, f: impl FnOnce(&mut ByzantineConfig)) {
    if let Some(bc) = s.byzantine.as_mut() {
        f(bc);
    }
}

fn set_overload(s: &mut ChaosScenario, f: impl FnOnce(&mut OverloadDims)) {
    if let Some(ov) = s.overload.as_mut() {
        f(ov);
    }
}

fn set_disk(s: &mut ChaosScenario, f: impl FnOnce(&mut DiskDims)) {
    if let Some(d) = s.disk.as_mut() {
        f(d);
    }
}

/// Decodes a repro artifact, rebuilds its benchmark, reruns the
/// scenario, and renders a deterministic report. The same artifact
/// always produces the same text, bit for bit — CI replays the corpus
/// twice and diffs.
///
/// # Errors
///
/// [`ScenarioError`] on a malformed artifact or unknown benchmark.
pub fn replay_repro(text: &str) -> Result<String, ScenarioError> {
    let sc = ChaosScenario::decode(text)?;
    let app = nonstrict_workloads::build_by_name(&sc.bench)
        .ok_or_else(|| ScenarioError::UnknownBench(sc.bench.clone()))?;
    let session = Session::new(app).map_err(|_| ScenarioError::UnknownBench(sc.bench.clone()))?;
    let report = run_scenario(&session, &sc);
    Ok(render_replay(&report))
}

/// Renders one replayed scenario deterministically.
#[must_use]
pub fn render_replay(report: &ChaosReport) -> String {
    use std::fmt::Write as _;
    let sc = &report.scenario;
    let r = &report.result;
    let l = r.ledger();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "chaos replay: {} on {} [{}]",
        sc.bench,
        sc.link.name,
        sc.label()
    );
    let _ = writeln!(
        s,
        "  total {} = exec {} + stall {} + recovery {} + verify {} + resume {} + hedge {} + queue {} + integrity {}",
        r.total_cycles, l.exec, l.stall, l.recovery, l.verify, l.resume, l.hedge, l.queue, l.integrity
    );
    let _ = writeln!(
        s,
        "  completed {} degraded {} outages {} resumes {} failed_closed {}",
        r.faults.completed,
        r.faults.session_degraded,
        r.outage.outages,
        r.outage.resumes,
        r.outage.failed_closed
    );
    if let Some(fd) = report.fleet {
        let _ = writeln!(
            s,
            "  fleet: {} clients p50 {} p99 {} rejections {} queue {}",
            fd.clients, fd.p50_total, fd.p99_total, fd.rejections, fd.queue_cycles
        );
    }
    if report.violations.is_empty() {
        let _ = writeln!(s, "  invariants: PASS");
    } else {
        let _ = writeln!(s, "  invariants: FAIL ({})", report.violations.len());
        for v in &report.violations {
            let _ = writeln!(s, "    - {v}");
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm() -> ChaosScenario {
        let mut fc = FaultConfig::seeded(7);
        fc.loss_pm = 20_000;
        fc.corrupt_pm = 10_000;
        let mut oc = OutageConfig::seeded(9);
        oc.rate_pm = 200_000;
        oc.min_cycles = 1 << 20;
        oc.max_cycles = 1 << 23;
        let mut rc = ReplicaConfig::seeded(3);
        rc.replicas = 3;
        rc.kill = Some(ReplicaKill {
            replica: 2,
            at_cycle: 5_000_000,
        });
        let mut bc = ByzantineConfig::seeded(11);
        bc.mirrors = 1;
        bc.mode = ByzantineMode::Equivocate;
        let mut dd = DiskDims::seeded(13);
        dd.torn_pm = 300_000;
        dd.bitrot_pm = 50_000;
        ChaosScenario::new("hanoi", Link::MODEM_28_8, OrderingSource::StaticCallGraph)
            .with_verify(VerifyMode::Stream)
            .with_faults(fc)
            .with_outages(oc)
            .with_replicas(rc)
            .with_byzantine(bc)
            .with_interrupt(40_000_000, 2_500_000)
            .with_disk(dd)
    }

    #[test]
    fn encode_decode_round_trips_every_dimension() {
        let sc = storm();
        let text = sc.encode();
        assert_eq!(ChaosScenario::decode(&text).unwrap(), sc);
        // Quiet scenario too.
        let quiet = ChaosScenario::new("bit", Link::T1, OrderingSource::TrainProfile);
        assert_eq!(ChaosScenario::decode(&quiet.encode()).unwrap(), quiet);
        // Overload section (without an interrupt).
        let mut ov = OverloadDims::seeded(5);
        ov.clients = 4;
        ov.admit_rate = 2;
        ov.ladder = Some(ShedLadder::new(1, 2, 3).unwrap());
        let fleet =
            ChaosScenario::new("jess", Link::T1, OrderingSource::TestProfile).with_overload(ov);
        assert_eq!(ChaosScenario::decode(&fleet.encode()).unwrap(), fleet);
    }

    #[test]
    fn decode_rejects_hostile_artifacts_with_typed_errors() {
        assert_eq!(ChaosScenario::decode(""), Err(ScenarioError::BadMagic));
        assert_eq!(
            ChaosScenario::decode("NSJR 1"),
            Err(ScenarioError::BadMagic)
        );
        assert_eq!(
            ChaosScenario::decode("NSCR 2\nbench = hanoi\n"),
            Err(ScenarioError::BadVersion(2))
        );
        assert_eq!(
            ChaosScenario::decode("NSCR 1\nnot a pair\n"),
            Err(ScenarioError::BadLine("not a pair".to_owned()))
        );
        assert_eq!(
            ChaosScenario::decode("NSCR 1\nbench = hanoi\nwat = 1\n"),
            Err(ScenarioError::UnknownKey("wat".to_owned()))
        );
        assert_eq!(
            ChaosScenario::decode("NSCR 1\nbench = a\nbench = b\n"),
            Err(ScenarioError::DuplicateKey("bench".to_owned()))
        );
        assert_eq!(
            ChaosScenario::decode("NSCR 1\nbench = hanoi\nfault.loss_pm = many\n"),
            Err(ScenarioError::BadValue {
                key: "fault.loss_pm".to_owned(),
                value: "many".to_owned()
            })
        );
        assert_eq!(
            ChaosScenario::decode("NSCR 1\nlink = t1\n"),
            Err(ScenarioError::MissingKey("bench"))
        );
        assert_eq!(
            ChaosScenario::decode("NSCR 1\nbench = hanoi\nreplica.kill = 0@5\n"),
            Err(ScenarioError::MissingKey("replica.seed"))
        );
        // Unordered ladder.
        assert!(matches!(
            ChaosScenario::decode(
                "NSCR 1\nbench = hanoi\noverload.seed = 1\noverload.ladder = 3/2/1\n"
            ),
            Err(ScenarioError::BadValue { .. })
        ));
        // Interrupt + active overload cannot compose.
        assert!(matches!(
            ChaosScenario::decode(
                "NSCR 1\nbench = hanoi\noverload.clients = 4\ninterrupt.at_cycle = 5\n"
            ),
            Err(ScenarioError::Conflict(_))
        ));
    }

    #[test]
    fn decode_tolerates_comments_blanks_and_any_key_order() {
        let text = "NSCR 1\n\n# a repro\ninterrupt.downtime = 9\nbench = hanoi\n\
                    interrupt.at_cycle = 7\nlink = modem\n";
        let sc = ChaosScenario::decode(text).unwrap();
        assert_eq!(sc.bench, "hanoi");
        assert_eq!(sc.link, Link::MODEM_28_8);
        assert_eq!(
            sc.interrupt,
            Some(InterruptDims {
                at_cycle: 7,
                downtime: 9
            })
        );
    }

    #[test]
    fn labels_name_the_active_dimensions() {
        assert_eq!(
            ChaosScenario::new("hanoi", Link::T1, OrderingSource::StaticCallGraph).label(),
            "quiet"
        );
        assert_eq!(
            storm().label(),
            "faults+verify+outage+replicas+byz+crash+disk"
        );
        // Armed-but-quiet dimensions stay out of the label.
        let armed = ChaosScenario::new("hanoi", Link::T1, OrderingSource::StaticCallGraph)
            .with_faults(FaultConfig::seeded(1))
            .with_outages(OutageConfig::seeded(2))
            .with_disk(DiskDims::seeded(3));
        assert_eq!(armed.label(), "quiet");
        assert!(armed.is_quiet());
    }

    #[test]
    fn custom_links_and_transfers_round_trip() {
        let mut sc = ChaosScenario::new("bit", Link::T1, OrderingSource::SourceOrder);
        sc.link = Link {
            cycles_per_byte: 777,
            name: "custom",
        };
        sc.transfer = TransferPolicy::Parallel { limit: usize::MAX };
        sc.data_layout = DataLayout::Partitioned;
        sc.execution = ExecutionModel::Strict;
        let rt = ChaosScenario::decode(&sc.encode()).unwrap();
        assert_eq!(rt.link.cycles_per_byte, 777);
        assert_eq!(rt.transfer, sc.transfer);
        assert_eq!(rt.data_layout, DataLayout::Partitioned);
        assert_eq!(rt.execution, ExecutionModel::Strict);
    }

    #[test]
    fn shrink_minimizes_a_synthetic_predicate() {
        // Failure: loss >= 3 and an interrupt dimension present. The
        // shrinker must drop everything else and bisect loss to 3.
        let sc = storm();
        let mut calls = 0u32;
        let out = shrink(&sc, &mut |c| {
            calls += 1;
            c.faults.is_some_and(|f| f.loss_pm >= 3) && c.interrupt.is_some()
        });
        assert_eq!(calls, out.tests_run);
        assert!(out.tests_run <= SHRINK_BUDGET);
        let m = out.scenario;
        assert_eq!(
            m.faults.unwrap().loss_pm,
            3,
            "loss bisects to the threshold"
        );
        assert_eq!(m.faults.unwrap().seed, 0, "seed zeroes");
        assert!(m.outages.is_none(), "outage dimension drops");
        assert!(m.replicas.is_none(), "replica dimension drops");
        assert!(m.byzantine.is_none(), "byzantine dimension drops");
        assert!(m.disk.is_none(), "disk dimension drops");
        assert_eq!(m.verify, VerifyMode::Off, "verify drops");
        assert_eq!(
            m.interrupt,
            Some(InterruptDims {
                at_cycle: 0,
                downtime: 0
            })
        );
    }

    #[test]
    fn shrink_respects_the_budget_on_a_pathological_predicate() {
        let sc = storm();
        // Fails on everything: no candidate ever passes, so every knob
        // bisects its full range — the budget must still bound it.
        let out = shrink(&sc, &mut |_| true);
        assert!(out.tests_run <= SHRINK_BUDGET);
    }
}
