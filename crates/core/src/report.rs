//! Paper-style text rendering of every experiment, with the published
//! numbers alongside for direct comparison.

use std::fmt::Write as _;

use crate::experiment::{
    self, paper, InterleavedTable, ParallelTable, Suite, Table3Row, Table4Row, Table8Row, Table9Row,
};
use crate::model::DataLayout;

/// Paper row index for a benchmark name (render functions accept
/// partial suites; unknown names fall back to row 0).
fn pidx(name: &str) -> usize {
    paper::NAMES
        .iter()
        .position(|n| n.eq_ignore_ascii_case(name))
        .unwrap_or(0)
}

/// Renders Table 2 (program statistics) with paper values.
#[must_use]
pub fn render_table2(suite: &Suite) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: General Statistics (measured | paper)");
    let _ = writeln!(
        out,
        "{:8} {:>5} {:>9} {:>12} {:>12} {:>9} {:>7} {:>7} {:>6}",
        "Program",
        "Files",
        "Size KB",
        "DynTest K",
        "DynTrain K",
        "StaticK",
        "%Exec",
        "Methods",
        "I/M"
    );
    for (row, p) in experiment::table2(suite).iter().zip(
        paper::NAMES
            .iter()
            .map(|n| nonstrict_workloads::stats::paper_row(n).expect("paper row")),
    ) {
        let _ = writeln!(
            out,
            "{:8} {:>5} {:>4.0}|{:<4.0} {:>5.0}|{:<6.0} {:>5.0}|{:<6.0} {:>4.1}|{:<4.1} {:>3.0}|{:<3.0} {:>7} {:>3.0}|{:<3.0}",
            row.name,
            row.total_files,
            row.size_kb,
            p.size_kb,
            row.dyn_test_k,
            p.dyn_test_k,
            row.dyn_train_k,
            p.dyn_train_k,
            row.static_k,
            p.static_k,
            row.executed_pct,
            p.executed_pct,
            row.total_methods,
            row.instrs_per_method,
            p.instrs_per_method,
        );
    }
    out
}

/// Renders Table 3 (base case) with paper values.
#[must_use]
pub fn render_table3(rows: &[Table3Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: Base Case (measured | paper)");
    let _ = writeln!(
        out,
        "{:8} {:>6} {:>10} {:>16} {:>14} {:>18} {:>14}",
        "Program", "CPI", "Exec Mcyc", "T1 Xfer Mcyc", "T1 %Xfer", "Modem Xfer Mcyc", "Modem %Xfer"
    );
    for r in rows {
        let (_cpi, exec, t1x, t1p, mox, mop) = paper::TABLE3[pidx(&r.name)];
        let _ = writeln!(
            out,
            "{:8} {:>6} {:>5.0}|{:<5} {:>7.0}|{:<6} {:>6.1}|{:<5.1} {:>8.0}|{:<7} {:>6.1}|{:<5.1}",
            r.name,
            r.cpi,
            r.exec_mcycles,
            exec,
            r.t1.transfer_mcycles,
            t1x,
            r.t1.pct_transfer,
            t1p,
            r.modem.transfer_mcycles,
            mox,
            r.modem.pct_transfer,
            mop,
        );
    }
    out
}

/// Renders Table 4 (invocation latency) with paper values.
#[must_use]
pub fn render_table4(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 4: Invocation Latency, Mcycles (measured | paper)"
    );
    let _ = writeln!(
        out,
        "{:8} {:>14} {:>16} {:>16}   {:>14} {:>16} {:>16}",
        "Program",
        "T1 Strict",
        "T1 NonStrict",
        "T1 DataPart",
        "Mo Strict",
        "Mo NonStrict",
        "Mo DataPart"
    );
    for r in rows {
        let p = paper::TABLE4[pidx(&r.name)];
        let _ = writeln!(
            out,
            "{:8} {:>6.0}|{:<5.0} {:>6.0}({:>3.0}%)|{:<4.0} {:>6.0}({:>3.0}%)|{:<4.0}  {:>6.0}|{:<5.0} {:>6.0}({:>3.0}%)|{:<4.0} {:>6.0}({:>3.0}%)|{:<4.0}",
            r.name,
            r.t1.strict,
            p.0,
            r.t1.non_strict,
            r.t1.non_strict_reduction,
            p.1,
            r.t1.partitioned,
            r.t1.partitioned_reduction,
            p.2,
            r.modem.strict,
            p.3,
            r.modem.non_strict,
            r.modem.non_strict_reduction,
            p.4,
            r.modem.partitioned,
            r.modem.partitioned_reduction,
            p.5,
        );
    }
    out
}

/// Renders a parallel-transfer table (Table 5 or 6) with paper values.
#[must_use]
pub fn render_parallel(table: &ParallelTable) -> String {
    let paper_rows: Option<&[[paper::ParallelRow; 3]; 6]> =
        if table.data_layout == DataLayout::Whole {
            if table.link == nonstrict_netsim::Link::T1 {
                Some(&paper::TABLE5_T1)
            } else {
                Some(&paper::TABLE6_MODEM)
            }
        } else {
            None
        };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table {}: Parallel File Transfer, {} link — normalized % (measured | paper)",
        if table.link == nonstrict_netsim::Link::T1 {
            "5"
        } else {
            "6"
        },
        table.link.name
    );
    let _ = writeln!(
        out,
        "{:8} | {:^31} | {:^31} | {:^31}",
        "Program", "SCG  1 / 2 / 4 / inf", "Train  1 / 2 / 4 / inf", "Test  1 / 2 / 4 / inf"
    );
    for row in &table.rows {
        let i = pidx(&row.name);
        let _ = write!(out, "{:8} |", row.name);
        for o in 0..3 {
            for l in 0..4 {
                match paper_rows {
                    Some(p) => {
                        let _ = write!(out, " {:>3.0}|{:<3.0}", row.cells[o][l], p[i][o][l]);
                    }
                    None => {
                        let _ = write!(out, " {:>5.1}", row.cells[o][l]);
                    }
                }
            }
            let _ = write!(out, " |");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:8} |", "AVG");
    let paper_avg = if table.link == nonstrict_netsim::Link::T1 {
        &paper::TABLE5_T1_AVG
    } else {
        &paper::TABLE6_MODEM_AVG
    };
    for (o, row_avg) in table.avg.iter().enumerate() {
        for (l, cell) in row_avg.iter().enumerate() {
            if table.data_layout == DataLayout::Whole {
                let _ = write!(out, " {:>3.0}|{:<3.0}", cell, paper_avg[o][l]);
            } else {
                let _ = write!(out, " {:>5.1}", cell);
            }
        }
        let _ = write!(out, " |");
    }
    let _ = writeln!(out);
    out
}

/// Renders an interleaved table (Table 7, or a Table 10 half).
#[must_use]
pub fn render_interleaved(
    table: &InterleavedTable,
    title: &str,
    paper_rows: Option<&[[f64; 6]]>,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title} — normalized % (measured | paper)");
    let _ = writeln!(
        out,
        "{:8} {:>10} {:>10} {:>10}   {:>10} {:>10} {:>10}",
        "Program", "T1 SCG", "T1 Train", "T1 Test", "Mo SCG", "Mo Train", "Mo Test"
    );
    for row in &table.rows {
        let i = pidx(&row.name);
        let _ = write!(out, "{:8}", row.name);
        for c in 0..6 {
            match paper_rows {
                Some(p) => {
                    let _ = write!(out, " {:>4.0}|{:<4.0}", row.cols[c], p[i][c]);
                }
                None => {
                    let _ = write!(out, " {:>9.1}", row.cols[c]);
                }
            }
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "{:8}", "AVG");
    for c in 0..6 {
        let _ = write!(out, " {:>9.1}", table.avg[c]);
    }
    let _ = writeln!(out);
    out
}

/// Renders Table 8 with paper values.
#[must_use]
pub fn render_table8(rows: &[Table8Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 8: Global Data / Constant Pool breakdown, % (measured | paper)"
    );
    let _ = writeln!(
        out,
        "{:8} {:>11} {:>10} {:>10} {:>10}  | {:>11} {:>10} {:>10} {:>10} {:>10}",
        "Program", "CPool", "Field", "Attrib", "Intfc", "Utf8", "Ints", "String", "MRef", "FRef"
    );
    for r in rows {
        let pg = paper::TABLE8_GLOBAL[pidx(&r.name)];
        let pp = paper::TABLE8_POOL[pidx(&r.name)];
        let _ = writeln!(
            out,
            "{:8} {:>5.1}|{:<5.1} {:>4.1}|{:<4.1} {:>4.1}|{:<4.1} {:>4.1}|{:<4.1}  | {:>5.1}|{:<5.1} {:>4.1}|{:<4.1} {:>4.1}|{:<4.1} {:>4.1}|{:<4.1} {:>4.1}|{:<4.1}",
            r.name,
            r.global[0], pg[0], r.global[1], pg[1], r.global[2], pg[2], r.global[3], pg[3],
            r.pool[0], pp[0], r.pool[1], pp[1], r.pool[5], pp[5], r.pool[8], pp[8], r.pool[7], pp[7],
        );
    }
    out
}

/// Renders Table 9 with paper values.
#[must_use]
pub fn render_table9(rows: &[Table9Row]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 9: Data breakdown (measured | paper)");
    let _ = writeln!(
        out,
        "{:8} {:>13} {:>13} {:>13} {:>13} {:>13}",
        "Program", "Local KB", "Global KB", "%First", "%InMethods", "%Unused"
    );
    for r in rows {
        let p = paper::TABLE9[pidx(&r.name)];
        let s = &r.summary;
        let _ =
            writeln!(
            out,
            "{:8} {:>6.1}|{:<6.1} {:>6.1}|{:<6.1} {:>5.1}|{:<5.0} {:>6.1}|{:<5.0} {:>5.1}|{:<5.0}",
            r.name, s.local_kb, p.0, s.global_kb, p.1, s.pct_needed_first, p.2,
            s.pct_in_methods, p.3, s.pct_unused, p.4,
        );
    }
    out
}

/// Renders the Figure 6 summary with paper values.
#[must_use]
pub fn render_fig6(series: &[[f64; 6]; 4]) -> String {
    let names = [
        "Parallel File Transfer",
        "PFT + Data Partitioned",
        "Interleaved File Transfer",
        "IFT + Data Partitioned",
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6: Average normalized execution time, % (measured | paper)"
    );
    let _ = writeln!(
        out,
        "{:26} {:>9} {:>9} {:>9}   {:>9} {:>9} {:>9}",
        "Series", "T1 SCG", "T1 Train", "T1 Test", "Mo SCG", "Mo Train", "Mo Test"
    );
    for (i, s) in series.iter().enumerate() {
        let _ = write!(out, "{:26}", names[i]);
        for (c, v) in s.iter().enumerate() {
            let _ = write!(out, " {:>4.0}|{:<4.0}", v, paper::FIG6[i][c]);
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders the fault sweep: the robustness extension's degradation
/// report. Not part of [`render_all`], which reproduces only the
/// paper's perfect-link tables.
#[must_use]
pub fn render_fault_sweep(rows: &[crate::experiment::faults::FaultRow]) -> String {
    use crate::metrics::completion_rate_percent;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fault sweep: resilient transfer under seeded link faults (non-strict par(4))"
    );
    let _ = writeln!(
        out,
        "{:8} {:>6} {:>6} {:>9} {:>7} {:>9} {:>8} {:>6} {:>8} {:>9}",
        "Program",
        "link",
        "order",
        "loss ppm",
        "norm%",
        "recov%",
        "retries",
        "drops",
        "degraded",
        "completed"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:8} {:>6} {:>6} {:>9} {:>7.1} {:>9.2} {:>8} {:>6} {:>6}{:>2} {:>9}",
            r.name,
            r.link.name,
            r.ordering.label(),
            r.loss_pm,
            r.normalized,
            r.recovery_share,
            r.retries,
            r.drops,
            r.degraded_classes,
            if r.session_degraded { "S" } else { "" },
            if r.completed { "yes" } else { "NO" },
        );
    }
    let completed = rows.iter().filter(|r| r.completed).count();
    let fallbacks: u64 = rows.iter().map(|r| u64::from(r.degraded_classes)).sum();
    let retries: u64 = rows.iter().map(|r| r.retries).sum();
    let quarantined: u64 = rows.iter().map(|r| r.quarantined).sum();
    let forced: u64 = rows.iter().map(|r| r.forced).sum();
    let _ = writeln!(
        out,
        "completion rate {:.1}% ({} of {} runs), {} retries total, {} class fallbacks to strict",
        completion_rate_percent(completed, rows.len()),
        completed,
        rows.len(),
        retries,
        fallbacks,
    );
    let _ = writeln!(
        out,
        "degradation: {quarantined:>6} units quarantined, {forced:>6} forced past the retry cap",
    );
    out
}

/// Renders the overload sweep: fleet size × link mix × admission rate
/// under fair-share scheduling and the load-shed ladder. Not part of
/// [`render_all`], which reproduces only the paper's one-client
/// tables.
#[must_use]
pub fn render_overload_sweep(rows: &[crate::experiment::overload::OverloadRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Overload sweep: fair-share scheduling, admission control, and load shedding (shared T1 egress)"
    );
    let _ = writeln!(
        out,
        "{:>7} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7} {:>5} {:>12} {:>12} {:>12} {:>7}",
        "clients",
        "mix",
        "admit",
        "reject",
        "served",
        "nohedge",
        "strict",
        "shed",
        "p50 cyc",
        "p95 cyc",
        "p99 cyc",
        "queue%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>7} {:>6} {:>6} {:>7} {:>7} {:>7} {:>7} {:>5} {:>12} {:>12} {:>12} {:>7.2}",
            r.clients,
            r.mix,
            r.admit_rate,
            r.rejections,
            r.served,
            r.hedge_dropped,
            r.forced_strict,
            r.shed,
            r.p50_total,
            r.p95_total,
            r.p99_total,
            r.queue_share,
        );
    }
    let rejections: u64 = rows.iter().map(|r| r.rejections).sum();
    let dropped: usize = rows.iter().map(|r| r.hedge_dropped).sum();
    let forced: usize = rows.iter().map(|r| r.forced_strict).sum();
    let shed: usize = rows.iter().map(|r| r.shed).sum();
    let _ = writeln!(
        out,
        "{} admission rejections across {} fleets; shed ladder: {} hedge-drops, {} forced strict, {} shed to journal",
        rejections,
        rows.len(),
        dropped,
        forced,
        shed,
    );
    out
}

/// Renders the replica sweep: health-scored mirror routing with hedged
/// demand fetches, including the per-mirror end-of-run health table.
/// Not part of [`render_all`], which reproduces only the paper's
/// single-origin tables.
#[must_use]
pub fn render_replica_sweep(rows: &[crate::experiment::replica::ReplicaRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Replica sweep: health-scored mirrors with hedged demand fetches (non-strict par(4), SCG)"
    );
    let _ = writeln!(
        out,
        "{:8} {:>6} {:>7} {:>9} {:>7} {:>7} {:>7} {:>5} {:>9}  {:<20}",
        "Program",
        "link",
        "mirrors",
        "loss ppm",
        "norm%",
        "hedge%",
        "hedges",
        "won",
        "failovers",
        "mirror health %"
    );
    for r in rows {
        let health: Vec<String> = r
            .health_ppm
            .iter()
            .map(|&h| format!("{:.1}", f64::from(h) / 10_000.0))
            .collect();
        let _ = writeln!(
            out,
            "{:8} {:>6} {:>7} {:>9} {:>7.1} {:>7.2} {:>7} {:>5} {:>9}  {:<20}",
            r.name,
            r.link.name,
            r.replicas,
            r.loss_pm,
            r.normalized,
            r.hedge_share,
            r.hedges,
            r.hedge_wins,
            r.failovers,
            health.join("/"),
        );
    }
    let hedges: u64 = rows.iter().map(|r| r.hedges).sum();
    let wins: u64 = rows.iter().map(|r| r.hedge_wins).sum();
    let failovers: u64 = rows.iter().map(|r| r.failovers).sum();
    // Single-origin cells carry no scores; they must not read as a
    // zero-health mirror.
    let worst = rows
        .iter()
        .filter(|r| !r.health_ppm.is_empty())
        .map(|r| r.min_health_ppm)
        .min()
        .unwrap_or(0);
    let _ = writeln!(
        out,
        "{} hedged fetches ({} won) and {} failovers across {} runs; worst mirror health {:.1}%",
        hedges,
        wins,
        failovers,
        rows.len(),
        f64::from(worst) / 10_000.0,
    );
    out
}

/// Renders the byzantine sweep: manifest digest checks, cross-mirror
/// audits, and quarantine-plus-refetch against dishonest mirrors. Not
/// part of [`render_all`], which reproduces only the paper's
/// trusted-network tables.
#[must_use]
pub fn render_byzantine_sweep(rows: &[crate::experiment::byzantine::ByzantineRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Byzantine sweep: content-addressed manifests vs dishonest mirrors (non-strict par(4), SCG, honest primary killed early)"
    );
    let _ = writeln!(
        out,
        "{:8} {:>6} {:>7} {:>4} {:>11} {:>9} {:>7} {:>7} {:>8} {:>6} {:>7} {:>5} {:>6} {:>7}",
        "Program",
        "link",
        "mirrors",
        "byz",
        "mode",
        "audit ppm",
        "norm%",
        "integ%",
        "diverge",
        "undet",
        "audits",
        "quar",
        "fence",
        "refetch"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:8} {:>6} {:>7} {:>4} {:>11} {:>9} {:>7.1} {:>7.2} {:>8} {:>6} {:>7} {:>5} {:>6} {:>7}",
            r.name,
            r.link.name,
            r.replicas,
            r.byzantine,
            r.mode.label(),
            r.audit_rate_pm,
            r.normalized,
            r.integrity_share,
            r.divergent_units,
            r.undetected_units,
            r.audits,
            r.quarantines,
            r.fence_refetches,
            r.refetched_bytes
        );
    }
    let divergent: u64 = rows.iter().map(|r| r.divergent_units).sum();
    let undetected: u64 = rows.iter().map(|r| r.undetected_units).sum();
    let quarantines: u32 = rows.iter().map(|r| r.quarantines).sum();
    let _ = writeln!(
        out,
        "{} divergent units across {} runs; {} linked undetected (collusion windows), {} mirrors quarantined",
        divergent,
        rows.len(),
        undetected,
        quarantines,
    );
    out
}

/// Renders the outage sweep: durable session checkpoint/resume under
/// seeded full-connection losses. Not part of [`render_all`], which
/// reproduces only the paper's outage-free tables.
#[must_use]
pub fn render_outage_sweep(rows: &[crate::experiment::outage::OutageRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Outage sweep: session checkpoint/resume under connection loss (non-strict par(4), SCG)"
    );
    let _ = writeln!(
        out,
        "{:8} {:>6} {:>9} {:>12} {:>7} {:>8} {:>8} {:>8} {:>9}",
        "Program",
        "link",
        "rate ppm",
        "outage cyc",
        "norm%",
        "resume%",
        "outages",
        "resumes",
        "pure-down"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:8} {:>6} {:>9} {:>12} {:>7.1} {:>8.2} {:>8} {:>8} {:>9}",
            r.name,
            r.link.name,
            r.rate_pm,
            r.outage_cycles,
            r.normalized,
            r.resume_share,
            r.outages,
            r.resumes,
            if r.pure_downtime { "yes" } else { "NO" },
        );
    }
    let outages: u64 = rows.iter().map(|r| u64::from(r.outages)).sum();
    let pure = rows.iter().filter(|r| r.pure_downtime).count();
    let _ = writeln!(
        out,
        "{} outages survived across {} runs; {} of {} runs were pure inserted downtime",
        outages,
        rows.len(),
        pure,
        rows.len(),
    );
    out
}

/// Renders the verification sweep: what the verified-prefix gate costs
/// under each [`crate::model::VerifyMode`]. Not part of [`render_all`],
/// which reproduces only the paper's verification-free tables.
#[must_use]
pub fn render_verify_sweep(rows: &[crate::experiment::verify::VerifyRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Verification sweep: verified-prefix streaming (non-strict par(4), SCG)"
    );
    let _ = writeln!(
        out,
        "{:8} {:>6} {:>7} {:>7} {:>13} {:>8} {:>13}",
        "Program", "link", "mode", "norm%", "verify cyc", "verify%", "invoke lat"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:8} {:>6} {:>7} {:>7.1} {:>13} {:>8.2} {:>13}",
            r.name,
            r.link.name,
            r.mode.label(),
            r.normalized,
            r.verify_cycles,
            r.verify_share,
            r.invocation_latency,
        );
    }
    out
}

/// Renders the chaos sweep: composed cross-layer scenarios under the
/// conductor's global invariant checker. Not part of [`render_all`],
/// which reproduces only the paper's fault-free tables.
#[must_use]
pub fn render_chaos_sweep(rows: &[crate::experiment::chaos::ChaosRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Chaos sweep: composed cross-layer fault scenarios (non-strict par(4), SCG), \
         invariant-checked per row"
    );
    let _ = writeln!(
        out,
        "{:8} {:>6} {:40} {:>7} {:>7} {:>4} {:>7} {:>7} {:>8} {:>9}",
        "Program",
        "link",
        "scenario",
        "clients",
        "norm%",
        "viol",
        "outages",
        "resumes",
        "degraded",
        "complete"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:8} {:>6} {:40} {:>7} {:>7.1} {:>4} {:>7} {:>7} {:>8} {:>9}",
            r.name,
            r.link.name,
            r.scenario,
            r.clients,
            r.normalized,
            r.violations,
            r.outages,
            r.resumes,
            r.degraded,
            if r.completed { "yes" } else { "NO" },
        );
    }
    let violations: u64 = rows.iter().map(|r| u64::from(r.violations)).sum();
    let crashes = rows
        .iter()
        .filter(|r| r.scenario.ends_with("+crash"))
        .count();
    let _ = writeln!(
        out,
        "{} invariant violations across {} composed runs ({} crash-and-resume cells)",
        violations,
        rows.len(),
        crashes,
    );
    out
}

/// Renders every table and the figure in paper order.
#[must_use]
pub fn render_all(suite: &Suite) -> String {
    let mut out = String::new();
    out.push_str(&render_table2(suite));
    out.push('\n');
    out.push_str(&render_table3(&experiment::table3(suite)));
    out.push('\n');
    out.push_str(&render_table4(&experiment::table4(suite)));
    out.push('\n');
    out.push_str(&render_parallel(&experiment::parallel_table(
        suite,
        nonstrict_netsim::Link::T1,
        DataLayout::Whole,
    )));
    out.push('\n');
    out.push_str(&render_parallel(&experiment::parallel_table(
        suite,
        nonstrict_netsim::Link::MODEM_28_8,
        DataLayout::Whole,
    )));
    out.push('\n');
    let t7 = experiment::interleaved_table(suite, DataLayout::Whole);
    let t7_paper: Vec<[f64; 6]> = paper::TABLE7
        .iter()
        .map(|r| [r.0, r.1, r.2, r.3, r.4, r.5])
        .collect();
    out.push_str(&render_interleaved(
        &t7,
        "Table 7: Interleaved File Transfer",
        Some(&t7_paper),
    ));
    out.push('\n');
    out.push_str(&render_table8(&experiment::table8(suite)));
    out.push('\n');
    out.push_str(&render_table9(&experiment::table9(suite)));
    out.push('\n');
    let (t10p, t10i) = experiment::table10(suite);
    let t10p_paper: Vec<[f64; 6]> = paper::TABLE10.iter().map(|r| r.0).collect();
    let t10i_paper: Vec<[f64; 6]> = paper::TABLE10.iter().map(|r| r.1).collect();
    out.push_str(&render_interleaved(
        &t10p,
        "Table 10a: Parallel(4) + Data Partitioning",
        Some(&t10p_paper),
    ));
    out.push('\n');
    out.push_str(&render_interleaved(
        &t10i,
        "Table 10b: Interleaved + Data Partitioning",
        Some(&t10i_paper),
    ));
    out.push('\n');
    out.push_str(&render_fig6(&experiment::fig6(suite)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    #[test]
    fn single_app_report_renders() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let t3 = experiment::table3(&suite);
        let text = render_table3(&t3);
        assert!(text.contains("Hanoi"));
        assert!(text.contains("Table 3"));
        let t4 = experiment::table4(&suite);
        assert!(render_table4(&t4).contains("Latency"));
    }

    #[test]
    fn every_renderer_produces_labelled_output() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };

        let t2 = render_table2(&suite);
        assert!(t2.contains("Hanoi") && t2.contains("DynTest"));

        let p = experiment::parallel_table(&suite, nonstrict_netsim::Link::T1, DataLayout::Whole);
        let t5 = render_parallel(&p);
        assert!(t5.contains("Parallel File Transfer") && t5.contains("AVG"));

        let i = experiment::interleaved_table(&suite, DataLayout::Whole);
        let t7 = render_interleaved(&i, "Table 7: test", None);
        assert!(t7.contains("Table 7") && t7.contains("Mo Train"));

        let t8 = render_table8(&experiment::table8(&suite));
        assert!(t8.contains("CPool") && t8.contains("Utf8"));

        let t9 = render_table9(&experiment::table9(&suite));
        assert!(t9.contains("%InMethods"));

        let f6 = render_fig6(&experiment::fig6(&suite));
        assert!(f6.contains("Interleaved File Transfer"));
        assert!(f6.contains("IFT + Data Partitioned"));
    }

    #[test]
    fn fault_sweep_renders_degradation_report() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let rows = crate::experiment::faults::fault_sweep(&suite);
        let text = render_fault_sweep(&rows);
        assert!(text.contains("Fault sweep"), "{text}");
        assert!(text.contains("completion rate 100.0%"), "{text}");
        assert!(text.contains("retries total"), "{text}");
        assert!(text.contains("units quarantined"), "{text}");
        assert!(text.contains("forced past the retry cap"), "{text}");
    }

    #[test]
    fn replica_sweep_renders_the_mirror_health_table() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let rows = crate::experiment::replica::replica_sweep(&suite);
        let text = render_replica_sweep(&rows);
        assert!(text.contains("Replica sweep"), "{text}");
        assert!(text.contains("mirror health %"), "{text}");
        assert!(text.contains("worst mirror health"), "{text}");
        // The three-mirror rows list three slash-separated health scores.
        assert!(text.lines().any(|l| l.matches('/').count() == 2), "{text}");
    }

    #[test]
    fn overload_sweep_renders_the_shed_ladder_summary() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let rows = crate::experiment::overload::overload_sweep(&suite);
        let text = render_overload_sweep(&rows);
        assert!(text.contains("Overload sweep"), "{text}");
        assert!(text.contains("queue%"), "{text}");
        assert!(text.contains("shed ladder:"), "{text}");
        assert!(text.contains("forced strict"), "{text}");
        assert!(text.contains("shed to journal"), "{text}");
    }

    #[test]
    fn outage_sweep_renders_resume_report() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let rows = crate::experiment::outage::outage_sweep(&suite);
        let text = render_outage_sweep(&rows);
        assert!(text.contains("Outage sweep"), "{text}");
        assert!(
            text.contains(&format!(
                "{} of {} runs were pure inserted downtime",
                rows.len(),
                rows.len()
            )),
            "{text}"
        );
    }

    #[test]
    fn verify_sweep_renders_overhead_report() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let rows = crate::experiment::verify::verify_sweep(&suite);
        let text = render_verify_sweep(&rows);
        assert!(text.contains("Verification sweep"), "{text}");
        assert!(text.contains("stream"), "{text}");
        assert!(text.contains("full"), "{text}");
    }

    #[test]
    fn parallel_renderer_pairs_measured_with_paper_cells() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let p = experiment::parallel_table(&suite, nonstrict_netsim::Link::T1, DataLayout::Whole);
        let text = render_parallel(&p);
        // Hanoi's paper row for T1 SCG limit-1 is 100; the measured|paper
        // pair must surface it.
        let hanoi_line = text.lines().find(|l| l.starts_with("Hanoi")).unwrap();
        assert!(hanoi_line.contains("|100"), "{hanoi_line}");
    }

    #[test]
    fn partitioned_parallel_renders_without_paper_columns() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let p =
            experiment::parallel_table(&suite, nonstrict_netsim::Link::T1, DataLayout::Partitioned);
        let text = render_parallel(&p);
        let hanoi_line = text.lines().find(|l| l.starts_with("Hanoi")).unwrap();
        assert!(!hanoi_line.contains('|'.to_string().repeat(2).as_str()));
    }
}
