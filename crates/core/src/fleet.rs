//! The fleet driver: M concurrent client sessions sharing one server.
//!
//! Every robustness layer so far models one client on a dedicated
//! link. This module puts N of them behind a single server egress pipe
//! and composes the three contention defenses from
//! [`nonstrict_netsim::contention`]:
//!
//! 1. **Admission.** Each client's session request arrives at a seeded
//!    offset. A token-bucket [`AdmissionController`] either admits it
//!    or answers with a typed `Rejected { retry_after }`; the client
//!    honors it with seeded jittered backoff and retries. The whole
//!    admission exchange is replayed on one interleaved event loop in
//!    wall-clock order, so retries from different clients contend for
//!    the same refilled tokens deterministically.
//! 2. **Fair-share scheduling.** Admitted clients' transfer units (the
//!    exact [`Session::units_for`] byte stream, so verified-prefix,
//!    journal, and replica semantics compose unchanged) are served by
//!    deficit round robin over the egress pipe. Each client's
//!    contention delay falls out exactly as
//!    `finish − admitted − bytes·cpb`.
//! 3. **Load shedding.** Clients whose contention delay crosses a
//!    [`ShedLadder`] rung are degraded in order: hedged fetches
//!    dropped, then forced to strict sequential transfer, then shed to
//!    a journal checkpoint (via [`Session::run_until`]) and resumed
//!    after the congestion has passed (via [`Session::resume`]).
//!
//! Accounting stays exact: every admission wait and every cycle of DRR
//! queueing delay lands in exactly one bucket — the seventh
//! `queue_cycles` bucket, except a shed client's DRR delay, which
//! becomes its journal park and lands in the resume bucket — and
//! every per-client result satisfies
//! `total = exec + stall + recovery + verify + resume + hedge + queue`
//! ([`crate::metrics::CycleLedger::assert_exact`], debug-asserted for
//! served, rejected-then-admitted, degraded, and shed-then-resumed
//! sessions alike).
//!
//! The contention delay is an **ambient shift**, like outage downtime
//! (`core::sim`'s `ambient_shift`): each client's own timeline — its
//! link, stalls, faults, verification — is simulated undisturbed, and
//! the server-side queueing delay is added on top. A fleet of one
//! therefore reproduces the single-client result bit for bit: one
//! client never queues, so the shift is zero by construction.
//!
//! The schedule itself is a **one-pass approximation**: DRR demand is
//! each client's *pre-degradation* unit stream, and the ladder is
//! keyed on the queue delay that demand produced. A forced-strict
//! client therefore contends with its non-strict stream even though
//! its simulated timeline is strict, and a shed client's units keep
//! occupying the schedule after it is parked — the feedback loop in
//! which degraded clients shrink everyone else's queue delay is not
//! modeled (that would need a fixed-point iteration of the schedule).

use nonstrict_bytecode::Input;
use nonstrict_netsim::contention::{
    drr_schedule, jitter, AdmissionController, ClientDemand, ShedAction, ShedLadder,
};
use nonstrict_netsim::Link;

use crate::metrics::percentile;
use crate::model::{ExecutionModel, SimConfig, TransferPolicy};
use crate::sim::{RunOutcome, Session, SimResult};

/// Default DRR quantum: bytes of deficit each unit-weight client earns
/// per round. Small enough that fairness is fine-grained against the
/// multi-kilobyte method units, large enough that rounds stay cheap.
pub const DEFAULT_QUANTUM_BYTES: u64 = 4_096;

/// Default span (cycles) over which client session requests arrive,
/// ~0.2 s on the 500 MHz Alpha: wide enough to stagger admissions,
/// narrow enough that transfers genuinely overlap.
pub const DEFAULT_ARRIVAL_SPAN_CYCLES: u64 = 100_000_000;

/// Default token-bucket refill period, ~20 ms on the 500 MHz Alpha.
pub const DEFAULT_ADMIT_PERIOD_CYCLES: u64 = 10_000_000;

/// Token-bucket admission settings for a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AdmissionSettings {
    /// Tokens refilled per period.
    pub rate: u32,
    /// Bucket capacity (burst).
    pub burst: u32,
    /// Refill period in cycles.
    pub period_cycles: u64,
}

impl AdmissionSettings {
    /// `rate` admissions per default period, with burst equal to the
    /// rate — the shape the CLI's `--admit-rate N` requests.
    #[must_use]
    pub fn per_period(rate: u32) -> AdmissionSettings {
        AdmissionSettings {
            rate: rate.max(1),
            burst: rate.max(1),
            period_cycles: DEFAULT_ADMIT_PERIOD_CYCLES,
        }
    }
}

/// One client of the fleet: a prepared session on its own access link,
/// with a DRR weight for its share of the egress pipe.
#[derive(Clone, Copy)]
pub struct FleetClient<'a> {
    /// Benchmark name, for reports.
    pub name: &'a str,
    /// The prepared benchmark session.
    pub session: &'a Session,
    /// The client's own access link (heterogeneous across the fleet).
    pub link: Link,
    /// DRR weight (share of the egress pipe); clamped to at least 1.
    pub weight: u32,
}

/// Fleet-level knobs: the shared egress pipe, seeded arrivals,
/// admission control, and the shed ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FleetSpec {
    /// Seed for arrival offsets and backoff jitter.
    pub seed: u64,
    /// The server's shared egress pipe.
    pub egress: Link,
    /// DRR quantum in bytes per unit weight per round.
    pub quantum: u64,
    /// Session requests arrive at seeded offsets in `[0, span)`.
    pub arrival_span: u64,
    /// Token-bucket admission; `None` disables admission control
    /// (every session admitted on arrival).
    pub admission: Option<AdmissionSettings>,
    /// Load-shed ladder; `None` serves every client unmodified.
    pub ladder: Option<ShedLadder>,
}

impl FleetSpec {
    /// A fleet spec with the default egress (T1), quantum, and arrival
    /// span, no admission control, and no shed ladder.
    #[must_use]
    pub fn seeded(seed: u64) -> FleetSpec {
        FleetSpec {
            seed,
            egress: Link::T1,
            quantum: DEFAULT_QUANTUM_BYTES,
            arrival_span: DEFAULT_ARRIVAL_SPAN_CYCLES,
            admission: None,
            ladder: None,
        }
    }
}

/// What happened to one client of the fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientOutcome {
    /// Benchmark name.
    pub name: String,
    /// The client's access link.
    pub link: Link,
    /// DRR weight.
    pub weight: u32,
    /// Wall cycle of the first session request.
    pub arrival: u64,
    /// Wall cycle of the admission that finally succeeded.
    pub admitted: u64,
    /// Admission rejections before the session was admitted.
    pub rejections: u32,
    /// Admission backoff wait (`admitted − arrival`), charged to the
    /// queue bucket.
    pub admission_wait: u64,
    /// DRR contention delay at the egress pipe, charged to the queue
    /// bucket.
    pub drr_queue: u64,
    /// The shed-ladder rung applied (keyed on `drr_queue`).
    pub action: ShedAction,
    /// The client's session result; `queue_cycles` holds
    /// `admission_wait + drr_queue` and `total_cycles` includes it.
    /// Exception: a [`ShedAction::Shed`] client's `drr_queue` is the
    /// journal park already charged to the resume bucket, so its
    /// `queue_cycles` holds only `admission_wait` (no wall-clock
    /// interval is counted twice).
    pub result: SimResult,
}

/// One fleet run: every client's outcome plus aggregate percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetResult {
    /// The shared egress pipe.
    pub egress: Link,
    /// Per-client outcomes, in client order.
    pub clients: Vec<ClientOutcome>,
    /// Median per-client total cycles.
    pub p50_total: u64,
    /// 95th-percentile per-client total cycles.
    pub p95_total: u64,
    /// 99th-percentile per-client total cycles.
    pub p99_total: u64,
}

impl FleetResult {
    /// Clients whose ladder outcome was `action`.
    #[must_use]
    pub fn count(&self, action: ShedAction) -> usize {
        self.clients.iter().filter(|c| c.action == action).count()
    }

    /// Total admission rejections across the fleet.
    #[must_use]
    pub fn rejections(&self) -> u64 {
        self.clients.iter().map(|c| u64::from(c.rejections)).sum()
    }

    /// Total queue cycles across the fleet: admission wait + DRR
    /// delay, except that shed clients' DRR delay is their journal
    /// park and lives in the resume bucket instead.
    #[must_use]
    pub fn queue_cycles(&self) -> u64 {
        self.clients.iter().map(|c| c.result.queue_cycles).sum()
    }
}

/// Replays the admission exchange on one interleaved event loop:
/// requests and retries pop in wall-clock order (ties broken by client
/// index), rejections re-arm with `retry_after` plus seeded jitter.
/// Returns `(admitted_at, rejections)` per client.
fn run_admission(
    spec: &FleetSpec,
    arrivals: &[u64],
    settings: Option<AdmissionSettings>,
) -> Vec<(u64, u32)> {
    let Some(s) = settings else {
        return arrivals.iter().map(|&a| (a, 0)).collect();
    };
    let mut ctl = AdmissionController::new(s.rate, s.burst, s.period_cycles);
    let mut outcome = vec![(0u64, 0u32); arrivals.len()];
    // Pending attempts, popped in (time, client) order.
    let mut pending: Vec<(u64, usize, u32)> = arrivals
        .iter()
        .enumerate()
        .map(|(i, &a)| (a, i, 0))
        .collect();
    while !pending.is_empty() {
        let (pos, &(now, i, attempt)) = pending
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, c, _))| (t, c))
            .expect("pending is non-empty");
        pending.swap_remove(pos);
        match ctl.admit(now) {
            Ok(()) => outcome[i] = (now, attempt),
            Err(rej) => {
                // Back off past the refill boundary with seeded jitter
                // so colliding retries from different clients spread
                // out instead of stampeding the same token.
                let wait = rej.retry_after
                    + jitter(spec.seed, i as u64, attempt + 1, rej.retry_after.max(1));
                pending.push((now + wait.max(1), i, attempt + 1));
            }
        }
    }
    outcome
}

/// The config a client runs under after its ladder rung is applied.
fn degraded_config(base: &SimConfig, action: ShedAction) -> SimConfig {
    match action {
        // Hedges are pure redundancy: cancel them and keep everything
        // else (hedge deadline 0 disables hedging).
        ShedAction::DropHedges => match base.replicas {
            Some(mut rc) => {
                rc.hedge_deadline_cycles = 0;
                SimConfig {
                    replicas: Some(rc),
                    byzantine: None,
                    ..*base
                }
            }
            None => *base,
        },
        // Give up overlap: strict sequential transfer and strict
        // execution, keeping the client's link, verification, faults,
        // and mirrors.
        ShedAction::ForceStrict => SimConfig {
            transfer: TransferPolicy::Strict,
            execution: ExecutionModel::Strict,
            ..*base
        },
        ShedAction::None | ShedAction::Shed => *base,
    }
}

/// Drives the whole fleet: seeded arrivals, the admission exchange,
/// the DRR schedule over the shared egress, the shed ladder, and one
/// session simulation per client with exact queue accounting.
///
/// `base` is each client's session config **except** the link, which
/// comes from its [`FleetClient`]. A fleet of one client with
/// admission disabled (or not, the first token is always there)
/// reproduces `session.simulate(input, &config)` exactly with
/// `queue_cycles == 0`.
///
/// Like the ambient queue shift itself, the contention model is one
/// pass: demands on the egress pipe come from each client's
/// **pre-degradation** config, and ladder actions are keyed on the
/// delay those demands produced. Degraded clients do not shrink the
/// schedule retroactively, so `overload.csv` readers should treat the
/// queue column as the *triggering* contention, not a post-shed
/// equilibrium (see the module docs).
#[must_use]
pub fn run_fleet(
    spec: &FleetSpec,
    clients: &[FleetClient],
    input: Input,
    base: &SimConfig,
) -> FleetResult {
    // Seeded arrival offsets (stream 0 of each client's jitter).
    let arrivals: Vec<u64> = (0..clients.len())
        .map(|i| jitter(spec.seed, i as u64, 0, spec.arrival_span.max(1)))
        .collect();
    let admitted = run_admission(spec, &arrivals, spec.admission);

    // Per-client configs and unit demand on the egress pipe.
    let configs: Vec<SimConfig> = clients
        .iter()
        .map(|c| SimConfig {
            link: c.link,
            ..*base
        })
        .collect();
    let demands: Vec<ClientDemand> = clients
        .iter()
        .zip(&admitted)
        .zip(&configs)
        .map(|((c, &(at, _)), cfg)| ClientDemand {
            weight: c.weight.max(1),
            arrival: at,
            units: c
                .session
                .units_for(cfg)
                .iter()
                .flat_map(|u| {
                    let mut v = Vec::with_capacity(u.unit_count());
                    v.push(u.prelude);
                    v.extend_from_slice(&u.methods);
                    v.push(u.trailing);
                    v
                })
                .collect(),
        })
        .collect();
    let served = drr_schedule(spec.egress.cycles_per_byte, spec.quantum, &demands);

    let outcomes: Vec<ClientOutcome> = clients
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let (at, rejections) = admitted[i];
            let admission_wait = at - arrivals[i];
            let drr_queue = served[i].queue_cycles;
            let action = spec
                .ladder
                .map_or(ShedAction::None, |l| l.action_for(drr_queue));
            let cfg = degraded_config(&configs[i], action);
            let mut result = match action {
                ShedAction::Shed => shed_and_resume(c.session, input, &cfg, drr_queue),
                _ => c.session.simulate(input, &cfg),
            };
            // The ambient queue shift: admission wait plus contention
            // delay on top of the client's undisturbed timeline.  A
            // shed client's DRR delay is the park that `shed_and_resume`
            // already charged to the resume bucket — the same
            // wall-clock interval must not land in queue too.
            result.queue_cycles = match action {
                ShedAction::Shed => admission_wait,
                _ => admission_wait + drr_queue,
            };
            result.total_cycles += result.queue_cycles;
            result
                .ledger()
                .assert_exact(result.total_cycles, "fleet client");
            ClientOutcome {
                name: c.name.to_string(),
                link: c.link,
                weight: c.weight.max(1),
                arrival: arrivals[i],
                admitted: at,
                rejections,
                admission_wait,
                drr_queue,
                action,
                result,
            }
        })
        .collect();

    let mut totals: Vec<u64> = outcomes.iter().map(|o| o.result.total_cycles).collect();
    totals.sort_unstable();
    FleetResult {
        egress: spec.egress,
        p50_total: percentile(&totals, 50),
        p95_total: percentile(&totals, 95),
        p99_total: percentile(&totals, 99),
        clients: outcomes,
    }
}

/// The final ladder rung: checkpoint the session to a journal halfway
/// through its base timeline, park it for the duration of the
/// congestion that evicted it (`park` cycles, its DRR queue delay),
/// and resume from the journal. The round trip through the encoded
/// journal bytes is real — the same machinery as an outage resume —
/// so the parked time lands in the `resume` bucket and everything
/// delivered pre-shed survives. Because the park *is* the client's
/// DRR queue delay, [`run_fleet`] excludes that delay from the shed
/// client's `queue_cycles` — the interval is charged exactly once.
fn shed_and_resume(session: &Session, input: Input, config: &SimConfig, park: u64) -> SimResult {
    let base_total = session.simulate(input, config).total_cycles;
    match session.run_until(input, config, base_total / 2) {
        RunOutcome::Finished(r) => *r,
        RunOutcome::Interrupted(journal_bytes) => {
            session.resume(input, config, &journal_bytes, park)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::OrderingSource;

    fn hanoi_session() -> Session {
        Session::new(nonstrict_workloads::hanoi::build()).unwrap()
    }

    #[test]
    fn fleet_of_one_is_exactly_the_single_client_run() {
        let session = hanoi_session();
        let config = SimConfig::non_strict(Link::MODEM_28_8, OrderingSource::StaticCallGraph);
        let solo = session.simulate(Input::Test, &config);
        for admission in [None, Some(AdmissionSettings::per_period(1))] {
            let spec = FleetSpec {
                admission,
                ladder: Some(ShedLadder::new(1, 2, 3).unwrap()),
                ..FleetSpec::seeded(0xf1ee7)
            };
            let clients = [FleetClient {
                name: "Hanoi",
                session: &session,
                link: Link::MODEM_28_8,
                weight: 1,
            }];
            let fleet = run_fleet(&spec, &clients, Input::Test, &config);
            assert_eq!(fleet.clients.len(), 1);
            let c = &fleet.clients[0];
            assert_eq!(c.result, solo, "a lone client must not be perturbed");
            assert_eq!(c.result.queue_cycles, 0);
            assert_eq!(c.rejections, 0);
            assert_eq!(c.action, ShedAction::None);
            assert_eq!(fleet.p50_total, solo.total_cycles);
            assert_eq!(fleet.p99_total, solo.total_cycles);
        }
    }

    #[test]
    fn contended_fleet_charges_queue_cycles_exactly() {
        let session = hanoi_session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let spec = FleetSpec {
            arrival_span: 1_000,
            ..FleetSpec::seeded(0xf1ee7)
        };
        let client = FleetClient {
            name: "Hanoi",
            session: &session,
            link: Link::T1,
            weight: 1,
        };
        let fleet = run_fleet(&spec, &[client; 4], Input::Test, &config);
        let solo = session.simulate(Input::Test, &config);
        // Four identical clients arriving nearly together: everyone
        // but (at most) the first queues.
        assert!(fleet.queue_cycles() > 0);
        for c in &fleet.clients {
            assert_eq!(
                c.result.total_cycles,
                solo.total_cycles + c.result.queue_cycles
            );
            c.result
                .ledger()
                .assert_exact(c.result.total_cycles, "test");
        }
        assert!(fleet.p99_total > fleet.p50_total);
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let session = hanoi_session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let spec = FleetSpec {
            arrival_span: 1_000,
            admission: Some(AdmissionSettings {
                rate: 1,
                burst: 1,
                period_cycles: 1_000,
            }),
            ladder: Some(ShedLadder::new(0, u64::MAX, u64::MAX).unwrap()),
            ..FleetSpec::seeded(0xf1ee7)
        };
        let client = FleetClient {
            name: "Hanoi",
            session: &session,
            link: Link::T1,
            weight: 2,
        };
        let a = run_fleet(&spec, &[client; 3], Input::Test, &config);
        let b = run_fleet(&spec, &[client; 3], Input::Test, &config);
        assert_eq!(a, b);
    }

    #[test]
    fn admission_pressure_rejects_then_admits_everyone() {
        let session = hanoi_session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let spec = FleetSpec {
            arrival_span: 100,
            admission: Some(AdmissionSettings {
                rate: 1,
                burst: 1,
                period_cycles: 1_000_000,
            }),
            ..FleetSpec::seeded(7)
        };
        let client = FleetClient {
            name: "Hanoi",
            session: &session,
            link: Link::T1,
            weight: 1,
        };
        let fleet = run_fleet(&spec, &[client; 4], Input::Test, &config);
        assert!(
            fleet.rejections() > 0,
            "one token per ms must reject a burst of 4"
        );
        for c in &fleet.clients {
            assert!(c.admitted >= c.arrival);
            assert_eq!(c.admission_wait, c.admitted - c.arrival);
            assert_eq!(c.result.queue_cycles, c.admission_wait + c.drr_queue);
            c.result
                .ledger()
                .assert_exact(c.result.total_cycles, "test");
        }
        // Everyone eventually got in, at distinct admission times.
        let mut times: Vec<u64> = fleet.clients.iter().map(|c| c.admitted).collect();
        times.sort_unstable();
        times.dedup();
        assert_eq!(times.len(), 4);
    }

    #[test]
    fn shed_ladder_rungs_apply_in_order() {
        let session = hanoi_session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        // Everything queues past rung three: every client but the
        // first is shed; the first (zero queue) is served.
        let spec = FleetSpec {
            arrival_span: 1,
            ladder: Some(ShedLadder::new(1, 2, 3).unwrap()),
            ..FleetSpec::seeded(0xf1ee7)
        };
        let client = FleetClient {
            name: "Hanoi",
            session: &session,
            link: Link::T1,
            weight: 1,
        };
        let fleet = run_fleet(&spec, &[client; 3], Input::Test, &config);
        let shed = fleet.count(ShedAction::Shed);
        assert!(
            shed >= 1,
            "heavy contention with rock-bottom rungs must shed"
        );
        let solo = session.simulate(Input::Test, &config);
        for c in &fleet.clients {
            if c.action == ShedAction::Shed {
                // The shed session resumed from its journal: the parked
                // time is in the resume bucket on top of the base run,
                // and is NOT double-charged to the queue bucket.
                assert!(c.result.outage.resumes > 0 || c.result.outage.failed_closed);
                assert!(c.result.outage.resume_cycles >= c.drr_queue);
                assert_eq!(
                    c.result.queue_cycles, c.admission_wait,
                    "a shed client's DRR delay is its park, charged once to resume"
                );
                assert_eq!(
                    c.result.total_cycles,
                    solo.total_cycles
                        + (c.result.outage.resume_cycles - solo.outage.resume_cycles)
                        + c.result.queue_cycles,
                    "shed = base + park/refetch + queue"
                );
            }
            c.result
                .ledger()
                .assert_exact(c.result.total_cycles, "test");
        }
    }

    #[test]
    fn forced_strict_rung_gives_up_overlap() {
        let session = hanoi_session();
        let config = SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph);
        let spec = FleetSpec {
            arrival_span: 1,
            ladder: Some(ShedLadder::new(1, 2, u64::MAX).unwrap()),
            ..FleetSpec::seeded(0xf1ee7)
        };
        let client = FleetClient {
            name: "Hanoi",
            session: &session,
            link: Link::T1,
            weight: 1,
        };
        let fleet = run_fleet(&spec, &[client; 3], Input::Test, &config);
        assert!(fleet.count(ShedAction::ForceStrict) >= 1);
        let strict = session.simulate(Input::Test, &SimConfig::strict(Link::T1));
        for c in &fleet.clients {
            if c.action == ShedAction::ForceStrict {
                assert_eq!(
                    c.result.total_cycles - c.result.queue_cycles,
                    strict.total_cycles,
                    "forced-strict runs the strict timeline"
                );
            }
        }
    }
}
