//! The durable session checkpoint journal.
//!
//! A mobile client that is killed or partitioned mid-transfer must not
//! restart from byte zero. The journal is the client's crash-safe
//! record of everything the session has durably achieved: per-class
//! **delivered** unit watermarks (the resumable streams are strictly
//! in-order, so a watermark is exact), per-class **verified** state
//! (which prefixes already paid their verification charge, and the
//! incremental linker's arrival/resolution verdicts), the accounting
//! ledger so the resumed run's cycle books continue exactly, and the
//! demand-fetch log that lets the server reconstruct its transfer state
//! from the client's requests alone.
//!
//! Integrity is fail-closed. The wire format carries a magic, a
//! version, and a CRC32 trailer over every preceding byte; a torn
//! write, truncation, or bit flip anywhere makes [`SessionJournal::decode`]
//! return an error, and the reconnect [`negotiate`] maps any such error
//! to [`Negotiation::FailClosed`] — the client discards the cache and
//! restarts strict. Consistency across sessions is guarded by
//! **epochs**: the journal records a CRC fingerprint of each class's
//! restructured unit layout plus a whole-manifest epoch. If the server
//! restructured some class files while the client was away, only those
//! classes' epochs mismatch, and negotiation returns a **targeted
//! invalidation**: the stale classes are refetched and re-verified from
//! scratch while every other watermark survives.

use nonstrict_netsim::crc32;

/// Journal magic: identifies the file and its byte order.
pub const JOURNAL_MAGIC: [u8; 4] = *b"NSJR";

/// Current wire-format version. Version 2 added the hedge-cycle ledger
/// entry and the per-fetch serving-replica tag; version 3 added the
/// integrity-cycle ledger entry and the pinned unit-manifest digest.
/// Older journals fail closed, which is the safe reading of a format we
/// no longer write.
pub const JOURNAL_VERSION: u16 = 3;

/// Why a journal could not be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalError {
    /// The buffer does not start with [`JOURNAL_MAGIC`].
    BadMagic,
    /// The version field is older than this writer produces. Old
    /// formats are not migrated: the safe reading of a format we no
    /// longer write is no reading at all.
    BadVersion(u16),
    /// The version field is *newer* than this reader understands — the
    /// journal was written by a future client. Distinct from
    /// [`JournalError::BadVersion`] so callers and operators can tell a
    /// rollback (upgrade the client) from a stale cache (discard it);
    /// both fail closed.
    UnknownVersion(u16),
    /// The buffer ended before the declared content did (torn write).
    Truncated,
    /// The CRC32 trailer does not match the content (torn or corrupted
    /// write).
    CrcMismatch,
    /// Structurally impossible content (e.g. a bitmap longer than its
    /// declared method count).
    Malformed(&'static str),
    /// A declared count exceeds its sanity cap. Rejected *before* any
    /// buffer is allocated — a forged length field (the CRC is not a
    /// MAC) must not make the decoder reserve gigabytes.
    Oversized {
        /// Which field declared the count.
        what: &'static str,
        /// The declared value.
        declared: u64,
        /// The cap it violated (see `nonstrict_wire::caps`).
        cap: u64,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::BadMagic => write!(f, "journal magic mismatch"),
            JournalError::BadVersion(v) => write!(f, "unsupported journal version {v}"),
            JournalError::UnknownVersion(v) => write!(
                f,
                "journal version {v} is newer than this reader (max {JOURNAL_VERSION})"
            ),
            JournalError::Truncated => write!(f, "journal truncated (torn write)"),
            JournalError::CrcMismatch => write!(f, "journal CRC mismatch (torn or corrupt write)"),
            JournalError::Malformed(what) => write!(f, "malformed journal: {what}"),
            JournalError::Oversized {
                what,
                declared,
                cap,
            } => write!(
                f,
                "oversized journal {what}: declared {declared}, cap {cap}"
            ),
        }
    }
}

impl std::error::Error for JournalError {}

/// One demand-fetch the client issued: enough for the server to replay
/// its transfer-scheduling decisions on reconnect. Only the *first*
/// request per `(class, unit)` is recorded — later requests are pure
/// timeline lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchRecord {
    /// Class index.
    pub class: u32,
    /// Unit index within the class.
    pub unit: u32,
    /// Replica that served the unit (0 outside a replica set). On
    /// reconnect the client can tell each mirror which of its units it
    /// already holds.
    pub replica: u32,
    /// Base-timeline cycle of the request.
    pub at: u64,
}

/// Checkpointed state of one class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassCheckpoint {
    /// CRC fingerprint of the class's restructured unit layout when the
    /// units were fetched. A mismatch against the server's current
    /// manifest invalidates exactly this class.
    pub epoch: u32,
    /// Delivered-unit watermark: units `0..delivered` arrived and were
    /// accepted. Streams deliver strictly in order, so this is exact.
    pub delivered: u32,
    /// Whether the class's global data already paid its verification
    /// charge (steps 1–2).
    pub globals_verified: bool,
    /// Per-method (by method index) verification charges already paid
    /// (steps 3–4).
    pub methods_verified: Vec<bool>,
    /// Linker: whether the prelude arrived (structure verified, statics
    /// prepared).
    pub linker_globals: bool,
    /// Linker: per-method (by layout position) arrival verification.
    pub linker_verified: Vec<bool>,
    /// Linker: per-method (by layout position) first-execution
    /// resolution.
    pub linker_resolved: Vec<bool>,
    /// Whether degradation pressure demoted this class to strict
    /// demand-fetch.
    pub demoted: bool,
    /// Stall events charged against this class (degradation pressure).
    pub stall_events: u64,
}

impl ClassCheckpoint {
    /// A pristine checkpoint (nothing delivered or verified) for a
    /// class of `methods` methods under `epoch`.
    #[must_use]
    pub fn fresh(epoch: u32, methods: usize) -> ClassCheckpoint {
        ClassCheckpoint {
            epoch,
            delivered: 0,
            globals_verified: false,
            methods_verified: vec![false; methods],
            linker_globals: false,
            linker_verified: vec![false; methods],
            linker_resolved: vec![false; methods],
            demoted: false,
            stall_events: 0,
        }
    }

    /// Discards every cached verdict, as targeted invalidation must
    /// when the server's layout epoch moved. The degradation history
    /// (demotion, stall pressure) survives — it describes the link, not
    /// the bytes.
    pub fn invalidate(&mut self, new_epoch: u32) {
        self.epoch = new_epoch;
        self.delivered = 0;
        self.globals_verified = false;
        self.methods_verified.iter_mut().for_each(|v| *v = false);
        self.linker_verified.iter_mut().for_each(|v| *v = false);
        self.linker_resolved.iter_mut().for_each(|v| *v = false);
        self.linker_globals = false;
    }
}

/// The durable session checkpoint: everything a resumed session needs
/// to continue bit-for-bit from where the interrupted one died.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionJournal {
    /// Whole-manifest epoch: the combined fingerprint of every class
    /// epoch. Fast path — if it matches, no class can be stale.
    pub manifest_epoch: u64,
    /// Pinned unit-manifest digest: the CRC fingerprint of the
    /// content-addressed unit manifest the session pinned from the
    /// origin (zero when no byzantine protection is armed). A reconnect
    /// compares it against the origin's current manifest and re-pins on
    /// mismatch before trusting any further digest check.
    pub manifest_digest: u32,
    /// Index of the next trace event to replay.
    pub next_event: u64,
    /// Base-timeline clock at the checkpoint.
    pub clock: u64,
    /// Execution cycles completed so far.
    pub exec_cycles: u64,
    /// Transfer-wait stall cycles so far.
    pub stall_cycles: u64,
    /// Fault-recovery cycles so far.
    pub recovery_cycles: u64,
    /// Verification cycles so far.
    pub verify_cycles: u64,
    /// Resume cycles (outage downtime, negotiation, refetch) so far.
    pub resume_cycles: u64,
    /// Hedging cycles (deadline waits plus issue/cancel overhead) so
    /// far.
    pub hedge_cycles: u64,
    /// Integrity cycles (manifest pinning, digest-mismatch refetches,
    /// audit arbitration, fence re-pins) so far.
    pub integrity_cycles: u64,
    /// Stall-event count so far.
    pub stalls: u32,
    /// Outages survived so far.
    pub outages: u32,
    /// Journal-backed resumes performed so far.
    pub resumes: u32,
    /// Classes refetched after epoch invalidation so far.
    pub refetched_classes: u32,
    /// Invocation latency, if the entry method already ran.
    pub invocation_latency: Option<u64>,
    /// Whether the whole session degraded to strict execution.
    pub session_degraded: bool,
    /// Per-class checkpoints.
    pub classes: Vec<ClassCheckpoint>,
    /// First-request log driving server-side transfer reconstruction.
    pub fetch_log: Vec<FetchRecord>,
}

/// The server's view of the session: current layout epochs to validate
/// a returning client's journal against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionManifest {
    /// Combined fingerprint of every class epoch.
    pub epoch: u64,
    /// Per-class layout fingerprints.
    pub class_epochs: Vec<u32>,
    /// Per-class method counts (structural sanity for bitmaps).
    pub method_counts: Vec<usize>,
}

impl SessionManifest {
    /// Builds a manifest from per-class layout fingerprints and method
    /// counts, deriving the combined epoch.
    #[must_use]
    pub fn new(class_epochs: Vec<u32>, method_counts: Vec<usize>) -> SessionManifest {
        let mut buf = Vec::with_capacity(4 * class_epochs.len());
        for e in &class_epochs {
            buf.extend_from_slice(&e.to_le_bytes());
        }
        let epoch = (u64::from(crc32(&buf)) << 32) | class_epochs.len() as u64;
        SessionManifest {
            epoch,
            class_epochs,
            method_counts,
        }
    }
}

/// The reconnect negotiation's verdict on a stored journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Negotiation {
    /// The journal is intact and structurally compatible: resume.
    /// `stale` lists the classes whose epochs moved while the client
    /// was away — their caches must be discarded and refetched; every
    /// other watermark survives.
    Resume {
        /// The decoded, trusted journal.
        journal: Box<SessionJournal>,
        /// Classes needing targeted invalidation and refetch.
        stale: Vec<usize>,
    },
    /// The journal is intact but describes a different application
    /// shape (class count or method counts changed): nothing in it can
    /// be mapped, start a fresh session.
    Fresh,
    /// The journal cannot be trusted at all (torn write, corruption,
    /// wrong magic/version): fail closed — discard the cache and
    /// restart under strict execution.
    FailClosed(JournalError),
}

/// Validates `bytes` against the server's `manifest` and decides how
/// the session continues. This is the paper-system's reconnect
/// handshake: CRC and structure first (fail-closed), then per-class
/// epoch comparison (targeted invalidation).
#[must_use]
pub fn negotiate(bytes: &[u8], manifest: &SessionManifest) -> Negotiation {
    let journal = match SessionJournal::decode(bytes) {
        Ok(j) => j,
        Err(e) => return Negotiation::FailClosed(e),
    };
    if journal.classes.len() != manifest.class_epochs.len() {
        return Negotiation::Fresh;
    }
    for (c, cp) in journal.classes.iter().enumerate() {
        if cp.methods_verified.len() != manifest.method_counts[c] {
            return Negotiation::Fresh;
        }
    }
    let stale: Vec<usize> = journal
        .classes
        .iter()
        .enumerate()
        .filter(|(c, cp)| cp.epoch != manifest.class_epochs[*c])
        .map(|(c, _)| c)
        .collect();
    debug_assert!(
        journal.manifest_epoch == manifest.epoch || !stale.is_empty(),
        "a moved manifest epoch must implicate at least one class"
    );
    Negotiation::Resume {
        journal: Box::new(journal),
        stale,
    }
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn bits(&mut self, bits: &[bool]) {
        // Length-prefixed little-endian bitmap, packed 8 per byte.
        self.u32(u32::try_from(bits.len()).expect("bitmap fits u32"));
        for chunk in bits.chunks(8) {
            let mut b = 0u8;
            for (i, &bit) in chunk.iter().enumerate() {
                b |= u8::from(bit) << i;
            }
            self.buf.push(b);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], JournalError> {
        let end = self.pos.checked_add(n).ok_or(JournalError::Truncated)?;
        if end > self.buf.len() {
            return Err(JournalError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, JournalError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, JournalError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len")))
    }
    fn u32(&mut self) -> Result<u32, JournalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len")))
    }
    fn u64(&mut self) -> Result<u64, JournalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len")))
    }
    fn flag(&mut self) -> Result<bool, JournalError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(JournalError::Malformed("flag byte must be 0 or 1")),
        }
    }
    fn bits(&mut self) -> Result<Vec<bool>, JournalError> {
        let n = self.u32()? as usize;
        if n > nonstrict_wire::caps::MAX_BITMAP_BITS {
            return Err(JournalError::Oversized {
                what: "bitmap",
                declared: n as u64,
                cap: nonstrict_wire::caps::MAX_BITMAP_BITS as u64,
            });
        }
        // `take` bounds the read against the real buffer before the
        // output Vec is allocated.
        let bytes = self.take(n.div_ceil(8))?;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            out.push(bytes[i / 8] >> (i % 8) & 1 == 1);
        }
        Ok(out)
    }
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
    /// Reads a declared element count and rejects it — with a typed
    /// [`JournalError::Oversized`], *before* any allocation — when it
    /// exceeds `cap` or could not possibly fit in the bytes remaining
    /// (`min_bytes_each` per element).
    fn count(
        &mut self,
        what: &'static str,
        cap: usize,
        min_bytes_each: usize,
    ) -> Result<usize, JournalError> {
        let declared = u64::from(self.u32()?);
        if declared > cap as u64 {
            return Err(JournalError::Oversized {
                what,
                declared,
                cap: cap as u64,
            });
        }
        let n = declared as usize;
        if n.checked_mul(min_bytes_each)
            .is_none_or(|need| need > self.remaining())
        {
            return Err(JournalError::Truncated);
        }
        Ok(n)
    }
}

impl SessionJournal {
    /// Serializes the journal: magic, version, content, CRC32 trailer.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer {
            buf: Vec::with_capacity(256),
        };
        w.buf.extend_from_slice(&JOURNAL_MAGIC);
        w.u16(JOURNAL_VERSION);
        w.u64(self.manifest_epoch);
        w.u32(self.manifest_digest);
        w.u64(self.next_event);
        w.u64(self.clock);
        w.u64(self.exec_cycles);
        w.u64(self.stall_cycles);
        w.u64(self.recovery_cycles);
        w.u64(self.verify_cycles);
        w.u64(self.resume_cycles);
        w.u64(self.hedge_cycles);
        w.u64(self.integrity_cycles);
        w.u32(self.stalls);
        w.u32(self.outages);
        w.u32(self.resumes);
        w.u32(self.refetched_classes);
        w.u64(self.invocation_latency.map_or(u64::MAX, |v| v));
        w.u8(u8::from(self.session_degraded));
        w.u32(u32::try_from(self.classes.len()).expect("class count fits u32"));
        for cp in &self.classes {
            w.u32(cp.epoch);
            w.u32(cp.delivered);
            w.u8(u8::from(cp.globals_verified));
            w.bits(&cp.methods_verified);
            w.u8(u8::from(cp.linker_globals));
            w.bits(&cp.linker_verified);
            w.bits(&cp.linker_resolved);
            w.u8(u8::from(cp.demoted));
            w.u64(cp.stall_events);
        }
        w.u32(u32::try_from(self.fetch_log.len()).expect("fetch log fits u32"));
        for f in &self.fetch_log {
            w.u32(f.class);
            w.u32(f.unit);
            w.u32(f.replica);
            w.u64(f.at);
        }
        let crc = crc32(&w.buf);
        w.u32(crc);
        w.buf
    }

    /// Deserializes and integrity-checks a journal.
    ///
    /// # Errors
    ///
    /// Any structural or integrity problem — wrong magic, unknown
    /// version, truncation, CRC mismatch, malformed bitmaps or trailing
    /// garbage — is an error; a journal either decodes exactly or not
    /// at all.
    pub fn decode(bytes: &[u8]) -> Result<SessionJournal, JournalError> {
        if bytes.len() < JOURNAL_MAGIC.len() + 2 + 4 {
            return Err(JournalError::Truncated);
        }
        if bytes[..4] != JOURNAL_MAGIC {
            return Err(JournalError::BadMagic);
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("len"));
        if crc32(content) != stored {
            return Err(JournalError::CrcMismatch);
        }
        let mut r = Reader {
            buf: content,
            pos: 4,
        };
        let version = r.u16()?;
        if version > JOURNAL_VERSION {
            // A future client wrote this journal. Its layout is
            // unknowable here, so parsing cannot even be attempted —
            // fail closed with the typed variant instead of whatever
            // structural error a misparse would happen to hit first.
            return Err(JournalError::UnknownVersion(version));
        }
        if version != JOURNAL_VERSION {
            return Err(JournalError::BadVersion(version));
        }
        let manifest_epoch = r.u64()?;
        let manifest_digest = r.u32()?;
        let next_event = r.u64()?;
        let clock = r.u64()?;
        let exec_cycles = r.u64()?;
        let stall_cycles = r.u64()?;
        let recovery_cycles = r.u64()?;
        let verify_cycles = r.u64()?;
        let resume_cycles = r.u64()?;
        let hedge_cycles = r.u64()?;
        let integrity_cycles = r.u64()?;
        let stalls = r.u32()?;
        let outages = r.u32()?;
        let resumes = r.u32()?;
        let refetched_classes = r.u32()?;
        let invocation_latency = match r.u64()? {
            u64::MAX => None,
            v => Some(v),
        };
        let session_degraded = r.flag()?;
        // 31 = the minimum encoded size of one class checkpoint (two
        // u32s, four flags, three empty bitmaps, one u64).
        let nclasses = r.count("class count", nonstrict_wire::caps::MAX_CLASSES, 31)?;
        let mut classes = Vec::with_capacity(nclasses);
        for _ in 0..nclasses {
            let epoch = r.u32()?;
            let delivered = r.u32()?;
            let globals_verified = r.flag()?;
            let methods_verified = r.bits()?;
            let linker_globals = r.flag()?;
            let linker_verified = r.bits()?;
            let linker_resolved = r.bits()?;
            if linker_verified.len() != methods_verified.len()
                || linker_resolved.len() != methods_verified.len()
            {
                return Err(JournalError::Malformed("bitmap lengths disagree"));
            }
            let demoted = r.flag()?;
            let stall_events = r.u64()?;
            classes.push(ClassCheckpoint {
                epoch,
                delivered,
                globals_verified,
                methods_verified,
                linker_globals,
                linker_verified,
                linker_resolved,
                demoted,
                stall_events,
            });
        }
        // 20 = the encoded size of one fetch record (three u32s + u64).
        let nfetch = r.count("fetch log", nonstrict_wire::caps::MAX_FETCH_LOG, 20)?;
        let mut fetch_log = Vec::with_capacity(nfetch);
        for _ in 0..nfetch {
            fetch_log.push(FetchRecord {
                class: r.u32()?,
                unit: r.u32()?,
                replica: r.u32()?,
                at: r.u64()?,
            });
        }
        if r.pos != content.len() {
            return Err(JournalError::Malformed("trailing bytes after content"));
        }
        Ok(SessionJournal {
            manifest_epoch,
            manifest_digest,
            next_event,
            clock,
            exec_cycles,
            stall_cycles,
            recovery_cycles,
            verify_cycles,
            resume_cycles,
            hedge_cycles,
            integrity_cycles,
            stalls,
            outages,
            resumes,
            refetched_classes,
            invocation_latency,
            session_degraded,
            classes,
            fetch_log,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionJournal {
        SessionJournal {
            manifest_epoch: 0xdead_beef_cafe_0042,
            manifest_digest: 0x5eed_d1e5,
            next_event: 17,
            clock: 1_234_567,
            exec_cycles: 900_000,
            stall_cycles: 300_000,
            recovery_cycles: 30_000,
            verify_cycles: 4_000,
            resume_cycles: 567,
            hedge_cycles: 1_200,
            integrity_cycles: 9_800,
            stalls: 9,
            outages: 2,
            resumes: 2,
            refetched_classes: 1,
            invocation_latency: Some(42_000),
            session_degraded: false,
            classes: vec![
                ClassCheckpoint {
                    epoch: 0x1111_2222,
                    delivered: 3,
                    globals_verified: true,
                    methods_verified: vec![true, false, true],
                    linker_globals: true,
                    linker_verified: vec![true, true, false],
                    linker_resolved: vec![true, false, false],
                    demoted: false,
                    stall_events: 5,
                },
                ClassCheckpoint::fresh(0x3333_4444, 9),
            ],
            fetch_log: vec![
                FetchRecord {
                    class: 0,
                    unit: 1,
                    replica: 0,
                    at: 100,
                },
                FetchRecord {
                    class: 1,
                    unit: 0,
                    replica: 2,
                    at: 777,
                },
            ],
        }
    }

    fn manifest_for(j: &SessionJournal) -> SessionManifest {
        SessionManifest {
            epoch: j.manifest_epoch,
            class_epochs: j.classes.iter().map(|c| c.epoch).collect(),
            method_counts: j.classes.iter().map(|c| c.methods_verified.len()).collect(),
        }
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let j = sample();
        let bytes = j.encode();
        assert_eq!(SessionJournal::decode(&bytes).unwrap(), j);
        // None latency round-trips through the sentinel.
        let mut j2 = j;
        j2.invocation_latency = None;
        assert_eq!(SessionJournal::decode(&j2.encode()).unwrap(), j2);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                assert!(
                    SessionJournal::decode(&bad).is_err(),
                    "flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for n in 0..bytes.len() {
            assert!(
                SessionJournal::decode(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(
            SessionJournal::decode(&padded).is_err(),
            "appended garbage went undetected"
        );
    }

    #[test]
    fn older_journal_versions_fail_closed() {
        let mut bytes = sample().encode();
        bytes[4] = 2; // low byte of the little-endian version field
        let n = bytes.len();
        let crc = crc32(&bytes[..n - 4]);
        bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            SessionJournal::decode(&bytes),
            Err(JournalError::BadVersion(2)),
            "a v2 journal lacks the pinned manifest digest; reading it as v3 would misparse"
        );
    }

    #[test]
    fn newer_journal_versions_fail_closed_with_the_typed_error() {
        // A client downgrade finds a journal written by a future
        // version. The reader must refuse with UnknownVersion — not
        // misparse the unknown layout into Truncated/Malformed — and
        // negotiation must map it to a fail-closed restart.
        for future in [JOURNAL_VERSION + 1, u16::MAX] {
            let mut bytes = sample().encode();
            bytes[4..6].copy_from_slice(&future.to_le_bytes());
            let n = bytes.len();
            let crc = crc32(&bytes[..n - 4]);
            bytes[n - 4..].copy_from_slice(&crc.to_le_bytes());
            assert_eq!(
                SessionJournal::decode(&bytes),
                Err(JournalError::UnknownVersion(future)),
            );
            let j = sample();
            assert_eq!(
                negotiate(&bytes, &manifest_for(&j)),
                Negotiation::FailClosed(JournalError::UnknownVersion(future)),
            );
        }
    }

    #[test]
    fn negotiate_resumes_a_clean_journal_with_no_stale_classes() {
        let j = sample();
        let m = manifest_for(&j);
        match negotiate(&j.encode(), &m) {
            Negotiation::Resume { journal, stale } => {
                assert_eq!(*journal, j);
                assert!(stale.is_empty());
            }
            other => panic!("expected resume, got {other:?}"),
        }
    }

    #[test]
    fn negotiate_targets_only_the_moved_epochs() {
        let j = sample();
        let mut m = manifest_for(&j);
        m.class_epochs[1] ^= 0xffff;
        match negotiate(&j.encode(), &m) {
            Negotiation::Resume { stale, .. } => assert_eq!(stale, vec![1]),
            other => panic!("expected targeted invalidation, got {other:?}"),
        }
    }

    #[test]
    fn negotiate_fails_closed_on_garbage_and_fresh_on_shape_change() {
        let j = sample();
        let m = manifest_for(&j);
        let mut torn = j.encode();
        torn.truncate(torn.len() / 2);
        assert!(matches!(
            negotiate(&torn, &m),
            Negotiation::FailClosed(JournalError::Truncated | JournalError::CrcMismatch)
        ));
        assert!(matches!(
            negotiate(b"not a journal at all", &m),
            Negotiation::FailClosed(_)
        ));
        let mut grown = manifest_for(&j);
        grown.class_epochs.push(1);
        grown.method_counts.push(0);
        assert_eq!(negotiate(&j.encode(), &grown), Negotiation::Fresh);
        let mut reshaped = manifest_for(&j);
        reshaped.method_counts[0] += 1;
        assert_eq!(negotiate(&j.encode(), &reshaped), Negotiation::Fresh);
    }

    #[test]
    fn invalidate_discards_verdicts_but_keeps_link_history() {
        let mut cp = sample().classes[0].clone();
        cp.demoted = true;
        cp.invalidate(0x9999);
        assert_eq!(cp.epoch, 0x9999);
        assert_eq!(cp.delivered, 0);
        assert!(!cp.globals_verified);
        assert!(cp.methods_verified.iter().all(|v| !v));
        assert!(cp.linker_verified.iter().all(|v| !v));
        assert!(cp.linker_resolved.iter().all(|v| !v));
        assert!(cp.demoted, "link-quality history survives invalidation");
        assert_eq!(cp.stall_events, 5);
    }

    #[test]
    fn manifest_epoch_tracks_class_epochs() {
        let a = SessionManifest::new(vec![1, 2, 3], vec![0, 0, 0]);
        let b = SessionManifest::new(vec![1, 2, 4], vec![0, 0, 0]);
        assert_ne!(a.epoch, b.epoch);
        assert_eq!(a, SessionManifest::new(vec![1, 2, 3], vec![0, 0, 0]));
    }

    /// Byte offset of the class-count field: magic (4) + version (2) +
    /// manifest epoch/digest (12) + next_event/clock (16) + seven cycle
    /// buckets (56) + four u32 counters (16) + latency (8) + degraded
    /// flag (1).
    const NCLASSES_AT: usize = 115;

    fn patched(mut bytes: Vec<u8>, at: usize, value: u32) -> Vec<u8> {
        bytes[at..at + 4].copy_from_slice(&value.to_le_bytes());
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        bytes
    }

    #[test]
    fn forged_class_count_is_oversized_before_allocation() {
        let bytes = sample().encode();
        assert_eq!(
            u32::from_le_bytes(bytes[NCLASSES_AT..NCLASSES_AT + 4].try_into().unwrap()),
            2,
            "offset constant drifted from the encoder layout"
        );
        // Above the cap: the typed Oversized guard fires even though
        // the CRC trailer has been re-sealed (the CRC is not a MAC).
        let huge = patched(bytes.clone(), NCLASSES_AT, u32::MAX);
        assert!(matches!(
            SessionJournal::decode(&huge),
            Err(JournalError::Oversized {
                what: "class count",
                ..
            })
        ));
        // Under the cap but far beyond the bytes actually present: the
        // remaining-bytes check rejects it before reserving anything.
        let hollow = patched(bytes, NCLASSES_AT, 100_000);
        assert_eq!(
            SessionJournal::decode(&hollow),
            Err(JournalError::Truncated)
        );
    }

    #[test]
    fn forged_bitmap_length_is_oversized_before_allocation() {
        let j = sample();
        let bytes = j.encode();
        // The first per-class bitmap length sits after the class
        // header: nclasses (4) + epoch (4) + delivered (4) + flag (1).
        let bitmap_at = NCLASSES_AT + 4 + 4 + 4 + 1;
        assert_eq!(
            u32::from_le_bytes(bytes[bitmap_at..bitmap_at + 4].try_into().unwrap()),
            3,
            "offset constant drifted from the encoder layout"
        );
        let forged = patched(bytes, bitmap_at, u32::MAX);
        assert!(matches!(
            SessionJournal::decode(&forged),
            Err(JournalError::Oversized { what: "bitmap", .. })
        ));
    }
}
