//! Experiment runners: one function per paper table and figure.
//!
//! Each runner sweeps the whole benchmark [`Suite`] and returns
//! structured rows; [`crate::report`] renders them next to the paper's
//! published numbers ([`paper`]).

pub mod byzantine;
pub mod chaos;
pub mod faults;
pub mod outage;
pub mod overload;
pub mod paper;
pub mod replica;
pub mod verify;

use nonstrict_bytecode::{Input, InterpError};
use nonstrict_classfile::GlobalDataBreakdown;
use nonstrict_netsim::Link;
use nonstrict_reorder::partition::{summarize, PartitionSummary};
use nonstrict_workloads::stats::{table2_row, Table2Row};

use crate::metrics::{mean, normalized_percent, reduction_percent};
use crate::model::{
    DataLayout, ExecutionModel, OrderingSource, SimConfig, TransferPolicy, VerifyMode,
};
use crate::sim::Session;

/// The ordering columns of Tables 5–7 and 10.
pub const ORDERINGS: [OrderingSource; 3] = [
    OrderingSource::StaticCallGraph,
    OrderingSource::TrainProfile,
    OrderingSource::TestProfile,
];

/// The concurrent-file limits of Tables 5/6 (One, Two, Four, Inf).
pub const LIMITS: [usize; 4] = [1, 2, 4, usize::MAX];

/// The two links of the evaluation.
pub const LINKS: [Link; 2] = [Link::T1, Link::MODEM_28_8];

/// All six benchmarks, prepared for simulation.
#[derive(Debug)]
pub struct Suite {
    /// One session per benchmark, in the paper's row order.
    pub sessions: Vec<Session>,
}

impl Suite {
    /// Builds and profiles all six benchmarks (a few seconds of real
    /// interpretation).
    ///
    /// # Errors
    ///
    /// Propagates interpreter faults from profiling runs.
    pub fn new() -> Result<Suite, InterpError> {
        let sessions = nonstrict_workloads::build_all()
            .into_iter()
            .map(Session::new)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Suite { sessions })
    }

    /// Benchmark names in row order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.sessions.iter().map(|s| s.app.name.clone()).collect()
    }

    /// Normalized execution time (%) for one configuration, Test input.
    #[must_use]
    pub fn normalized(&self, session: &Session, config: &SimConfig) -> f64 {
        let base = session.simulate(Input::Test, &SimConfig::strict(config.link));
        let r = session.simulate(Input::Test, config);
        normalized_percent(r.total_cycles, base.total_cycles)
    }
}

/// Table 2: computed program statistics (delegates to the workloads
/// crate, which also holds the published values).
#[must_use]
pub fn table2(suite: &Suite) -> Vec<Table2Row> {
    suite.sessions.iter().map(|s| table2_row(&s.app)).collect()
}

/// One link's base-case columns in Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BaseCase {
    /// Transfer cycles (millions).
    pub transfer_mcycles: f64,
    /// Strict total (millions).
    pub total_mcycles: f64,
    /// Percent of the strict total spent transferring.
    pub pct_transfer: f64,
}

/// A Table 3 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Cycles per bytecode instruction.
    pub cpi: u64,
    /// Execution cycles (millions).
    pub exec_mcycles: f64,
    /// T1 columns.
    pub t1: BaseCase,
    /// Modem columns.
    pub modem: BaseCase,
}

/// Table 3: the base case per benchmark.
#[must_use]
pub fn table3(suite: &Suite) -> Vec<Table3Row> {
    suite
        .sessions
        .iter()
        .map(|s| {
            let exec = s.exec_cycles(Input::Test);
            let base_for = |link: Link| {
                let b = s.simulate(Input::Test, &SimConfig::strict(link));
                let transfer = b.stall_cycles;
                BaseCase {
                    transfer_mcycles: transfer as f64 / 1e6,
                    total_mcycles: b.total_cycles as f64 / 1e6,
                    pct_transfer: 100.0 * transfer as f64 / b.total_cycles as f64,
                }
            };
            Table3Row {
                name: s.app.name.clone(),
                cpi: s.app.cpi,
                exec_mcycles: exec as f64 / 1e6,
                t1: base_for(Link::T1),
                modem: base_for(Link::MODEM_28_8),
            }
        })
        .collect()
}

/// One link's latency columns in Table 4.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyCase {
    /// Strict latency (Mcycles).
    pub strict: f64,
    /// Non-strict latency (Mcycles).
    pub non_strict: f64,
    /// Percent decrease vs strict.
    pub non_strict_reduction: f64,
    /// Non-strict + data partitioning latency (Mcycles).
    pub partitioned: f64,
    /// Percent decrease vs strict.
    pub partitioned_reduction: f64,
}

/// A Table 4 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: String,
    /// T1 columns.
    pub t1: LatencyCase,
    /// Modem columns.
    pub modem: LatencyCase,
}

/// Table 4: invocation latency.
#[must_use]
pub fn table4(suite: &Suite) -> Vec<Table4Row> {
    suite
        .sessions
        .iter()
        .map(|s| {
            let case = |link: Link| {
                let strict = s
                    .simulate(Input::Test, &SimConfig::strict(link))
                    .invocation_latency;
                let ns_cfg = SimConfig::non_strict(link, OrderingSource::StaticCallGraph);
                let ns = s.simulate(Input::Test, &ns_cfg).invocation_latency;
                let mut dp_cfg = ns_cfg;
                dp_cfg.data_layout = DataLayout::Partitioned;
                let dp = s.simulate(Input::Test, &dp_cfg).invocation_latency;
                LatencyCase {
                    strict: strict as f64 / 1e6,
                    non_strict: ns as f64 / 1e6,
                    non_strict_reduction: reduction_percent(ns, strict),
                    partitioned: dp as f64 / 1e6,
                    partitioned_reduction: reduction_percent(dp, strict),
                }
            };
            Table4Row {
                name: s.app.name.clone(),
                t1: case(Link::T1),
                modem: case(Link::MODEM_28_8),
            }
        })
        .collect()
}

/// A Table 5/6 row: normalized time per `[ordering][limit]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelRow {
    /// Benchmark name.
    pub name: String,
    /// `cells[o][l]` for `ORDERINGS[o]`, `LIMITS[l]`.
    pub cells: [[f64; 4]; 3],
}

/// A full parallel-transfer table (Table 5 for T1, Table 6 for modem).
#[derive(Debug, Clone, PartialEq)]
pub struct ParallelTable {
    /// The link measured.
    pub link: Link,
    /// Whether global data was partitioned.
    pub data_layout: DataLayout,
    /// Per-benchmark rows.
    pub rows: Vec<ParallelRow>,
    /// The AVG row.
    pub avg: [[f64; 4]; 3],
}

/// Tables 5 and 6: parallel file transfer across orderings and limits.
#[must_use]
pub fn parallel_table(suite: &Suite, link: Link, data_layout: DataLayout) -> ParallelTable {
    let rows: Vec<ParallelRow> = suite
        .sessions
        .iter()
        .map(|s| {
            let mut cells = [[0.0; 4]; 3];
            for (o, ordering) in ORDERINGS.iter().enumerate() {
                for (l, &limit) in LIMITS.iter().enumerate() {
                    let config = SimConfig {
                        link,
                        ordering: *ordering,
                        transfer: TransferPolicy::Parallel { limit },
                        data_layout,
                        execution: ExecutionModel::NonStrict,
                        faults: None,
                        verify: VerifyMode::Off,
                        outages: None,
                        replicas: None,
                        byzantine: None,
                    };
                    cells[o][l] = suite.normalized(s, &config);
                }
            }
            ParallelRow {
                name: s.app.name.clone(),
                cells,
            }
        })
        .collect();
    let mut avg = [[0.0; 4]; 3];
    for (o, row_avg) in avg.iter_mut().enumerate() {
        for (l, cell) in row_avg.iter_mut().enumerate() {
            *cell = mean(&rows.iter().map(|r| r.cells[o][l]).collect::<Vec<_>>());
        }
    }
    ParallelTable {
        link,
        data_layout,
        rows,
        avg,
    }
}

/// A Table 7/10-style interleaved row: (T1 SCG/Train/Test, modem
/// SCG/Train/Test).
#[derive(Debug, Clone, PartialEq)]
pub struct SixColRow {
    /// Benchmark name.
    pub name: String,
    /// The six normalized percentages.
    pub cols: [f64; 6],
}

/// An interleaved-transfer table over both links.
#[derive(Debug, Clone, PartialEq)]
pub struct InterleavedTable {
    /// Whether global data was partitioned.
    pub data_layout: DataLayout,
    /// Per-benchmark rows.
    pub rows: Vec<SixColRow>,
    /// The AVG row.
    pub avg: [f64; 6],
}

/// Table 7 (and Table 10's right half): interleaved file transfer.
#[must_use]
pub fn interleaved_table(suite: &Suite, data_layout: DataLayout) -> InterleavedTable {
    let rows: Vec<SixColRow> = suite
        .sessions
        .iter()
        .map(|s| {
            let mut cols = [0.0; 6];
            for (k, link) in LINKS.iter().enumerate() {
                for (o, ordering) in ORDERINGS.iter().enumerate() {
                    let config = SimConfig {
                        link: *link,
                        ordering: *ordering,
                        transfer: TransferPolicy::Interleaved,
                        data_layout,
                        execution: ExecutionModel::NonStrict,
                        faults: None,
                        verify: VerifyMode::Off,
                        outages: None,
                        replicas: None,
                        byzantine: None,
                    };
                    cols[k * 3 + o] = suite.normalized(s, &config);
                }
            }
            SixColRow {
                name: s.app.name.clone(),
                cols,
            }
        })
        .collect();
    let mut avg = [0.0; 6];
    for (c, cell) in avg.iter_mut().enumerate() {
        *cell = mean(&rows.iter().map(|r| r.cols[c]).collect::<Vec<_>>());
    }
    InterleavedTable {
        data_layout,
        rows,
        avg,
    }
}

/// A Table 8 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table8Row {
    /// Benchmark name.
    pub name: String,
    /// Percent of global data in (CPool, Field, Attrib, Intfc).
    pub global: [f64; 4],
    /// Percent of the pool per constant kind (Table 8's column order).
    pub pool: [f64; 11],
}

/// Table 8: global-data and constant-pool composition.
#[must_use]
pub fn table8(suite: &Suite) -> Vec<Table8Row> {
    suite
        .sessions
        .iter()
        .map(|s| {
            let b = GlobalDataBreakdown::of_all(s.app.classes.iter());
            Table8Row {
                name: s.app.name.clone(),
                global: b.section_percentages(),
                pool: b.pool.percentages(),
            }
        })
        .collect()
}

/// A Table 9 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table9Row {
    /// Benchmark name.
    pub name: String,
    /// The computed breakdown.
    pub summary: PartitionSummary,
}

/// Table 9: local/global split and the three-way global partition.
#[must_use]
pub fn table9(suite: &Suite) -> Vec<Table9Row> {
    suite
        .sessions
        .iter()
        .map(|s| Table9Row {
            name: s.app.name.clone(),
            summary: summarize(&s.app, s.partitions()),
        })
        .collect()
}

/// Table 10: both transfer techniques with partitioned global data.
/// Returns (parallel limit-4 table rows, interleaved table rows), each
/// with the Table 7 six-column layout.
#[must_use]
pub fn table10(suite: &Suite) -> (InterleavedTable, InterleavedTable) {
    // Parallel(4) with partitioning, presented in six-column form.
    let rows: Vec<SixColRow> = suite
        .sessions
        .iter()
        .map(|s| {
            let mut cols = [0.0; 6];
            for (k, link) in LINKS.iter().enumerate() {
                for (o, ordering) in ORDERINGS.iter().enumerate() {
                    let config = SimConfig {
                        link: *link,
                        ordering: *ordering,
                        transfer: TransferPolicy::Parallel { limit: 4 },
                        data_layout: DataLayout::Partitioned,
                        execution: ExecutionModel::NonStrict,
                        faults: None,
                        verify: VerifyMode::Off,
                        outages: None,
                        replicas: None,
                        byzantine: None,
                    };
                    cols[k * 3 + o] = suite.normalized(s, &config);
                }
            }
            SixColRow {
                name: s.app.name.clone(),
                cols,
            }
        })
        .collect();
    let mut avg = [0.0; 6];
    for (c, cell) in avg.iter_mut().enumerate() {
        *cell = mean(&rows.iter().map(|r| r.cols[c]).collect::<Vec<_>>());
    }
    let parallel = InterleavedTable {
        data_layout: DataLayout::Partitioned,
        rows,
        avg,
    };
    let interleaved = interleaved_table(suite, DataLayout::Partitioned);
    (parallel, interleaved)
}

/// Figure 6: the four summary series (parallel, parallel+DP,
/// interleaved, interleaved+DP), each (T1 SCG/Train/Test, modem
/// SCG/Train/Test) averages.
#[must_use]
pub fn fig6(suite: &Suite) -> [[f64; 6]; 4] {
    let p_whole = parallel_table_avgs(suite, DataLayout::Whole);
    let p_part = parallel_table_avgs(suite, DataLayout::Partitioned);
    let i_whole = interleaved_table(suite, DataLayout::Whole).avg;
    let i_part = interleaved_table(suite, DataLayout::Partitioned).avg;
    [p_whole, p_part, i_whole, i_part]
}

/// Limit-4 parallel averages in six-column form.
fn parallel_table_avgs(suite: &Suite, data_layout: DataLayout) -> [f64; 6] {
    let mut out = [0.0; 6];
    for (k, link) in LINKS.iter().enumerate() {
        let t = parallel_table(suite, *link, data_layout);
        for o in 0..3 {
            out[k * 3 + o] = t.avg[o][2]; // the "Four" column
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Suite-level behaviour is exercised by the integration tests in
    // /tests (building all six benchmarks here would repeat that work in
    // every unit-test binary). These tests cover the cheap pieces.

    #[test]
    fn constants_cover_the_paper_design_space() {
        assert_eq!(ORDERINGS.len(), 3);
        assert_eq!(LIMITS, [1, 2, 4, usize::MAX]);
        assert_eq!(LINKS[0], Link::T1);
    }

    #[test]
    fn single_benchmark_tables_run() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let t3 = table3(&suite);
        assert_eq!(t3.len(), 1);
        assert!(t3[0].modem.pct_transfer > t3[0].t1.pct_transfer);
        let t4 = table4(&suite);
        assert!(t4[0].t1.non_strict <= t4[0].t1.strict);
        assert!(t4[0].t1.partitioned <= t4[0].t1.non_strict);
        let t5 = parallel_table(&suite, Link::T1, DataLayout::Whole);
        for o in 0..3 {
            for l in 1..4 {
                assert!(
                    t5.avg[o][l] <= t5.avg[o][l - 1] + 1e-6,
                    "more parallelism should not hurt"
                );
            }
        }
        let t7 = interleaved_table(&suite, DataLayout::Whole);
        assert!(t7.avg.iter().all(|&v| v > 0.0 && v <= 100.0 + 1e-6));
    }
}
