//! The byzantine sweep: mirror count × dishonest fraction × audit rate
//! under the content-addressed manifest's integrity layer.
//!
//! This is our robustness extension of the paper's evaluation — the
//! original tables assume every byte the network delivers is the byte
//! the origin published, so these rows live in their own experiment (a
//! new `byzantine.csv`, a new `paper byzantine` command) and leave every
//! published-table row untouched. Each cell kills the honest primary
//! early, forcing the health-scored routing into the dishonest tail of
//! the replica set, and measures what the manifest digest checks, the
//! cross-mirror audit sampler, and quarantine-plus-refetch cost — and
//! what they caught.

use nonstrict_bytecode::Input;
use nonstrict_netsim::byzantine::ByzantineMode;
use nonstrict_netsim::Link;

use super::{Suite, LINKS};
use crate::metrics::{integrity_share_percent, normalized_percent, CycleLedger};
use crate::model::{ByzantineConfig, OrderingSource, ReplicaConfig, ReplicaKill, SimConfig};

/// One swept cell: mirror count, dishonest-mirror count, misbehavior
/// mode, audit sampling rate (ppm of delivered units).
pub type ByzantineCell = (u32, u32, ByzantineMode, u32);

/// The swept cells. The honest reference first (its row must be
/// byte-identical to the same replica config with no byzantine layer at
/// all — the CI byte-identity loop depends on it), then one equivocator
/// with the digest alone, the same with audits on top, a stale-epoch
/// mirror, a two-of-three dishonest majority, and a colluder that
/// forges digests and is only caught by the audit sampler.
pub const BYZANTINE_SWEEP: [ByzantineCell; 6] = [
    (3, 0, ByzantineMode::Equivocate, 50_000),
    (3, 1, ByzantineMode::Equivocate, 0),
    (3, 1, ByzantineMode::Equivocate, 50_000),
    (3, 1, ByzantineMode::StaleEpoch, 50_000),
    (3, 2, ByzantineMode::Equivocate, 50_000),
    (3, 1, ByzantineMode::Collude, 200_000),
];

/// Seed for every sweep cell, so the whole table is reproducible.
pub const BYZANTINE_SEED: u64 = 0xb12a_47f1;

/// Base-timeline cycle at which the honest primary dies: early enough
/// that almost the whole transfer is served by the surviving tail,
/// which is where the dishonest mirrors live (the highest-indexed
/// mirrors misbehave; mirror 0 is always honest).
pub const PRIMARY_KILL_CYCLE: u64 = 1;

/// The sweep's replica config at one mirror count: the replica sweep's
/// health-scored set with the honest primary killed at
/// [`PRIMARY_KILL_CYCLE`].
#[must_use]
pub fn sweep_replicas(replicas: u32) -> ReplicaConfig {
    let mut rc = ReplicaConfig::seeded(BYZANTINE_SEED);
    rc.replicas = replicas;
    rc.kill = Some(ReplicaKill {
        replica: 0,
        at_cycle: PRIMARY_KILL_CYCLE,
    });
    rc
}

/// The sweep's byzantine config at one cell.
#[must_use]
pub fn sweep_byzantine(cell: ByzantineCell) -> ByzantineConfig {
    let (_, mirrors, mode, audit_rate_pm) = cell;
    let mut bc = ByzantineConfig::seeded(BYZANTINE_SEED);
    bc.mirrors = mirrors;
    bc.mode = mode;
    bc.audit_rate_pm = audit_rate_pm;
    bc
}

/// One benchmark × link × sweep cell of the byzantine sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ByzantineRow {
    /// Benchmark name.
    pub name: String,
    /// The link measured (mirror 0's bandwidth; further mirrors droop).
    pub link: Link,
    /// Mirror count.
    pub replicas: u32,
    /// Dishonest-mirror count (the highest-indexed mirrors).
    pub byzantine: u32,
    /// How the dishonest mirrors misbehave.
    pub mode: ByzantineMode,
    /// Cross-mirror audit sampling rate (ppm of delivered units).
    pub audit_rate_pm: u32,
    /// Normalized time (%) vs the perfect-link strict baseline.
    pub normalized: f64,
    /// Percent of total time spent on integrity work.
    pub integrity_share: f64,
    /// Manifest fetch-and-pin rounds (initial pin + epoch-fence
    /// re-pins).
    pub manifest_pins: u32,
    /// Per-unit manifest digest checks performed.
    pub digest_checks: u64,
    /// Units a mirror served with divergent bytes.
    pub divergent_units: u64,
    /// Divergent units that passed the (forged) digest check and were
    /// linked before any audit observed them (collusion only).
    pub undetected_units: u64,
    /// Cross-mirror audit rounds sampled.
    pub audits: u64,
    /// Audit rounds whose two mirrors disagreed.
    pub audit_mismatches: u64,
    /// Mirrors quarantined for proven divergence.
    pub quarantines: u32,
    /// Post-fence units a stale mirror tried to serve that were
    /// refetched from an honest mirror.
    pub fence_refetches: u64,
    /// Payload bytes refetched because of divergence or quarantine.
    pub refetched_bytes: u64,
    /// Whether the run executed to completion.
    pub completed: bool,
    /// Total cycles of the run.
    pub total_cycles: u64,
    /// The run's eight accounting buckets (exact: they sum to
    /// `total_cycles`).
    pub ledger: CycleLedger,
}

/// Runs the full sweep: every benchmark × link × cell, non-strict
/// par(4) transfer under the static-call-graph ordering, whole global
/// data. Rows are ordered benchmark-major, then link, then sweep cell.
#[must_use]
pub fn byzantine_sweep(suite: &Suite) -> Vec<ByzantineRow> {
    let mut rows = Vec::new();
    for s in &suite.sessions {
        for link in LINKS {
            let base = s.simulate(Input::Test, &SimConfig::strict(link));
            for cell in BYZANTINE_SWEEP {
                let (replicas, byzantine, mode, audit_rate_pm) = cell;
                let config = SimConfig::non_strict(link, OrderingSource::StaticCallGraph)
                    .with_replicas(sweep_replicas(replicas))
                    .with_byzantine(sweep_byzantine(cell));
                let r = s.simulate(Input::Test, &config);
                let ist = &r.integrity;
                rows.push(ByzantineRow {
                    name: s.app.name.clone(),
                    link,
                    replicas,
                    byzantine,
                    mode,
                    audit_rate_pm,
                    normalized: normalized_percent(r.total_cycles, base.total_cycles),
                    integrity_share: integrity_share_percent(ist.integrity_cycles, r.total_cycles),
                    manifest_pins: ist.manifest_pins,
                    digest_checks: ist.digest_checks,
                    divergent_units: ist.divergent_units,
                    undetected_units: ist.undetected_units,
                    audits: ist.audits,
                    audit_mismatches: ist.audit_mismatches,
                    quarantines: ist.quarantines,
                    fence_refetches: ist.fence_refetches,
                    refetched_bytes: ist.refetched_bytes,
                    completed: r.faults.completed,
                    total_cycles: r.total_cycles,
                    ledger: r.ledger(),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    fn hanoi_suite() -> Suite {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        Suite {
            sessions: vec![session],
        }
    }

    #[test]
    fn sweep_configs_carry_the_sweep_seed_and_kill() {
        let rc = sweep_replicas(3);
        assert_eq!(rc.seed, BYZANTINE_SEED);
        assert_eq!(rc.replicas, 3);
        assert_eq!(
            rc.kill,
            Some(ReplicaKill {
                replica: 0,
                at_cycle: PRIMARY_KILL_CYCLE
            })
        );
        let bc = sweep_byzantine(BYZANTINE_SWEEP[5]);
        assert_eq!(bc.seed, BYZANTINE_SEED);
        assert_eq!(bc.mirrors, 1);
        assert_eq!(bc.mode, ByzantineMode::Collude);
        assert_eq!(bc.audit_rate_pm, 200_000);
        assert!(
            !sweep_byzantine(BYZANTINE_SWEEP[0]).is_active(),
            "the honest reference cell must normalize away"
        );
    }

    #[test]
    fn single_benchmark_sweep_detects_what_each_mode_allows() {
        let suite = hanoi_suite();
        let rows = byzantine_sweep(&suite);
        assert_eq!(rows.len(), LINKS.len() * BYZANTINE_SWEEP.len());
        for r in &rows {
            assert!(r.completed, "every swept run must terminate: {r:?}");
            assert!(r.normalized > 0.0);
            let exact = r.ledger.exec
                + r.ledger.stall
                + r.ledger.recovery
                + r.ledger.verify
                + r.ledger.resume
                + r.ledger.hedge
                + r.ledger.queue
                + r.ledger.integrity;
            assert_eq!(exact, r.total_cycles, "ledger must be exact: {r:?}");
            if r.byzantine == 0 {
                assert_eq!(r.manifest_pins, 0, "honest reference is inert: {r:?}");
                assert_eq!(r.ledger.integrity, 0);
                assert_eq!(r.divergent_units, 0);
            } else {
                assert!(r.manifest_pins >= 1, "the client must pin: {r:?}");
                assert!(r.digest_checks > 0);
                assert!(r.ledger.integrity > 0);
            }
            if r.byzantine > 0 && r.mode.detected_inline() {
                assert_eq!(
                    r.undetected_units, 0,
                    "digest-visible modes leave nothing undetected: {r:?}"
                );
            }
        }
        // With the honest primary dead, an equivocating survivor must
        // actually diverge and get caught somewhere in the sweep.
        assert!(
            rows.iter()
                .filter(|r| r.byzantine > 0 && r.mode == ByzantineMode::Equivocate)
                .any(|r| r.divergent_units > 0),
            "killing the primary must route units through an equivocator"
        );
    }

    #[test]
    fn sweep_is_deterministic() {
        let suite = hanoi_suite();
        assert_eq!(byzantine_sweep(&suite), byzantine_sweep(&suite));
    }
}
