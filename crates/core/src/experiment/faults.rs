//! The fault sweep: loss rate × link × ordering under the resilient
//! transfer protocol.
//!
//! This is our robustness extension of the paper's evaluation — the
//! original tables assume a perfect link, so these rows live in their
//! own experiment (a new `faults.csv`, a new `paper faults` command) and
//! leave every published-table row untouched. Each cell simulates the
//! non-strict par(4) configuration over a seeded faulty link and reports
//! how much of the run went to fault recovery, how hard the protocol
//! worked (retries, drops), whether graceful degradation demoted any
//! class to strict demand-fetch, and that the run still completed.

use nonstrict_bytecode::Input;
use nonstrict_netsim::Link;

use super::{Suite, LINKS, ORDERINGS};
use crate::metrics::{normalized_percent, recovery_share_percent, CycleLedger};
use crate::model::{FaultConfig, OrderingSource, SimConfig};

/// The swept unit-loss rates, parts-per-million per delivery attempt:
/// perfect, 0.1%, 1%, and 5%.
pub const LOSS_SWEEP_PM: [u32; 4] = [0, 1_000, 10_000, 50_000];

/// Seed for every sweep cell, so the whole table is reproducible.
pub const FAULT_SEED: u64 = 0x0bad_1147;

/// The sweep's fault config at one loss level: corruption at half the
/// loss rate, drops and droop at a tenth — a link whose failure modes
/// scale together.
#[must_use]
pub fn sweep_config(loss_pm: u32) -> FaultConfig {
    let mut fc = FaultConfig::seeded(FAULT_SEED);
    fc.loss_pm = loss_pm;
    fc.corrupt_pm = loss_pm / 2;
    fc.drop_pm = loss_pm / 10;
    fc.droop_pm = loss_pm / 10;
    fc
}

/// One benchmark × link × ordering × loss-rate cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRow {
    /// Benchmark name.
    pub name: String,
    /// The link measured.
    pub link: Link,
    /// First-use ordering source.
    pub ordering: OrderingSource,
    /// Swept unit-loss rate (ppm).
    pub loss_pm: u32,
    /// Normalized time (%) vs the perfect-link strict baseline.
    pub normalized: f64,
    /// Percent of total time spent in fault recovery.
    pub recovery_share: f64,
    /// Retransmissions the protocol performed.
    pub retries: u64,
    /// Connection drops survived.
    pub drops: u64,
    /// Corrupted units detected by CRC and re-sent.
    pub corrupted: u64,
    /// Units that verified but failed the post-delivery semantic check,
    /// were quarantined, and refetched.
    pub quarantined: u64,
    /// Deliveries that exhausted the retry cap and were forced through.
    pub forced: u64,
    /// Classes demoted to strict demand-fetch.
    pub degraded_classes: u32,
    /// Whether the whole session fell back to strict execution.
    pub session_degraded: bool,
    /// Whether the run executed to completion.
    pub completed: bool,
    /// Total cycles of the run.
    pub total_cycles: u64,
    /// The run's seven accounting buckets (exact: they sum to
    /// `total_cycles`).
    pub ledger: CycleLedger,
}

/// Runs the full sweep: every benchmark × link × ordering × loss rate,
/// non-strict par(4) transfer, whole global data. Rows are ordered
/// benchmark-major, then link, ordering, loss — the natural grouping for
/// the report.
#[must_use]
pub fn fault_sweep(suite: &Suite) -> Vec<FaultRow> {
    let mut rows = Vec::new();
    for s in &suite.sessions {
        for link in LINKS {
            let base = s.simulate(Input::Test, &SimConfig::strict(link));
            for ordering in ORDERINGS {
                for loss_pm in LOSS_SWEEP_PM {
                    let config =
                        SimConfig::non_strict(link, ordering).with_faults(sweep_config(loss_pm));
                    let r = s.simulate(Input::Test, &config);
                    rows.push(FaultRow {
                        name: s.app.name.clone(),
                        link,
                        ordering,
                        loss_pm,
                        normalized: normalized_percent(r.total_cycles, base.total_cycles),
                        recovery_share: recovery_share_percent(
                            r.faults.recovery_cycles,
                            r.total_cycles,
                        ),
                        retries: r.faults.retries,
                        drops: r.faults.drops,
                        corrupted: r.faults.corrupted,
                        quarantined: r.faults.quarantined,
                        forced: r.faults.forced,
                        degraded_classes: r.faults.degraded_classes,
                        session_degraded: r.faults.session_degraded,
                        completed: r.faults.completed,
                        total_cycles: r.total_cycles,
                        ledger: r.ledger(),
                    });
                }
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    #[test]
    fn sweep_config_scales_failure_modes_together() {
        let fc = sweep_config(10_000);
        assert!(fc.is_active());
        assert_eq!(fc.corrupt_pm, 5_000);
        assert_eq!(fc.drop_pm, 1_000);
        assert_eq!(fc.droop_pm, 1_000);
        assert!(!sweep_config(0).is_active(), "zero loss is a perfect link");
    }

    #[test]
    fn single_benchmark_sweep_completes_and_degrades_gracefully() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let rows = fault_sweep(&suite);
        assert_eq!(
            rows.len(),
            LINKS.len() * ORDERINGS.len() * LOSS_SWEEP_PM.len()
        );
        for r in &rows {
            assert!(r.completed, "every faulted run must terminate: {r:?}");
            assert!(r.normalized > 0.0);
            if r.loss_pm == 0 {
                assert_eq!(r.retries, 0, "perfect link, no protocol work: {r:?}");
                assert_eq!(r.recovery_share, 0.0);
                assert_eq!(r.degraded_classes, 0);
            }
        }
        // Fault pressure costs time: at each link × ordering, the worst
        // loss rate can be no faster than the perfect link.
        for chunk in rows.chunks(LOSS_SWEEP_PM.len()) {
            let perfect = chunk[0].normalized;
            let worst = chunk[LOSS_SWEEP_PM.len() - 1].normalized;
            assert!(
                worst >= perfect - 1e-9,
                "faults cannot speed a run up: {chunk:?}"
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        assert_eq!(fault_sweep(&suite), fault_sweep(&suite));
    }
}
