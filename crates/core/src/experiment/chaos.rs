//! The chaos sweep: composed cross-layer fault scenarios under the
//! conductor's global invariant checker.
//!
//! Each row runs one [`ChaosScenario`] through [`chaos::run_scenario`],
//! which layers the invariant checks (eight-bucket ledger exactness,
//! watermark/clock monotonicity, fail-closed degradation, quiet
//! byte-identity, composed crash/resume equivalence) on top of the
//! measurement itself — the `violations` column must read zero
//! everywhere. Like the other robustness sweeps, these rows live in
//! their own experiment (a new `chaos.csv`, a new `paper chaos`
//! command) and leave every published-table row untouched.

use nonstrict_bytecode::Input;
use nonstrict_netsim::contention::ShedLadder;
use nonstrict_netsim::Link;

use super::{Suite, LINKS};
use crate::chaos::{self, ChaosScenario, OverloadDims};
use crate::metrics::{normalized_percent, CycleLedger};
use crate::model::{
    ByzantineConfig, FaultConfig, OrderingSource, OutageConfig, ReplicaConfig, ReplicaKill,
    SimConfig, VerifyMode,
};

/// Seed for every sweep scenario, so the whole table is reproducible.
pub const CHAOS_SEED: u64 = 0xc4a0_51ed;

/// Downtime charged on the crash cell's interrupt.
pub const CHAOS_DOWNTIME: u64 = 2_000_000;

/// The sweep's composed scenarios for one benchmark × link, in row
/// order. The quiet reference first (every dimension armed with all
/// rates zero — its byte-identity to the stripped config is one of the
/// invariants checked per row), then single dimensions, compositions,
/// the full storm, and an overloaded fleet. The storm's crash cell is
/// appended by [`chaos_sweep`] itself, since its interrupt cycle
/// depends on the storm's own wall clock.
#[must_use]
pub fn sweep_scenarios(bench: &str, link: Link) -> Vec<ChaosScenario> {
    let base = ChaosScenario::new(bench, link, OrderingSource::StaticCallGraph);
    let quiet = base
        .clone()
        .with_faults(FaultConfig::seeded(CHAOS_SEED))
        .with_outages(OutageConfig::seeded(CHAOS_SEED))
        .with_replicas(ReplicaConfig::seeded(CHAOS_SEED))
        .with_byzantine(ByzantineConfig::seeded(CHAOS_SEED))
        .with_overload(OverloadDims::seeded(CHAOS_SEED));
    let mut fc = FaultConfig::seeded(CHAOS_SEED);
    fc.loss_pm = 15_000;
    fc.corrupt_pm = 8_000;
    fc.semantic_pm = 3_000;
    let mut oc = OutageConfig::seeded(CHAOS_SEED ^ 0x0abe);
    oc.rate_pm = 150_000;
    oc.min_cycles = 1 << 20;
    oc.max_cycles = 1 << 23;
    let mut rc = ReplicaConfig::seeded(CHAOS_SEED ^ 0x5eed);
    rc.replicas = 3;
    rc.kill = Some(ReplicaKill {
        replica: 1,
        at_cycle: 1,
    });
    let mut bc = ByzantineConfig::seeded(CHAOS_SEED ^ 0xb12a);
    bc.mirrors = 1;
    let mut ov = OverloadDims::seeded(CHAOS_SEED ^ 0x10ad);
    ov.clients = 4;
    ov.admit_rate = 2;
    ov.ladder = Some(
        ShedLadder::new(2_000_000, 20_000_000, 200_000_000)
            .expect("the sweep ladder thresholds are ordered"),
    );
    vec![
        quiet,
        base.clone().with_faults(fc),
        base.clone().with_faults(fc).with_verify(VerifyMode::Stream),
        base.clone().with_faults(fc).with_outages(oc),
        base.clone().with_replicas(rc).with_byzantine(bc),
        base.clone()
            .with_verify(VerifyMode::Stream)
            .with_faults(fc)
            .with_outages(oc)
            .with_replicas(rc)
            .with_byzantine(bc),
        base.with_faults(fc).with_overload(ov),
    ]
}

/// One benchmark × link × scenario of the chaos sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosRow {
    /// Benchmark name.
    pub name: String,
    /// The link measured (overloaded cells contend for it).
    pub link: Link,
    /// The scenario's active-dimension label (`quiet`, `faults+verify`,
    /// …, `faults+overload`, the storm's `…+crash`).
    pub scenario: String,
    /// Fleet size: 1 for single-client scenarios.
    pub clients: u32,
    /// Normalized time (%) vs the perfect-link strict baseline
    /// (client 0 of an overloaded fleet).
    pub normalized: f64,
    /// Global invariant violations found by the conductor (must be 0).
    pub violations: u32,
    /// Whether the run executed to completion.
    pub completed: bool,
    /// Full-connection losses survived (ambient plus the crash cell's
    /// injected interrupt).
    pub outages: u32,
    /// Journal resumes performed.
    pub resumes: u32,
    /// Classes demoted to strict demand-fetch.
    pub degraded: u32,
    /// Total cycles of the run.
    pub total_cycles: u64,
    /// The run's eight accounting buckets (exact: they sum to
    /// `total_cycles`).
    pub ledger: CycleLedger,
}

/// Runs the full sweep: every benchmark × link × scenario, plus one
/// crash cell per benchmark × link (the storm interrupted mid-run and
/// resumed, checked against the uninterrupted storm). Rows are ordered
/// benchmark-major, then link, then scenario.
#[must_use]
pub fn chaos_sweep(suite: &Suite) -> Vec<ChaosRow> {
    let mut rows = Vec::new();
    for s in &suite.sessions {
        for link in LINKS {
            let base = s.simulate(Input::Test, &SimConfig::strict(link));
            let mut scenarios = sweep_scenarios(&s.app.name, link);
            // The crash cell: the storm interrupted halfway through its
            // own wall clock (which varies per benchmark × link).
            let storm = scenarios[5].clone();
            let storm_total = s.simulate(Input::Test, &storm.config()).total_cycles;
            scenarios.push(storm.with_interrupt(storm_total / 2, CHAOS_DOWNTIME));
            for sc in scenarios {
                let report = chaos::run_scenario(s, &sc);
                let r = &report.result;
                rows.push(ChaosRow {
                    name: s.app.name.clone(),
                    link,
                    scenario: sc.label(),
                    clients: report.fleet.as_ref().map_or(1, |f| f.clients),
                    normalized: normalized_percent(r.total_cycles, base.total_cycles),
                    violations: u32::try_from(report.violations.len()).unwrap_or(u32::MAX),
                    completed: r.faults.completed,
                    outages: r.outage.outages,
                    resumes: r.outage.resumes,
                    degraded: r.faults.degraded_classes,
                    total_cycles: r.total_cycles,
                    ledger: r.ledger(),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    fn hanoi_suite() -> Suite {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        Suite {
            sessions: vec![session],
        }
    }

    #[test]
    fn sweep_scenarios_cover_the_dimension_space() {
        let scs = sweep_scenarios("Hanoi", Link::T1);
        assert_eq!(scs.len(), 7);
        assert!(scs[0].is_quiet(), "row one is the quiet reference");
        assert_eq!(scs[0].label(), "quiet");
        assert_eq!(scs[1].label(), "faults");
        assert_eq!(scs[2].label(), "faults+verify");
        assert_eq!(scs[3].label(), "faults+outage");
        assert_eq!(scs[4].label(), "replicas+byz");
        assert_eq!(scs[5].label(), "faults+verify+outage+replicas+byz");
        assert_eq!(scs[6].label(), "faults+overload");
        for sc in &scs {
            // Every scenario must survive the artifact round trip: the
            // sweep's cells double as repro-corpus material.
            assert_eq!(ChaosScenario::decode(&sc.encode()).unwrap(), *sc);
        }
    }

    #[test]
    fn single_benchmark_sweep_holds_every_invariant() {
        let suite = hanoi_suite();
        let rows = chaos_sweep(&suite);
        assert_eq!(rows.len(), LINKS.len() * 8);
        for r in &rows {
            assert!(r.completed, "every swept run must terminate: {r:?}");
            assert_eq!(r.violations, 0, "the conductor found a violation: {r:?}");
            assert_eq!(
                r.ledger.total(),
                r.total_cycles,
                "ledger must be exact: {r:?}"
            );
            assert!(r.normalized > 0.0);
        }
        // The quiet reference matches the plain non-strict run exactly.
        let quiet = &rows[0];
        assert_eq!(quiet.scenario, "quiet");
        assert_eq!(quiet.outages, 0);
        // The crash cell recorded its injected interrupt on top of the
        // storm's ambient outages.
        let storm = &rows[5];
        let crash = &rows[7];
        assert!(crash.scenario.ends_with("+crash"), "{crash:?}");
        assert_eq!(crash.outages, storm.outages + 1);
        assert_eq!(crash.resumes, storm.resumes + 1);
        // The overloaded fleet reports its size.
        assert_eq!(rows[6].clients, 4);
    }

    #[test]
    fn sweep_is_deterministic() {
        let suite = hanoi_suite();
        assert_eq!(chaos_sweep(&suite), chaos_sweep(&suite));
    }
}
