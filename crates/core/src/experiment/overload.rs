//! The overload sweep: fleet size × link mix × admission rate under
//! fair-share scheduling and the load-shed ladder.
//!
//! Like the other robustness extensions, these rows live in their own
//! experiment (`overload.csv`, `paper overload`) and leave every
//! published-table row untouched. Each cell drives one seeded fleet
//! ([`crate::fleet::run_fleet`]): N clients cycling through the
//! benchmark suite, on homogeneous or mixed access links, share one T1
//! egress pipe under deficit-round-robin scheduling. Per-cell rows
//! report the admission outcome (rejections before every client got
//! in), how far down the shed ladder the server had to reach (hedges
//! dropped, sessions forced strict, sessions shed to a journal and
//! resumed), tail latency percentiles, and the aggregate seven-bucket
//! cycle ledger — whose `queue` bucket is exactly the contention the
//! fleet inserted.

use nonstrict_bytecode::Input;
use nonstrict_netsim::contention::{ShedAction, ShedLadder};
use nonstrict_netsim::Link;

use super::faults::sweep_config;
use super::replica::sweep_replicas;
use super::Suite;
use crate::fleet::{run_fleet, AdmissionSettings, FleetClient, FleetSpec};
use crate::metrics::{queue_share_percent, CycleLedger};
use crate::model::{OrderingSource, SimConfig};

/// The swept fleet sizes: a pair (barely contended), a rack of eight,
/// and sixteen (heavily contended — deep into the shed ladder).
pub const CLIENT_SWEEP: [usize; 3] = [2, 8, 16];

/// The swept access-link mixes: every client on T1, alternating
/// T1/modem, every client on the modem.
pub const LINK_MIXES: [&str; 3] = ["t1", "mixed", "modem"];

/// The swept admission rates (tokens per refill period): 0 disables
/// admission control, 1 meters the fleet in one session per ~20 ms.
pub const ADMIT_SWEEP: [u32; 2] = [0, 1];

/// Seed for every sweep cell, so the whole table is reproducible.
pub const OVERLOAD_SEED: u64 = 0x0f1e_e7ed;

/// Unit-loss rate (ppm) on every client's access link: the fault
/// sweep's 1% profile, so hedged fetches have stalls to race.
pub const SWEEP_LOSS_PM: u32 = 10_000;

/// The sweep's shed ladder, tuned to the T1 egress pipe: a pair of
/// clients reaches only the hedge-drop rung, eight spread across all
/// three, and sixteen push most of the fleet into shed-to-journal
/// territory.
pub const SWEEP_LADDER: ShedLadder = ShedLadder {
    drop_hedges: 10_000_000,
    force_strict: 1_000_000_000,
    shed: 3_000_000_000,
};

/// The sweep's per-client base config (the link is overridden per
/// client): non-strict par(4) SCG transfer over the fault sweep's 1%
/// lossy profile, against the replica sweep's two-mirror hedged set —
/// so the first ladder rung has hedges to drop.
#[must_use]
pub fn sweep_base() -> SimConfig {
    SimConfig::non_strict(Link::T1, OrderingSource::StaticCallGraph)
        .with_faults(sweep_config(SWEEP_LOSS_PM))
        .with_replicas(sweep_replicas(2))
}

/// The sweep's fleet spec at one admission rate (0 disables admission).
#[must_use]
pub fn sweep_spec(admit_rate: u32) -> FleetSpec {
    FleetSpec {
        admission: (admit_rate > 0).then(|| AdmissionSettings::per_period(admit_rate)),
        ladder: Some(SWEEP_LADDER),
        ..FleetSpec::seeded(OVERLOAD_SEED)
    }
}

/// Client `i`'s access link under one mix.
#[must_use]
pub fn mix_link(mix: &str, i: usize) -> Link {
    match mix {
        "modem" => Link::MODEM_28_8,
        "mixed" if i % 2 == 1 => Link::MODEM_28_8,
        _ => Link::T1,
    }
}

/// One fleet-size × link-mix × admission-rate cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OverloadRow {
    /// Fleet size.
    pub clients: usize,
    /// Access-link mix label.
    pub mix: &'static str,
    /// Admission rate (tokens per period; 0 = admission disabled).
    pub admit_rate: u32,
    /// Admission rejections before every client was admitted.
    pub rejections: u64,
    /// Clients served unmodified.
    pub served: usize,
    /// Clients whose hedged fetches were dropped (first rung).
    pub hedge_dropped: usize,
    /// Clients forced to strict sequential transfer (second rung).
    pub forced_strict: usize,
    /// Clients shed to a journal checkpoint and resumed (final rung).
    pub shed: usize,
    /// Median per-client total cycles.
    pub p50_total: u64,
    /// 95th-percentile per-client total cycles.
    pub p95_total: u64,
    /// 99th-percentile per-client total cycles.
    pub p99_total: u64,
    /// Aggregate queue share: fleet queue cycles as a percent of fleet
    /// total cycles.
    pub queue_share: f64,
    /// Summed total cycles across the fleet.
    pub total_cycles: u64,
    /// Summed seven-bucket ledger across the fleet (exact: the buckets
    /// sum to `total_cycles`).
    pub ledger: CycleLedger,
}

/// Runs the full sweep: every fleet size × link mix × admission rate,
/// clients cycling through the suite's benchmarks in order. Rows are
/// fleet-size-major, then mix, then admission rate.
#[must_use]
pub fn overload_sweep(suite: &Suite) -> Vec<OverloadRow> {
    let base = sweep_base();
    let mut rows = Vec::new();
    for clients in CLIENT_SWEEP {
        for mix in LINK_MIXES {
            for admit_rate in ADMIT_SWEEP {
                let fleet_clients: Vec<FleetClient> = (0..clients)
                    .map(|i| {
                        let s = &suite.sessions[i % suite.sessions.len()];
                        FleetClient {
                            name: &s.app.name,
                            session: s,
                            link: mix_link(mix, i),
                            weight: 1,
                        }
                    })
                    .collect();
                let fleet = run_fleet(&sweep_spec(admit_rate), &fleet_clients, Input::Test, &base);
                let mut ledger = CycleLedger::default();
                let mut total_cycles = 0u64;
                for c in &fleet.clients {
                    let l = c.result.ledger();
                    ledger.exec += l.exec;
                    ledger.stall += l.stall;
                    ledger.recovery += l.recovery;
                    ledger.verify += l.verify;
                    ledger.resume += l.resume;
                    ledger.hedge += l.hedge;
                    ledger.queue += l.queue;
                    total_cycles += c.result.total_cycles;
                }
                // Per-client exactness survives summation.
                ledger.assert_exact(total_cycles, "overload cell");
                rows.push(OverloadRow {
                    clients,
                    mix,
                    admit_rate,
                    rejections: fleet.rejections(),
                    served: fleet.count(ShedAction::None),
                    hedge_dropped: fleet.count(ShedAction::DropHedges),
                    forced_strict: fleet.count(ShedAction::ForceStrict),
                    shed: fleet.count(ShedAction::Shed),
                    p50_total: fleet.p50_total,
                    p95_total: fleet.p95_total,
                    p99_total: fleet.p99_total,
                    queue_share: queue_share_percent(ledger.queue, total_cycles),
                    total_cycles,
                    ledger,
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    fn hanoi_suite() -> Suite {
        Suite {
            sessions: vec![Session::new(nonstrict_workloads::hanoi::build()).unwrap()],
        }
    }

    #[test]
    fn sweep_ladder_rungs_are_ordered() {
        // The struct-literal const must satisfy the same ordering the
        // validated constructor enforces.
        assert_eq!(
            ShedLadder::new(
                SWEEP_LADDER.drop_hedges,
                SWEEP_LADDER.force_strict,
                SWEEP_LADDER.shed,
            ),
            Ok(SWEEP_LADDER)
        );
        assert!(sweep_base().active_replicas().is_some());
        assert!(sweep_base().active_faults().is_some());
        assert!(sweep_spec(0).admission.is_none());
        assert!(sweep_spec(1).admission.is_some());
    }

    #[test]
    fn single_benchmark_sweep_accounts_every_cycle() {
        let suite = hanoi_suite();
        let rows = overload_sweep(&suite);
        assert_eq!(
            rows.len(),
            CLIENT_SWEEP.len() * LINK_MIXES.len() * ADMIT_SWEEP.len()
        );
        for r in &rows {
            assert_eq!(
                r.served + r.hedge_dropped + r.forced_strict + r.shed,
                r.clients,
                "every client lands on exactly one rung: {r:?}"
            );
            assert_eq!(r.ledger.total(), r.total_cycles, "exact ledger: {r:?}");
            assert!(r.p50_total <= r.p95_total && r.p95_total <= r.p99_total);
            if r.admit_rate == 0 {
                assert_eq!(r.rejections, 0, "disabled admission rejects no one: {r:?}");
            }
        }
        // Contention grows with fleet size: the largest fleet queues
        // more than the smallest on every (mix, admit) cell.
        let per_cell = LINK_MIXES.len() * ADMIT_SWEEP.len();
        for i in 0..per_cell {
            let small = &rows[i];
            let large = &rows[(CLIENT_SWEEP.len() - 1) * per_cell + i];
            assert!(
                large.ledger.queue > small.ledger.queue,
                "more clients must queue more: {small:?} vs {large:?}"
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let suite = hanoi_suite();
        assert_eq!(overload_sweep(&suite), overload_sweep(&suite));
    }
}
