//! The replica sweep: mirror count × loss rate under health-scored
//! routing with hedged demand fetches.
//!
//! This is our robustness extension of the paper's evaluation — the
//! original tables assume a single perfect origin, so these rows live
//! in their own experiment (a new `replica.csv`, a new `paper replicas`
//! command) and leave every published-table row untouched. Each cell
//! simulates the non-strict par(4) configuration against a replica set
//! whose mirrors run the fault sweep's lossy-link profile under
//! independent sub-seeds, and reports how much routing, hedging, and
//! failover bought back.

use nonstrict_bytecode::Input;
use nonstrict_netsim::Link;

use super::faults::sweep_config;
use super::{Suite, LINKS};
use crate::metrics::{hedge_share_percent, normalized_percent, CycleLedger};
use crate::model::{OrderingSource, ReplicaConfig, SimConfig};

/// The swept (mirror count, unit-loss rate ppm) cells: a single lossy
/// origin as the reference point, then two and three mirrors at the
/// same 1% loss, then three mirrors at 5% — where hedging and failover
/// earn their keep.
pub const REPLICA_SWEEP: [(u32, u32); 4] = [(1, 10_000), (2, 10_000), (3, 10_000), (3, 50_000)];

/// Seed for every sweep cell, so the whole table is reproducible.
pub const REPLICA_SEED: u64 = 0x0e11_ca5e;

/// Hedge deadline for the sweep: short enough that fault-recovery
/// stalls at 1%+ loss actually trigger duplicate fetches.
pub const SWEEP_HEDGE_DEADLINE_CYCLES: u64 = 500_000;

/// The sweep's replica config at one mirror count.
#[must_use]
pub fn sweep_replicas(replicas: u32) -> ReplicaConfig {
    let mut rc = ReplicaConfig::seeded(REPLICA_SEED);
    rc.replicas = replicas;
    rc.hedge_deadline_cycles = SWEEP_HEDGE_DEADLINE_CYCLES;
    rc
}

/// One benchmark × link × (mirrors, loss-rate) cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaRow {
    /// Benchmark name.
    pub name: String,
    /// The link measured (mirror 0's bandwidth; further mirrors droop).
    pub link: Link,
    /// Mirror count.
    pub replicas: u32,
    /// Swept unit-loss rate (ppm) on every mirror's independent plan.
    pub loss_pm: u32,
    /// Normalized time (%) vs the perfect-link strict baseline.
    pub normalized: f64,
    /// Percent of total time spent hedging.
    pub hedge_share: f64,
    /// Hedged duplicate fetches issued.
    pub hedges: u64,
    /// Hedges where the runner-up mirror won the race.
    pub hedge_wins: u64,
    /// Mid-stream switches of the serving mirror.
    pub failovers: u64,
    /// End-of-run health score per mirror (ppm of perfect), one entry
    /// per mirror in index order. Empty on the single-origin cell — a
    /// one-mirror set is normalized away, so no scores exist. Report-
    /// only; the CSV carries the min.
    pub health_ppm: Vec<u32>,
    /// Worst end-of-run health score across the set (ppm of perfect);
    /// 0 on the single-origin cell.
    pub min_health_ppm: u32,
    /// Whether the run executed to completion.
    pub completed: bool,
    /// Total cycles of the run.
    pub total_cycles: u64,
    /// The run's seven accounting buckets (exact: they sum to
    /// `total_cycles`).
    pub ledger: CycleLedger,
}

/// Runs the full sweep: every benchmark × link × (mirrors, loss) cell,
/// non-strict par(4) transfer under the static-call-graph ordering,
/// whole global data. Rows are ordered benchmark-major, then link, then
/// sweep cell — the natural grouping for the report.
#[must_use]
pub fn replica_sweep(suite: &Suite) -> Vec<ReplicaRow> {
    let mut rows = Vec::new();
    for s in &suite.sessions {
        for link in LINKS {
            let base = s.simulate(Input::Test, &SimConfig::strict(link));
            for (replicas, loss_pm) in REPLICA_SWEEP {
                let config = SimConfig::non_strict(link, OrderingSource::StaticCallGraph)
                    .with_faults(sweep_config(loss_pm))
                    .with_replicas(sweep_replicas(replicas));
                let r = s.simulate(Input::Test, &config);
                // An inactive (single-origin) config reports 0 mirrors.
                let scored = r.replica.replicas as usize;
                let health_ppm: Vec<u32> = r.replica.health[..scored]
                    .iter()
                    .map(|h| h.health_ppm)
                    .collect();
                let min_health_ppm = health_ppm.iter().copied().min().unwrap_or(0);
                rows.push(ReplicaRow {
                    name: s.app.name.clone(),
                    link,
                    replicas,
                    loss_pm,
                    normalized: normalized_percent(r.total_cycles, base.total_cycles),
                    hedge_share: hedge_share_percent(r.replica.hedge_cycles, r.total_cycles),
                    hedges: r.replica.hedges,
                    hedge_wins: r.replica.hedge_wins,
                    failovers: r.replica.failovers,
                    health_ppm,
                    min_health_ppm,
                    completed: r.faults.completed,
                    total_cycles: r.total_cycles,
                    ledger: r.ledger(),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    fn hanoi_suite() -> Suite {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        Suite {
            sessions: vec![session],
        }
    }

    #[test]
    fn sweep_replicas_carries_the_sweep_seed_and_deadline() {
        let rc = sweep_replicas(3);
        assert_eq!(rc.seed, REPLICA_SEED);
        assert_eq!(rc.replicas, 3);
        assert_eq!(rc.hedge_deadline_cycles, SWEEP_HEDGE_DEADLINE_CYCLES);
        assert!(rc.is_active());
        assert!(!sweep_replicas(1).is_active(), "one mirror is no choice");
    }

    #[test]
    fn single_benchmark_sweep_completes_on_every_cell() {
        let suite = hanoi_suite();
        let rows = replica_sweep(&suite);
        assert_eq!(rows.len(), LINKS.len() * REPLICA_SWEEP.len());
        for r in &rows {
            assert!(r.completed, "every replicated run must terminate: {r:?}");
            assert!(r.normalized > 0.0);
            if r.replicas == 1 {
                assert_eq!(r.hedges, 0, "no runner-up, no hedging: {r:?}");
                assert_eq!(r.failovers, 0, "nowhere to fail over to: {r:?}");
                assert_eq!(r.hedge_share, 0.0);
                assert!(r.health_ppm.is_empty(), "single origin is unscored: {r:?}");
            } else {
                assert_eq!(r.health_ppm.len(), r.replicas as usize);
                assert!(
                    r.min_health_ppm > 0,
                    "a completed run cannot leave a zero-health mirror: {r:?}"
                );
                assert_eq!(
                    r.min_health_ppm,
                    r.health_ppm.iter().copied().min().unwrap()
                );
            }
            assert!(r.hedge_wins <= r.hedges);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let suite = hanoi_suite();
        assert_eq!(replica_sweep(&suite), replica_sweep(&suite));
    }
}
