//! The outage sweep: connection-loss frequency × duration × link under
//! durable session checkpointing.
//!
//! Like the fault sweep, this is a robustness extension — the paper's
//! tables assume the connection survives the whole download, so these
//! rows live in their own experiment (`outage.csv`, `paper outage`).
//! Each cell simulates the non-strict par(4) SCG configuration over a
//! link that suffers seeded full-connection losses; the client journals
//! its session state and resumes from the checkpoint when the link
//! returns. The headline property the sweep demonstrates is that an
//! outage is *pure inserted downtime*: the wall-clock total is exactly
//! the outage-free total plus the metered resume cost, never a restart.

use nonstrict_bytecode::Input;
use nonstrict_netsim::Link;

use super::{Suite, LINKS};
use crate::metrics::{normalized_percent, resume_share_percent, CycleLedger};
use crate::model::{OrderingSource, OutageConfig, SimConfig};

/// The swept outage severities, `(rate_pm, outage_cycles)`: probability
/// per ~134ms draw period (parts-per-million) and the exact connection
/// downtime each event inserts. The zero row is the control: an armed
/// journal but a link that never goes down.
pub const OUTAGE_SWEEP: [(u32, u64); 4] = [
    (0, 0),
    (100_000, 1 << 21),
    (400_000, 1 << 23),
    (800_000, 1 << 25),
];

/// Seed for every sweep cell, so the whole table is reproducible.
pub const OUTAGE_SEED: u64 = 0x5e55_10f5;

/// The sweep's outage config at one severity: the duration is pinned
/// (`min = max`) so each cell's downtime is an exact multiple of the
/// event count.
#[must_use]
pub fn sweep_config(rate_pm: u32, outage_cycles: u64) -> OutageConfig {
    let mut oc = OutageConfig::seeded(OUTAGE_SEED);
    oc.rate_pm = rate_pm;
    oc.min_cycles = outage_cycles;
    oc.max_cycles = outage_cycles;
    oc
}

/// One benchmark × link × severity cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageRow {
    /// Benchmark name.
    pub name: String,
    /// The link measured.
    pub link: Link,
    /// Swept outage probability (ppm per draw period).
    pub rate_pm: u32,
    /// Downtime inserted per outage event (cycles).
    pub outage_cycles: u64,
    /// Normalized wall-clock time (%) vs the outage-free strict
    /// baseline.
    pub normalized: f64,
    /// Percent of wall-clock total spent down or renegotiating.
    pub resume_share: f64,
    /// Outage events survived.
    pub outages: u32,
    /// Checkpoint-journal resumes performed.
    pub resumes: u32,
    /// Whether wall total == outage-free total + resume cost held
    /// exactly (the pure-downtime invariant).
    pub pure_downtime: bool,
    /// Total cycles of the run.
    pub total_cycles: u64,
    /// The run's seven accounting buckets (exact: they sum to
    /// `total_cycles`).
    pub ledger: CycleLedger,
}

/// Runs the full sweep: every benchmark × link × outage severity,
/// non-strict par(4) SCG transfer. Rows are benchmark-major, then link,
/// then severity — the natural grouping for the report.
#[must_use]
pub fn outage_sweep(suite: &Suite) -> Vec<OutageRow> {
    let mut rows = Vec::new();
    for s in &suite.sessions {
        for link in LINKS {
            let base = s.simulate(Input::Test, &SimConfig::strict(link));
            let quiet_cfg = SimConfig::non_strict(link, OrderingSource::StaticCallGraph);
            let quiet = s.simulate(Input::Test, &quiet_cfg);
            for (rate_pm, outage_cycles) in OUTAGE_SWEEP {
                let config = quiet_cfg.with_outages(sweep_config(rate_pm, outage_cycles));
                let r = s.simulate(Input::Test, &config);
                rows.push(OutageRow {
                    name: s.app.name.clone(),
                    link,
                    rate_pm,
                    outage_cycles,
                    normalized: normalized_percent(r.total_cycles, base.total_cycles),
                    resume_share: resume_share_percent(r.outage.resume_cycles, r.total_cycles),
                    outages: r.outage.outages,
                    resumes: r.outage.resumes,
                    pure_downtime: r.total_cycles == quiet.total_cycles + r.outage.resume_cycles,
                    total_cycles: r.total_cycles,
                    ledger: r.ledger(),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    #[test]
    fn sweep_config_pins_the_event_duration() {
        let oc = sweep_config(400_000, 1 << 23);
        assert!(oc.is_active());
        assert_eq!(oc.min_cycles, oc.max_cycles);
        assert!(!sweep_config(0, 0).is_active(), "zero rate is a calm link");
    }

    #[test]
    fn single_benchmark_sweep_inserts_pure_downtime() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let rows = outage_sweep(&suite);
        assert_eq!(rows.len(), LINKS.len() * OUTAGE_SWEEP.len());
        for r in &rows {
            assert!(r.pure_downtime, "outages must never force a restart: {r:?}");
            assert_eq!(r.resumes, r.outages, "one journal resume per outage: {r:?}");
            if r.rate_pm == 0 {
                assert_eq!(r.outages, 0, "calm link, no events: {r:?}");
                assert_eq!(r.resume_share, 0.0);
            }
        }
        // Severity costs wall-clock time: at each link the harshest grid
        // point can be no faster than the calm one.
        for chunk in rows.chunks(OUTAGE_SWEEP.len()) {
            let calm = chunk[0].normalized;
            let worst = chunk[OUTAGE_SWEEP.len() - 1].normalized;
            assert!(
                worst >= calm - 1e-9,
                "outages cannot speed a run up: {chunk:?}"
            );
        }
    }

    #[test]
    fn calm_row_matches_the_outage_free_run() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        let rows = outage_sweep(&suite);
        for link in LINKS {
            let s = &suite.sessions[0];
            let base = s.simulate(Input::Test, &SimConfig::strict(link));
            let quiet = s.simulate(
                Input::Test,
                &SimConfig::non_strict(link, OrderingSource::StaticCallGraph),
            );
            let calm = rows
                .iter()
                .find(|r| r.link == link && r.rate_pm == 0)
                .unwrap();
            assert_eq!(
                calm.normalized,
                normalized_percent(quiet.total_cycles, base.total_cycles),
                "an armed-but-calm outage config must not perturb the run"
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let session = Session::new(nonstrict_workloads::hanoi::build()).unwrap();
        let suite = Suite {
            sessions: vec![session],
        };
        assert_eq!(outage_sweep(&suite), outage_sweep(&suite));
    }
}
