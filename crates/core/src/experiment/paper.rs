//! The paper's published results (Tables 3–10, Figure 6), transcribed
//! for side-by-side comparison in reports and fidelity tests.
//!
//! Benchmark index order everywhere: BIT, Hanoi, JavaCup, Jess, JHLZip,
//! TestDes — the paper's row order.

/// Benchmark names in the paper's row order.
pub const NAMES: [&str; 6] = ["BIT", "Hanoi", "JavaCup", "Jess", "JHLZip", "TestDes"];

/// Table 3 — base case. Per benchmark: (CPI, exec Mcycles,
/// T1 transfer Mcycles, T1 %transfer, modem transfer Mcycles,
/// modem %transfer).
pub const TABLE3: [(u64, u64, u64, f64, u64, f64); 6] = [
    (147, 1141, 776, 40.5, 28_404, 96.0),
    (3830, 1261, 27, 2.1, 2_327, 45.8),
    (1241, 482, 988, 67.2, 35_208, 98.6),
    (225, 700, 1885, 72.9, 66_932, 99.0),
    (82, 194, 258, 57.0, 9_247, 97.9),
    (484, 150, 306, 67.1, 10_952, 98.6),
];

/// Table 4 — invocation latency in Mcycles. Per benchmark:
/// (T1 strict, T1 non-strict, T1 partitioned,
///  modem strict, modem non-strict, modem partitioned).
pub const TABLE4: [(f64, f64, f64, f64, f64, f64); 6] = [
    (14.0, 11.0, 10.0, 475.0, 386.0, 352.0),
    (13.0, 7.0, 3.0, 452.0, 263.0, 106.0),
    (66.0, 34.0, 8.0, 2333.0, 1197.0, 287.0),
    (24.0, 16.0, 7.0, 835.0, 572.0, 237.0),
    (13.0, 8.0, 3.0, 465.0, 267.0, 112.0),
    (71.0, 70.0, 70.0, 2481.0, 2459.0, 2457.0),
];

/// Table 4 average percent reductions: (non-strict, partitioned).
pub const TABLE4_AVG_REDUCTION: (f64, f64) = (31.0, 56.0);

/// One ordering's columns in Tables 5/6: limits One, Two, Four, Inf.
pub type ParallelRow = [f64; 4];

/// Table 5 — normalized execution time (%), parallel transfer, T1.
/// Indexed `[benchmark][ordering]` with orderings SCG, Train, Test.
pub const TABLE5_T1: [[ParallelRow; 3]; 6] = [
    [
        [99.0, 96.0, 94.0, 90.0],
        [94.0, 88.0, 79.0, 79.0],
        [90.0, 87.0, 79.0, 79.0],
    ],
    [
        [100.0, 99.0, 99.0, 99.0],
        [100.0, 99.0, 99.0, 99.0],
        [100.0, 99.0, 99.0, 99.0],
    ],
    [
        [82.0, 81.0, 76.0, 76.0],
        [63.0, 61.0, 61.0, 59.0],
        [61.0, 56.0, 55.0, 55.0],
    ],
    [
        [97.0, 93.0, 86.0, 77.0],
        [94.0, 90.0, 78.0, 70.0],
        [89.0, 64.0, 64.0, 64.0],
    ],
    [
        [97.0, 82.0, 74.0, 74.0],
        [82.0, 79.0, 72.0, 72.0],
        [75.0, 73.0, 72.0, 72.0],
    ],
    [
        [92.0, 90.0, 90.0, 90.0],
        [91.0, 90.0, 90.0, 88.0],
        [73.0, 72.0, 72.0, 72.0],
    ],
];

/// Table 5's AVG row.
pub const TABLE5_T1_AVG: [ParallelRow; 3] = [
    [94.0, 90.0, 87.0, 84.0],
    [87.0, 85.0, 80.0, 78.0],
    [81.0, 75.0, 74.0, 74.0],
];

/// Table 6 — normalized execution time (%), parallel transfer, modem.
pub const TABLE6_MODEM: [[ParallelRow; 3]; 6] = [
    [
        [95.0, 92.0, 88.0, 76.0],
        [57.0, 55.0, 53.0, 53.0],
        [56.0, 54.0, 53.0, 53.0],
    ],
    [
        [90.0, 90.0, 90.0, 90.0],
        [90.0, 88.0, 88.0, 88.0],
        [90.0, 87.0, 88.0, 87.0],
    ],
    [
        [69.0, 69.0, 67.0, 65.0],
        [63.0, 60.0, 58.0, 56.0],
        [54.0, 54.0, 54.0, 54.0],
    ],
    [
        [72.0, 70.0, 69.0, 69.0],
        [57.0, 57.0, 56.0, 55.0],
        [54.0, 53.0, 52.0, 51.0],
    ],
    [
        [56.0, 55.0, 55.0, 55.0],
        [56.0, 53.0, 53.0, 53.0],
        [54.0, 53.0, 53.0, 53.0],
    ],
    [
        [86.0, 85.0, 85.0, 85.0],
        [82.0, 82.0, 81.0, 76.0],
        [63.0, 62.0, 61.0, 61.0],
    ],
];

/// Table 6's AVG row.
pub const TABLE6_MODEM_AVG: [ParallelRow; 3] = [
    [78.0, 77.0, 76.0, 73.0],
    [68.0, 66.0, 65.0, 63.0],
    [62.0, 61.0, 60.0, 60.0],
];

/// Table 7 — interleaved transfer, normalized (%). Per benchmark:
/// (T1 SCG, T1 Train, T1 Test, modem SCG, modem Train, modem Test).
pub const TABLE7: [(f64, f64, f64, f64, f64, f64); 6] = [
    (84.0, 82.0, 77.0, 62.0, 50.0, 49.0),
    (99.0, 99.0, 92.0, 88.0, 85.0, 85.0),
    (68.0, 61.0, 49.0, 54.0, 51.0, 46.0),
    (67.0, 62.0, 52.0, 55.0, 50.0, 42.0),
    (73.0, 67.0, 67.0, 54.0, 44.0, 44.0),
    (74.0, 72.0, 72.0, 63.0, 60.0, 60.0),
];

/// Table 7's AVG row, same column order.
pub const TABLE7_AVG: (f64, f64, f64, f64, f64, f64) = (78.0, 74.0, 68.0, 63.0, 57.0, 54.0);

/// Table 8, left half — percent of global data in (CPool, Field,
/// Attrib, Intfc).
pub const TABLE8_GLOBAL: [[f64; 4]; 6] = [
    [88.2, 9.2, 0.7, 0.0],
    [93.5, 3.3, 0.8, 0.1],
    [95.3, 2.9, 0.5, 0.0],
    [95.6, 2.0, 0.6, 0.1],
    [94.2, 4.0, 0.5, 0.0],
    [94.7, 3.4, 0.5, 0.0],
];

/// Table 8, right half — percent of the constant pool in (Utf8, Ints,
/// Float, Long, Double, String, Class, FRef, MRef, NandT, IMRef).
pub const TABLE8_POOL: [[f64; 11]; 6] = [
    [80.1, 2.2, 0.0, 0.0, 0.0, 1.8, 2.4, 2.6, 4.5, 0.1, 6.3],
    [75.1, 0.0, 0.0, 0.0, 1.2, 0.2, 3.0, 4.3, 6.3, 0.0, 9.9],
    [80.3, 0.3, 0.0, 0.0, 0.0, 2.3, 1.7, 1.8, 6.1, 0.1, 7.3],
    [81.9, 0.2, 0.0, 0.0, 0.0, 1.1, 3.7, 1.3, 5.4, 0.1, 6.2],
    [63.2, 17.0, 0.0, 0.0, 0.0, 1.0, 1.6, 3.1, 6.0, 0.1, 8.0],
    [34.9, 52.9, 0.0, 0.0, 0.0, 0.4, 1.3, 2.5, 2.9, 0.0, 5.2],
];

/// Table 9 — data breakdown. Per benchmark: (local KB, global KB,
/// % needed first, % in methods, % unused).
pub const TABLE9: [(f64, f64, f64, f64, f64); 6] = [
    (43.9, 56.9, 34.0, 63.0, 3.0),
    (1.8, 3.1, 21.0, 75.0, 4.0),
    (53.9, 59.4, 17.0, 82.0, 1.0),
    (93.8, 129.9, 19.0, 61.0, 20.0),
    (15.1, 12.0, 19.0, 79.0, 2.0),
    (29.7, 5.0, 15.0, 84.0, 1.0),
];

/// Table 10 — normalized (%) with data partitioning. Per benchmark:
/// parallel(4) (T1 SCG/Train/Test, modem SCG/Train/Test) then
/// interleaved (same six columns).
pub const TABLE10: [([f64; 6], [f64; 6]); 6] = [
    (
        [82.0, 78.0, 75.0, 68.0, 51.0, 51.0],
        [81.0, 77.0, 72.0, 57.0, 49.0, 47.0],
    ),
    (
        [98.0, 98.0, 98.0, 87.0, 86.0, 84.0],
        [98.0, 97.0, 90.0, 85.0, 83.0, 82.0],
    ),
    (
        [69.0, 54.0, 52.0, 61.0, 51.0, 50.0],
        [66.0, 52.0, 45.0, 52.0, 43.0, 41.0],
    ),
    (
        [72.0, 65.0, 62.0, 62.0, 54.0, 50.0],
        [67.0, 59.0, 45.0, 50.0, 47.0, 35.0],
    ),
    (
        [73.0, 71.0, 71.0, 53.0, 48.0, 48.0],
        [72.0, 64.0, 64.0, 50.0, 40.0, 40.0],
    ),
    (
        [89.0, 71.0, 71.0, 84.0, 76.0, 60.0],
        [73.0, 70.0, 70.0, 61.0, 58.0, 58.0],
    ),
];

/// Table 10's AVG row, same layout.
pub const TABLE10_AVG: ([f64; 6], [f64; 6]) = (
    [81.0, 73.0, 71.0, 69.0, 61.0, 57.0],
    [76.0, 70.0, 64.0, 59.0, 53.0, 51.0],
);

/// Figure 6 — average normalized execution time. Series order:
/// parallel, parallel+partitioning, interleaved,
/// interleaved+partitioning; within each series: T1 (SCG, Train, Test)
/// then modem (SCG, Train, Test). Parallel uses the limit-4 columns.
pub const FIG6: [[f64; 6]; 4] = [
    [87.0, 80.0, 74.0, 76.0, 65.0, 60.0],
    [81.0, 73.0, 71.0, 69.0, 61.0, 57.0],
    [78.0, 74.0, 68.0, 63.0, 57.0, 54.0],
    [76.0, 70.0, 64.0, 59.0, 53.0, 51.0],
];

/// Headline claims (§8): average reductions in invocation latency and
/// total execution time.
pub const HEADLINE_LATENCY_REDUCTION: (f64, f64) = (31.0, 56.0);
/// Execution-time reduction range claimed in the abstract.
pub const HEADLINE_EXEC_REDUCTION: (f64, f64) = (25.0, 40.0);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_avg_consistent_with_rows() {
        for (o, avg_row) in TABLE5_T1_AVG.iter().enumerate() {
            for limit in 0..4 {
                let mean: f64 = TABLE5_T1.iter().map(|b| b[o][limit]).sum::<f64>() / 6.0;
                assert!(
                    (mean - avg_row[limit]).abs() <= 1.0,
                    "ordering {o} limit {limit}: {mean} vs published {}",
                    avg_row[limit]
                );
            }
        }
    }

    #[test]
    fn table7_avg_consistent_with_rows() {
        let first: f64 = TABLE7.iter().map(|r| r.0).sum::<f64>() / 6.0;
        let last: f64 = TABLE7.iter().map(|r| r.5).sum::<f64>() / 6.0;
        assert!((first - TABLE7_AVG.0).abs() <= 1.0);
        assert!((last - TABLE7_AVG.5).abs() <= 1.0);
    }

    #[test]
    fn tables_have_six_rows() {
        assert_eq!(NAMES.len(), 6);
        assert_eq!(TABLE3.len(), 6);
        assert_eq!(TABLE4.len(), 6);
        assert_eq!(TABLE9.len(), 6);
        assert_eq!(TABLE10.len(), 6);
    }
}
