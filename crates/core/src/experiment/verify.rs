//! The verification-overhead sweep: benchmark × link × verify mode
//! under non-strict transfer.
//!
//! This is our robustness extension of the paper's evaluation — the
//! original tables assume verification is free, so these rows live in
//! their own experiment (a new `verify.csv`, a new `paper verify`
//! command) and leave every published-table row untouched. Each cell
//! simulates the non-strict par(4) SCG configuration and reports what
//! the verified-prefix gate costs: total time normalized to the strict
//! baseline, the share of time spent verifying, and the invocation
//! latency the gate imposes. The `off` row reproduces the existing
//! results exactly; `stream` charges steps 1–2 at global-data arrival
//! and steps 3–4 per method at its delimiter while keeping the overlap;
//! `full` waits for whole files, the strict 1998 JVM's behaviour.

use nonstrict_bytecode::Input;
use nonstrict_netsim::Link;

use super::{Suite, LINKS};
use crate::metrics::{normalized_percent, verify_share_percent, CycleLedger};
use crate::model::{OrderingSource, SimConfig, VerifyMode};

/// The swept verification modes, in report column order.
pub const VERIFY_SWEEP: [VerifyMode; 3] = [VerifyMode::Off, VerifyMode::Stream, VerifyMode::Full];

/// One benchmark × link × verify-mode cell of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyRow {
    /// Benchmark name.
    pub name: String,
    /// The link measured.
    pub link: Link,
    /// Verification mode.
    pub mode: VerifyMode,
    /// Normalized time (%) vs the perfect-link strict baseline.
    pub normalized: f64,
    /// Cycles spent verifying prefixes.
    pub verify_cycles: u64,
    /// Percent of total time spent verifying.
    pub verify_share: f64,
    /// Invocation latency in cycles (when the entry method could run).
    pub invocation_latency: u64,
    /// Stall cycles (transfer wait).
    pub stall_cycles: u64,
    /// Total cycles of the run.
    pub total_cycles: u64,
    /// The run's seven accounting buckets (exact: they sum to
    /// `total_cycles`).
    pub ledger: CycleLedger,
}

/// Runs the full sweep: every benchmark × link × verify mode,
/// non-strict par(4) SCG transfer, whole global data. Rows are ordered
/// benchmark-major, then link, then mode — the natural grouping for the
/// report.
#[must_use]
pub fn verify_sweep(suite: &Suite) -> Vec<VerifyRow> {
    let mut rows = Vec::new();
    for s in &suite.sessions {
        for link in LINKS {
            let base = s.simulate(Input::Test, &SimConfig::strict(link));
            for mode in VERIFY_SWEEP {
                let config =
                    SimConfig::non_strict(link, OrderingSource::StaticCallGraph).with_verify(mode);
                let r = s.simulate(Input::Test, &config);
                rows.push(VerifyRow {
                    name: s.app.name.clone(),
                    link,
                    mode,
                    normalized: normalized_percent(r.total_cycles, base.total_cycles),
                    verify_cycles: r.verify_cycles,
                    verify_share: verify_share_percent(r.verify_cycles, r.total_cycles),
                    invocation_latency: r.invocation_latency,
                    stall_cycles: r.stall_cycles,
                    total_cycles: r.total_cycles,
                    ledger: r.ledger(),
                });
            }
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Session;

    fn one_benchmark_suite() -> Suite {
        Suite {
            sessions: vec![Session::new(nonstrict_workloads::hanoi::build()).unwrap()],
        }
    }

    #[test]
    fn sweep_covers_every_cell_and_off_is_free() {
        let suite = one_benchmark_suite();
        let rows = verify_sweep(&suite);
        assert_eq!(rows.len(), LINKS.len() * VERIFY_SWEEP.len());
        for r in &rows {
            assert!(r.normalized > 0.0);
            match r.mode {
                VerifyMode::Off => {
                    assert_eq!(r.verify_cycles, 0, "off must charge nothing: {r:?}");
                    assert_eq!(r.verify_share, 0.0);
                }
                VerifyMode::Stream | VerifyMode::Full => {
                    assert!(r.verify_cycles > 0, "verification must be charged: {r:?}");
                }
            }
        }
    }

    #[test]
    fn stream_sits_between_off_and_full() {
        let suite = one_benchmark_suite();
        let rows = verify_sweep(&suite);
        for chunk in rows.chunks(VERIFY_SWEEP.len()) {
            let (off, stream, full) = (&chunk[0], &chunk[1], &chunk[2]);
            assert!(stream.normalized >= off.normalized - 1e-9);
            assert!(full.normalized >= stream.normalized - 1e-9);
            assert!(
                full.invocation_latency >= stream.invocation_latency,
                "whole-file gating cannot start sooner: {chunk:?}"
            );
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let suite = one_benchmark_suite();
        assert_eq!(verify_sweep(&suite), verify_sweep(&suite));
    }
}
