//! Calibration test: every benchmark's Table 2 row must be close to the
//! paper's published row. Structural counts (files, methods) are exact;
//! sizes and dynamics carry tolerances (the paper's apps were compiled by
//! a 1997 javac we can only approximate).

use nonstrict_workloads::stats::{paper_row, table2_row};

#[test]
fn table2_rows_track_the_paper() {
    let mut failures = Vec::new();
    for app in nonstrict_workloads::build_all() {
        let got = table2_row(&app);
        let want = paper_row(&app.name).expect("paper row exists");
        println!(
            "{:8} files {:3} (paper {:3})  size {:7.1}KB (paper {:5.1})  dynT {:8.0}K (paper {:6.0})  dynR {:8.0}K (paper {:6.0})  static {:6.1}K (paper {:4.1})  exec {:5.1}% (paper {:2.0})  methods {:4} (paper {:4})  i/m {:5.1} (paper {:3.0})",
            got.name, got.total_files, want.total_files, got.size_kb, want.size_kb,
            got.dyn_test_k, want.dyn_test_k, got.dyn_train_k, want.dyn_train_k,
            got.static_k, want.static_k, got.executed_pct, want.executed_pct,
            got.total_methods, want.total_methods, got.instrs_per_method, want.instrs_per_method,
        );
        let mut check = |what: &str, got: f64, want: f64, tol: f64| {
            let rel = (got - want).abs() / want.max(1e-9);
            if rel > tol {
                failures.push(format!(
                    "{}: {} = {:.1} vs paper {:.1} ({:+.0}%, tol {:.0}%)",
                    app.name,
                    what,
                    got,
                    want,
                    100.0 * (got - want) / want,
                    100.0 * tol
                ));
            }
        };
        // Exact structure.
        assert_eq!(got.total_files, want.total_files, "{}", app.name);
        assert_eq!(got.total_methods, want.total_methods, "{}", app.name);
        // Dynamics: calibrated, must be tight.
        check("dyn test", got.dyn_test_k, want.dyn_test_k, 0.08);
        check("dyn train", got.dyn_train_k, want.dyn_train_k, 0.10);
        // Sizes and coverage: approximated, looser.
        check("size KB", got.size_kb, want.size_kb, 0.25);
        check("% executed", got.executed_pct, want.executed_pct, 0.20);
        check("static K", got.static_k, want.static_k, 0.35);
    }
    assert!(
        failures.is_empty(),
        "fidelity failures:\n{}",
        failures.join("\n")
    );
}
