//! **TestDes** — the DES encryption/decryption benchmark.
//!
//! Table 1: *"Encrypts a string then decrypts it."* 3 class files, 50 KB,
//! 51 methods averaging 174 instructions (by far the suite's largest
//! methods — table-initialization code), 310 K dynamic instructions on
//! Test (303 K on Train), 98% of static instructions executed, CPI 484.
//! Its constant pool is 53% integer entries (Table 8): the S-box tables.
//!
//! This is a **real cipher**: a 16-round Feistel network with DES's
//! structure — initial/final permutations (table-driven, provably
//! inverse), an E-expansion, eight 64-entry S-boxes, a P-permutation,
//! and a 16-round key schedule. The S-box *values* are synthetic (the
//! round-trip property of a Feistel network is independent of them; see
//! DESIGN.md §2), but the code shape — giant straight-line table
//! initializers full of pool-resident integer constants — matches what
//! `javac` produced for real DES code in 1998.
//!
//! `main(blocks, mode)` encrypts `blocks` 64-bit blocks of a generated
//! message, decrypts them, verifies the round trip, and prints `1` on
//! success. Test and Train differ in block count and in verification
//! order (Test interleaves verification; Train verifies at the end),
//! which perturbs the first-use order exactly as the paper's inputs did.

use nonstrict_bytecode::builder::MethodBuilder;
use nonstrict_bytecode::program::{Application, ClassDef, Program, StaticDef, WireScale};
use nonstrict_bytecode::{Cond, Interpreter, MethodId, RuntimeFn};

/// CPI from Table 3.
pub const CPI: u64 = 484;

const MAIN: u16 = 0;
const DES: u16 = 1;
const TABLES: u16 = 2;

// Main methods (the entry class is essentially one giant `main` plus a
// tiny `report`, which is why TestDes sees almost no latency benefit
// from non-strict execution in the paper's Table 4).
const M_REPORT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(MAIN),
    method: 1,
};

// Driver helpers live in the Des class (methods 20..=27).
const M_MAKE_MESSAGE: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 20,
};
const M_RUN_ENCRYPT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 21,
};
const M_RUN_DECRYPT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 22,
};
const M_CHECK_EQUAL: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 23,
};
const M_MIX_SEED: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 24,
};
const M_PAD_LENGTH: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 25,
};
const M_FILL_BLOCK: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 26,
};
const M_SELF_TEST: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 27,
};

// Des methods.
const D_INIT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 0,
};
const D_KEY_SCHEDULE: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 1,
};
const D_ROT28: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 2,
};
const D_PC2_PICK: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 3,
};
const D_SBOX_AT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 4,
};
const D_F: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 5,
};
const D_EXPAND: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 6,
};
const D_PERMUTE_P: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 7,
};
const D_IP: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 8,
};
const D_FP: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 9,
};
const D_ENCRYPT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 10,
};
const D_DECRYPT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 11,
};
const D_SET_BLOCK: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 12,
};
const D_GET_L: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 13,
};
const D_GET_R: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 14,
};
const D_ROUND: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 15,
};
const D_ROUND_KEY: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 16,
};
const D_SWAP: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 17,
};
const D_PERM_BITS: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 18,
};
const D_WEAK_CHECK: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DES),
    method: 19,
};

// Tables methods.
const T_INIT_ALL: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(TABLES),
    method: 0,
};
// initSbox{0..7}{a,b} occupy methods 1..=16.
const T_INIT_PERM: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(TABLES),
    method: 17,
};
const T_INIT_IPERM: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(TABLES),
    method: 18,
};
const T_INIT_E: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(TABLES),
    method: 19,
};
const T_INIT_PC: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(TABLES),
    method: 20,
};

// Des statics.
const DS_L: u16 = 0;
const DS_R: u16 = 1;
const DS_K: u16 = 2;

// Tables statics: sbox0..7 = 0..7, perm = 8, iperm = 9, e = 10, pc = 11.
const TS_PERM: u16 = 8;
const TS_IPERM: u16 = 9;
const TS_E: u16 = 10;
const TS_PC: u16 = 11;

/// A deterministic "random" 32-bit constant for S-box entry `(box, i)` —
/// the same splitmix-style mix every build, so class files are
/// byte-identical across runs.
fn sbox_constant(bx: u32, i: u32) -> i32 {
    let mut z = u64::from(bx * 64 + i).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    let v = (z ^ (z >> 31)) as u32;
    // Force pool residence: values must exceed the sipush range.
    (v | 0x4000_0000) as i32
}

fn main_class() -> ClassDef {
    let mut c = ClassDef::new("des/TestDes");
    c.source_file = Some("TestDes.java".to_owned());
    c.add_static(StaticDef::int("msg", 0));
    c.add_static(StaticDef::int("enc", 0));
    c.add_static(StaticDef::int("dec", 0));
    c.add_static(StaticDef::int("seed", 0x1234));

    // main(blocks, mode): one giant method — javac-style inlined driver
    // with a long straight-line key-material mixing preamble (the
    // constants live in the pool, inflating the entry class exactly the
    // way the paper's TestDes is inflated).
    let mut b = MethodBuilder::new("main", 2);
    // Preamble: whiten the seed with 720 constant mixes drawn from a
    // 180-entry table.
    b.getstatic(MAIN, 3).istore(2);
    for i in 0..720u32 {
        let k = premix_constant(i % 180);
        if i % 2 == 0 {
            b.iconst(k).iload(2).ixor().istore(2);
        } else {
            b.iload(2).iconst(k).iadd().istore(2);
        }
    }
    b.iload(2).putstatic(MAIN, 3);
    b.invoke(D_INIT);
    // blocks = padLength(blocks)
    b.iload(0).invoke(M_PAD_LENGTH).istore(0);
    // msg = makeMessage(2*blocks); enc/dec arrays same size
    b.iload(0)
        .iconst(2)
        .imul()
        .invoke(M_MAKE_MESSAGE)
        .putstatic(MAIN, 0);
    b.iload(0).iconst(2).imul().newarray().putstatic(MAIN, 1);
    b.iload(0).iconst(2).imul().newarray().putstatic(MAIN, 2);
    let train_path = b.new_label();
    let done = b.new_label();
    b.iload(1)
        .iconst(crate::appgen::MODE_TEST as i32)
        .if_icmp(Cond::Ne, train_path);
    // Test: self-test first, then encrypt, decrypt, verify
    b.invoke(M_SELF_TEST).pop();
    b.iload(0).invoke(M_RUN_ENCRYPT);
    b.iload(0).invoke(M_RUN_DECRYPT);
    b.iload(0).invoke(M_CHECK_EQUAL).invoke(M_REPORT);
    b.goto(done);
    // Train: encrypt, decrypt, verify (no self test — first-use order
    // differs from Test)
    b.bind(train_path);
    b.iload(0).invoke(M_RUN_ENCRYPT);
    b.iload(0).invoke(M_RUN_DECRYPT);
    b.iload(0).invoke(M_CHECK_EQUAL).invoke(M_REPORT);
    b.bind(done);
    b.ret();
    b.line_entries(560);
    c.add_method(b.finish());

    // report(ok): print verdict
    let mut b = MethodBuilder::new("report", 1);
    b.iload(0).invoke_runtime(RuntimeFn::PrintInt);
    b.ret();
    b.line_entries(8);
    c.add_method(b.finish());

    c.unused_strings
        .push("usage: java TestDes <text>".to_owned());
    c
}

/// Deterministic key-material constant for the main preamble, forced
/// into the `ldc_w` range so each lives in the constant pool.
fn premix_constant(i: u32) -> i32 {
    let mut z = u64::from(i).wrapping_add(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 29)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    ((z as u32) | 0x4000_0000) as i32
}

fn des_class() -> ClassDef {
    let mut c = ClassDef::new("des/Des");
    c.source_file = Some("Des.java".to_owned());
    c.add_static(StaticDef::int("blockL", 0));
    c.add_static(StaticDef::int("blockR", 0));
    c.add_static(StaticDef::int("roundKeys", 0));

    // init(): tables, then the key schedule for a fixed key. The weak-
    // key check hides behind a guard that never fires (array handles are
    // never -1), leaving a statically visible but dead call edge.
    let mut b = MethodBuilder::new("init", 0);
    b.invoke(T_INIT_ALL);
    b.iconst(0x1337_BEEF_u32 as i32)
        .iconst(0x0BAD_F00D)
        .invoke(D_KEY_SCHEDULE);
    let skip = b.new_label();
    b.getstatic(DES, DS_K).iconst(-1).if_icmp(Cond::Ne, skip);
    b.iconst(1).iconst(2).invoke(D_WEAK_CHECK).pop();
    b.bind(skip);
    b.ret();
    b.line_entries(45);
    c.add_method(b.finish());

    // keySchedule(k1, k2): 16 rounds of rotations and PC2 picks
    let mut b = MethodBuilder::new("keySchedule", 2);
    b.iconst(16).newarray().putstatic(DES, DS_K);
    b.iconst(0).istore(2); // round
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(2).iconst(16).if_icmp(Cond::Ge, exit);
    // k1 = rot28(k1, shift); k2 = rot28(k2, shift)
    b.iload(0).iload(2).invoke(D_ROT28).istore(0);
    b.iload(1).iload(2).invoke(D_ROT28).istore(1);
    // K[r] = pc2pick(k1, k2) ^ r
    b.getstatic(DES, DS_K).iload(2);
    b.iload(0).iload(1).invoke(D_PC2_PICK).iload(2).ixor();
    b.iastore();
    b.iinc(2, 1).goto(head);
    b.bind(exit);
    b.ret();
    b.line_entries(80);
    c.add_method(b.finish());

    // rot28(v, r): 28-bit left rotation by 1 or 2 (DES shift schedule)
    let mut b = MethodBuilder::new("rot28", 2);
    b.returns_value();
    // shift = (r==0||r==1||r==8||r==15) ? 1 : 2  — approximated by parity
    b.iload(1).iconst(1).iand().iconst(1).iadd().istore(2);
    b.iload(0).iload(2).ishl();
    b.iload(0).iconst(28).iload(2).isub().iushr();
    b.ior().iconst(0x0FFF_FFFF).iand().ireturn();
    b.line_entries(45);
    c.add_method(b.finish());

    // pc2pick(k1, k2): compress two halves into a round key
    let mut b = MethodBuilder::new("pc2pick", 2);
    b.returns_value();
    b.iload(0)
        .iconst(6)
        .ishl()
        .iload(1)
        .iconst(9)
        .iushr()
        .ixor();
    b.iload(0).iconst(11).iushr().ixor();
    b.iload(1).ixor().ireturn();
    b.line_entries(40);
    c.add_method(b.finish());

    // sboxAt(box, idx): dispatch to the right table
    let mut b = MethodBuilder::new("sboxAt", 2);
    b.returns_value();
    let mut next_labels = Vec::new();
    for bx in 0..8u16 {
        let next = b.new_label();
        next_labels.push(next);
        b.iload(0).iconst(i32::from(bx)).if_icmp(Cond::Ne, next);
        b.getstatic(TABLES, bx).iload(1).iaload().ireturn();
        b.bind(next);
    }
    b.iconst(0).ireturn();
    b.line_entries(80);
    c.add_method(b.finish());

    // f(r, k): E-expansion, key mix, S-boxes, P-permutation
    let mut b = MethodBuilder::new("f", 2);
    b.returns_value();
    b.iload(0).invoke(D_EXPAND).iload(1).ixor().istore(2); // x
    b.iconst(0).istore(3); // acc
    b.iconst(0).istore(4); // i
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(4).iconst(8).if_icmp(Cond::Ge, exit);
    // acc ^= sboxAt(i, (x >>> (4*i)) & 63) rotl' i*4
    b.iload(4);
    b.iload(2)
        .iload(4)
        .iconst(4)
        .imul()
        .iushr()
        .iconst(63)
        .iand();
    b.invoke(D_SBOX_AT);
    b.iload(4).iconst(4).imul().ishl();
    b.iload(3).ixor().istore(3);
    b.iinc(4, 1).goto(head);
    b.bind(exit);
    b.iload(3).invoke(D_PERMUTE_P).ireturn();
    b.line_entries(95);
    c.add_method(b.finish());

    // expand(r): E-expansion, unrolled taps
    let mut b = MethodBuilder::new("expand", 1);
    b.returns_value();
    b.iconst(0).istore(1);
    // 24 unrolled taps: acc ^= ((r >>> tap) & mask) << slot
    for i in 0..48 {
        let tap = (i * 5 + 3) % 31;
        let slot = i % 28;
        b.iload(0)
            .iconst(tap)
            .iushr()
            .iconst(0x33)
            .iand()
            .iconst(slot)
            .ishl();
        b.iload(1).ixor().istore(1);
    }
    b.iload(1).iload(0).ixor().ireturn();
    b.line_entries(150);
    c.add_method(b.finish());

    // permuteP(x): P-permutation, unrolled taps
    let mut b = MethodBuilder::new("permuteP", 1);
    b.returns_value();
    b.iconst(0).istore(1);
    for i in 0..32 {
        let tap = (i * 7 + 1) % 31;
        let slot = (i * 2) % 31;
        b.iload(0)
            .iconst(tap)
            .iushr()
            .iconst(3)
            .iand()
            .iconst(slot)
            .ishl();
        b.iload(1).ior().istore(1);
    }
    b.iload(1).iload(0).iconst(1).ishl().ixor().ireturn();
    b.line_entries(110);
    c.add_method(b.finish());

    // ip(): table-driven initial permutation of (L, R) — permBits with
    // the forward table
    let mut b = MethodBuilder::new("ip", 0);
    b.getstatic(TABLES, TS_PERM).invoke(D_PERM_BITS);
    b.ret();
    b.line_entries(30);
    c.add_method(b.finish());

    // fp(): the inverse permutation (iperm is constructed as the exact
    // inverse of perm, so fp(ip(x)) == x)
    let mut b = MethodBuilder::new("fp", 0);
    b.getstatic(TABLES, TS_IPERM).invoke(D_PERM_BITS);
    b.ret();
    b.line_entries(30);
    c.add_method(b.finish());

    // encryptBlock(): IP, 16 rounds, swap, FP
    let mut b = MethodBuilder::new("encryptBlock", 0);
    b.invoke(D_IP);
    b.iconst(0).istore(0);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(0).iconst(16).if_icmp(Cond::Ge, exit);
    b.iload(0).invoke(D_ROUND_KEY).invoke(D_ROUND);
    b.iinc(0, 1).goto(head);
    b.bind(exit);
    b.invoke(D_SWAP);
    b.invoke(D_FP);
    b.ret();
    b.line_entries(60);
    c.add_method(b.finish());

    // decryptBlock(): IP, 16 rounds with reversed keys, swap, FP
    let mut b = MethodBuilder::new("decryptBlock", 0);
    b.invoke(D_IP);
    b.iconst(15).istore(0);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(0).if_(Cond::Lt, exit);
    b.iload(0).invoke(D_ROUND_KEY).invoke(D_ROUND);
    b.iinc(0, -1).goto(head);
    b.bind(exit);
    b.invoke(D_SWAP);
    b.invoke(D_FP);
    b.ret();
    b.line_entries(60);
    c.add_method(b.finish());

    // setBlock(l, r)
    let mut b = MethodBuilder::new("setBlock", 2);
    b.iload(0).putstatic(DES, DS_L);
    b.iload(1).putstatic(DES, DS_R);
    b.ret();
    b.line_entries(30);
    c.add_method(b.finish());

    // getL / getR
    let mut b = MethodBuilder::new("getL", 0);
    b.returns_value();
    b.getstatic(DES, DS_L).ireturn();
    b.line_entries(20);
    c.add_method(b.finish());
    let mut b = MethodBuilder::new("getR", 0);
    b.returns_value();
    b.getstatic(DES, DS_R).ireturn();
    b.line_entries(20);
    c.add_method(b.finish());

    // feistelRound(k): (L, R) = (R, L ^ f(R, k))
    let mut b = MethodBuilder::new("feistelRound", 1);
    b.getstatic(DES, DS_R).istore(1); // t = R
    b.getstatic(DES, DS_L);
    b.getstatic(DES, DS_R).iload(0).invoke(D_F);
    b.ixor().putstatic(DES, DS_R);
    b.iload(1).putstatic(DES, DS_L);
    b.ret();
    b.line_entries(45);
    c.add_method(b.finish());

    // roundKey(i)
    let mut b = MethodBuilder::new("roundKey", 1);
    b.returns_value();
    b.getstatic(DES, DS_K).iload(0).iaload().ireturn();
    b.line_entries(25);
    c.add_method(b.finish());

    // swapHalves()
    let mut b = MethodBuilder::new("swapHalves", 0);
    b.getstatic(DES, DS_L).istore(0);
    b.getstatic(DES, DS_R).putstatic(DES, DS_L);
    b.iload(0).putstatic(DES, DS_R);
    b.ret();
    b.line_entries(35);
    c.add_method(b.finish());

    // permBits(table): apply a 64-bit permutation to (L, R).
    // out bit j = in bit table[j]; j, table[j] in 0..64 with bits 0..31
    // in R and 32..63 in L.
    let mut b = MethodBuilder::new("permBits", 1);
    b.iconst(0).istore(1); // outL
    b.iconst(0).istore(2); // outR
    b.iconst(0).istore(3); // j
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(3).iconst(64).if_icmp(Cond::Ge, exit);
    // src = table[j]
    b.iload(0).iload(3).iaload().istore(4);
    // bit = src < 32 ? (R >>> src) & 1 : (L >>> (src-32)) & 1
    let from_l = b.new_label();
    let have_bit = b.new_label();
    b.iload(4).iconst(32).if_icmp(Cond::Ge, from_l);
    b.getstatic(DES, DS_R)
        .iload(4)
        .iushr()
        .iconst(1)
        .iand()
        .istore(5);
    b.goto(have_bit);
    b.bind(from_l);
    b.getstatic(DES, DS_L)
        .iload(4)
        .iconst(32)
        .isub()
        .iushr()
        .iconst(1)
        .iand()
        .istore(5);
    b.bind(have_bit);
    // place at j: j<32 -> outR, else outL
    let to_l = b.new_label();
    let placed = b.new_label();
    b.iload(3).iconst(32).if_icmp(Cond::Ge, to_l);
    b.iload(5).iload(3).ishl().iload(2).ior().istore(2);
    b.goto(placed);
    b.bind(to_l);
    b.iload(5)
        .iload(3)
        .iconst(32)
        .isub()
        .ishl()
        .iload(1)
        .ior()
        .istore(1);
    b.bind(placed);
    b.iinc(3, 1).goto(head);
    b.bind(exit);
    b.iload(1).putstatic(DES, DS_L);
    b.iload(2).putstatic(DES, DS_R);
    b.ret();
    b.line_entries(130);
    c.add_method(b.finish());

    // weakKeyCheck(k1, k2): dead on both inputs (guarded by caller that
    // never fires), kept for the 2% unexecuted static instructions
    let mut b = MethodBuilder::new("weakKeyCheck", 2);
    b.returns_value();
    let bad = b.new_label();
    b.iload(0).iload(1).if_icmp(Cond::Eq, bad);
    b.iload(0)
        .iload(1)
        .ixor()
        .iconst(0x0F0F_0F0F)
        .if_icmp(Cond::Eq, bad);
    b.iconst(0).ireturn();
    b.bind(bad);
    b.iconst(1).ireturn();
    b.line_entries(45);
    c.add_method(b.finish());

    // --- driver helpers (methods 20..=27): the TestDes wrapper logic ---

    // makeMessage(n): array of n pseudo-random ints
    let mut b = MethodBuilder::new("makeMessage", 1);
    b.returns_value();
    b.iload(0).newarray().istore(1);
    b.iconst(0).istore(2);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(2).iload(0).if_icmp(Cond::Ge, exit);
    b.iload(1).iload(2);
    b.getstatic(MAIN, 3)
        .invoke(M_MIX_SEED)
        .dup()
        .putstatic(MAIN, 3);
    b.iastore();
    b.iinc(2, 1).goto(head);
    b.bind(exit);
    b.iload(1).ireturn();
    b.line_entries(80);
    c.add_method(b.finish());

    // runEncrypt(blocks)
    let mut b = MethodBuilder::new("runEncrypt", 1);
    b.iconst(0).istore(1);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(1).iload(0).if_icmp(Cond::Ge, exit);
    b.getstatic(MAIN, 0).iload(1).invoke(M_FILL_BLOCK);
    b.invoke(D_ENCRYPT);
    b.getstatic(MAIN, 1)
        .iload(1)
        .iconst(2)
        .imul()
        .invoke(D_GET_L)
        .iastore();
    b.getstatic(MAIN, 1)
        .iload(1)
        .iconst(2)
        .imul()
        .iconst(1)
        .iadd()
        .invoke(D_GET_R)
        .iastore();
    b.iinc(1, 1).goto(head);
    b.bind(exit);
    b.ret();
    b.line_entries(90);
    c.add_method(b.finish());

    // runDecrypt(blocks)
    let mut b = MethodBuilder::new("runDecrypt", 1);
    b.iconst(0).istore(1);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(1).iload(0).if_icmp(Cond::Ge, exit);
    b.getstatic(MAIN, 1).iload(1).invoke(M_FILL_BLOCK);
    b.invoke(D_DECRYPT);
    b.getstatic(MAIN, 2)
        .iload(1)
        .iconst(2)
        .imul()
        .invoke(D_GET_L)
        .iastore();
    b.getstatic(MAIN, 2)
        .iload(1)
        .iconst(2)
        .imul()
        .iconst(1)
        .iadd()
        .invoke(D_GET_R)
        .iastore();
    b.iinc(1, 1).goto(head);
    b.bind(exit);
    b.ret();
    b.line_entries(90);
    c.add_method(b.finish());

    // checkEqual(blocks): 1 if dec == msg over 2*blocks ints
    let mut b = MethodBuilder::new("checkEqual", 1);
    b.returns_value();
    b.iconst(0).istore(1);
    let head = b.new_label();
    let bad = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(1).iload(0).iconst(2).imul().if_icmp(Cond::Ge, exit);
    b.getstatic(MAIN, 0).iload(1).iaload();
    b.getstatic(MAIN, 2).iload(1).iaload();
    b.if_icmp(Cond::Ne, bad);
    b.iinc(1, 1).goto(head);
    b.bind(exit);
    b.iconst(1).ireturn();
    b.bind(bad);
    b.iconst(0).ireturn();
    b.line_entries(80);
    c.add_method(b.finish());

    // mixSeed(s): xorshift-flavoured step
    let mut b = MethodBuilder::new("mixSeed", 1);
    b.returns_value();
    b.iload(0).iconst(13).ishl().iload(0).ixor().istore(0);
    b.iload(0).iconst(17).iushr().iload(0).ixor().istore(0);
    b.iload(0).iconst(5).ishl().iload(0).ixor().ireturn();
    b.line_entries(40);
    c.add_method(b.finish());

    // padLength(n): round up to >= 1
    let mut b = MethodBuilder::new("padLength", 1);
    b.returns_value();
    let ok = b.new_label();
    b.iload(0).if_(Cond::Gt, ok);
    b.iconst(1).ireturn();
    b.bind(ok);
    b.iload(0).ireturn();
    b.line_entries(35);
    c.add_method(b.finish());

    // fillBlock(arr, i): L = arr[2i], R = arr[2i+1]
    let mut b = MethodBuilder::new("fillBlock", 2);
    b.iload(0).iload(1).iconst(2).imul().iaload();
    b.iload(0)
        .iload(1)
        .iconst(2)
        .imul()
        .iconst(1)
        .iadd()
        .iaload();
    b.invoke(D_SET_BLOCK);
    b.ret();
    b.line_entries(40);
    c.add_method(b.finish());

    // selfTest(): one known block round-trips
    let mut b = MethodBuilder::new("selfTest", 0);
    b.returns_value();
    b.iconst(0x0123_4567)
        .iconst(0x89AB_CDEF_u32 as i32)
        .invoke(D_SET_BLOCK);
    b.invoke(D_ENCRYPT);
    b.invoke(D_GET_L).istore(0);
    b.invoke(D_GET_R).istore(1);
    b.iload(0).iload(1).invoke(D_SET_BLOCK);
    b.invoke(D_DECRYPT);
    let bad = b.new_label();
    b.invoke(D_GET_L).iconst(0x0123_4567).if_icmp(Cond::Ne, bad);
    b.invoke(D_GET_R)
        .iconst(0x89AB_CDEF_u32 as i32)
        .if_icmp(Cond::Ne, bad);
    b.iconst(1).ireturn();
    b.bind(bad);
    b.iconst(0).ireturn();
    b.line_entries(55);
    c.add_method(b.finish());

    c
}

fn tables_class() -> ClassDef {
    let mut c = ClassDef::new("des/Tables");
    c.source_file = Some("Tables.java".to_owned());
    for i in 0..8 {
        c.add_static(StaticDef::int(format!("sbox{i}"), 0));
    }
    c.add_static(StaticDef::int("perm", 0));
    c.add_static(StaticDef::int("iperm", 0));
    c.add_static(StaticDef::int("eTable", 0));
    c.add_static(StaticDef::int("pcTable", 0));

    // initAll(): drive every initializer
    let mut b = MethodBuilder::new("initAll", 0);
    for i in 0..16u16 {
        b.invoke(MethodId::new(TABLES, 1 + i));
    }
    b.invoke(T_INIT_PERM);
    b.invoke(T_INIT_IPERM);
    b.invoke(T_INIT_E);
    b.invoke(T_INIT_PC);
    b.ret();
    b.line_entries(95);
    c.add_method(b.finish());

    // initSbox{N}{a,b}: straight-line table halves, exactly how javac
    // compiles `static int[] SBOX = { ... }` — one giant run of
    // constant stores. These are the paper's 174-instruction methods.
    for bx in 0..8u16 {
        for half in 0..2u16 {
            let name = format!("initSbox{bx}{}", if half == 0 { "a" } else { "b" });
            let mut b = MethodBuilder::new(name, 0);
            if half == 0 {
                b.iconst(64).newarray().putstatic(TABLES, bx);
            }
            b.iconst(i32::from(bx) * 7 + i32::from(half)).istore(0);
            for i in 0..32u32 {
                let idx = u32::from(half) * 32 + i;
                b.getstatic(TABLES, bx);
                b.iconst(idx as i32);
                b.iconst(sbox_constant(u32::from(bx), idx));
                b.iconst(idx as i32).iconst(0x5BD1_E995).imul().ixor();
                b.iconst(0x9E37_79B9_u32 as i32).iload(0).iadd().ixor();
                b.iastore();
            }
            b.ret();
            b.line_entries(220);
            c.add_method(b.finish());
        }
    }

    // initPerm(): a fixed 64-bit permutation (bit-reversal within
    // halves crossed over), straight-line like real IP tables
    let mut b = MethodBuilder::new("initPerm", 0);
    b.iconst(64).newarray().putstatic(TABLES, TS_PERM);
    for j in 0..64i32 {
        // crossing permutation: j -> (63 - ((j * 17 + 9) % 64))
        let src = 63 - ((j * 17 + 9) % 64);
        b.getstatic(TABLES, TS_PERM).iconst(j).iconst(src).iastore();
    }
    b.ret();
    b.line_entries(220);
    c.add_method(b.finish());

    // initIPerm(): invert perm programmatically — guarantees fp = ip^-1
    let mut b = MethodBuilder::new("initIPerm", 0);
    b.iconst(64).newarray().putstatic(TABLES, TS_IPERM);
    b.iconst(0).istore(0);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(0).iconst(64).if_icmp(Cond::Ge, exit);
    // iperm[perm[j]] = j
    b.getstatic(TABLES, TS_IPERM);
    b.getstatic(TABLES, TS_PERM).iload(0).iaload();
    b.iload(0);
    b.iastore();
    b.iinc(0, 1).goto(head);
    b.bind(exit);
    b.ret();
    b.line_entries(60);
    c.add_method(b.finish());

    // initE(): 48-entry expansion table (straight-line)
    let mut b = MethodBuilder::new("initE", 0);
    b.iconst(48).newarray().putstatic(TABLES, TS_E);
    for j in 0..48i32 {
        b.getstatic(TABLES, TS_E)
            .iconst(j)
            .iconst((j * 31 + 7) % 32)
            .iastore();
    }
    b.ret();
    b.line_entries(140);
    c.add_method(b.finish());

    // initPC(): 56-entry key-permutation table (straight-line)
    let mut b = MethodBuilder::new("initPC", 0);
    b.iconst(56).newarray().putstatic(TABLES, TS_PC);
    for j in 0..56i32 {
        b.getstatic(TABLES, TS_PC)
            .iconst(j)
            .iconst((j * 23 + 3) % 56)
            .iastore();
    }
    b.ret();
    b.line_entries(150);
    c.add_method(b.finish());

    c.unused_strings.push("des.tables.rev".to_owned());
    c
}

/// Builds the TestDes application with calibrated Test/Train inputs.
///
/// # Panics
///
/// Panics if the handwritten cipher fails verification (a bug, caught by
/// tests).
#[must_use]
pub fn build() -> Application {
    let classes = vec![main_class(), des_class(), tables_class()];
    let program = Program::new(classes, "des/TestDes", "main").expect("testdes verifies");
    let mut app = Application::from_program("TestDes", program, CPI).expect("testdes lowers");
    app.wire_scale = WireScale::new(1554, 1000);

    // Calibrate the block count: dynamic count is affine in blocks.
    let probe = |blocks: i64, mode: i64| -> u64 {
        let mut interp = Interpreter::new(&app.program);
        interp.run(&[blocks, mode], &mut ()).expect("testdes runs");
        interp.executed()
    };
    let mode_test = crate::appgen::MODE_TEST;
    let mode_train = crate::appgen::MODE_TRAIN;
    let d1 = probe(2, mode_test);
    let d2 = probe(6, mode_test);
    let slope = (d2 - d1) / 4;
    let base = d1 - slope * 2;
    let solve = |target: u64| -> i64 {
        i64::try_from(target.saturating_sub(base).div_ceil(slope.max(1)).max(1)).expect("fits")
    };
    app.test_args = vec![solve(310_000), mode_test];
    app.train_args = vec![solve(303_000), mode_train];
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_bytecode::Input;

    #[test]
    fn structural_counts_match_paper() {
        let app = build();
        assert_eq!(app.classes.len(), 3);
        assert_eq!(app.program.method_count(), 51);
        assert_eq!(app.cpi, 484);
    }

    #[test]
    fn roundtrip_succeeds_on_both_inputs() {
        let app = build();
        for input in [Input::Test, Input::Train] {
            let mut interp = Interpreter::new(&app.program);
            interp.run(app.args(input), &mut ()).unwrap();
            assert_eq!(
                interp.output(),
                &[1],
                "{input}: decrypt(encrypt(msg)) != msg"
            );
        }
    }

    #[test]
    fn encryption_actually_changes_the_data() {
        // run a tampered check: encrypt-only output must differ from the
        // message, otherwise the "cipher" is the identity
        let app = build();
        let mut interp = Interpreter::new(&app.program);
        let mut sink = ();
        interp.run(app.args(Input::Test), &mut sink).unwrap();
        // selfTest() ran first on the test path and proved a known block
        // round-trips; here we just re-verify the program printed 1.
        assert_eq!(interp.output(), &[1]);
    }

    #[test]
    fn dynamic_counts_near_targets() {
        let app = build();
        for (input, target) in [(Input::Test, 310_000f64), (Input::Train, 303_000f64)] {
            let mut interp = Interpreter::new(&app.program);
            interp.run(app.args(input), &mut ()).unwrap();
            let got = interp.executed() as f64;
            assert!(
                (got - target).abs() / target < 0.10,
                "{input}: {got} vs {target}"
            );
        }
    }

    #[test]
    fn coverage_is_high_like_the_paper() {
        let app = build();
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Test), &mut ()).unwrap();
        let pct = interp.executed_static_percent();
        assert!(
            pct > 90.0,
            "TestDes should execute nearly everything, got {pct}"
        );
    }
}

#[cfg(test)]
mod cipher_tests {
    use super::*;
    use nonstrict_bytecode::Input;

    /// The cipher is not the identity: the ciphertext differs from the
    /// plaintext in (nearly) every word, and decryption restores it.
    #[test]
    fn encryption_diffuses_and_decryption_restores() {
        let app = build();
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Test), &mut ()).unwrap();
        let msg_handle = interp.static_value(MAIN, 0).unwrap();
        let enc_handle = interp.static_value(MAIN, 1).unwrap();
        let dec_handle = interp.static_value(MAIN, 2).unwrap();
        let msg = interp.array(msg_handle).unwrap().to_vec();
        let enc = interp.array(enc_handle).unwrap().to_vec();
        let dec = interp.array(dec_handle).unwrap().to_vec();
        assert_eq!(msg.len(), enc.len());
        assert_eq!(msg, dec, "decrypt(encrypt(msg)) == msg");
        let changed = msg.iter().zip(&enc).filter(|(a, b)| a != b).count();
        assert!(
            changed * 10 >= msg.len() * 9,
            "a Feistel network must diffuse: only {changed} of {} words changed",
            msg.len()
        );
    }

    /// Diffusion statistics: across the whole message, the
    /// plaintext/ciphertext Hamming distance must average near half the
    /// bits — the signature of a non-degenerate block cipher.
    #[test]
    fn ciphertext_hamming_distance_averages_half_the_bits() {
        let app = build();
        let mut a = Interpreter::new(&app.program);
        a.run(app.args(Input::Test), &mut ()).unwrap();
        let enc = a.array(a.static_value(MAIN, 1).unwrap()).unwrap().to_vec();
        let msg = a.array(a.static_value(MAIN, 0).unwrap()).unwrap().to_vec();
        let total_bits = 32 * msg.len() as u32;
        let diff: u32 = msg
            .iter()
            .zip(&enc)
            .map(|(p, c)| ((*p as u32) ^ (*c as u32)).count_ones())
            .sum();
        let frac = f64::from(diff) / f64::from(total_bits);
        assert!(
            (0.35..=0.65).contains(&frac),
            "average diffusion {frac:.2} ({diff} of {total_bits} bits)"
        );
    }
}
