//! # nonstrict-workloads
//!
//! The six benchmark programs of the ASPLOS '98 paper (Table 1), rebuilt
//! as real bytecode applications for the `nonstrict-bytecode` machine:
//!
//! | Program | What it does here |
//! |---|---|
//! | **BIT** | bytecode-instrumentation-shaped workload: scans block descriptor tables, 48 classes |
//! | **Hanoi** | a real Towers of Hanoi solver (6- and 8-ring problems), applet-shaped, 3 classes |
//! | **JavaCup** | LALR-parser-generator-shaped workload, 35 classes |
//! | **Jess** | expert-system-shell-shaped workload, 97 classes, many never-fired rules |
//! | **JHLZip** | a real block-archiver: CRC-32 and RLE compression over generated data, 7 classes |
//! | **TestDes** | a real 16-round Feistel (DES-structured) cipher: encrypts then decrypts a string and verifies the round trip, 3 classes |
//!
//! Each builder returns an [`nonstrict_bytecode::Application`] whose
//! class files serialize to real bytes, whose Test/Train inputs are
//! calibrated to the paper's Table 2 dynamic instruction counts, and
//! whose CPI is the paper's Table 3 value.
//!
//! Hanoi, JHLZip, and TestDes carry handwritten algorithmic cores; BIT,
//! JavaCup, and Jess are generated to their published structural
//! statistics (see `DESIGN.md` §2 for the substitution argument).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod appgen;
pub mod bit;
pub mod hanoi;
pub mod javacup;
pub mod jess;
pub mod jhlzip;
pub mod rng;
pub mod stats;
pub mod testdes;

use nonstrict_bytecode::Application;

/// Names of all six benchmarks, in the paper's table order.
pub const BENCHMARK_NAMES: [&str; 6] = ["BIT", "Hanoi", "JavaCup", "Jess", "JHLZip", "TestDes"];

/// Builds all six benchmarks, in the paper's table order.
///
/// This is the entry point the experiment harness uses; building all six
/// takes a few hundred milliseconds (generation plus input calibration
/// runs).
#[must_use]
pub fn build_all() -> Vec<Application> {
    vec![
        bit::build(),
        hanoi::build(),
        javacup::build(),
        jess::build(),
        jhlzip::build(),
        testdes::build(),
    ]
}

/// Builds one benchmark by (case-insensitive) name.
#[must_use]
pub fn build_by_name(name: &str) -> Option<Application> {
    match name.to_ascii_lowercase().as_str() {
        "bit" => Some(bit::build()),
        "hanoi" => Some(hanoi::build()),
        "javacup" => Some(javacup::build()),
        "jess" => Some(jess::build()),
        "jhlzip" => Some(jhlzip::build()),
        "testdes" => Some(testdes::build()),
        _ => None,
    }
}
