//! A self-contained, dependency-free random-number pipeline mirroring
//! the design of `rand 0.8`'s `StdRng` stack, which the workload
//! generator was originally written against: ChaCha12 as the word
//! source, PCG32 expansion for `seed_from_u64`, the 53-bit
//! multiply-based `Standard` `f64` distribution, and the
//! widening-multiply uniform integer sampler with bitmask rejection
//! zone.
//!
//! This repository builds in environments with no access to external
//! crates, so the pipeline lives here. The ChaCha core is validated
//! against the published ChaCha keystream test vectors (the 20-round
//! zero-key block in `tests`, which exercises the identical
//! quarter-round and serialization code paths the 12-round
//! configuration uses). Streams are fully deterministic per seed, so
//! every generated benchmark — and every checked-in table under
//! `results/` — reproduces byte-for-byte on any platform.
//!
//! Layout of the word source: IETF ChaCha with 12 rounds, the 64-bit
//! block counter in state words 12–13 and a zero stream id in words
//! 14–15. Words are consumed strictly sequentially; `next_u64` takes
//! two consecutive words, low half first.

/// A ChaCha12-based deterministic RNG with `rand`-style sampling.
#[derive(Debug, Clone)]
pub struct StdRng {
    /// ChaCha input state; words 12–13 hold the 64-bit block counter.
    state: [u32; 16],
    /// The most recently generated block.
    buf: [u32; BUF_WORDS],
    /// Next unread word in `buf`; `BUF_WORDS` means the buffer is
    /// exhausted.
    index: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const BUF_WORDS: usize = 16;

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

/// One 64-byte ChaCha block for `input` (counter already set).
fn chacha_block(input: &[u32; 16], double_rounds: u32) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..double_rounds {
        // column round
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // diagonal round
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input.iter()) {
        *o = o.wrapping_add(*i);
    }
    x
}

impl StdRng {
    /// Mirrors `SeedableRng::from_seed` for `ChaCha12Rng`.
    #[must_use]
    pub fn from_seed(seed: [u8; 32]) -> StdRng {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // words 12..16: block counter and stream id, all zero
        StdRng {
            state,
            buf: [0; BUF_WORDS],
            index: BUF_WORDS,
        }
    }

    /// Mirrors `SeedableRng::seed_from_u64`: a PCG32 stream expands the
    /// `u64` into the 32-byte ChaCha key.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> StdRng {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut state = seed;
        let mut key = [0u8; 32];
        for chunk in key.chunks_exact_mut(4) {
            // Advance first, to get away from low-Hamming-weight seeds.
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        StdRng::from_seed(key)
    }

    /// Generates the next block and advances the 64-bit counter.
    fn refill(&mut self) {
        let counter = u64::from(self.state[12]) | (u64::from(self.state[13]) << 32);
        let out = chacha_block(&self.state, 6);
        self.buf.copy_from_slice(&out);
        let next = counter.wrapping_add(1);
        self.state[12] = next as u32;
        self.state[13] = (next >> 32) as u32;
    }

    /// The next 32 random bits (`RngCore::next_u32`).
    pub fn next_u32(&mut self) -> u32 {
        if self.index >= BUF_WORDS {
            self.refill();
            self.index = 0;
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    /// The next 64 random bits: two consecutive stream words, low half
    /// first.
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }

    /// `rng.gen::<T>()` for the types the generator draws directly.
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `rng.gen_range(range)`: uniform over a `a..b` or `a..=b` integer
    /// range, bit-compatible with `rand 0.8`'s single-use sampler.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// The `Standard` distribution subset the generator uses.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for u32 {
    fn sample(rng: &mut StdRng) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample(rng: &mut StdRng) -> usize {
        usize::try_from(rng.next_u64()).expect("64-bit platform")
    }
}

impl Standard for f64 {
    /// 53 high bits of `next_u64`, scaled into `[0, 1)` — the
    /// multiply-based method `rand 0.8` uses.
    fn sample(rng: &mut StdRng) -> f64 {
        let value = rng.next_u64() >> (64 - 53);
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Integer ranges accepted by [`StdRng::gen_range`].
///
/// The single generic impl per range type ties `T` to the range's
/// element type, so plain integer literals infer exactly as they do
/// with `rand` (`{integer}` falls back to `i32`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

/// Types [`StdRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized {
    /// Uniform draw from `low..high` (exclusive; caller checks non-empty).
    fn sample_single(low: Self, high: Self, rng: &mut StdRng) -> Self;
    /// Uniform draw from `low..=high` (inclusive; caller checks non-empty).
    fn sample_single_inclusive(low: Self, high: Self, rng: &mut StdRng) -> Self;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample empty range");
        T::sample_single_inclusive(start, end, rng)
    }
}

macro_rules! uniform_int_impl {
    ($ty:ty, $unsigned:ty, $large:ty, $next:ident) => {
        impl SampleUniform for $ty {
            fn sample_single(low: $ty, high: $ty, rng: &mut StdRng) -> $ty {
                let range = high.wrapping_sub(low) as $unsigned as $large;
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $large = rng.$next() as $large;
                    let m = (v as u128).wrapping_mul(range as u128);
                    let hi = (m >> (<$large>::BITS)) as $large;
                    let lo = m as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive(low: $ty, high: $ty, rng: &mut StdRng) -> $ty {
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $large;
                if range == 0 {
                    // The range spans the whole type.
                    return rng.$next() as $ty;
                }
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $large = rng.$next() as $large;
                    let m = (v as u128).wrapping_mul(range as u128);
                    let hi = (m >> (<$large>::BITS)) as $large;
                    let lo = m as $large;
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl!(i32, u32, u32, next_u32);
uniform_int_impl!(u32, u32, u32, next_u32);
uniform_int_impl!(i64, u64, u64, next_u64);
uniform_int_impl!(u64, u64, u64, next_u64);
uniform_int_impl!(usize, usize, u64, next_u64);
uniform_int_impl!(i16, u16, u32, next_u32);
uniform_int_impl!(u16, u16, u32, next_u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refill_advances_the_block_counter() {
        // Two refills must produce different blocks (counter moved on),
        // and resetting the counter must reproduce the first block.
        let mut a = StdRng::from_seed([7u8; 32]);
        let first: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let second: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        assert_ne!(first, second);
        let mut b = StdRng::from_seed([7u8; 32]);
        let again: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn next_u64_pairs_words_low_first() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let lo = u64::from(b.next_u32());
        let hi = u64::from(b.next_u32());
        assert_eq!(a.next_u64(), (hi << 32) | lo);
    }

    #[test]
    fn chacha20_block_matches_rfc8439_keystream() {
        // The 20-round configuration with an all-zero key, counter, and
        // nonce produces the well-known keystream block beginning
        // 76 b8 e0 ad ... — this pins the quarter round, the round
        // schedule, the final state addition, and the little-endian
        // serialization, all shared with the 12-round configuration.
        let mut st = [0u32; 16];
        st[..4].copy_from_slice(&CHACHA_CONSTANTS);
        let out = chacha_block(&st, 10);
        let mut bytes = Vec::new();
        for w in out.iter().take(4) {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        assert_eq!(
            bytes,
            vec![
                0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
                0xbd, 0x28
            ]
        );
    }

    #[test]
    fn u64_stream_interleaves_with_u32_stream() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..67 {
            // crosses a block boundary at an odd offset
            a.next_u32();
            b.next_u32();
        }
        let lo = u64::from(b.next_u32());
        let hi = u64::from(b.next_u32());
        assert_eq!(a.next_u64(), (hi << 32) | lo);
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds_and_hits_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.gen_range(0..5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 drawn: {seen:?}");
        for _ in 0..500 {
            let v = rng.gen_range(-8i64..=8);
            assert!((-8..=8).contains(&v));
        }
        for _ in 0..100 {
            let v = rng.gen_range(70_000..i32::MAX);
            assert!(v >= 70_000);
        }
    }

    #[test]
    fn distinct_types_share_the_sampling_algorithm() {
        // i32 and u32 ranges with identical bounds must consume the
        // stream identically (both go through the u32 sampler).
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let x = a.gen_range(3i32..40);
            let y = b.gen_range(3u32..40);
            assert_eq!(x, y as i32);
        }
    }
}
