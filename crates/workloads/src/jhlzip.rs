//! **JHLZip** — the PKZip-format archiver.
//!
//! Table 1: *"Input is combined into a single file in PKZip format."*
//! 7 class files, 35 KB, 186 methods averaging 22 instructions, 2.38 M
//! dynamic instructions on Test (1.02 M on Train), 76% of static
//! instructions executed, and the suite's lowest CPI (82 — tight
//! table-driven inner loops). Its constant pool is 17% integer entries
//! (Table 8): CRC tables and format magic numbers.
//!
//! The reproduction generates a 7-class archiver-shaped application
//! (checksum/codec/header classes) with a high density of pool-resident
//! integer constants, calibrated to those statistics.

use nonstrict_bytecode::Application;

use crate::appgen::{generate, GenSpec};

/// Table 2/3 reference values for JHLZip.
pub const SPEC: GenSpec = GenSpec {
    name: "JHLZip",
    package: "jhlzip",
    seed: 0x21F_0004,
    classes: 7,
    methods: 186,
    avg_instrs: 22,
    leaf_fraction: 0.30,
    cpi: 82,
    dyn_test: 2_380_000,
    dyn_train: 1_023_000,
    p_both: 0.93,
    p_test_only: 0.03,
    p_train_only: 0.02,
    p_class_lazy: 0.4,
    p_class_dead_both: 0.22,
    p_class_dead_train: 0.0,
    hot_fraction: 0.60,
    phase2_reps: 6,
    main_extra_methods: 6,
    main_extra_avg_instrs: 50,
    scg_trap_pairs: 2,
    swap_pairs: 1,
    cross_class_leaf: 0.20,
    literal_len: 22,
    literals_per_worker: 0.6,
    int_literals_per_worker: 1.6,
    unused_bytes_per_class: 35,
    line_entries_per_method: 12,
    wire_scale: (2128, 1000),
};

/// Builds the JHLZip application with calibrated Test/Train inputs.
#[must_use]
pub fn build() -> Application {
    generate(&SPEC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_counts_match_paper() {
        let app = build();
        assert_eq!(app.classes.len(), 7);
        assert_eq!(app.program.method_count(), 186);
        assert_eq!(app.cpi, 82);
    }
}
