//! Table 2 statistics: computed from a built application, with the
//! paper's published values for comparison.

use nonstrict_bytecode::{Application, Input, Interpreter};

/// The row a benchmark contributes to Table 2, computed by actually
/// running the program on both inputs.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Number of class files.
    pub total_files: usize,
    /// Total serialized size in KB (1024 bytes).
    pub size_kb: f64,
    /// Dynamic instructions on the Test input, in thousands.
    pub dyn_test_k: f64,
    /// Dynamic instructions on the Train input, in thousands.
    pub dyn_train_k: f64,
    /// Static instructions, in thousands.
    pub static_k: f64,
    /// Percent of static instructions executed on the Test input.
    pub executed_pct: f64,
    /// Total method count.
    pub total_methods: usize,
    /// Average static instructions per method.
    pub instrs_per_method: f64,
}

/// The paper's published Table 2 values (Test-input dynamic counts, Train
/// in parentheses in the paper).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Benchmark name.
    pub name: &'static str,
    /// "Total Files".
    pub total_files: usize,
    /// "Size KB".
    pub size_kb: f64,
    /// Dynamic instructions (Test), thousands.
    pub dyn_test_k: f64,
    /// Dynamic instructions (Train), thousands.
    pub dyn_train_k: f64,
    /// Static instructions, thousands.
    pub static_k: f64,
    /// "% Executed".
    pub executed_pct: f64,
    /// "Total Methods".
    pub total_methods: usize,
    /// "Instrs Per Method".
    pub instrs_per_method: f64,
}

/// Table 2 as published.
pub const PAPER_TABLE2: [PaperRow; 6] = [
    PaperRow {
        name: "BIT",
        total_files: 48,
        size_kb: 124.0,
        dyn_test_k: 7763.0,
        dyn_train_k: 5582.0,
        static_k: 10.8,
        executed_pct: 66.0,
        total_methods: 643,
        instrs_per_method: 17.0,
    },
    PaperRow {
        name: "Hanoi",
        total_files: 3,
        size_kb: 6.0,
        dyn_test_k: 329.0,
        dyn_train_k: 68.0,
        static_k: 0.4,
        executed_pct: 85.0,
        total_methods: 58,
        instrs_per_method: 8.0,
    },
    PaperRow {
        name: "JavaCup",
        total_files: 35,
        size_kb: 139.0,
        dyn_test_k: 318.0,
        dyn_train_k: 126.0,
        static_k: 14.8,
        executed_pct: 81.0,
        total_methods: 843,
        instrs_per_method: 18.0,
    },
    PaperRow {
        name: "Jess",
        total_files: 97,
        size_kb: 266.0,
        dyn_test_k: 3116.0,
        dyn_train_k: 270.0,
        static_k: 15.1,
        executed_pct: 47.0,
        total_methods: 1568,
        instrs_per_method: 10.0,
    },
    PaperRow {
        name: "JHLZip",
        total_files: 7,
        size_kb: 35.0,
        dyn_test_k: 2380.0,
        dyn_train_k: 1023.0,
        static_k: 4.0,
        executed_pct: 76.0,
        total_methods: 186,
        instrs_per_method: 22.0,
    },
    PaperRow {
        name: "TestDes",
        total_files: 3,
        size_kb: 50.0,
        dyn_test_k: 310.0,
        dyn_train_k: 303.0,
        static_k: 8.9,
        executed_pct: 98.0,
        total_methods: 51,
        instrs_per_method: 174.0,
    },
];

/// The paper's Table 3 timing constants: (name, CPI, exec Mcycles).
pub const PAPER_TABLE3_CPI: [(&str, u64); 6] = [
    ("BIT", 147),
    ("Hanoi", 3830),
    ("JavaCup", 1241),
    ("Jess", 225),
    ("JHLZip", 82),
    ("TestDes", 484),
];

/// Computes `app`'s Table 2 row by running it on both inputs.
///
/// # Panics
///
/// Panics if the application faults during either run (workload bug).
#[must_use]
pub fn table2_row(app: &Application) -> Table2Row {
    let run = |input: Input| -> (u64, f64) {
        let mut interp = Interpreter::new(&app.program);
        interp
            .run(app.args(input), &mut ())
            .unwrap_or_else(|e| panic!("{} faulted on {input}: {e}", app.name));
        (interp.executed(), interp.executed_static_percent())
    };
    let (dyn_test, pct) = run(Input::Test);
    let (dyn_train, _) = run(Input::Train);
    let static_instrs = app.program.static_instruction_count();
    let methods = app.program.method_count();
    Table2Row {
        name: app.name.clone(),
        total_files: app.classes.len(),
        size_kb: app.total_size() as f64 / 1024.0,
        dyn_test_k: dyn_test as f64 / 1000.0,
        dyn_train_k: dyn_train as f64 / 1000.0,
        static_k: static_instrs as f64 / 1000.0,
        executed_pct: pct,
        total_methods: methods,
        instrs_per_method: static_instrs as f64 / methods as f64,
    }
}

/// The paper row matching `name`, if any.
#[must_use]
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER_TABLE2
        .iter()
        .find(|r| r.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_lookup() {
        assert_eq!(paper_row("jess").unwrap().total_methods, 1568);
        assert!(paper_row("nope").is_none());
    }

    #[test]
    fn cpi_table_matches_benchmarks() {
        for (name, cpi) in PAPER_TABLE3_CPI {
            let app = crate::build_by_name(name).unwrap();
            assert_eq!(app.cpi, cpi, "{name}");
        }
    }
}
