//! **Jess** — the Java Expert System Shell.
//!
//! Table 1: *"Computes solutions to rule based puzzles."* The paper's
//! largest benchmark by footprint: 97 class files, 266 KB, 1568 methods
//! averaging 10 instructions, 3.12 M dynamic instructions on Test but
//! only 270 K on Train (the biggest Test/Train gap of the suite), just
//! 47% of static instructions executed — rule systems carry many rules
//! that never fire on a given problem — and 20% of its global data
//! entirely unused (Table 9), CPI 225.
//!
//! The reproduction generates a 97-class rule-engine-shaped application
//! (rete-node/fact/agenda classes) with an unusually high fraction of
//! dead workers and pool residue, calibrated to those statistics.

use nonstrict_bytecode::Application;

use crate::appgen::{generate, GenSpec};

/// Table 2/3 reference values for Jess.
pub const SPEC: GenSpec = GenSpec {
    name: "Jess",
    package: "jess",
    seed: 0x9E55_0003,
    classes: 97,
    methods: 1568,
    avg_instrs: 9,
    leaf_fraction: 0.62,
    cpi: 225,
    dyn_test: 3_116_000,
    dyn_train: 270_000,
    p_both: 0.85,
    p_test_only: 0.03,
    p_train_only: 0.02,
    p_class_lazy: 0.3,
    p_class_dead_both: 0.44,
    p_class_dead_train: 0.02,
    hot_fraction: 0.35,
    phase2_reps: 5,
    main_extra_methods: 10,
    main_extra_avg_instrs: 24,
    scg_trap_pairs: 14,
    swap_pairs: 6,
    cross_class_leaf: 0.30,
    literal_len: 38,
    literals_per_worker: 0.7,
    int_literals_per_worker: 0.05,
    unused_bytes_per_class: 270,
    line_entries_per_method: 7,
    wire_scale: (2227, 1000),
};

/// Builds the Jess application with calibrated Test/Train inputs.
#[must_use]
pub fn build() -> Application {
    generate(&SPEC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_counts_match_paper() {
        let app = build();
        assert_eq!(app.classes.len(), 97);
        assert_eq!(app.program.method_count(), 1568);
        assert_eq!(app.cpi, 225);
    }
}
