//! The parametric application generator.
//!
//! Four of the six benchmarks (BIT, JavaCup, Jess, JHLZip) were large
//! real-world Java applications. We cannot recover their sources, but the
//! transfer experiments depend only on measurable structure: class/method
//! counts and sizes, call topology, loop structure, constant-pool
//! composition, dynamic instruction counts per input, and the divergence
//! between the Train and Test execution paths. This module generates
//! programs with exactly those properties, seeded and deterministic,
//! calibrated against the paper's Table 2 and Table 9 rows.
//!
//! ## Generated shape
//!
//! Real 1990s Java applications initialize broadly and then compute
//! narrowly, and that shape is what makes the paper's transfer questions
//! interesting. The generator reproduces it:
//!
//! * `Main.main(scale, mode)` first runs a **setup pass**: every *live*
//!   class's driver is invoked once with a tiny workload, so first uses
//!   burst early and race the network, exactly like class loading in a
//!   real program. **Dead classes** — a tunable fraction per input —
//!   hide behind guards no input (or only one input) satisfies: the
//!   static estimator still sees the call edges and mispredicts them,
//!   while profiles know better.
//! * A **compute pass** then loops over a *hot subset* of classes with
//!   the real `scale`, re-invoking their drivers (code reuse, no new
//!   first uses) — this is where the dynamic instruction count lives,
//!   and it is exactly affine in `scale`, so input calibration is a
//!   two-probe linear solve.
//! * Drivers take `(scale, mode, phase)` and conditionally invoke their
//!   class's **workers**; workers enabled only on one input are also
//!   gated on the compute phase, so Test-only code is first-used *late*
//!   (deep extras, as in real inputs) rather than early.
//! * Workers run arithmetic loops, call small **leaf** helpers
//!   (sometimes cross-class, creating early transfer dependencies),
//!   touch statics, and load string/integer literals (populating the
//!   constant pool the way real code does).
//! * The `Main` class also carries **utility methods** (argument
//!   parsing, banners, reporting — some live-but-late, some dead), so
//!   the entry class file is substantially larger than `main` itself:
//!   the gap between strict and non-strict invocation latency the
//!   paper's Table 4 measures.

use crate::rng::StdRng;

use nonstrict_bytecode::builder::MethodBuilder;
use nonstrict_bytecode::program::{Application, ClassDef, Program, StaticDef, WireScale};
use nonstrict_bytecode::{Cond, Interpreter, MethodId, RuntimeFn};

/// `mode` argument value for the Test input.
pub const MODE_TEST: i64 = 2;
/// `mode` argument value for the Train input.
pub const MODE_TRAIN: i64 = 1;
/// `mode` guard value that no input ever supplies (dead call sites).
const MODE_NEVER: i32 = 7;
/// Setup-pass scale: drivers run their workers briefly during the
/// initialization burst.
const SETUP_SCALE: i32 = 2;

/// Targets and knobs for one generated application.
#[derive(Debug, Clone)]
pub struct GenSpec {
    /// Benchmark name, e.g. `"Jess"`.
    pub name: &'static str,
    /// Package prefix for class names, e.g. `"jess"`.
    pub package: &'static str,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Number of class files (Table 2 "Total Files").
    pub classes: usize,
    /// Total method count (Table 2 "Total Methods").
    pub methods: usize,
    /// Average static instructions per method (Table 2).
    pub avg_instrs: u32,
    /// Fraction of each class's non-driver methods that are tiny leaves.
    pub leaf_fraction: f64,
    /// Cycles per bytecode instruction (Table 3 CPI).
    pub cpi: u64,
    /// Target dynamic instructions on the Test input (Table 2).
    pub dyn_test: u64,
    /// Target dynamic instructions on the Train input (Table 2).
    pub dyn_train: u64,
    /// Fraction of workers enabled on both inputs.
    pub p_both: f64,
    /// Fraction enabled only on Test (first-used in the compute pass).
    pub p_test_only: f64,
    /// Fraction enabled only on Train.
    pub p_train_only: f64,
    /// Fraction of live library classes first-used only **during the
    /// compute pass** (progressively, spreading first uses through
    /// execution the way real programs open subsystems on demand).
    pub p_class_lazy: f64,
    /// Fraction of library classes dead on **both** inputs (loaded by
    /// neither run; the static estimator still schedules them).
    pub p_class_dead_both: f64,
    /// Fraction of library classes live on Test but dead on Train
    /// (entire classes the Train profile never sees).
    pub p_class_dead_train: f64,
    /// Fraction of live classes re-invoked in the compute pass.
    pub hot_fraction: f64,
    /// Compute-pass repetitions.
    pub phase2_reps: u32,
    /// Utility methods in the `Main` class (entry-class heft).
    pub main_extra_methods: usize,
    /// Average static instructions of each utility method.
    pub main_extra_avg_instrs: u32,
    /// Number of adjacent driver pairs whose setup order flips on Train.
    pub swap_pairs: usize,
    /// Number of adjacent driver pairs invoked in **data-dependent**
    /// order that both inputs resolve the same way at run time — the
    /// static estimator has no data and follows the textual arm, so
    /// these are pure SCG mispredictions (profiles see through them).
    pub scg_trap_pairs: usize,
    /// Probability a worker's leaf helper lives in another class.
    pub cross_class_leaf: f64,
    /// Mean byte length of method-referenced string literals (size
    /// calibration knob for "globals in methods", Table 9).
    pub literal_len: u32,
    /// Mean number of string literals per worker.
    pub literals_per_worker: f64,
    /// Mean number of pool-resident integer literals per worker (values
    /// too large for `sipush`; models table-driven code like CRC and
    /// S-box constants and drives Table 8's "Ints" column).
    pub int_literals_per_worker: f64,
    /// Bytes of unreferenced pool residue per class (Table 9 "%
    /// unused" knob).
    pub unused_bytes_per_class: u32,
    /// `LineNumberTable` entries per method (local-data knob, Table 9
    /// local KB).
    pub line_entries_per_method: u16,
    /// Wire-byte calibration factor as (num, den) — reconciles Table 2
    /// file sizes with Table 3 transfer cycles (see [`WireScale`]).
    pub wire_scale: (u32, u32),
}

/// Builds the application described by `spec` and calibrates its
/// Test/Train inputs to the dynamic-instruction targets.
///
/// # Panics
///
/// Panics if the spec is internally inconsistent (e.g. fewer methods than
/// classes); generation parameters are library-internal, so this is a bug
/// guard rather than a user-facing error path.
#[must_use]
pub fn generate(spec: &GenSpec) -> Application {
    assert!(
        spec.classes >= 2,
        "need a main class and at least one library class"
    );
    assert!(
        spec.methods >= spec.classes * 2 + spec.main_extra_methods,
        "need at least a driver and a worker per class plus main utilities"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut names = NameGen::new(spec.package);

    let lib_classes = spec.classes - 1;
    let main_methods = 2 + spec.main_extra_methods;
    let per_class = distribute(spec.methods - main_methods, lib_classes, &mut rng);

    // Decide each class's fate up front: liveness and hotness drive
    // worker enablement probabilities.
    let max_lazy_rep = spec.phase2_reps.saturating_sub(1).max(1);
    let n_dead_both = (spec.p_class_dead_both * lib_classes as f64).round() as usize;
    let n_dead_train = (spec.p_class_dead_train * lib_classes as f64).round() as usize;
    let n_lazy = (spec.p_class_lazy * lib_classes as f64).round() as usize;
    // Exact counts (a small benchmark must not roll zero dead classes by
    // luck); positions shuffled so fates scatter across the class list.
    let mut shuffled: Vec<usize> = (0..lib_classes).collect();
    for i in (1..shuffled.len()).rev() {
        let j = rng.gen_range(0..=i);
        shuffled.swap(i, j);
    }
    let mut fates = vec![
        ClassFate {
            enable: ClassEnable::Live,
            hot: false,
            lazy_rep: 1
        };
        lib_classes
    ];
    let mut cursor = 0;
    for _ in 0..n_dead_both.min(lib_classes.saturating_sub(1)) {
        fates[shuffled[cursor]].enable = ClassEnable::DeadBoth;
        cursor += 1;
    }
    for _ in 0..n_dead_train.min(lib_classes.saturating_sub(cursor + 1)) {
        fates[shuffled[cursor]].enable = ClassEnable::DeadTrain;
        cursor += 1;
    }
    for lazy_idx in 0..n_lazy.min(lib_classes.saturating_sub(cursor + 1)) as u32 {
        let f = &mut fates[shuffled[cursor]];
        f.enable = ClassEnable::Lazy;
        f.lazy_rep = 1 + lazy_idx % max_lazy_rep;
        cursor += 1;
    }
    for f in &mut fates {
        if matches!(f.enable, ClassEnable::Live | ClassEnable::Lazy) {
            f.hot = rng.gen::<f64>() < spec.hot_fraction;
        }
    }
    // At least one live hot class, or the compute pass is empty.
    let fates = ensure_hot(fates);

    // Plan every class before emitting code so cross-class method ids
    // are known up front, then wire worker→leaf calls.
    let mut plans: Vec<ClassPlan> = (0..lib_classes)
        .map(|ci| ClassPlan::new(spec, ci, per_class[ci], fates[ci], &mut rng, &mut names))
        .collect();
    wire_leaves(&mut plans, spec, &mut rng);

    let mut classes = Vec::with_capacity(spec.classes);
    classes.push(build_main_class(spec, &plans, &mut rng, &mut names));
    for plan in &plans {
        classes.push(build_library_class(
            spec, plan, &plans, &mut rng, &mut names,
        ));
    }

    let main_name = classes[0].name.clone();
    let program = Program::new(classes, &main_name, "main").expect("generated program verifies");
    let mut app =
        Application::from_program(spec.name, program, spec.cpi).expect("generated program lowers");
    app.wire_scale = WireScale::new(spec.wire_scale.0, spec.wire_scale.1);

    let test_scale = calibrate_scale(&app, MODE_TEST, spec.dyn_test);
    let train_scale = calibrate_scale(&app, MODE_TRAIN, spec.dyn_train);
    app.test_args = vec![test_scale, MODE_TEST];
    app.train_args = vec![train_scale, MODE_TRAIN];
    app
}

/// When a whole class runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClassEnable {
    /// Touched in the setup pass.
    Live,
    /// First used during the compute pass, at a specific repetition.
    Lazy,
    /// Loaded by neither input.
    DeadBoth,
    /// Loaded on Test, never on Train.
    DeadTrain,
}

#[derive(Debug, Clone, Copy)]
struct ClassFate {
    enable: ClassEnable,
    hot: bool,
    /// For lazy classes: the compute repetition (1-based) that first
    /// invokes the driver.
    lazy_rep: u32,
}

fn ensure_hot(mut fates: Vec<ClassFate>) -> Vec<ClassFate> {
    if !fates.iter().any(|f| f.hot) {
        if let Some(f) = fates
            .iter_mut()
            .find(|f| matches!(f.enable, ClassEnable::Live | ClassEnable::Lazy))
        {
            f.hot = true;
        } else if let Some(f) = fates.first_mut() {
            f.enable = ClassEnable::Live;
            f.hot = true;
        }
    }
    fates
}

/// When each worker runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Enable {
    Both,
    TestOnly,
    TrainOnly,
    Never,
}

/// One planned worker method.
#[derive(Debug, Clone)]
struct WorkerPlan {
    name: String,
    enable: Enable,
    /// Arithmetic instructions per loop iteration.
    loop_block: u32,
    /// Whether to emit the post-loop diamond (budget permitting).
    with_diamond: bool,
    /// Whether to emit the static-field touch (budget permitting).
    with_static: bool,
    /// Whether the size budget reserved room for a leaf call.
    leaf_budgeted: bool,
    /// String literals to embed.
    literals: Vec<String>,
    /// Pool-resident integer literals to embed.
    int_literals: Vec<i32>,
    /// Leaf helper to call: (class plan index, leaf index) — possibly in
    /// another class.
    leaf: Option<(usize, usize)>,
    /// Divide the incoming scale by this (1, 2, or 4) before looping.
    scale_div: i32,
}

/// One planned library class.
#[derive(Debug, Clone)]
struct ClassPlan {
    name: String,
    /// Library-class index (0-based); its `ClassId` is `index + 1`.
    index: usize,
    fate: ClassFate,
    workers: Vec<WorkerPlan>,
    leaf_names: Vec<String>,
    static_count: u16,
    /// Indices of adjacent worker pairs whose order flips on Train.
    intra_swaps: Vec<usize>,
}

impl ClassPlan {
    fn class_id(&self) -> u16 {
        (self.index + 1) as u16
    }

    /// Method index of the driver (always 0).
    fn driver(&self) -> MethodId {
        MethodId::new(self.class_id(), 0)
    }

    /// Method index of worker `w` (workers follow the driver).
    fn worker(&self, w: usize) -> MethodId {
        MethodId::new(self.class_id(), (1 + w) as u16)
    }

    /// Method index of leaf `l` (leaves follow the workers).
    fn leaf(&self, l: usize) -> MethodId {
        MethodId::new(self.class_id(), (1 + self.workers.len() + l) as u16)
    }

    fn new(
        spec: &GenSpec,
        index: usize,
        method_budget: usize,
        fate: ClassFate,
        rng: &mut StdRng,
        names: &mut NameGen,
    ) -> ClassPlan {
        // budget = 1 driver + workers + leaves
        let body_methods = method_budget.saturating_sub(1).max(1);
        let leaves = ((body_methods as f64 * spec.leaf_fraction).round() as usize)
            .min(body_methods - 1)
            .max(usize::from(body_methods > 2));
        let workers = body_methods - leaves;
        let name = names.class_name(rng);

        let worker_plans = (0..workers)
            .map(|_| {
                let r: f64 = rng.gen();
                // Input-specific workers only make sense where the
                // compute pass reaches them.
                let compute_reached = fate.hot || fate.enable == ClassEnable::Lazy;
                let enable = if compute_reached && r >= spec.p_both {
                    if r < spec.p_both + spec.p_test_only {
                        Enable::TestOnly
                    } else if r < spec.p_both + spec.p_test_only + spec.p_train_only {
                        Enable::TrainOnly
                    } else {
                        Enable::Never
                    }
                } else if r < spec.p_both + spec.p_test_only + spec.p_train_only {
                    Enable::Both
                } else {
                    Enable::Never
                };
                let mut literals = Vec::new();
                let n_lit = if rng.gen::<f64>() < spec.literals_per_worker.fract() {
                    spec.literals_per_worker.ceil() as usize
                } else {
                    spec.literals_per_worker.floor() as usize
                };
                for _ in 0..n_lit {
                    let len = (spec.literal_len / 2 + rng.gen_range(0..spec.literal_len)).max(3);
                    literals.push(names.literal(rng, len as usize));
                }
                let mut int_literals = Vec::new();
                let n_int = if rng.gen::<f64>() < spec.int_literals_per_worker.fract() {
                    spec.int_literals_per_worker.ceil() as usize
                } else {
                    spec.int_literals_per_worker.floor() as usize
                };
                for _ in 0..n_int {
                    int_literals.push(rng.gen_range(70_000..i32::MAX));
                }
                WorkerPlan {
                    name: names.method_name(rng),
                    enable,
                    loop_block: 0, // sized later against avg_instrs
                    with_diamond: false,
                    with_static: false,
                    leaf_budgeted: false,
                    literals,
                    int_literals,
                    leaf: None, // wired later once all plans exist
                    scale_div: *[1, 1, 2, 4].get(rng.gen_range(0..4)).unwrap_or(&1),
                }
            })
            .collect::<Vec<_>>();

        let leaf_names = (0..leaves).map(|_| names.method_name(rng)).collect();
        let n_workers = worker_plans.len();
        let intra_swaps = if n_workers >= 4 && rng.gen::<f64>() < 0.5 {
            vec![rng.gen_range(0..n_workers - 1)]
        } else {
            Vec::new()
        };
        let mut plan = ClassPlan {
            name,
            index,
            fate,
            workers: worker_plans,
            leaf_names,
            static_count: rng.gen_range(1..=4),
            intra_swaps,
        };
        plan.size_workers(spec, rng);
        plan
    }

    /// Chooses each worker's loop-block size and optional features so the
    /// class's average static instructions per method approaches the
    /// spec target. The cost model here mirrors the emitter in
    /// [`build_library_class`] instruction for instruction.
    fn size_workers(&mut self, spec: &GenSpec, rng: &mut StdRng) {
        let methods = 1 + self.workers.len() + self.leaf_names.len();
        let driver_instrs: u32 = 1 + self
            .workers
            .iter()
            .map(|w| {
                6 + if w.scale_div > 1 { 2 } else { 0 }
                    + match w.enable {
                        Enable::Both => 0,
                        Enable::Never => 3,
                        _ => 6, // mode and phase guards
                    }
            })
            .sum::<u32>();
        let leaf_instrs = 5u32 * self.leaf_names.len() as u32;
        let total_target = spec.avg_instrs * methods as u32;
        let worker_budget = total_target.saturating_sub(driver_instrs + leaf_instrs);
        let per_worker = (worker_budget / self.workers.len().max(1) as u32).max(12);
        for w in &mut self.workers {
            // Mandatory parts: prologue(2) + literals(5 each) +
            // ints(4 each) + loop setup(2) + loop control(4) +
            // return(2) + minimum block(1).
            let base = 11 + 5 * w.literals.len() as u32 + 4 * w.int_literals.len() as u32;
            let jittered = (per_worker as i64
                + rng.gen_range(-(per_worker as i64) / 4..=per_worker as i64 / 4))
                as u32;
            let mut rem = jittered.saturating_sub(base + 1);
            w.with_diamond = rem >= 10;
            if w.with_diamond {
                rem -= 10;
            }
            // Reserve room for a leaf call (5 instrs) when the budget
            // allows; wiring happens later and respects this flag.
            w.leaf_budgeted = rem >= 5;
            if w.leaf_budgeted {
                rem -= 5;
            }
            w.with_static = rem >= 4;
            if w.with_static {
                rem -= 4;
            }
            w.loop_block = (1 + rem).clamp(1, 4000);
        }
    }
}

/// Splits `total` into `parts` positive shares with bounded variance.
fn distribute(total: usize, parts: usize, rng: &mut StdRng) -> Vec<usize> {
    let base = total / parts;
    let mut out = vec![base.max(2); parts];
    let mut remaining = total.saturating_sub(out.iter().sum::<usize>());
    // Sprinkle the remainder with mild skew so classes differ in size.
    while remaining > 0 {
        let i = rng.gen_range(0..parts);
        let take = remaining.min(rng.gen_range(1..=3));
        out[i] += take;
        remaining -= take;
    }
    out
}

fn build_main_class(
    spec: &GenSpec,
    plans: &[ClassPlan],
    rng: &mut StdRng,
    names: &mut NameGen,
) -> ClassDef {
    let mut class = ClassDef::new(format!("bench/{}/Main", spec.package));
    class.add_static(StaticDef::int("checksum", 0));
    class.add_static(StaticDef::int("phase", 0));

    // Pick the live driver pairs that swap on Train, and the pairs that
    // swap at run time on data the static estimator cannot evaluate.
    let mut swap_at = std::collections::HashSet::new();
    let mut trap_at = std::collections::HashSet::new();
    let mut tries = 0;
    let want_swaps = spec.swap_pairs.min(plans.len() / 2);
    let want_traps = spec.scg_trap_pairs.min(plans.len() / 2);
    while (swap_at.len() < want_swaps || trap_at.len() < want_traps) && tries < 4000 {
        tries += 1;
        let i = rng.gen_range(0..plans.len().saturating_sub(1));
        let both_live = plans[i].fate.enable == ClassEnable::Live
            && plans[i + 1].fate.enable == ClassEnable::Live;
        let free = |set: &std::collections::HashSet<usize>| {
            !(set.contains(&i) || set.contains(&(i + 1)) || (i > 0 && set.contains(&(i - 1))))
        };
        if both_live && free(&swap_at) && free(&trap_at) {
            if swap_at.len() < want_swaps {
                swap_at.insert(i);
            } else {
                trap_at.insert(i);
            }
        }
    }

    // main(scale, mode)
    let mut b = MethodBuilder::new("main", 2);
    b.invoke(MethodId::new(0, 1)); // init

    // Setup pass: touch every live class briefly; dead classes hide
    // behind guards the static estimator cannot see through.
    let setup_call = |b: &mut MethodBuilder, p: &ClassPlan| {
        b.iconst(SETUP_SCALE).iload(1).iconst(1).invoke(p.driver());
    };
    let full_call = |b: &mut MethodBuilder, p: &ClassPlan| {
        b.iload(0).iload(1).iconst(1).invoke(p.driver());
    };
    let mut i = 0;
    while i < plans.len() {
        let p = &plans[i];
        match p.fate.enable {
            ClassEnable::Live if trap_at.contains(&i) && i + 1 < plans.len() => {
                // Data-dependent order: the `phase` static is 1 by the
                // time main runs, so execution always takes the swapped
                // arm; the static estimator follows the textual arm and
                // mispredicts the order on every input.
                let l_swap = b.new_label();
                let l_end = b.new_label();
                b.getstatic(0, 1).if_(Cond::Ne, l_swap);
                setup_call(&mut b, &plans[i]);
                setup_call(&mut b, &plans[i + 1]);
                b.goto(l_end);
                b.bind(l_swap);
                setup_call(&mut b, &plans[i + 1]);
                setup_call(&mut b, &plans[i]);
                b.bind(l_end);
                i += 2;
                continue;
            }
            ClassEnable::Live if swap_at.contains(&i) && i + 1 < plans.len() => {
                // if (mode == TRAIN) { B; A } else { A; B }
                let l_swap = b.new_label();
                let l_end = b.new_label();
                b.iload(1)
                    .iconst(MODE_TRAIN as i32)
                    .if_icmp(Cond::Eq, l_swap);
                setup_call(&mut b, &plans[i]);
                setup_call(&mut b, &plans[i + 1]);
                b.goto(l_end);
                b.bind(l_swap);
                setup_call(&mut b, &plans[i + 1]);
                setup_call(&mut b, &plans[i]);
                b.bind(l_end);
                i += 2;
                continue;
            }
            ClassEnable::Live => setup_call(&mut b, p),
            ClassEnable::Lazy => {} // first use happens in the compute pass
            ClassEnable::DeadBoth => {
                let skip = b.new_label();
                b.iload(1).iconst(MODE_NEVER).if_icmp(Cond::Ne, skip);
                full_call(&mut b, p);
                b.bind(skip);
            }
            ClassEnable::DeadTrain => {
                let skip = b.new_label();
                b.iload(1).iconst(MODE_TEST as i32).if_icmp(Cond::Ne, skip);
                setup_call(&mut b, p);
                b.bind(skip);
            }
        }
        i += 1;
    }

    // Compute pass: `phase2_reps` repetitions with the real scale. Hot
    // setup-pass classes run every repetition; lazy classes join at
    // their introduction repetition and stay hot afterwards — so first
    // uses keep arriving while the program computes, just as real
    // programs open subsystems on demand.
    b.iconst(0).istore(2);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(2)
        .iconst(spec.phase2_reps as i32)
        .if_icmp(Cond::Ge, exit);
    for p in plans.iter().filter(|p| p.fate.enable == ClassEnable::Lazy) {
        let skip = b.new_label();
        b.iload(2)
            .iconst(p.fate.lazy_rep as i32)
            .if_icmp(Cond::Lt, skip);
        b.iload(0)
            .iload(1)
            .iload(2)
            .iconst(2)
            .iadd()
            .invoke(p.driver());
        b.bind(skip);
    }
    for p in plans
        .iter()
        .filter(|p| p.fate.hot && p.fate.enable == ClassEnable::Live)
    {
        b.iload(0)
            .iload(1)
            .iload(2)
            .iconst(2)
            .iadd()
            .invoke(p.driver());
    }
    b.iinc(2, 1).goto(head);
    b.bind(exit);

    // Teardown: live utilities report, dead ones linger.
    let util_base = 2u16;
    for u in 0..spec.main_extra_methods as u16 {
        let target = MethodId::new(0, util_base + u);
        if u % 2 == 0 {
            b.getstatic(0, 0).invoke(target).putstatic(0, 0);
        } else {
            let skip = b.new_label();
            b.iload(1).iconst(MODE_NEVER).if_icmp(Cond::Ne, skip);
            b.iconst(0).invoke(target).pop();
            b.bind(skip);
        }
    }
    b.getstatic(0, 0).invoke_runtime(RuntimeFn::PrintInt);
    b.ret();
    let mut main = b.finish();
    main.line_entries = spec.line_entries_per_method;
    class.add_method(main);

    // init(): banner + state, runs first.
    let mut init = MethodBuilder::new("init", 0);
    init.ldc_str(format!("{} starting", spec.name));
    init.invoke_runtime(RuntimeFn::PrintString);
    init.iconst(0)
        .putstatic(0, 0)
        .iconst(1)
        .putstatic(0, 1)
        .ret();
    let mut init = init.finish();
    init.line_entries = 3;
    class.add_method(init);

    // Utility methods: fixed-trip loops (no scale dependence), sized by
    // the spec so the entry class file has realistic heft.
    for _ in 0..spec.main_extra_methods {
        let target = (spec.main_extra_avg_instrs as i64 + rng.gen_range(-8..=8)).max(12) as u32;
        let mut u = MethodBuilder::new(names.method_name(rng), 1);
        u.returns_value();
        u.iload(0).istore(1);
        let lit = names.literal(rng, spec.literal_len as usize);
        u.ldc_str(lit)
            .invoke_runtime(RuntimeFn::HashCode)
            .iload(1)
            .iadd()
            .istore(1);
        let trips = rng.gen_range(3..20);
        u.iconst(trips).istore(2);
        let head = u.new_label();
        let exit = u.new_label();
        u.bind(head);
        u.iload(2).if_(Cond::Le, exit);
        let mut emitted = 0;
        let block = target.saturating_sub(15);
        while emitted < block {
            u.iload(1).iconst(rng.gen_range(1..50)).iadd().istore(1);
            emitted += 4;
        }
        u.iinc(2, -1).goto(head);
        u.bind(exit);
        u.iload(1).ireturn();
        let mut util = u.finish();
        util.line_entries = spec.line_entries_per_method;
        class.add_method(util);
    }

    class.source_file = Some("Main.java".to_owned());
    add_unused_residue(&mut class, spec, rng, names);
    class
}

fn build_library_class(
    spec: &GenSpec,
    plan: &ClassPlan,
    plans: &[ClassPlan],
    rng: &mut StdRng,
    names: &mut NameGen,
) -> ClassDef {
    let mut class = ClassDef::new(plan.name.clone());
    for s in 0..plan.static_count {
        class.add_static(StaticDef::int(format!("state{s}"), i64::from(s) * 3 + 1));
    }

    // Driver: run(scale, mode, phase) — conditionally invoke workers.
    // Compute passes carry phase = repetition + 2.
    let last_phase = spec.phase2_reps as i32 + 1;
    let mut d = MethodBuilder::new("run", 3);
    let emit_worker_call = |d: &mut MethodBuilder, w: usize, wp: &WorkerPlan| {
        let call = |d: &mut MethodBuilder| {
            d.iload(0);
            if wp.scale_div > 1 {
                d.iconst(wp.scale_div).idiv();
            }
            d.invoke(plan.worker(w));
            d.getstatic(plan.class_id(), 0)
                .iadd()
                .putstatic(plan.class_id(), 0);
        };
        match wp.enable {
            Enable::Both => call(d),
            Enable::TestOnly => {
                // mode == TEST && final compute repetition: the input-
                // specific extras run at the very end, so a Train-guided
                // layout pays almost nothing for missing them.
                let skip = d.new_label();
                d.iload(1).iconst(MODE_TEST as i32).if_icmp(Cond::Ne, skip);
                d.iload(2).iconst(last_phase).if_icmp(Cond::Ne, skip);
                call(d);
                d.bind(skip);
            }
            Enable::TrainOnly => {
                let skip = d.new_label();
                d.iload(1).iconst(MODE_TRAIN as i32).if_icmp(Cond::Ne, skip);
                d.iload(2).iconst(last_phase).if_icmp(Cond::Ne, skip);
                call(d);
                d.bind(skip);
            }
            Enable::Never => {
                let skip = d.new_label();
                d.iload(1).iconst(MODE_NEVER).if_icmp(Cond::Ne, skip);
                call(d);
                d.bind(skip);
            }
        }
    };
    let mut w = 0;
    while w < plan.workers.len() {
        if plan.intra_swaps.contains(&w) && w + 1 < plan.workers.len() {
            let l_swap = d.new_label();
            let l_end = d.new_label();
            d.iload(1)
                .iconst(MODE_TRAIN as i32)
                .if_icmp(Cond::Eq, l_swap);
            emit_worker_call(&mut d, w, &plan.workers[w]);
            emit_worker_call(&mut d, w + 1, &plan.workers[w + 1]);
            d.goto(l_end);
            d.bind(l_swap);
            emit_worker_call(&mut d, w + 1, &plan.workers[w + 1]);
            emit_worker_call(&mut d, w, &plan.workers[w]);
            d.bind(l_end);
            w += 2;
        } else {
            emit_worker_call(&mut d, w, &plan.workers[w]);
            w += 1;
        }
    }
    d.ret();
    let mut driver = d.finish();
    driver.line_entries = spec.line_entries_per_method;
    class.add_method(driver);

    // Workers.
    for wp in &plan.workers {
        let mut b = MethodBuilder::new(&wp.name, 1);
        b.returns_value();
        // acc in local 1
        b.iconst(rng.gen_range(1..100)).istore(1);
        for lit in &wp.literals {
            b.ldc_str(lit.clone());
            b.invoke_runtime(RuntimeFn::HashCode);
            b.iload(1).iadd().istore(1);
        }
        for &v in &wp.int_literals {
            b.iconst(v).iload(1).ixor().istore(1);
        }
        // counter in local 2 = scale argument
        b.iload(0).istore(2);
        let head = b.new_label();
        let exit = b.new_label();
        b.bind(head);
        b.iload(2).if_(Cond::Le, exit);
        // The loop block: a mix of arithmetic on acc.
        let mut emitted = 0;
        while emitted < wp.loop_block {
            match rng.gen_range(0..6) {
                0 => {
                    b.iload(1).iconst(rng.gen_range(1..50)).iadd().istore(1);
                    emitted += 4;
                }
                1 => {
                    b.iload(1).iconst(rng.gen_range(2..9)).imul().istore(1);
                    emitted += 4;
                }
                2 => {
                    b.iload(1).iconst(rng.gen_range(1..16)).ixor().istore(1);
                    emitted += 4;
                }
                3 => {
                    b.iload(1).iconst(rng.gen_range(1..5)).ishr().istore(1);
                    emitted += 4;
                }
                4 => {
                    b.iload(1).iload(2).iadd().istore(1);
                    emitted += 4;
                }
                _ => {
                    b.iinc(1, rng.gen_range(1..7));
                    emitted += 1;
                }
            }
        }
        b.iinc(2, -1).goto(head);
        b.bind(exit);
        // A data-dependent diamond after the loop (budget permitting).
        if wp.with_diamond {
            let alt = b.new_label();
            let join = b.new_label();
            b.iload(1).if_(Cond::Lt, alt);
            b.iload(1).iconst(3).iand().istore(1);
            b.goto(join);
            b.bind(alt);
            b.iload(1).invoke_runtime(RuntimeFn::Abs).istore(1);
            b.bind(join);
        }
        // Optional leaf call.
        if let Some((pc, pl)) = wp.leaf {
            b.iload(1)
                .invoke(plans[pc].leaf(pl))
                .iload(1)
                .iadd()
                .istore(1);
        }
        // Touch a static (budget permitting).
        if wp.with_static {
            let f = rng.gen_range(0..plan.static_count);
            b.getstatic(plan.class_id(), f)
                .iload(1)
                .iadd()
                .putstatic(plan.class_id(), f);
        }
        b.iload(1).ireturn();
        let mut worker = b.finish();
        worker.line_entries = spec.line_entries_per_method;
        class.add_method(worker);
    }

    // Leaves: tiny pure helpers.
    for name in &plan.leaf_names {
        let mut b = MethodBuilder::new(name, 1);
        b.returns_value();
        match rng.gen_range(0..3) {
            0 => {
                b.iload(0).iconst(rng.gen_range(3..40)).imul().ireturn();
            }
            1 => {
                b.iload(0)
                    .iload(0)
                    .imul()
                    .iconst(rng.gen_range(1..9))
                    .iadd()
                    .ireturn();
            }
            _ => {
                b.iload(0).iconst(rng.gen_range(1..31)).ixor().ireturn();
            }
        }
        let mut leaf = b.finish();
        leaf.line_entries = (spec.line_entries_per_method / 2).max(1);
        class.add_method(leaf);
    }

    add_unused_residue(&mut class, spec, rng, names);
    class
}

/// Adds unreferenced pool residue up to the spec's per-class byte target.
fn add_unused_residue(class: &mut ClassDef, spec: &GenSpec, rng: &mut StdRng, names: &mut NameGen) {
    let mut budget = spec.unused_bytes_per_class as i64;
    while budget > 8 {
        if rng.gen::<f64>() < 0.15 {
            class.unused_ints.push(rng.gen_range(70_000..9_000_000));
            budget -= 5;
        } else {
            let len = rng.gen_range(8..40).min(budget.max(8) as usize);
            let s = names.literal(rng, len);
            budget -= 3 + s.len() as i64;
            class.unused_strings.push(s);
        }
    }
}

/// Wires worker→leaf calls across plans (cross-class with the spec's
/// probability).
fn wire_leaves(plans: &mut [ClassPlan], spec: &GenSpec, rng: &mut StdRng) {
    let n = plans.len();
    for ci in 0..n {
        for wi in 0..plans[ci].workers.len() {
            if !plans[ci].workers[wi].leaf_budgeted {
                continue;
            }
            if rng.gen::<f64>() < 0.75 {
                let target_class = if rng.gen::<f64>() < spec.cross_class_leaf && n > 1 {
                    let mut t = rng.gen_range(0..n);
                    if t == ci {
                        t = (t + 1) % n;
                    }
                    t
                } else {
                    ci
                };
                // A running class must not depend on a dead one, or the
                // dead class would not actually be dead; and eager
                // classes must not pull lazy ones in early.
                let te = plans[target_class].fate.enable;
                let se = plans[ci].fate.enable;
                let target_ok = match se {
                    ClassEnable::Live => te == ClassEnable::Live,
                    ClassEnable::Lazy => matches!(te, ClassEnable::Live | ClassEnable::Lazy),
                    ClassEnable::DeadTrain => {
                        matches!(te, ClassEnable::Live | ClassEnable::DeadTrain)
                    }
                    ClassEnable::DeadBoth => true,
                };
                if target_ok && !plans[target_class].leaf_names.is_empty() {
                    let li = rng.gen_range(0..plans[target_class].leaf_names.len());
                    plans[ci].workers[wi].leaf = Some((target_class, li));
                }
            }
        }
    }
}

/// Finds the `scale` whose dynamic instruction count hits `target`.
///
/// Generated programs execute an exactly affine number of instructions in
/// `scale` (all loops run `scale`-derived trip counts), so two probes
/// determine the line and the answer is a division.
#[must_use]
pub fn calibrate_scale(app: &Application, mode: i64, target: u64) -> i64 {
    let run = |scale: i64| -> u64 {
        let mut interp = Interpreter::new(&app.program);
        interp
            .run(&[scale, mode], &mut ())
            .expect("generated program runs cleanly during calibration");
        interp.executed()
    };
    let s1 = 8;
    let s2 = 24;
    let d1 = run(s1);
    let d2 = run(s2);
    let slope = (d2.saturating_sub(d1)) / (s2 - s1) as u64;
    if slope == 0 {
        return 1;
    }
    let base = d1.saturating_sub(slope * s1 as u64);
    let scale = (target.saturating_sub(base)).div_ceil(slope).max(1);
    i64::try_from(scale).expect("calibrated scale fits i64")
}

/// Deterministic Java-flavoured identifier and literal generator.
#[derive(Debug)]
pub struct NameGen {
    package: String,
    used: std::collections::HashSet<String>,
}

const NOUNS: &[&str] = &[
    "Node", "Table", "Buffer", "Parser", "Scanner", "Writer", "Reader", "Index", "Cache", "Stream",
    "Token", "Symbol", "Frame", "Graph", "Entry", "Bucket", "Rule", "Fact", "Agenda", "State",
    "Action", "Header", "Block", "Chunk", "Record", "Field", "Vector", "Matrix", "Engine",
    "Filter", "Codec", "Packet", "Window", "Panel", "Event", "Queue", "Stack", "Pool", "Config",
    "Context",
];
const PREFIXES: &[&str] = &[
    "Abstract", "Base", "Fast", "Lazy", "Hash", "Linked", "Sorted", "Packed", "Sparse", "Dense",
    "Micro", "Multi", "Sub", "Super", "Inner", "Outer", "Byte", "Bit", "Int", "Char",
];
const VERBS: &[&str] = &[
    "compute", "update", "scan", "emit", "flush", "merge", "split", "pack", "unpack", "hash",
    "match", "apply", "reduce", "expand", "visit", "walk", "fold", "mark", "sweep", "probe",
    "encode", "decode", "shift", "rotate", "mask", "index", "lookup", "insert", "remove",
    "resolve",
];
const OBJECTS: &[&str] = &[
    "Node", "Entry", "Row", "Column", "Bits", "Bytes", "Token", "Rule", "Fact", "State", "Delta",
    "Range", "Span", "Slot", "Cell", "Key", "Value", "Edge", "Path", "Label",
];
const WORDS: &[&str] = &[
    "expected",
    "unexpected",
    "token",
    "while",
    "parsing",
    "input",
    "state",
    "table",
    "overflow",
    "underflow",
    "invalid",
    "missing",
    "duplicate",
    "symbol",
    "rule",
    "fired",
    "agenda",
    "empty",
    "eof",
    "reached",
    "bad",
    "magic",
    "header",
    "checksum",
    "mismatch",
    "stream",
    "closed",
    "buffer",
    "full",
    "block",
    "size",
    "exceeds",
    "limit",
    "cannot",
    "resolve",
    "reference",
];

impl NameGen {
    /// Creates a generator for `package`.
    #[must_use]
    pub fn new(package: &str) -> Self {
        NameGen {
            package: package.to_owned(),
            used: std::collections::HashSet::new(),
        }
    }

    /// A fresh class name like `bench/jess/HashRuleTable`.
    pub fn class_name(&mut self, rng: &mut StdRng) -> String {
        loop {
            let p = PREFIXES[rng.gen_range(0..PREFIXES.len())];
            let a = NOUNS[rng.gen_range(0..NOUNS.len())];
            let b = NOUNS[rng.gen_range(0..NOUNS.len())];
            let candidate = format!("bench/{}/{}{}{}", self.package, p, a, b);
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// A fresh method name like `updateTokenRow`.
    pub fn method_name(&mut self, rng: &mut StdRng) -> String {
        loop {
            let v = VERBS[rng.gen_range(0..VERBS.len())];
            let o = OBJECTS[rng.gen_range(0..OBJECTS.len())];
            let candidate = if rng.gen::<f64>() < 0.4 {
                format!("{v}{o}")
            } else {
                let o2 = OBJECTS[rng.gen_range(0..OBJECTS.len())];
                format!("{v}{o}{o2}")
            };
            if self.used.insert(candidate.clone()) {
                return candidate;
            }
        }
    }

    /// A message-like string literal of roughly `len` bytes.
    pub fn literal(&mut self, rng: &mut StdRng, len: usize) -> String {
        let mut s = String::with_capacity(len + 12);
        while s.len() < len {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
        }
        // Unused residue must stay distinct even at identical content.
        s.push_str(&format!(" #{}", rng.gen_range(0..100_000)));
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_bytecode::Input;

    fn small_spec() -> GenSpec {
        GenSpec {
            name: "Tiny",
            package: "tiny",
            seed: 7,
            classes: 6,
            methods: 52,
            avg_instrs: 16,
            leaf_fraction: 0.3,
            cpi: 100,
            dyn_test: 200_000,
            dyn_train: 40_000,
            p_both: 0.70,
            p_test_only: 0.08,
            p_train_only: 0.05,
            p_class_lazy: 0.25,
            p_class_dead_both: 0.2,
            p_class_dead_train: 0.1,
            hot_fraction: 0.5,
            phase2_reps: 2,
            main_extra_methods: 3,
            main_extra_avg_instrs: 24,
            swap_pairs: 1,
            scg_trap_pairs: 1,
            cross_class_leaf: 0.3,
            literal_len: 24,
            literals_per_worker: 0.8,
            int_literals_per_worker: 0.5,
            unused_bytes_per_class: 60,
            line_entries_per_method: 6,
            wire_scale: (1, 1),
        }
    }

    #[test]
    fn generated_app_builds_and_runs() {
        let app = generate(&small_spec());
        assert_eq!(app.classes.len(), 6);
        assert_eq!(app.program.method_count(), 52);
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Test), &mut ()).unwrap();
        assert!(interp.executed() > 0);
    }

    #[test]
    fn dynamic_calibration_hits_targets() {
        let spec = small_spec();
        let app = generate(&spec);
        for (input, target) in [(Input::Test, spec.dyn_test), (Input::Train, spec.dyn_train)] {
            let mut interp = Interpreter::new(&app.program);
            interp.run(app.args(input), &mut ()).unwrap();
            let got = interp.executed();
            let err = (got as f64 - target as f64).abs() / target as f64;
            assert!(err < 0.05, "{input}: got {got}, target {target}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(a.test_args, b.test_args);
        assert_eq!(a.total_size(), b.total_size());
        let bytes_a: Vec<_> = a.classes.iter().map(|c| c.to_bytes()).collect();
        let bytes_b: Vec<_> = b.classes.iter().map(|c| c.to_bytes()).collect();
        assert_eq!(bytes_a, bytes_b);
    }

    #[test]
    fn test_and_train_paths_diverge() {
        let app = generate(&small_spec());
        let run = |input| {
            let mut interp = Interpreter::new(&app.program);
            let mut sink = first_use_stub::Collector::default();
            interp.run(app.args(input), &mut sink).unwrap();
            sink.order
        };
        let test_order = run(Input::Test);
        let train_order = run(Input::Train);
        assert_ne!(
            test_order, train_order,
            "swap pairs should reorder first uses"
        );
    }

    #[test]
    fn dead_guards_leave_methods_unexecuted() {
        let app = generate(&small_spec());
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Test), &mut ()).unwrap();
        let pct = interp.executed_static_percent();
        assert!(
            pct < 95.0,
            "some classes and workers must stay dead, got {pct}"
        );
        assert!(pct > 30.0, "most code should execute, got {pct}");
    }

    #[test]
    fn some_classes_never_load_on_test() {
        let app = generate(&small_spec());
        let mut interp = Interpreter::new(&app.program);
        let mut sink = first_use_stub::Collector::default();
        interp.run(app.args(Input::Test), &mut sink).unwrap();
        let loaded: std::collections::HashSet<u16> = sink.order.iter().map(|m| m.class.0).collect();
        assert!(
            loaded.len() < app.classes.len(),
            "dead-both classes must never load ({} of {})",
            loaded.len(),
            app.classes.len()
        );
    }

    #[test]
    fn first_uses_burst_early_then_compute() {
        // Library classes must all be first-used well before the end of
        // the run (setup pass first, compute pass after); only Main's
        // teardown utilities may load late.
        let app = generate(&small_spec());
        let mut interp = Interpreter::new(&app.program);
        let mut sink = first_use_stub::LastFirstUse::default();
        interp.run(app.args(Input::Test), &mut sink).unwrap();
        let frac = sink.last_lib_first_use as f64 / interp.executed() as f64;
        assert!(
            frac < 0.8,
            "last library first-use at {frac:.2} of execution; compute pass should follow it"
        );
    }

    /// Miniature sinks, kept local so these generator unit tests exercise
    /// only the bytecode layer.
    mod first_use_stub {
        use nonstrict_bytecode::{EventSink, MethodId};

        #[derive(Default)]
        pub struct Collector {
            pub order: Vec<MethodId>,
            seen: std::collections::HashSet<MethodId>,
        }

        impl EventSink for Collector {
            fn method_enter(&mut self, m: MethodId) {
                if self.seen.insert(m) {
                    self.order.push(m);
                }
            }
        }

        #[derive(Default)]
        pub struct LastFirstUse {
            pub last_lib_first_use: u64,
            executed: u64,
            seen: std::collections::HashSet<MethodId>,
        }

        impl EventSink for LastFirstUse {
            fn method_enter(&mut self, m: MethodId) {
                if self.seen.insert(m) && m.class.0 != 0 {
                    self.last_lib_first_use = self.executed;
                }
            }
            fn run(&mut self, _m: MethodId, n: u64) {
                self.executed += n;
            }
        }
    }
}
