//! **Hanoi** — the Towers of Hanoi applet.
//!
//! Table 1: *"Solutions to 6 and 8 ring problems are computed."* The
//! suite's smallest program: 3 class files, 6 KB, 58 methods averaging 8
//! instructions, 329 K dynamic instructions on Test (68 K on Train), 85%
//! executed, and the suite's highest CPI (3830 — the applet spends its
//! cycles in uninstrumented window-system calls, §6.1).
//!
//! Unlike the generated benchmarks this is a **real program**: a
//! recursive solver moves disks between pegs, a display class "draws"
//! each move (the animation busy-work models the window-system time that
//! inflates the paper's CPI), and applet-lifecycle chrome methods round
//! out the class shape — several of them dead on any input, as real
//! applet chrome is.
//!
//! * **Test input**: solve 6 rings, then 8 rings (63 + 255 = 318 moves).
//! * **Train input**: solve 6 rings only (63 moves).
//!
//! The per-move animation work is calibrated so the Test run hits the
//! paper's dynamic instruction count.

use nonstrict_bytecode::builder::MethodBuilder;
use nonstrict_bytecode::program::{Application, ClassDef, Program, StaticDef, WireScale};
use nonstrict_bytecode::{Cond, Interpreter, MethodId, RuntimeFn};

/// CPI from Table 3.
pub const CPI: u64 = 3830;

// Class indices.
const APPLET: u16 = 0;
const SOLVER: u16 = 1;
const DISPLAY: u16 = 2;

// Applet methods.
const M_INIT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(APPLET),
    method: 1,
};
const M_START: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(APPLET),
    method: 2,
};
const M_REPORT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(APPLET),
    method: 3,
};
const M_UPDATE: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(APPLET),
    method: 4,
};
const M_HANDLE_EVENT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(APPLET),
    method: 5,
};

// Solver methods.
const S_SETUP: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(SOLVER),
    method: 0,
};
const S_SOLVE: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(SOLVER),
    method: 1,
};
const S_MOVE: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(SOLVER),
    method: 2,
};
const S_VALIDATE: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(SOLVER),
    method: 3,
};
const S_COUNT: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(SOLVER),
    method: 4,
};

// Display methods.
const D_DRAW_MOVE: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DISPLAY),
    method: 0,
};
const D_SET_COLOR: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DISPLAY),
    method: 1,
};
const D_DRAW_PEG: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DISPLAY),
    method: 2,
};
const D_DRAW_DISK: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DISPLAY),
    method: 3,
};
const D_FLUSH: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DISPLAY),
    method: 4,
};
const D_REPAINT_ALL: MethodId = MethodId {
    class: nonstrict_bytecode::ClassId(DISPLAY),
    method: 5,
};

fn applet_class() -> ClassDef {
    let mut c = ClassDef::new("hanoi/HanoiApplet");
    c.source_file = Some("HanoiApplet.java".to_owned());
    c.add_static(StaticDef::int("state", 0));
    c.add_static(StaticDef::int("frames", 0));

    // main(rings1, rings2, work)
    let mut b = MethodBuilder::new("main", 3);
    b.invoke(M_INIT);
    b.iload(2).invoke(S_SETUP);
    b.invoke(M_START);
    // solve(rings1, 0, 2, 1)
    b.iload(0).iconst(0).iconst(2).iconst(1).invoke(S_SOLVE);
    // if (rings2 > 0) solve(rings2, 0, 2, 1)
    let skip = b.new_label();
    b.iload(1).if_(Cond::Le, skip);
    b.iload(1).iconst(0).iconst(2).iconst(1).invoke(S_SOLVE);
    b.bind(skip);
    b.invoke(M_REPORT);
    b.ret();
    c.add_method(b.finish());

    // init(): banner + state
    let mut b = MethodBuilder::new("init", 0);
    b.ldc_str("Towers of Hanoi")
        .invoke_runtime(RuntimeFn::PrintString);
    b.iconst(1).putstatic(APPLET, 0);
    b.ret();
    c.add_method(b.finish());

    // start(): one repaint pass
    let mut b = MethodBuilder::new("start", 0);
    b.iconst(2).putstatic(APPLET, 0);
    b.invoke(M_UPDATE);
    b.ret();
    c.add_method(b.finish());

    // report(): print final move count
    let mut b = MethodBuilder::new("report", 0);
    b.invoke(S_COUNT).invoke_runtime(RuntimeFn::PrintInt);
    b.ret();
    c.add_method(b.finish());

    // update(): repaint; event handling only on state 9 (never)
    let mut b = MethodBuilder::new("update", 0);
    b.invoke(D_REPAINT_ALL);
    b.getstatic(APPLET, 1).iconst(1).iadd().putstatic(APPLET, 1);
    let skip = b.new_label();
    b.getstatic(APPLET, 0).iconst(9).if_icmp(Cond::Ne, skip);
    b.iconst(0).invoke(M_HANDLE_EVENT).pop();
    b.bind(skip);
    b.ret();
    c.add_method(b.finish());

    // handleEvent(e): dispatch to chrome (dead on both inputs)
    let mut b = MethodBuilder::new("handleEvent", 1);
    b.returns_value();
    let m_mouse_down = MethodId::new(APPLET, 6);
    let m_key_down = MethodId::new(APPLET, 8);
    let not_mouse = b.new_label();
    b.iload(0).iconst(1).if_icmp(Cond::Ne, not_mouse);
    b.iload(0).invoke(m_mouse_down).ireturn();
    b.bind(not_mouse);
    b.iload(0).invoke(m_key_down).ireturn();
    c.add_method(b.finish());

    // Chrome methods 6..13: mostly dead lifecycle handlers.
    let chrome: &[(&str, u16)] = &[
        ("mouseDown", 1),
        ("mouseUp", 1),
        ("keyDown", 1),
        ("action", 1),
        ("stop", 0),
        ("destroy", 0),
        ("getAppletInfo", 0),
        ("resizeHook", 2),
    ];
    for (name, arity) in chrome {
        let mut b = MethodBuilder::new(*name, *arity);
        b.returns_value();
        match *arity {
            0 => {
                b.getstatic(APPLET, 0).iconst(3).imul().ireturn();
            }
            1 => {
                b.iload(0).iconst(17).ixor().ireturn();
            }
            _ => {
                b.iload(0).iload(1).iadd().ireturn();
            }
        }
        c.add_method(b.finish());
    }
    c.unused_strings.push("hanoi.resources.labels".to_owned());
    c
}

fn solver_class() -> ClassDef {
    let mut c = ClassDef::new("hanoi/Solver");
    c.source_file = Some("Solver.java".to_owned());
    c.add_static(StaticDef::int("moves", 0));
    c.add_static(StaticDef::int("work", 0));

    // setup(work)
    let mut b = MethodBuilder::new("setup", 1);
    b.iconst(0).putstatic(SOLVER, 0);
    b.iload(0).putstatic(SOLVER, 1);
    b.ret();
    c.add_method(b.finish());

    // solve(n, from, to, via)
    let mut b = MethodBuilder::new("solve", 4);
    let done = b.new_label();
    b.iload(0).if_(Cond::Le, done);
    // solve(n-1, from, via, to)
    b.iload(0).iconst(1).isub();
    b.iload(1).iload(3).iload(2);
    b.invoke(S_SOLVE);
    // moveDisk(from, to)
    b.iload(1).iload(2).invoke(S_MOVE);
    // solve(n-1, via, to, from)
    b.iload(0).iconst(1).isub();
    b.iload(3).iload(2).iload(1);
    b.invoke(S_SOLVE);
    b.bind(done);
    b.ret();
    c.add_method(b.finish());

    // moveDisk(from, to): validate, animate (work loop), draw, count
    let peg_name = MethodId::new(SOLVER, 5);
    let mut b = MethodBuilder::new("moveDisk", 2);
    b.iload(0).iload(1).invoke(S_VALIDATE).pop();
    b.iload(1).invoke(peg_name).pop();
    // animation busy-work: the stand-in for window-system time
    b.getstatic(SOLVER, 1).istore(2);
    b.iconst(0).istore(3);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(2).if_(Cond::Le, exit);
    b.iload(3).iload(2).iadd().istore(3);
    b.iload(3).iconst(7).ixor().istore(3);
    b.iload(3).iconst(1).ishr().istore(3);
    b.iinc(2, -1).goto(head);
    b.bind(exit);
    b.iload(0).iload(1).invoke(D_DRAW_MOVE);
    b.getstatic(SOLVER, 0).iconst(1).iadd().putstatic(SOLVER, 0);
    b.ret();
    c.add_method(b.finish());

    // validateMove(from, to): pegs must differ and be in 0..3
    let mut b = MethodBuilder::new("validateMove", 2);
    b.returns_value();
    let bad = b.new_label();
    b.iload(0).iload(1).if_icmp(Cond::Eq, bad);
    b.iload(0).if_(Cond::Lt, bad);
    b.iload(1).iconst(3).if_icmp(Cond::Ge, bad);
    b.iconst(1).ireturn();
    b.bind(bad);
    b.iconst(0).ireturn();
    c.add_method(b.finish());

    // countMoves()
    let mut b = MethodBuilder::new("countMoves", 0);
    b.returns_value();
    b.getstatic(SOLVER, 0).ireturn();
    c.add_method(b.finish());

    // Small helpers, some dead.
    let helpers: &[(&str, u16, bool)] = &[
        ("pegName", 1, true),
        ("reset", 0, false),
        ("depthOf", 1, false),
        ("hintFor", 1, false),
        ("undoLast", 0, false),
    ];
    for (name, arity, _live) in helpers {
        let mut b = MethodBuilder::new(*name, *arity);
        b.returns_value();
        if *arity >= 1 {
            b.iload(0).iconst(31).imul().iconst(5).irem().ireturn();
        } else {
            b.getstatic(SOLVER, 0).iconst(2).idiv().ireturn();
        }
        c.add_method(b.finish());
    }
    c.unused_strings
        .push("cannot move larger disk onto smaller".to_owned());
    c
}

fn display_class() -> ClassDef {
    let mut c = ClassDef::new("hanoi/Display");
    c.source_file = Some("Display.java".to_owned());
    c.add_static(StaticDef::int("color", 0));
    c.add_static(StaticDef::int("frame", 0));

    // drawMove(from, to): the live chain; the paint dispatcher hides
    // behind a guard no input satisfies, so static estimation sees a
    // call edge that never fires.
    let dispatch_paint = MethodId::new(DISPLAY, 32);
    let mut b = MethodBuilder::new("drawMove", 2);
    b.iload(0).iconst(3).imul().invoke(D_SET_COLOR);
    b.iload(0).invoke(D_DRAW_PEG).pop();
    b.iload(1).invoke(D_DRAW_PEG).pop();
    b.iload(1).iload(0).isub().invoke(D_DRAW_DISK).pop();
    let skip = b.new_label();
    b.getstatic(DISPLAY, 0).iconst(9999).if_icmp(Cond::Ne, skip);
    b.iload(0).invoke(dispatch_paint).pop();
    b.bind(skip);
    b.invoke(D_FLUSH);
    b.ret();
    c.add_method(b.finish());

    // setColor(c)
    let mut b = MethodBuilder::new("setColor", 1);
    b.iload(0).iconst(255).iand().putstatic(DISPLAY, 0);
    b.ret();
    c.add_method(b.finish());

    // drawPeg(p)
    let mut b = MethodBuilder::new("drawPeg", 1);
    b.returns_value();
    b.iload(0)
        .iconst(40)
        .imul()
        .getstatic(DISPLAY, 0)
        .iadd()
        .ireturn();
    c.add_method(b.finish());

    // drawDisk(d)
    let mut b = MethodBuilder::new("drawDisk", 1);
    b.returns_value();
    b.iload(0)
        .invoke_runtime(RuntimeFn::Abs)
        .iconst(12)
        .imul()
        .ireturn();
    c.add_method(b.finish());

    // flushFrame()
    let mut b = MethodBuilder::new("flushFrame", 0);
    b.getstatic(DISPLAY, 1)
        .iconst(1)
        .iadd()
        .putstatic(DISPLAY, 1);
    b.ret();
    c.add_method(b.finish());

    // repaintAll(): one-time full repaint at start()
    let paint_frame = MethodId::new(DISPLAY, 33);
    let mut b = MethodBuilder::new("repaintAll", 0);
    b.iconst(0).istore(0);
    let head = b.new_label();
    let exit = b.new_label();
    b.bind(head);
    b.iload(0).iconst(3).if_icmp(Cond::Ge, exit);
    b.iload(0).invoke(D_DRAW_PEG).pop();
    b.iinc(0, 1).goto(head);
    b.bind(exit);
    b.iconst(0).invoke(paint_frame).pop();
    b.invoke(D_FLUSH);
    b.ret();
    c.add_method(b.finish());

    // 26 tiny graphics helpers at indices 6..=31. The first 21 are live
    // (chained from paintFrame); the last 5 are dead chrome referenced
    // only from the dead dispatcher, so SCG still sees their edges.
    let names = [
        "drawBase",
        "drawLabel",
        "drawTitle",
        "drawBorder",
        "clearRect",
        "fillRect",
        "drawLineH",
        "drawLineV",
        "drawShadow",
        "drawGlyph",
        "measureText",
        "centerText",
        "scaleX",
        "scaleY",
        "clipTo",
        "unclip",
        "blit",
        "swapBuffers",
        "syncVert",
        "gammaFix",
        "ditherCell",
        "packRgb",
        "unpackRgb",
        "blend",
        "darken",
        "lighten",
    ];
    let live_helpers = 21;
    for (i, name) in names.iter().enumerate() {
        let mut b = MethodBuilder::new(*name, 1);
        b.returns_value();
        match i % 4 {
            0 => {
                b.iload(0).iconst(3 + i as i32).imul().ireturn();
            }
            1 => {
                b.iload(0)
                    .iconst(1 + i as i32)
                    .iadd()
                    .getstatic(DISPLAY, 0)
                    .ixor()
                    .ireturn();
            }
            2 => {
                b.iload(0).iconst(1).ishl().ireturn();
            }
            _ => {
                b.iload(0).invoke_runtime(RuntimeFn::Abs).ireturn();
            }
        }
        c.add_method(b.finish());
    }

    // dispatchPaint (index 32): dead, but calls the dead helpers so the
    // static call graph still reaches them.
    let mut d = MethodBuilder::new("dispatchPaint", 1);
    d.returns_value();
    for i in live_helpers..names.len() {
        d.iload(0)
            .invoke(MethodId::new(DISPLAY, (6 + i) as u16))
            .pop();
    }
    d.iload(0).ireturn();
    c.add_method(d.finish());

    // paintFrame (index 33): live chain through the first 21 helpers.
    let mut p = MethodBuilder::new("paintFrame", 1);
    p.returns_value();
    p.iload(0).istore(1);
    for i in 0..live_helpers {
        p.iload(1)
            .invoke(MethodId::new(DISPLAY, (6 + i) as u16))
            .istore(1);
    }
    p.iload(1).ireturn();
    c.add_method(p.finish());

    c.unused_strings.push("font.helvetica.12".to_owned());
    c.unused_strings.push("palette.default".to_owned());
    c
}

/// Builds the Hanoi application with calibrated Test/Train inputs.
///
/// # Panics
///
/// Panics if the handwritten program fails verification (a bug, caught by
/// tests).
#[must_use]
pub fn build() -> Application {
    let classes = vec![applet_class(), solver_class(), display_class()];
    let program =
        Program::new(classes, "hanoi/HanoiApplet", "main").expect("hanoi program verifies");
    let mut app = Application::from_program("Hanoi", program, CPI).expect("hanoi lowers");
    app.wire_scale = WireScale::new(3244, 1000);

    // Calibrate per-move animation work against the Test target (329 K).
    // Dynamic count is affine in `work`, so two probes pin the line.
    let probe = |work: i64| -> u64 {
        let mut interp = Interpreter::new(&app.program);
        interp.run(&[6, 8, work], &mut ()).expect("hanoi runs");
        interp.executed()
    };
    let d1 = probe(8);
    let d2 = probe(24);
    let slope = (d2 - d1) / 16;
    let base = d1 - slope * 8;
    let work = i64::try_from((329_000u64.saturating_sub(base)).div_ceil(slope.max(1)))
        .expect("work fits")
        .max(1);

    app.test_args = vec![6, 8, work];
    app.train_args = vec![6, 0, work];
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use nonstrict_bytecode::Input;

    #[test]
    fn structural_counts_match_paper() {
        let app = build();
        assert_eq!(app.classes.len(), 3);
        assert_eq!(app.program.method_count(), 58);
        assert_eq!(app.cpi, 3830);
    }

    #[test]
    fn solver_makes_exactly_the_right_number_of_moves() {
        let app = build();
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Test), &mut ()).unwrap();
        // report() prints the move count: 2^6-1 + 2^8-1 = 318
        assert_eq!(interp.output(), &[318]);
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Train), &mut ()).unwrap();
        assert_eq!(interp.output(), &[63]);
    }

    #[test]
    fn dynamic_count_hits_test_target() {
        let app = build();
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Test), &mut ()).unwrap();
        let got = interp.executed() as f64;
        assert!((got - 329_000.0).abs() / 329_000.0 < 0.05, "{got}");
    }

    #[test]
    fn train_run_is_roughly_a_fifth_of_test() {
        let app = build();
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Train), &mut ()).unwrap();
        let got = interp.executed() as f64;
        // paper: 68K; the 63/318 move ratio gives ~65K
        assert!(got > 55_000.0 && got < 80_000.0, "{got}");
    }

    #[test]
    fn dead_chrome_keeps_coverage_near_85_percent() {
        let app = build();
        let mut interp = Interpreter::new(&app.program);
        interp.run(app.args(Input::Test), &mut ()).unwrap();
        let pct = interp.executed_static_percent();
        assert!(pct > 70.0 && pct < 95.0, "{pct}");
    }
}
