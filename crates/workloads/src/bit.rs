//! **BIT** — the Bytecode Instrumentation Tool (Lee & Zorn, USITS '97).
//!
//! Table 1: *"Each basic block in the input program is instrumented to
//! report its class and method name."* The paper's largest benchmark by
//! dynamic count: 48 class files, 124 KB, 643 methods averaging 17
//! instructions, 7.76 M dynamic instructions on the Test input (5.58 M on
//! Train), 66% of static instructions executed, CPI 147.
//!
//! The reproduction generates a 48-class tool-shaped application (scanner
//! / table / visitor classes over block-descriptor data) calibrated to
//! those statistics.

use nonstrict_bytecode::Application;

use crate::appgen::{generate, GenSpec};

/// Table 2/3 reference values for BIT.
pub const SPEC: GenSpec = GenSpec {
    name: "BIT",
    package: "bit",
    seed: 0xB17_0001,
    classes: 48,
    methods: 643,
    avg_instrs: 17,
    leaf_fraction: 0.30,
    cpi: 147,
    dyn_test: 7_763_000,
    dyn_train: 5_582_000,
    p_both: 0.93,
    p_test_only: 0.02,
    p_train_only: 0.01,
    p_class_lazy: 0.4,
    p_class_dead_both: 0.27,
    p_class_dead_train: 0.02,
    hot_fraction: 0.45,
    phase2_reps: 5,
    main_extra_methods: 8,
    main_extra_avg_instrs: 40,
    scg_trap_pairs: 7,
    swap_pairs: 4,
    cross_class_leaf: 0.25,
    literal_len: 26,
    literals_per_worker: 1.1,
    int_literals_per_worker: 0.25,
    unused_bytes_per_class: 36,
    line_entries_per_method: 9,
    wire_scale: (1889, 1000),
};

/// Builds the BIT application with calibrated Test/Train inputs.
#[must_use]
pub fn build() -> Application {
    generate(&SPEC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_counts_match_paper() {
        let app = build();
        assert_eq!(app.classes.len(), 48);
        assert_eq!(app.program.method_count(), 643);
        assert_eq!(app.cpi, 147);
    }
}
