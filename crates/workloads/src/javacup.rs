//! **JavaCup** — the LALR parser generator.
//!
//! Table 1: *"A parser is created to parse simple mathematics
//! expressions."* 35 class files, 139 KB, 843 methods averaging 18
//! instructions, 318 K dynamic instructions on Test (126 K on Train), 81%
//! of static instructions executed, CPI 1241 (parser generation is
//! allocation- and string-heavy, hence the high cycles per bytecode).
//!
//! The reproduction generates a 35-class generator-shaped application
//! (grammar/production/lalr-state classes) calibrated to those
//! statistics. JavaCup is the paper's strongest case for data
//! partitioning (Table 4: 88% latency reduction) because its classes
//! carry large constant pools relative to code.

use nonstrict_bytecode::Application;

use crate::appgen::{generate, GenSpec};

/// Table 2/3 reference values for JavaCup.
pub const SPEC: GenSpec = GenSpec {
    name: "JavaCup",
    package: "javacup",
    seed: 0xCA9_0002,
    classes: 35,
    methods: 843,
    avg_instrs: 18,
    leaf_fraction: 0.38,
    cpi: 1241,
    dyn_test: 318_000,
    dyn_train: 126_000,
    p_both: 0.95,
    p_test_only: 0.02,
    p_train_only: 0.01,
    p_class_lazy: 0.45,
    p_class_dead_both: 0.15,
    p_class_dead_train: 0.0,
    hot_fraction: 0.50,
    phase2_reps: 5,
    main_extra_methods: 8,
    main_extra_avg_instrs: 44,
    scg_trap_pairs: 6,
    swap_pairs: 3,
    cross_class_leaf: 0.25,
    literal_len: 30,
    literals_per_worker: 1.3,
    int_literals_per_worker: 0.1,
    unused_bytes_per_class: 42,
    line_entries_per_method: 8,
    wire_scale: (1880, 1000),
};

/// Builds the JavaCup application with calibrated Test/Train inputs.
#[must_use]
pub fn build() -> Application {
    generate(&SPEC)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structural_counts_match_paper() {
        let app = build();
        assert_eq!(app.classes.len(), 35);
        assert_eq!(app.program.method_count(), 843);
        assert_eq!(app.cpi, 1241);
    }
}
