//! The storage abstraction: one trait, a disciplined real-filesystem
//! backend, and a seeded fault-injecting twin.
//!
//! The namespace is deliberately flat — a store is one directory of
//! small files — so the whole surface is five operations, and the
//! fault model has exactly three places to bite: did the write tear,
//! did the fsync lie, did the bytes rot afterwards.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

use nonstrict_wire::SplitMix64;

use crate::StoreError;

/// The store's view of a directory of files.
///
/// Durability contract: when [`Vfs::write_atomic`] or [`Vfs::append`]
/// returns `Ok`, an honest backend has the bytes on stable storage —
/// `write_atomic` via the write-temp / fsync / rename / fsync-dir
/// discipline (the file is either its old content or the full new
/// content, never a mix), `append` via fsync after the write (a crash
/// may still cut an *in-flight* append at any byte, which is why every
/// appended record carries its own CRC frame). [`FaultFs`] exists to
/// model the backends that break this contract.
pub trait Vfs: Send + Sync {
    /// Reads the full content of `name`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when absent; [`StoreError::Io`] or
    /// [`StoreError::Killed`] otherwise.
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError>;

    /// Replaces `name` with `bytes` atomically and durably.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::Killed`].
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Appends `bytes` to `name` (creating it if absent) and syncs.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::Killed`].
    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError>;

    /// Removes `name`; removing an absent name is not an error.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::Killed`].
    fn remove(&self, name: &str) -> Result<(), StoreError>;

    /// Lists the file names present, sorted.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::Killed`].
    fn list(&self) -> Result<Vec<String>, StoreError>;
}

/// The real-filesystem backend: one flat directory, every mutation
/// disciplined.
///
/// * `write_atomic` writes `name.tmp`, fsyncs it, renames it over
///   `name`, then fsyncs the directory so the rename itself is
///   durable.
/// * `append` opens in append mode, writes, and fsyncs the file.
///
/// Temp files from a previous crash (`*.tmp`) are invisible to
/// [`Vfs::list`] and harmlessly overwritten by the next write.
#[derive(Debug)]
pub struct RealFs {
    root: PathBuf,
}

impl RealFs {
    /// Opens (creating if needed) `root` as a store directory.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<RealFs, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| StoreError::Io {
            op: "create_dir_all",
            name: root.display().to_string(),
            detail: e.to_string(),
        })?;
        Ok(RealFs { root })
    }

    /// The directory this store lives in.
    #[must_use]
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn io(op: &'static str, name: &str, e: &std::io::Error) -> StoreError {
        StoreError::Io {
            op,
            name: name.to_owned(),
            detail: e.to_string(),
        }
    }

    fn sync_dir(&self) -> Result<(), StoreError> {
        // Directory fsync makes the rename durable. Some platforms
        // refuse to open a directory for writing; opening read-only is
        // enough for sync_all on the ones we run on.
        let dir = std::fs::File::open(&self.root)
            .map_err(|e| Self::io("open_dir", &self.root.display().to_string(), &e))?;
        dir.sync_all()
            .map_err(|e| Self::io("sync_dir", &self.root.display().to_string(), &e))
    }
}

impl Vfs for RealFs {
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        match std::fs::read(self.path(name)) {
            Ok(b) => Ok(b),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Err(StoreError::NotFound {
                name: name.to_owned(),
            }),
            Err(e) => Err(Self::io("read", name, &e)),
        }
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| Self::io("create", name, &e))?;
            f.write_all(bytes)
                .map_err(|e| Self::io("write", name, &e))?;
            f.sync_all().map_err(|e| Self::io("fsync", name, &e))?;
        }
        std::fs::rename(&tmp, self.path(name)).map_err(|e| Self::io("rename", name, &e))?;
        self.sync_dir()
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.path(name))
            .map_err(|e| Self::io("open_append", name, &e))?;
        f.write_all(bytes)
            .map_err(|e| Self::io("append", name, &e))?;
        f.sync_all().map_err(|e| Self::io("fsync", name, &e))
    }

    fn remove(&self, name: &str) -> Result<(), StoreError> {
        match std::fs::remove_file(self.path(name)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(Self::io("remove", name, &e)),
        }
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let rd = std::fs::read_dir(&self.root)
            .map_err(|e| Self::io("read_dir", &self.root.display().to_string(), &e))?;
        let mut names = Vec::new();
        for entry in rd {
            let entry =
                entry.map_err(|e| Self::io("read_dir", &self.root.display().to_string(), &e))?;
            if !entry.file_type().map(|t| t.is_file()).unwrap_or(false) {
                continue;
            }
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                continue;
            }
            names.push(name);
        }
        names.sort();
        Ok(names)
    }
}

/// Rates and seed for the fault-injecting backend. All rates are in
/// parts per million; all zeros is a perfectly honest in-memory store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultKnobs {
    /// Seed for every fault draw.
    pub seed: u64,
    /// Probability that a kill interrupting `write_atomic` tears
    /// through the atomicity discipline anyway (a filesystem whose
    /// rename lands before its data), leaving a durable prefix of the
    /// *new* content at a seeded cut.
    pub torn_pm: u32,
    /// Probability that a completed write acks durability but never
    /// reaches it: the visible content updates, the durable content
    /// does not, and the write vanishes at the next crash. Because
    /// later writes may persist while an earlier lied one vanished,
    /// this is also the reordered-write model.
    pub lie_pm: u32,
    /// Per-file probability, applied at every crash/restart boundary,
    /// that one seeded bit of the durable content flips.
    pub bitrot_pm: u32,
}

impl FaultKnobs {
    /// An honest in-memory store under `seed` (the seed still drives
    /// the kill-at-operation crash semantics).
    #[must_use]
    pub fn quiet(seed: u64) -> FaultKnobs {
        FaultKnobs {
            seed,
            ..FaultKnobs::default()
        }
    }
}

struct FaultState {
    /// What survives a crash.
    durable: BTreeMap<String, Vec<u8>>,
    /// What the running process observes (page cache).
    visible: BTreeMap<String, Vec<u8>>,
    rng: SplitMix64,
    knobs: FaultKnobs,
    /// Mutating operations attempted so far.
    ops: u64,
    /// Die at this 1-based mutating-operation index.
    kill_at_op: Option<u64>,
    /// Set once the kill fired; every call fails until [`FaultFs::crash`].
    killed: bool,
}

/// The seeded fault-injecting in-memory backend: the power-cut model.
///
/// It tracks *visible* content (what the process reads back) separately
/// from *durable* content (what survives [`FaultFs::crash`]), so fsync
/// lies, torn writes, and kill-at-operation process death all behave
/// the way real storage stacks misbehave. With [`FaultKnobs::quiet`]
/// knobs it is an honest store whose only extra power is the kill
/// counter — which is exactly what the storage crash-anywhere
/// differential sweeps.
pub struct FaultFs {
    state: Mutex<FaultState>,
}

impl FaultFs {
    /// A fresh, empty store under `knobs`.
    #[must_use]
    pub fn new(knobs: FaultKnobs) -> FaultFs {
        FaultFs {
            state: Mutex::new(FaultState {
                durable: BTreeMap::new(),
                visible: BTreeMap::new(),
                rng: SplitMix64(knobs.seed ^ 0x5f0e_9d1c_ab37_6421),
                knobs,
                ops: 0,
                kill_at_op: None,
                killed: false,
            }),
        }
    }

    /// Arms the process-kill probe: the `op`-th (1-based) mutating
    /// operation from now on dies mid-write.
    pub fn set_kill_at(&self, op: u64) {
        let mut s = self.state.lock().expect("faultfs lock");
        let ops = s.ops;
        s.kill_at_op = Some(ops + op);
    }

    /// Mutating operations attempted so far (the sweep bound for the
    /// crash-anywhere differential).
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("faultfs lock").ops
    }

    /// Whether the armed kill has fired.
    #[must_use]
    pub fn is_killed(&self) -> bool {
        self.state.lock().expect("faultfs lock").killed
    }

    /// Power-cycles the store: everything not durable is lost, bit rot
    /// gets its per-file chance to gnaw the survivors, the kill switch
    /// is disarmed, and the store is usable again — the warm-restart
    /// starting point.
    pub fn crash(&self) {
        let mut s = self.state.lock().expect("faultfs lock");
        s.visible = s.durable.clone();
        s.killed = false;
        s.kill_at_op = None;
        let bitrot_pm = s.knobs.bitrot_pm;
        if bitrot_pm == 0 {
            return;
        }
        let names: Vec<String> = s.durable.keys().cloned().collect();
        for name in names {
            if !s.rng.hit_pm(bitrot_pm) {
                continue;
            }
            let len = s.durable[&name].len();
            if len == 0 {
                continue;
            }
            let byte = s.rng.below(len as u64) as usize;
            let mask = 1u8 << (s.rng.below(8) as u8);
            if let Some(content) = s.durable.get_mut(&name) {
                content[byte] ^= mask;
            }
            if let Some(content) = s.visible.get_mut(&name) {
                content[byte] ^= mask;
            }
        }
    }

    /// Test hook: the durable content of `name`, as a crash would
    /// reveal it.
    #[must_use]
    pub fn durable(&self, name: &str) -> Option<Vec<u8>> {
        self.state
            .lock()
            .expect("faultfs lock")
            .durable
            .get(name)
            .cloned()
    }

    /// Test hook: overwrite the durable content of `name` directly
    /// (hostile-artifact injection).
    pub fn set_durable(&self, name: &str, bytes: Vec<u8>) {
        let mut s = self.state.lock().expect("faultfs lock");
        s.visible.insert(name.to_owned(), bytes.clone());
        s.durable.insert(name.to_owned(), bytes);
    }

    /// Checks the kill switch and counts the op. `Err` means the
    /// process just died at this operation.
    fn arm(s: &mut FaultState) -> Result<bool, StoreError> {
        if s.killed {
            return Err(StoreError::Killed { op: s.ops });
        }
        s.ops += 1;
        if s.kill_at_op == Some(s.ops) {
            s.killed = true;
            return Ok(true);
        }
        Ok(false)
    }
}

impl Vfs for FaultFs {
    fn read(&self, name: &str) -> Result<Vec<u8>, StoreError> {
        let s = self.state.lock().expect("faultfs lock");
        if s.killed {
            return Err(StoreError::Killed { op: s.ops });
        }
        s.visible
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::NotFound {
                name: name.to_owned(),
            })
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut s = self.state.lock().expect("faultfs lock");
        if Self::arm(&mut s)? {
            // The process dies mid-write. A disciplined filesystem
            // leaves either the old content (crash before the rename)
            // or the full new content (crash after); a torn one can
            // leave a prefix of the new bytes.
            let torn_pm = s.knobs.torn_pm;
            if s.rng.hit_pm(torn_pm) {
                let cut = s.rng.below(bytes.len() as u64 + 1) as usize;
                s.durable.insert(name.to_owned(), bytes[..cut].to_vec());
            } else if s.rng.below(2) == 1 {
                s.durable.insert(name.to_owned(), bytes.to_vec());
            }
            return Err(StoreError::Killed { op: s.ops });
        }
        s.visible.insert(name.to_owned(), bytes.to_vec());
        let lie_pm = s.knobs.lie_pm;
        if !s.rng.hit_pm(lie_pm) {
            s.durable.insert(name.to_owned(), bytes.to_vec());
        }
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> Result<(), StoreError> {
        let mut s = self.state.lock().expect("faultfs lock");
        if Self::arm(&mut s)? {
            // A crash cuts an in-flight append at any byte: the durable
            // file keeps its old content plus a seeded prefix of the
            // appended bytes. This is normal power-cut semantics, not a
            // fault knob — append durability only covers *completed*
            // appends.
            let cut = s.rng.below(bytes.len() as u64 + 1) as usize;
            let prefix = bytes[..cut].to_vec();
            s.durable.entry(name.to_owned()).or_default().extend(prefix);
            return Err(StoreError::Killed { op: s.ops });
        }
        s.visible
            .entry(name.to_owned())
            .or_default()
            .extend_from_slice(bytes);
        let lie_pm = s.knobs.lie_pm;
        if !s.rng.hit_pm(lie_pm) {
            s.durable
                .entry(name.to_owned())
                .or_default()
                .extend_from_slice(bytes);
        }
        Ok(())
    }

    fn remove(&self, name: &str) -> Result<(), StoreError> {
        let mut s = self.state.lock().expect("faultfs lock");
        if Self::arm(&mut s)? {
            // Whether the unlink became durable before the crash is a
            // coin flip.
            if s.rng.below(2) == 1 {
                s.durable.remove(name);
            }
            return Err(StoreError::Killed { op: s.ops });
        }
        s.visible.remove(name);
        let lie_pm = s.knobs.lie_pm;
        if !s.rng.hit_pm(lie_pm) {
            s.durable.remove(name);
        }
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        let s = self.state.lock().expect("faultfs lock");
        if s.killed {
            return Err(StoreError::Killed { op: s.ops });
        }
        Ok(s.visible.keys().cloned().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_faultfs_behaves_like_an_honest_store() {
        let fs = FaultFs::new(FaultKnobs::quiet(7));
        fs.write_atomic("a", b"alpha").unwrap();
        fs.append("log", b"one").unwrap();
        fs.append("log", b"two").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"alpha");
        assert_eq!(fs.read("log").unwrap(), b"onetwo");
        assert_eq!(fs.list().unwrap(), vec!["a".to_owned(), "log".to_owned()]);
        fs.crash();
        assert_eq!(fs.read("a").unwrap(), b"alpha", "durable across crash");
        assert_eq!(fs.read("log").unwrap(), b"onetwo");
        fs.remove("a").unwrap();
        assert_eq!(
            fs.read("a"),
            Err(StoreError::NotFound {
                name: "a".to_owned()
            })
        );
    }

    #[test]
    fn kill_at_op_fires_once_and_poisons_until_crash() {
        let fs = FaultFs::new(FaultKnobs::quiet(3));
        fs.write_atomic("a", b"one").unwrap();
        fs.set_kill_at(1);
        let err = fs.write_atomic("a", b"two").unwrap_err();
        assert!(matches!(err, StoreError::Killed { .. }), "{err}");
        assert!(fs.is_killed());
        // Dead process: every later call fails too.
        assert!(matches!(fs.read("a"), Err(StoreError::Killed { .. })));
        assert!(matches!(
            fs.append("a", b"x"),
            Err(StoreError::Killed { .. })
        ));
        fs.crash();
        // Atomic discipline: after the crash the file is old or new,
        // never a mix (torn_pm is zero).
        let got = fs.read("a").unwrap();
        assert!(got == b"one" || got == b"two", "{got:?}");
    }

    #[test]
    fn killed_append_leaves_only_a_prefix_of_the_appended_bytes() {
        for seed in 0..32 {
            let fs = FaultFs::new(FaultKnobs::quiet(seed));
            fs.append("log", b"stable").unwrap();
            fs.set_kill_at(1);
            fs.append("log", b"DOOMED").unwrap_err();
            fs.crash();
            let got = fs.read("log").unwrap();
            assert!(got.starts_with(b"stable"), "{got:?}");
            assert!(got.len() <= b"stable".len() + b"DOOMED".len());
            assert!(
                b"stableDOOMED".starts_with(got.as_slice()),
                "append crash must leave a clean prefix: {got:?}"
            );
        }
    }

    #[test]
    fn fsync_lies_lose_acked_writes_at_the_crash() {
        // With lie_pm maxed, every ack is a lie: visible content
        // updates, durable does not.
        let fs = FaultFs::new(FaultKnobs {
            seed: 5,
            lie_pm: 1_000_000,
            ..FaultKnobs::default()
        });
        fs.write_atomic("a", b"acked").unwrap();
        assert_eq!(fs.read("a").unwrap(), b"acked", "visible before crash");
        fs.crash();
        assert_eq!(
            fs.read("a"),
            Err(StoreError::NotFound {
                name: "a".to_owned()
            }),
            "the lied write must vanish"
        );
    }

    #[test]
    fn bitrot_flips_exactly_one_seeded_bit() {
        let fs = FaultFs::new(FaultKnobs {
            seed: 11,
            bitrot_pm: 1_000_000,
            ..FaultKnobs::default()
        });
        let payload = vec![0u8; 64];
        fs.write_atomic("a", &payload).unwrap();
        fs.crash();
        let got = fs.read("a").unwrap();
        let flipped: u32 = got.iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flips per rot event");
    }

    #[test]
    fn realfs_round_trips_and_survives_reopen() {
        let root = std::env::temp_dir().join(format!("nonstrict-store-vfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        {
            let fs = RealFs::open(&root).unwrap();
            fs.write_atomic("a.bin", b"alpha").unwrap();
            fs.write_atomic("a.bin", b"beta").unwrap();
            fs.append("log.bin", b"one").unwrap();
            fs.append("log.bin", b"two").unwrap();
        }
        {
            let fs = RealFs::open(&root).unwrap();
            assert_eq!(fs.read("a.bin").unwrap(), b"beta");
            assert_eq!(fs.read("log.bin").unwrap(), b"onetwo");
            assert_eq!(
                fs.list().unwrap(),
                vec!["a.bin".to_owned(), "log.bin".to_owned()]
            );
            fs.remove("a.bin").unwrap();
            fs.remove("a.bin").unwrap();
            assert!(matches!(fs.read("a.bin"), Err(StoreError::NotFound { .. })));
        }
        let _ = std::fs::remove_dir_all(&root);
    }
}
