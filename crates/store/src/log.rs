//! The `NSJL` append-oriented record log with torn-tail recovery.
//!
//! A journal that rewrites itself whole on every watermark update
//! would turn each delivered unit into a full-file write; this log
//! appends one small CRC-framed record instead, and pushes all the
//! crash complexity into recovery:
//!
//! * file = `NSJL` magic + version, then zero or more frames;
//! * frame = `len: u32 | payload | crc32(len ‖ payload)`;
//! * recovery scans front to back. A **torn tail** — the file ends
//!   mid-frame, which is exactly what a power cut does to an in-flight
//!   append — is truncated back to the last complete valid frame,
//!   compacted durably, and reported. Everything else (bad magic, bad
//!   version, a CRC mismatch on a *complete* frame, an oversized
//!   declared length) is bit rot or forgery, not a crash artifact, and
//!   fails closed with a typed [`StoreError`]: the caller cold-starts
//!   rather than trusting a poisoned log.

use std::sync::Arc;

use nonstrict_wire::crc32;

use crate::vfs::Vfs;
use crate::StoreError;

/// Log magic: identifies the file and its byte order.
pub const LOG_MAGIC: [u8; 4] = *b"NSJL";

/// Current log format version.
pub const LOG_VERSION: u16 = 1;

/// Sanity cap on one record's declared length: a rotted or forged
/// length field must not make recovery allocate gigabytes.
pub const MAX_RECORD_BYTES: u64 = 1 << 24;

const HEADER_LEN: usize = 6;
const FRAME_OVERHEAD: usize = 8; // len u32 + crc u32

/// What recovery found.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Recovered {
    /// Every complete, CRC-valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes of torn tail that were truncated away (zero on a clean
    /// log).
    pub torn_bytes: u64,
}

/// An append-oriented record log over one [`Vfs`] file.
#[derive(Clone)]
pub struct JournalLog {
    vfs: Arc<dyn Vfs>,
    name: String,
}

impl JournalLog {
    /// A log stored at `name` inside `vfs`.
    #[must_use]
    pub fn new(vfs: Arc<dyn Vfs>, name: &str) -> JournalLog {
        JournalLog {
            vfs,
            name: name.to_owned(),
        }
    }

    /// Appends one record, creating the file (with its header) on
    /// first use. The record is framed with its own CRC so a torn
    /// append is detectable and truncatable.
    ///
    /// # Errors
    ///
    /// [`StoreError::Oversized`] for a record beyond
    /// [`MAX_RECORD_BYTES`]; otherwise whatever the VFS reports.
    pub fn append_record(&self, payload: &[u8]) -> Result<(), StoreError> {
        if payload.len() as u64 > MAX_RECORD_BYTES {
            return Err(StoreError::Oversized {
                what: "log record",
                declared: payload.len() as u64,
                cap: MAX_RECORD_BYTES,
            });
        }
        match self.vfs.read(&self.name) {
            Ok(_) => {}
            Err(StoreError::NotFound { .. }) => {
                let mut header = Vec::with_capacity(HEADER_LEN);
                header.extend_from_slice(&LOG_MAGIC);
                header.extend_from_slice(&LOG_VERSION.to_le_bytes());
                self.vfs.append(&self.name, &header)?;
            }
            Err(e) => return Err(e),
        }
        let mut frame = Vec::with_capacity(payload.len() + FRAME_OVERHEAD);
        frame.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("cap fits u32")
                .to_le_bytes(),
        );
        frame.extend_from_slice(payload);
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        self.vfs.append(&self.name, &frame)
    }

    /// Scans the log, truncates a torn tail back to the last valid
    /// frame (rewriting the file durably when it does), and returns
    /// every surviving record.
    ///
    /// An absent file is an empty log. A file too short to hold the
    /// header is all torn tail: it is removed and reported, because a
    /// crash during the very first append can legitimately leave just
    /// a header prefix. Every *non-prefix* defect fails closed.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadMagic`] / [`StoreError::BadVersion`] for a file
    /// that was never this log; [`StoreError::CrcMismatch`] for a
    /// complete frame whose trailer disagrees (bit rot — nothing after
    /// it can be ordered, so nothing is trusted);
    /// [`StoreError::Oversized`] for a hostile declared length.
    pub fn recover(&self) -> Result<Recovered, StoreError> {
        let bytes = match self.vfs.read(&self.name) {
            Ok(b) => b,
            Err(StoreError::NotFound { .. }) => return Ok(Recovered::default()),
            Err(e) => return Err(e),
        };
        if bytes.len() < HEADER_LEN {
            // A crash mid-first-append can cut the header itself: all
            // torn tail, nothing recoverable.
            self.vfs.remove(&self.name)?;
            return Ok(Recovered {
                records: Vec::new(),
                torn_bytes: bytes.len() as u64,
            });
        }
        if bytes[..4] != LOG_MAGIC {
            return Err(StoreError::BadMagic { what: "NSJL log" });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("len"));
        if version != LOG_VERSION {
            return Err(StoreError::BadVersion {
                what: "NSJL log",
                version,
            });
        }
        let mut records = Vec::new();
        let mut pos = HEADER_LEN;
        let mut good_end = pos;
        while pos < bytes.len() {
            let remaining = bytes.len() - pos;
            if remaining < 4 {
                break; // torn: not even a length prefix
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len")) as usize;
            if len as u64 > MAX_RECORD_BYTES {
                return Err(StoreError::Oversized {
                    what: "log record",
                    declared: len as u64,
                    cap: MAX_RECORD_BYTES,
                });
            }
            if remaining < len + FRAME_OVERHEAD {
                break; // torn: the frame never finished landing
            }
            let frame_end = pos + 4 + len;
            let stored =
                u32::from_le_bytes(bytes[frame_end..frame_end + 4].try_into().expect("len"));
            if crc32(&bytes[pos..frame_end]) != stored {
                // The frame is fully present but wrong: that is rot or
                // forgery, not a torn write. Fail closed — append order
                // beyond this point cannot be trusted.
                return Err(StoreError::CrcMismatch { what: "NSJL log" });
            }
            records.push(bytes[pos + 4..frame_end].to_vec());
            pos = frame_end + 4;
            good_end = pos;
        }
        let torn_bytes = (bytes.len() - good_end) as u64;
        if torn_bytes > 0 {
            // Compact the torn tail away so the next append starts at a
            // frame boundary.
            self.vfs.write_atomic(&self.name, &bytes[..good_end])?;
        }
        Ok(Recovered {
            records,
            torn_bytes,
        })
    }

    /// Replaces the whole log with `records` in one atomic write —
    /// compaction for a caller that has already folded history.
    ///
    /// # Errors
    ///
    /// [`StoreError::Oversized`] for any over-cap record; otherwise
    /// whatever the VFS reports.
    pub fn rewrite(&self, records: &[Vec<u8>]) -> Result<(), StoreError> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&LOG_MAGIC);
        buf.extend_from_slice(&LOG_VERSION.to_le_bytes());
        for payload in records {
            if payload.len() as u64 > MAX_RECORD_BYTES {
                return Err(StoreError::Oversized {
                    what: "log record",
                    declared: payload.len() as u64,
                    cap: MAX_RECORD_BYTES,
                });
            }
            let at = buf.len();
            buf.extend_from_slice(
                &u32::try_from(payload.len())
                    .expect("cap fits u32")
                    .to_le_bytes(),
            );
            buf.extend_from_slice(payload);
            let crc = crc32(&buf[at..]);
            buf.extend_from_slice(&crc.to_le_bytes());
        }
        self.vfs.write_atomic(&self.name, &buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultFs, FaultKnobs};

    fn mem() -> Arc<FaultFs> {
        Arc::new(FaultFs::new(FaultKnobs::quiet(1)))
    }

    #[test]
    fn append_and_recover_round_trip_in_order() {
        let fs = mem();
        let log = JournalLog::new(fs.clone(), "j.nsjl");
        assert_eq!(log.recover().unwrap(), Recovered::default());
        log.append_record(b"one").unwrap();
        log.append_record(b"").unwrap();
        log.append_record(b"three").unwrap();
        let got = log.recover().unwrap();
        assert_eq!(got.torn_bytes, 0);
        assert_eq!(
            got.records,
            vec![b"one".to_vec(), Vec::new(), b"three".to_vec()]
        );
    }

    #[test]
    fn every_truncation_recovers_a_clean_prefix_or_fails_closed() {
        let fs = mem();
        let log = JournalLog::new(fs.clone(), "j.nsjl");
        log.append_record(b"alpha").unwrap();
        log.append_record(b"beta").unwrap();
        log.append_record(b"gamma").unwrap();
        let full = fs.read("j.nsjl").unwrap();
        let whole = log.recover().unwrap().records;
        assert_eq!(whole.len(), 3);
        for cut in 0..full.len() {
            let fs2 = mem();
            fs2.set_durable("j.nsjl", full[..cut].to_vec());
            let log2 = JournalLog::new(fs2.clone(), "j.nsjl");
            let got = log2
                .recover()
                .expect("prefix truncation is always a torn tail");
            // The recovered records are a prefix of the full set.
            assert!(got.records.len() <= whole.len());
            assert_eq!(got.records[..], whole[..got.records.len()], "cut at {cut}");
            assert!(
                got.torn_bytes > 0 || got.records.len() < whole.len(),
                "cut at {cut} lost bytes without reporting a torn tail"
            );
            // Recovery compacted: a second recovery is clean and equal.
            let again = log2.recover().unwrap();
            assert_eq!(again.torn_bytes, 0, "cut at {cut}");
            assert_eq!(again.records, got.records, "cut at {cut}");
        }
    }

    #[test]
    fn mid_file_rot_fails_closed_with_typed_errors() {
        let fs = mem();
        let log = JournalLog::new(fs.clone(), "j.nsjl");
        log.append_record(b"alpha").unwrap();
        log.append_record(b"beta").unwrap();
        let full = fs.read("j.nsjl").unwrap();
        // Flip one payload bit of the *first* record: a complete frame
        // with a wrong CRC is rot, not a torn tail.
        let mut rotted = full.clone();
        rotted[HEADER_LEN + 5] ^= 0x10;
        fs.set_durable("j.nsjl", rotted);
        assert_eq!(
            log.recover(),
            Err(StoreError::CrcMismatch { what: "NSJL log" })
        );
        // Wrong magic.
        let mut bad = full.clone();
        bad[0] ^= 0xff;
        fs.set_durable("j.nsjl", bad);
        assert_eq!(
            log.recover(),
            Err(StoreError::BadMagic { what: "NSJL log" })
        );
        // Future version.
        let mut newer = full.clone();
        newer[4] = 0xee;
        fs.set_durable("j.nsjl", newer);
        assert!(matches!(
            log.recover(),
            Err(StoreError::BadVersion { version: 0xee, .. })
        ));
        // Forged huge length, re-sealed CRC: rejected before allocation.
        let mut forged = full[..HEADER_LEN].to_vec();
        let mut frame = u32::MAX.to_le_bytes().to_vec();
        let crc = crc32(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        forged.extend_from_slice(&frame);
        fs.set_durable("j.nsjl", forged);
        assert!(matches!(
            log.recover(),
            Err(StoreError::Oversized {
                what: "log record",
                ..
            })
        ));
    }

    #[test]
    fn killed_append_is_recovered_as_at_most_one_lost_record() {
        for seed in 0..48 {
            let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(seed)));
            let log = JournalLog::new(fs.clone(), "j.nsjl");
            log.append_record(b"stable-record").unwrap();
            fs.set_kill_at(1);
            log.append_record(b"doomed-record").unwrap_err();
            fs.crash();
            let got = log
                .recover()
                .expect("a killed append must stay recoverable");
            assert!(
                !got.records.is_empty(),
                "seed {seed}: the fsynced record survives"
            );
            assert_eq!(got.records[0], b"stable-record".to_vec());
            assert!(got.records.len() <= 2, "seed {seed}");
            if got.records.len() == 2 {
                assert_eq!(got.records[1], b"doomed-record".to_vec());
            }
        }
    }

    #[test]
    fn rewrite_compacts_to_an_equivalent_log() {
        let fs = mem();
        let log = JournalLog::new(fs.clone(), "j.nsjl");
        for i in 0..10u8 {
            log.append_record(&[i]).unwrap();
        }
        log.rewrite(&[vec![42], vec![43]]).unwrap();
        let got = log.recover().unwrap();
        assert_eq!(got.records, vec![vec![42], vec![43]]);
        assert_eq!(got.torn_bytes, 0);
    }
}
