//! [`DurableSession`]: the wire client's persistence hook, durably.
//!
//! A [`DurableSession`] implements [`SessionStore`] so a
//! [`nonstrict_wire::WireClient`] journals every state transition —
//! manifest pin, per-unit watermark advance, class reset, negotiated
//! truncation, generation rollover, completion — as one small `NSJL`
//! append, and stores each accepted unit's bytes in the `NSUC` cache.
//! After a process kill, [`DurableSession::warm_start`] rebuilds the
//! session from the **longest verified prefix** the store can prove:
//!
//! 1. recover the journal (torn tail truncated, rot fails closed);
//! 2. replay records in order — a *gap* in a class's unit sequence
//!    (an acked-but-never-durable append, i.e. an fsync lie) ends that
//!    class's trusted prefix at the gap, because everything after it
//!    was journaled under assumptions the disk silently dropped;
//! 3. load the stored manifest, check its CRC32 against the journal's
//!    pin, decode it, and check its epoch — any disagreement means the
//!    pin and the manifest file can't both be right, so neither is:
//!    cold start;
//! 4. walk each class's prefix through
//!    [`UnitCache::load_verified`] against the pinned manifest's
//!    digests — the first entry that is missing, rotted, mis-named, or
//!    poisoned ends the warm prefix for that class (the tail will be
//!    refetched from the wire, never executed from disk).
//!
//! The replay is fail-closed at every layer, but never fail-*stuck*: a
//! broken store yields a cold start, and a cold start always converges,
//! because the wire protocol re-delivers from unit 0.

use std::sync::Arc;

use nonstrict_wire::client::{SessionStore, StoreFault, WarmClass, WarmSession};
use nonstrict_wire::crc32;
use nonstrict_wire::manifest::UnitManifest;

use crate::cache::{CacheEntry, UnitCache};
use crate::log::JournalLog;
use crate::vfs::Vfs;
use crate::StoreError;

/// File name the session journal lives under.
pub const JOURNAL_NAME: &str = "session.nsjl";

/// File name the pinned manifest's bytes live under.
pub const MANIFEST_NAME: &str = "manifest.nsum";

const TAG_PIN: u8 = 0x01;
const TAG_UNIT: u8 = 0x02;
const TAG_RESET_CLASS: u8 = 0x03;
const TAG_TRUNCATE: u8 = 0x04;
const TAG_RESET_ALL: u8 = 0x05;
const TAG_COMPLETE: u8 = 0x06;

/// One journal record, decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Record {
    Pin {
        generation: u32,
        manifest_epoch: u64,
        manifest_crc: u32,
    },
    Unit {
        class: u32,
        unit: u32,
        epoch: u32,
        units: u32,
        crc: u32,
        size: u32,
    },
    ResetClass {
        class: u32,
        epoch: u32,
        units: u32,
    },
    Truncate {
        class: u32,
        delivered: u32,
    },
    ResetAll,
    Complete,
}

impl Record {
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(25);
        match self {
            Record::Pin {
                generation,
                manifest_epoch,
                manifest_crc,
            } => {
                buf.push(TAG_PIN);
                buf.extend_from_slice(&generation.to_le_bytes());
                buf.extend_from_slice(&manifest_epoch.to_le_bytes());
                buf.extend_from_slice(&manifest_crc.to_le_bytes());
            }
            Record::Unit {
                class,
                unit,
                epoch,
                units,
                crc,
                size,
            } => {
                buf.push(TAG_UNIT);
                buf.extend_from_slice(&class.to_le_bytes());
                buf.extend_from_slice(&unit.to_le_bytes());
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&units.to_le_bytes());
                buf.extend_from_slice(&crc.to_le_bytes());
                buf.extend_from_slice(&size.to_le_bytes());
            }
            Record::ResetClass {
                class,
                epoch,
                units,
            } => {
                buf.push(TAG_RESET_CLASS);
                buf.extend_from_slice(&class.to_le_bytes());
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&units.to_le_bytes());
            }
            Record::Truncate { class, delivered } => {
                buf.push(TAG_TRUNCATE);
                buf.extend_from_slice(&class.to_le_bytes());
                buf.extend_from_slice(&delivered.to_le_bytes());
            }
            Record::ResetAll => buf.push(TAG_RESET_ALL),
            Record::Complete => buf.push(TAG_COMPLETE),
        }
        buf
    }

    fn decode(bytes: &[u8]) -> Result<Record, StoreError> {
        let what = "NSJL session record";
        let need = |n: usize| -> Result<(), StoreError> {
            if bytes.len() == n {
                Ok(())
            } else {
                Err(StoreError::Malformed {
                    what,
                    why: "record length does not match its tag",
                })
            }
        };
        let u32_at = |i: usize| u32::from_le_bytes(bytes[i..i + 4].try_into().expect("len"));
        match bytes.first() {
            Some(&TAG_PIN) => {
                need(17)?;
                Ok(Record::Pin {
                    generation: u32_at(1),
                    manifest_epoch: u64::from_le_bytes(bytes[5..13].try_into().expect("len")),
                    manifest_crc: u32_at(13),
                })
            }
            Some(&TAG_UNIT) => {
                need(25)?;
                Ok(Record::Unit {
                    class: u32_at(1),
                    unit: u32_at(5),
                    epoch: u32_at(9),
                    units: u32_at(13),
                    crc: u32_at(17),
                    size: u32_at(21),
                })
            }
            Some(&TAG_RESET_CLASS) => {
                need(13)?;
                Ok(Record::ResetClass {
                    class: u32_at(1),
                    epoch: u32_at(5),
                    units: u32_at(9),
                })
            }
            Some(&TAG_TRUNCATE) => {
                need(9)?;
                Ok(Record::Truncate {
                    class: u32_at(1),
                    delivered: u32_at(5),
                })
            }
            Some(&TAG_RESET_ALL) => {
                need(1)?;
                Ok(Record::ResetAll)
            }
            Some(&TAG_COMPLETE) => {
                need(1)?;
                Ok(Record::Complete)
            }
            Some(_) => Err(StoreError::Malformed {
                what,
                why: "unknown record tag",
            }),
            None => Err(StoreError::Malformed {
                what,
                why: "empty record",
            }),
        }
    }
}

/// What a typed recovery found on disk — the testable face of
/// [`DurableSession::warm_start`], with the fail-closed decisions made
/// visible instead of collapsed into `None`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredSession {
    /// The pinned restructure generation.
    pub generation: u32,
    /// The pinned manifest's encoded bytes (CRC-checked against the
    /// journal pin and structurally decoded).
    pub manifest: Vec<u8>,
    /// Per-class verified warm prefixes.
    pub classes: Vec<WarmClass>,
    /// Bytes the journal recovery truncated as a torn tail.
    pub torn_bytes: u64,
    /// Unit records dropped during replay or cache verification:
    /// sequence gaps (fsync lies), CRC disagreements between journal
    /// and cache, and missing/rotted/poisoned cache entries.
    pub dropped_units: u64,
    /// Whether a Complete record survived.
    pub completed: bool,
}

/// Journal replay output: `(pin, classes, dropped, completed)` where
/// `pin` is `(generation, manifest_epoch, manifest_crc)`.
type Replayed = (Option<(u32, u64, u32)>, Vec<ReplayClass>, u64, bool);

#[derive(Debug, Clone, Default)]
struct ReplayClass {
    epoch: u32,
    units: u32,
    crcs: Vec<u32>,
    sizes: Vec<u32>,
    /// Set when a sequence gap ended this class's trusted prefix; no
    /// later record for the class may extend it.
    gapped: bool,
}

/// The durable session store: a [`JournalLog`] for watermarks and a
/// [`UnitCache`] for bytes, over one [`Vfs`].
pub struct DurableSession {
    log: JournalLog,
    cache: UnitCache,
    vfs: Arc<dyn Vfs>,
    /// Manifest epoch of the current pin; cache entries are sealed
    /// under it. Set by `on_pin` and by warm-start replay.
    pin_epoch: Option<u64>,
}

impl DurableSession {
    /// A session persisted in `vfs`.
    #[must_use]
    pub fn new(vfs: Arc<dyn Vfs>) -> DurableSession {
        DurableSession::split(vfs.clone(), vfs)
    }

    /// A session with the journal (and manifest) in one store and the
    /// unit cache in another — `--journal-dir` vs `--cache-dir`.
    #[must_use]
    pub fn split(journal_vfs: Arc<dyn Vfs>, cache_vfs: Arc<dyn Vfs>) -> DurableSession {
        DurableSession {
            log: JournalLog::new(journal_vfs.clone(), JOURNAL_NAME),
            cache: UnitCache::new(cache_vfs),
            vfs: journal_vfs,
            pin_epoch: None,
        }
    }

    fn append(&self, op: &'static str, record: &Record) -> Result<(), StoreFault> {
        self.log
            .append_record(&record.encode())
            .map_err(|e| StoreFault {
                op,
                detail: e.to_string(),
            })
    }

    /// Replays recovered journal records into per-class state.
    /// Returns `(pin, classes, dropped, completed)`.
    fn replay(records: &[Vec<u8>]) -> Result<Replayed, StoreError> {
        let mut pin: Option<(u32, u64, u32)> = None;
        let mut classes: Vec<ReplayClass> = Vec::new();
        let mut dropped: u64 = 0;
        let mut completed = false;
        for raw in records {
            match Record::decode(raw)? {
                Record::Pin {
                    generation,
                    manifest_epoch,
                    manifest_crc,
                } => {
                    pin = Some((generation, manifest_epoch, manifest_crc));
                }
                Record::Unit {
                    class,
                    unit,
                    epoch,
                    units,
                    crc,
                    size,
                } => {
                    let ci = class as usize;
                    if classes.len() <= ci {
                        classes.resize_with(ci + 1, ReplayClass::default);
                    }
                    let c = &mut classes[ci];
                    if c.gapped {
                        dropped += 1;
                        continue;
                    }
                    c.epoch = epoch;
                    c.units = units;
                    let delivered = c.crcs.len() as u32;
                    if unit > delivered {
                        // A record for a unit we never journaled the
                        // predecessor of: an earlier acked append was
                        // never durable. Everything from the gap on is
                        // untrusted for this class.
                        c.gapped = true;
                        dropped += 1;
                        continue;
                    }
                    // unit <= delivered: later records win (a
                    // re-delivery after truncation overwrites).
                    c.crcs.truncate(unit as usize);
                    c.sizes.truncate(unit as usize);
                    c.crcs.push(crc);
                    c.sizes.push(size);
                }
                Record::ResetClass {
                    class,
                    epoch,
                    units,
                } => {
                    let ci = class as usize;
                    if classes.len() <= ci {
                        classes.resize_with(ci + 1, ReplayClass::default);
                    }
                    classes[ci] = ReplayClass {
                        epoch,
                        units,
                        ..ReplayClass::default()
                    };
                }
                Record::Truncate { class, delivered } => {
                    let ci = class as usize;
                    if let Some(c) = classes.get_mut(ci) {
                        c.crcs.truncate(delivered as usize);
                        c.sizes.truncate(delivered as usize);
                    }
                }
                Record::ResetAll => {
                    pin = None;
                    classes.clear();
                    completed = false;
                }
                Record::Complete => completed = true,
            }
        }
        Ok((pin, classes, dropped, completed))
    }

    /// Typed recovery: everything [`warm_start`](SessionStore::warm_start)
    /// does, with the errors visible. `Ok(None)` means a clean cold
    /// start (no journal, or no pin survived); `Err` is an integrity
    /// failure a caller may want to distinguish (the trait impl maps
    /// both to a cold start).
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`] for journal rot, malformed records, a
    /// manifest that fails its pin CRC ([`StoreError::ManifestMismatch`]),
    /// or a manifest that no longer decodes.
    pub fn recover_session(&mut self) -> Result<Option<RecoveredSession>, StoreError> {
        let recovered = self.log.recover()?;
        let (pin, replayed, mut dropped, completed) = Self::replay(&recovered.records)?;
        let Some((generation, manifest_epoch, manifest_crc)) = pin else {
            return Ok(None);
        };
        let manifest_bytes = self.vfs.read(MANIFEST_NAME)?;
        let got = crc32(&manifest_bytes);
        if got != manifest_crc {
            return Err(StoreError::ManifestMismatch {
                want: manifest_crc,
                got,
            });
        }
        let manifest =
            UnitManifest::decode(&manifest_bytes).map_err(|_| StoreError::Malformed {
                what: "stored manifest",
                why: "pinned manifest bytes no longer decode",
            })?;
        if manifest.epoch != manifest_epoch {
            return Err(StoreError::Malformed {
                what: "stored manifest",
                why: "manifest epoch disagrees with the journal pin",
            });
        }
        self.pin_epoch = Some(manifest_epoch);
        let mut classes = Vec::with_capacity(replayed.len());
        for (ci, c) in replayed.into_iter().enumerate() {
            let digests = manifest.unit_digests.get(ci);
            let mut warm = WarmClass {
                epoch: c.epoch,
                units: c.units,
                crcs: Vec::new(),
                sizes: Vec::new(),
                payloads: Vec::new(),
            };
            for (ui, (&crc, &size)) in c.crcs.iter().zip(&c.sizes).enumerate() {
                let class_id = u32::try_from(ci).expect("class index fits u32");
                let unit_id = u32::try_from(ui).expect("unit index fits u32");
                // A journaled unit the manifest has no digest for can't
                // be verified; it ends the prefix.
                let Some(&expect) = digests.and_then(|d| d.get(ui)) else {
                    dropped += u64::from(c.crcs.len() as u32 - unit_id);
                    break;
                };
                let payload =
                    match self
                        .cache
                        .load_verified(manifest_epoch, class_id, unit_id, expect)
                    {
                        Ok(p) => p,
                        Err(_) => {
                            // Missing, rotted, mis-named, or poisoned:
                            // the warm prefix ends here; the tail is
                            // refetched from the wire.
                            dropped += u64::from(c.crcs.len() as u32 - unit_id);
                            break;
                        }
                    };
                if crc32(&payload) != crc || payload.len() as u32 != size {
                    // Journal and cache disagree about what was
                    // accepted; trust neither past this point.
                    dropped += u64::from(c.crcs.len() as u32 - unit_id);
                    break;
                }
                warm.crcs.push(crc);
                warm.sizes.push(size);
                warm.payloads.push(payload);
            }
            classes.push(warm);
        }
        Ok(Some(RecoveredSession {
            generation,
            manifest: manifest_bytes,
            classes,
            torn_bytes: recovered.torn_bytes,
            dropped_units: dropped,
            completed,
        }))
    }
}

impl SessionStore for DurableSession {
    fn warm_start(&mut self) -> Option<WarmSession> {
        // Fail closed to a cold start on any integrity failure — and
        // scrub the broken state so the restarted session journals onto
        // a clean slate instead of appending after rot.
        match self.recover_session() {
            Ok(Some(r)) => Some(WarmSession {
                generation: r.generation,
                manifest: r.manifest,
                classes: r.classes,
            }),
            Ok(None) => None,
            Err(_) => {
                let _ = self.vfs.remove(JOURNAL_NAME);
                let _ = self.vfs.remove(MANIFEST_NAME);
                let _ = self.cache.clear();
                self.pin_epoch = None;
                None
            }
        }
    }

    fn on_pin(&mut self, generation: u32, manifest: &[u8]) -> Result<(), StoreFault> {
        let fault = |detail: String| StoreFault {
            op: "on_pin",
            detail,
        };
        let decoded = UnitManifest::decode(manifest)
            .map_err(|e| fault(format!("manifest does not decode: {e:?}")))?;
        self.vfs
            .write_atomic(MANIFEST_NAME, manifest)
            .map_err(|e| fault(e.to_string()))?;
        self.append(
            "on_pin",
            &Record::Pin {
                generation,
                manifest_epoch: decoded.epoch,
                manifest_crc: crc32(manifest),
            },
        )?;
        self.pin_epoch = Some(decoded.epoch);
        Ok(())
    }

    fn on_unit(
        &mut self,
        class: u32,
        unit: u32,
        epoch: u32,
        units: u32,
        payload: &[u8],
    ) -> Result<(), StoreFault> {
        let Some(pin_epoch) = self.pin_epoch else {
            return Err(StoreFault {
                op: "on_unit",
                detail: "unit accepted before any manifest pin".to_owned(),
            });
        };
        let entry = CacheEntry::sealed(pin_epoch, class, unit, payload.to_vec());
        self.cache.put(&entry).map_err(|e| StoreFault {
            op: "on_unit",
            detail: e.to_string(),
        })?;
        // Bytes first, then the watermark: a crash between the two
        // leaves an orphan cache entry (harmless), never a watermark
        // that points at bytes that don't exist.
        self.append(
            "on_unit",
            &Record::Unit {
                class,
                unit,
                epoch,
                units,
                crc: crc32(payload),
                size: u32::try_from(payload.len()).unwrap_or(u32::MAX),
            },
        )
    }

    fn on_reset_class(&mut self, class: u32, epoch: u32, units: u32) -> Result<(), StoreFault> {
        self.append(
            "on_reset_class",
            &Record::ResetClass {
                class,
                epoch,
                units,
            },
        )
    }

    fn on_truncate(&mut self, class: u32, delivered: u32) -> Result<(), StoreFault> {
        self.append("on_truncate", &Record::Truncate { class, delivered })
    }

    fn on_reset_all(&mut self) -> Result<(), StoreFault> {
        self.append("on_reset_all", &Record::ResetAll)?;
        self.cache.clear().map_err(|e| StoreFault {
            op: "on_reset_all",
            detail: e.to_string(),
        })?;
        self.pin_epoch = None;
        Ok(())
    }

    fn on_complete(&mut self) -> Result<(), StoreFault> {
        self.append("on_complete", &Record::Complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultFs, FaultKnobs};

    fn payloads() -> Vec<Vec<Vec<u8>>> {
        vec![
            vec![b"c0u0".to_vec(), b"c0u1-longer".to_vec(), b"c0u2".to_vec()],
            vec![b"c1u0-prelude".to_vec(), b"c1u1".to_vec()],
        ]
    }

    fn manifest() -> UnitManifest {
        UnitManifest::from_payloads(&payloads(), 0xabcd_0001)
    }

    /// Streams the whole scripted session through a store; returns the
    /// number of mutating VFS ops it took.
    fn stream_all(fs: &Arc<FaultFs>) -> Result<u64, StoreFault> {
        let before = fs.ops();
        let mut s = DurableSession::new(fs.clone());
        s.on_pin(7, &manifest().encode())?;
        for (ci, class) in payloads().iter().enumerate() {
            let n = u32::try_from(class.len()).unwrap();
            for (ui, p) in class.iter().enumerate() {
                s.on_unit(ci as u32, ui as u32, 1, n, p)?;
            }
        }
        s.on_complete()?;
        Ok(fs.ops() - before)
    }

    #[test]
    fn full_session_round_trips_through_recovery() {
        let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(1)));
        stream_all(&fs).unwrap();
        let mut s = DurableSession::new(fs.clone());
        let r = s.recover_session().unwrap().unwrap();
        assert_eq!(r.generation, 7);
        assert!(r.completed);
        assert_eq!(r.torn_bytes, 0);
        assert_eq!(r.dropped_units, 0);
        assert_eq!(r.classes.len(), 2);
        for (ci, class) in payloads().iter().enumerate() {
            assert_eq!(r.classes[ci].payloads, *class);
            let crcs: Vec<u32> = class.iter().map(|p| crc32(p)).collect();
            assert_eq!(r.classes[ci].crcs, crcs);
        }
    }

    #[test]
    fn kill_at_every_op_recovers_a_verified_prefix() {
        let quiet = Arc::new(FaultFs::new(FaultKnobs::quiet(2)));
        let total = stream_all(&quiet).unwrap();
        let full = {
            let mut s = DurableSession::new(quiet.clone());
            s.recover_session().unwrap().unwrap()
        };
        for k in 1..=total {
            let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(1000 + k)));
            fs.set_kill_at(k);
            let died = stream_all(&fs).is_err();
            assert!(died, "kill at op {k} did not surface");
            fs.crash();
            let mut s = DurableSession::new(fs.clone());
            // Recovery may fail closed (e.g. manifest never made it);
            // what it must never do is hand back a wrong byte.
            if let Ok(Some(r)) = s.recover_session() {
                assert_eq!(r.generation, 7, "kill at op {k}");
                for (ci, warm) in r.classes.iter().enumerate() {
                    let want = &full.classes[ci];
                    let n = warm.payloads.len();
                    assert!(
                        n <= want.payloads.len()
                            && warm.payloads[..] == want.payloads[..n]
                            && warm.crcs[..] == want.crcs[..n],
                        "kill at op {k}: class {ci} prefix diverges"
                    );
                }
            }
        }
    }

    #[test]
    fn fsync_lie_on_a_unit_append_ends_the_prefix_at_the_gap() {
        // Find a seed where at least one unit append is acked but never
        // durable, then check the recovered prefix stops at the gap.
        let mut exercised = false;
        for seed in 0..64u64 {
            let fs = Arc::new(FaultFs::new(FaultKnobs {
                seed,
                lie_pm: 200_000,
                ..FaultKnobs::default()
            }));
            if stream_all(&fs).is_err() {
                continue;
            }
            fs.crash();
            let mut s = DurableSession::new(fs.clone());
            match s.recover_session() {
                Ok(Some(r)) => {
                    let full = payloads();
                    for (ci, warm) in r.classes.iter().enumerate() {
                        let n = warm.payloads.len();
                        assert!(
                            warm.payloads[..] == full[ci][..n],
                            "seed {seed}: class {ci} warm prefix diverges"
                        );
                        if n < full[ci].len() {
                            exercised = true;
                        }
                    }
                    if r.dropped_units > 0 {
                        exercised = true;
                    }
                }
                // A lie can also eat the pin or the manifest: that's a
                // (correct) cold start, or typed rot.
                Ok(None) | Err(_) => exercised = true,
            }
        }
        assert!(exercised, "no seed produced an observable fsync lie");
    }

    #[test]
    fn rotted_cache_entry_shrinks_the_warm_prefix() {
        let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(5)));
        stream_all(&fs).unwrap();
        // Rot one byte of class 0 unit 1's cache entry, post hoc.
        let name = UnitCache::entry_name(0, 1);
        let mut bytes = fs.durable(&name).unwrap();
        bytes[10] ^= 0x40;
        fs.set_durable(&name, bytes);
        let mut s = DurableSession::new(fs.clone());
        let r = s.recover_session().unwrap().unwrap();
        assert_eq!(
            r.classes[0].payloads.len(),
            1,
            "prefix must end before the rot"
        );
        assert_eq!(r.classes[0].payloads[0], payloads()[0][0]);
        assert_eq!(r.classes[1].payloads.len(), 2, "other classes unaffected");
        assert_eq!(r.dropped_units, 2);
    }

    #[test]
    fn manifest_pin_disagreement_fails_closed_and_warm_start_scrubs() {
        let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(6)));
        stream_all(&fs).unwrap();
        let mut bytes = fs.durable(MANIFEST_NAME).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs.set_durable(MANIFEST_NAME, bytes);
        let mut s = DurableSession::new(fs.clone());
        assert!(matches!(
            s.recover_session(),
            Err(StoreError::ManifestMismatch { .. })
        ));
        assert!(s.warm_start().is_none());
        // The scrub must leave a journal-free slate.
        assert!(fs.read(JOURNAL_NAME).is_err());
        assert!(fs.read(MANIFEST_NAME).is_err());
    }

    #[test]
    fn reset_all_discards_everything_pinned_before() {
        let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(7)));
        let mut s = DurableSession::new(fs.clone());
        s.on_pin(3, &manifest().encode()).unwrap();
        s.on_unit(0, 0, 1, 3, b"old-gen unit").unwrap();
        s.on_reset_all().unwrap();
        let m2 = UnitManifest::from_payloads(&payloads(), 0xabcd_0002);
        s.on_pin(4, &m2.encode()).unwrap();
        s.on_unit(0, 0, 1, 3, &payloads()[0][0]).unwrap();
        let mut s2 = DurableSession::new(fs.clone());
        let r = s2.recover_session().unwrap().unwrap();
        assert_eq!(r.generation, 4);
        assert_eq!(r.classes[0].payloads, vec![payloads()[0][0].clone()]);
    }

    #[test]
    fn truncate_record_rewinds_the_watermark() {
        let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(8)));
        let mut s = DurableSession::new(fs.clone());
        s.on_pin(1, &manifest().encode()).unwrap();
        for (ui, p) in payloads()[0].iter().enumerate() {
            s.on_unit(0, ui as u32, 1, 3, p).unwrap();
        }
        s.on_truncate(0, 1).unwrap();
        // Re-delivery after the negotiated truncation.
        s.on_unit(0, 1, 1, 3, &payloads()[0][1]).unwrap();
        let mut s2 = DurableSession::new(fs.clone());
        let r = s2.recover_session().unwrap().unwrap();
        assert_eq!(r.classes[0].payloads, payloads()[0][..2].to_vec());
    }
}
