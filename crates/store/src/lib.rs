//! # nonstrict-store
//!
//! Crash-safe durable state for the non-strict transfer client.
//!
//! The paper's premise is that a mobile client starts executing before
//! transfer completes — but on a real device the client *process* dies
//! too: power loss, OOM kill, app eviction. Every robustness tier below
//! this crate survives **connection** death; this crate makes the
//! session survive **process** death, and does it under a storage fault
//! model as hostile as the network one the chaos conductor already
//! composes.
//!
//! * [`vfs`] — a tiny [`vfs::Vfs`] trait with two implementations:
//!   [`vfs::RealFs`], which enforces the write-temp / fsync /
//!   atomic-rename discipline on a real directory, and [`vfs::FaultFs`],
//!   a seeded in-memory twin that models what a power cut actually does
//!   to undisciplined storage — torn writes (prefix truncation at any
//!   byte), fsync lies (acknowledged writes that never became durable,
//!   which is also how reordered writes surface: a later write persists
//!   while an earlier acked one vanishes), post-hoc bit rot, and a
//!   kill-at-operation counter that dies at exactly the Nth mutating
//!   VFS call.
//! * [`log`] — [`log::JournalLog`], an append-oriented CRC-framed record
//!   log (`NSJL`). Recovery scans frames front to back: a torn tail
//!   (the crash cut an append mid-frame) is truncated back to the last
//!   valid frame and reported; anything else — bad magic, bad version,
//!   a mid-file CRC mismatch, an oversized declared length — fails
//!   closed with a typed [`StoreError`]. Appends are the watermark
//!   path: one small record per delivered unit, never a rewrite of the
//!   whole journal.
//! * [`cache`] — [`cache::UnitCache`], the persistent content-addressed
//!   unit cache (`NSUC`). Every entry carries the NSUM byte-level
//!   content digest it was accepted under; reload re-verifies the
//!   stored payload against both the entry's own digest *and* the
//!   pinned manifest's expected digest, so a rotted or poisoned cache
//!   entry is detected and refetched — never executed.
//! * [`session`] — [`session::DurableSession`], the glue: it implements
//!   the wire client's [`nonstrict_wire::client::SessionStore`] hook so
//!   a [`nonstrict_wire::WireClient`] persists its manifest pin, its
//!   per-unit watermarks, and the unit bytes as it streams, and can
//!   warm-resume after a process kill from the longest verified prefix
//!   the store can prove.
//!
//! The crate sits directly above `nonstrict-wire` (for the shared CRC32
//! and the NSUM digest arithmetic) and below everything else, so both
//! the simulator's chaos conductor and the real wire client reach the
//! same durability code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod log;
pub mod session;
pub mod vfs;

pub use cache::{CacheEntry, UnitCache, CACHE_MAGIC, CACHE_VERSION};
pub use log::{JournalLog, Recovered, LOG_MAGIC, LOG_VERSION, MAX_RECORD_BYTES};
pub use session::{DurableSession, RecoveredSession, JOURNAL_NAME, MANIFEST_NAME};
pub use vfs::{FaultFs, FaultKnobs, RealFs, Vfs};

/// Why a store operation failed. Every on-disk artifact this crate
/// reads is hostile until proven otherwise: decode problems map to a
/// typed variant, never a panic, and integrity problems are
/// distinguished from plain I/O so callers can fail closed on the
/// former and retry the latter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The named file does not exist.
    NotFound {
        /// The missing name.
        name: String,
    },
    /// An operating-system I/O failure.
    Io {
        /// The VFS operation that failed.
        op: &'static str,
        /// The file it failed on.
        name: String,
        /// The OS error, stringified.
        detail: String,
    },
    /// The fault-injecting backend killed the process at this mutating
    /// operation (the storage crash-anywhere probe). Every later call
    /// on the same [`FaultFs`] keeps failing with this until
    /// [`FaultFs::crash`] restarts it.
    Killed {
        /// The 1-based mutating-operation index the kill fired at.
        op: u64,
    },
    /// A frame does not start with its expected magic.
    BadMagic {
        /// Which format was being decoded.
        what: &'static str,
    },
    /// A frame declares a version this reader does not understand.
    BadVersion {
        /// Which format was being decoded.
        what: &'static str,
        /// The declared version.
        version: u16,
    },
    /// The bytes end before the declared content does (torn write).
    Truncated {
        /// Which format was being decoded.
        what: &'static str,
    },
    /// A CRC32 trailer does not match the content (bit rot or forgery).
    CrcMismatch {
        /// Which format was being decoded.
        what: &'static str,
    },
    /// A declared length exceeds its sanity cap — rejected before any
    /// allocation, exactly like the NSJR and NSUM decoders.
    Oversized {
        /// Which field declared the length.
        what: &'static str,
        /// The declared value.
        declared: u64,
        /// The cap it violated.
        cap: u64,
    },
    /// Structurally impossible content.
    Malformed {
        /// Which format was being decoded.
        what: &'static str,
        /// What was wrong with it.
        why: &'static str,
    },
    /// A cache entry's payload does not hash to the digest it claims,
    /// or claims a digest the pinned manifest disagrees with. The bytes
    /// are not what was accepted: refetch, never execute.
    DigestMismatch {
        /// Class the entry claims.
        class: u32,
        /// Unit the entry claims.
        unit: u32,
        /// Digest expected (entry header or manifest).
        want: u32,
        /// Digest the stored payload actually hashes to.
        got: u32,
    },
    /// The stored manifest bytes do not CRC to the journal's pinned
    /// manifest digest — the pin and the manifest file disagree, so
    /// neither can be trusted.
    ManifestMismatch {
        /// CRC the journal pinned.
        want: u32,
        /// CRC the stored manifest bytes actually have.
        got: u32,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NotFound { name } => write!(f, "{name}: not found"),
            StoreError::Io { op, name, detail } => write!(f, "{op} {name}: {detail}"),
            StoreError::Killed { op } => write!(f, "killed at store operation {op}"),
            StoreError::BadMagic { what } => write!(f, "{what}: magic mismatch"),
            StoreError::BadVersion { what, version } => {
                write!(f, "{what}: unsupported version {version}")
            }
            StoreError::Truncated { what } => write!(f, "{what}: truncated (torn write)"),
            StoreError::CrcMismatch { what } => write!(f, "{what}: CRC mismatch"),
            StoreError::Oversized {
                what,
                declared,
                cap,
            } => write!(f, "oversized {what}: declared {declared}, cap {cap}"),
            StoreError::Malformed { what, why } => write!(f, "malformed {what}: {why}"),
            StoreError::DigestMismatch {
                class,
                unit,
                want,
                got,
            } => write!(
                f,
                "cache entry class {class} unit {unit}: digest {got:#010x} != expected {want:#010x}"
            ),
            StoreError::ManifestMismatch { want, got } => {
                write!(f, "stored manifest CRC {got:#010x} != pinned {want:#010x}")
            }
        }
    }
}

impl std::error::Error for StoreError {}
