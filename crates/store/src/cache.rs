//! The `NSUC` persistent content-addressed unit cache.
//!
//! Every unit the wire client accepts was verified against the pinned
//! NSUM manifest at the unit boundary; this cache makes those bytes
//! survive a process kill **without weakening that guarantee**. Each
//! entry stores the digest it was accepted under, and
//! [`UnitCache::load_verified`] re-verifies on every reload:
//!
//! 1. the entry frame's CRC32 trailer (rot anywhere in the frame);
//! 2. the identity fields match what the caller is asking for (an
//!    entry renamed over another is caught);
//! 3. the stored payload re-hashes to the entry's own digest (rot that
//!    happens to keep the CRC is still caught — CRC and FNV disagree
//!    about every single-bit flip pattern);
//! 4. the entry's digest equals the **pinned manifest's** expected
//!    digest (a self-consistent but poisoned entry — wrong bytes
//!    sealed under their own honest digest — is caught here).
//!
//! Any failure is a typed [`StoreError`], and the caller's move is
//! always the same: drop the entry from the warm prefix and refetch it
//! from the wire. A cache can lose bytes; it can never inject them.

use std::sync::Arc;

use nonstrict_wire::crc32;
use nonstrict_wire::manifest::content_digest_of;

use crate::vfs::Vfs;
use crate::StoreError;

/// Cache-entry magic.
pub const CACHE_MAGIC: [u8; 4] = *b"NSUC";

/// Current cache-entry format version.
pub const CACHE_VERSION: u16 = 1;

/// Sanity cap on one cached payload: same dimension as a wire frame.
const MAX_PAYLOAD_BYTES: u64 = 1 << 24;

const HEADER_LEN: usize = 4 + 2 + 8 + 4 + 4 + 4 + 4; // magic version epoch class unit digest len

/// One decoded cache entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// Manifest epoch the digest is bound to.
    pub manifest_epoch: u64,
    /// Class the unit belongs to.
    pub class: u32,
    /// Unit index within the class.
    pub unit: u32,
    /// The NSUM byte-level content digest the payload was accepted
    /// under.
    pub digest: u32,
    /// The unit's bytes.
    pub payload: Vec<u8>,
}

impl CacheEntry {
    /// Builds an entry for `payload`, computing its content digest.
    #[must_use]
    pub fn sealed(manifest_epoch: u64, class: u32, unit: u32, payload: Vec<u8>) -> CacheEntry {
        let digest = content_digest_of(manifest_epoch, class, unit, &payload);
        CacheEntry {
            manifest_epoch,
            class,
            unit,
            digest,
            payload,
        }
    }

    /// Serializes the entry: header, payload, CRC32 trailer over every
    /// preceding byte.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(HEADER_LEN + self.payload.len() + 4);
        buf.extend_from_slice(&CACHE_MAGIC);
        buf.extend_from_slice(&CACHE_VERSION.to_le_bytes());
        buf.extend_from_slice(&self.manifest_epoch.to_le_bytes());
        buf.extend_from_slice(&self.class.to_le_bytes());
        buf.extend_from_slice(&self.unit.to_le_bytes());
        buf.extend_from_slice(&self.digest.to_le_bytes());
        buf.extend_from_slice(
            &u32::try_from(self.payload.len())
                .expect("payload fits u32")
                .to_le_bytes(),
        );
        buf.extend_from_slice(&self.payload);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and integrity-checks an entry frame, including the
    /// payload-rehash self check (step 3 of the module contract).
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`] variants for every defect — an entry
    /// either decodes to exactly what was sealed, or not at all.
    pub fn decode(bytes: &[u8]) -> Result<CacheEntry, StoreError> {
        let what = "NSUC cache entry";
        if bytes.len() < HEADER_LEN + 4 {
            return Err(StoreError::Truncated { what });
        }
        if bytes[..4] != CACHE_MAGIC {
            return Err(StoreError::BadMagic { what });
        }
        let version = u16::from_le_bytes(bytes[4..6].try_into().expect("len"));
        if version != CACHE_VERSION {
            return Err(StoreError::BadVersion { what, version });
        }
        let declared = u32::from_le_bytes(bytes[26..30].try_into().expect("len"));
        if u64::from(declared) > MAX_PAYLOAD_BYTES {
            return Err(StoreError::Oversized {
                what: "cache payload",
                declared: u64::from(declared),
                cap: MAX_PAYLOAD_BYTES,
            });
        }
        let expect_len = HEADER_LEN + declared as usize + 4;
        if bytes.len() < expect_len {
            return Err(StoreError::Truncated { what });
        }
        if bytes.len() > expect_len {
            return Err(StoreError::Malformed {
                what,
                why: "trailing bytes after content",
            });
        }
        let (content, trailer) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(trailer.try_into().expect("len"));
        if crc32(content) != stored {
            return Err(StoreError::CrcMismatch { what });
        }
        let manifest_epoch = u64::from_le_bytes(bytes[6..14].try_into().expect("len"));
        let class = u32::from_le_bytes(bytes[14..18].try_into().expect("len"));
        let unit = u32::from_le_bytes(bytes[18..22].try_into().expect("len"));
        let digest = u32::from_le_bytes(bytes[22..26].try_into().expect("len"));
        let payload = bytes[HEADER_LEN..HEADER_LEN + declared as usize].to_vec();
        let rehash = content_digest_of(manifest_epoch, class, unit, &payload);
        if rehash != digest {
            return Err(StoreError::DigestMismatch {
                class,
                unit,
                want: digest,
                got: rehash,
            });
        }
        Ok(CacheEntry {
            manifest_epoch,
            class,
            unit,
            digest,
            payload,
        })
    }
}

/// The persistent unit cache over one [`Vfs`].
#[derive(Clone)]
pub struct UnitCache {
    vfs: Arc<dyn Vfs>,
}

impl UnitCache {
    /// A cache stored in `vfs`.
    #[must_use]
    pub fn new(vfs: Arc<dyn Vfs>) -> UnitCache {
        UnitCache { vfs }
    }

    /// The file name an entry lives under.
    #[must_use]
    pub fn entry_name(class: u32, unit: u32) -> String {
        format!("c{class}-u{unit}.nsuc")
    }

    /// Stores one accepted unit durably (atomic replace).
    ///
    /// # Errors
    ///
    /// Whatever the VFS reports.
    pub fn put(&self, entry: &CacheEntry) -> Result<(), StoreError> {
        self.vfs
            .write_atomic(&Self::entry_name(entry.class, entry.unit), &entry.encode())
    }

    /// Loads one unit and runs the full verification ladder against
    /// the pinned manifest's `expect` digest. Returns the payload only
    /// when every check passes.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when absent; decode errors per
    /// [`CacheEntry::decode`]; [`StoreError::DigestMismatch`] when the
    /// entry is self-consistent but disagrees with the manifest, or
    /// claims a different identity than asked for.
    pub fn load_verified(
        &self,
        manifest_epoch: u64,
        class: u32,
        unit: u32,
        expect: u32,
    ) -> Result<Vec<u8>, StoreError> {
        let bytes = self.vfs.read(&Self::entry_name(class, unit))?;
        let entry = CacheEntry::decode(&bytes)?;
        if entry.manifest_epoch != manifest_epoch || entry.class != class || entry.unit != unit {
            return Err(StoreError::Malformed {
                what: "NSUC cache entry",
                why: "entry identity does not match its name",
            });
        }
        if entry.digest != expect {
            // Self-consistent, wrong program: poisoned (or stale
            // epoch). Never execute it.
            return Err(StoreError::DigestMismatch {
                class,
                unit,
                want: expect,
                got: entry.digest,
            });
        }
        Ok(entry.payload)
    }

    /// Removes every cache entry (generation rollover: nothing under
    /// the old layout may survive into the new one).
    ///
    /// # Errors
    ///
    /// Whatever the VFS reports.
    pub fn clear(&self) -> Result<(), StoreError> {
        for name in self.vfs.list()? {
            if name.ends_with(".nsuc") {
                self.vfs.remove(&name)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{FaultFs, FaultKnobs};

    fn entry() -> CacheEntry {
        CacheEntry::sealed(0xfeed_beef_cafe_0001, 3, 7, b"unit payload bytes".to_vec())
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let e = entry();
        assert_eq!(CacheEntry::decode(&e.encode()).unwrap(), e);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = entry().encode();
        for i in 0..bytes.len() {
            for bit in [0x01u8, 0x80u8] {
                let mut bad = bytes.clone();
                bad[i] ^= bit;
                assert!(
                    CacheEntry::decode(&bad).is_err(),
                    "flip at byte {i} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = entry().encode();
        for n in 0..bytes.len() {
            assert!(
                CacheEntry::decode(&bytes[..n]).is_err(),
                "truncation to {n} bytes went undetected"
            );
        }
        let mut padded = bytes;
        padded.push(0);
        assert!(matches!(
            CacheEntry::decode(&padded),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn forged_length_is_oversized_before_allocation() {
        let mut bytes = entry().encode();
        bytes[26..30].copy_from_slice(&u32::MAX.to_le_bytes());
        let crc_at = bytes.len() - 4;
        let crc = crc32(&bytes[..crc_at]);
        bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            CacheEntry::decode(&bytes),
            Err(StoreError::Oversized {
                what: "cache payload",
                ..
            })
        ));
    }

    #[test]
    fn poisoned_entry_is_rejected_against_the_manifest() {
        let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(2)));
        let cache = UnitCache::new(fs.clone());
        let honest = entry();
        cache.put(&honest).unwrap();
        assert_eq!(
            cache
                .load_verified(honest.manifest_epoch, 3, 7, honest.digest)
                .unwrap(),
            honest.payload
        );
        // A forged payload sealed under its own honest digest passes
        // the self checks — the manifest comparison is what stops it.
        let poisoned = CacheEntry::sealed(
            honest.manifest_epoch,
            3,
            7,
            b"wrong program entirely".to_vec(),
        );
        cache.put(&poisoned).unwrap();
        assert!(matches!(
            cache.load_verified(honest.manifest_epoch, 3, 7, honest.digest),
            Err(StoreError::DigestMismatch { .. })
        ));
        // An entry copied over another name is caught by identity.
        let other = CacheEntry::sealed(honest.manifest_epoch, 9, 9, b"other".to_vec());
        fs.set_durable(&UnitCache::entry_name(3, 7), other.encode());
        fs.crash();
        assert!(matches!(
            cache.load_verified(honest.manifest_epoch, 3, 7, honest.digest),
            Err(StoreError::Malformed { .. })
        ));
    }

    #[test]
    fn clear_removes_only_cache_entries() {
        let fs = Arc::new(FaultFs::new(FaultKnobs::quiet(4)));
        let cache = UnitCache::new(fs.clone());
        cache.put(&entry()).unwrap();
        fs.write_atomic("session.nsjl", b"keep me").unwrap();
        cache.clear().unwrap();
        assert_eq!(fs.list().unwrap(), vec!["session.nsjl".to_owned()]);
    }
}
