//! Reordering-pipeline costs: static first-use estimation, class-file
//! restructuring, and global-data partitioning — the work a non-strict
//! server does once per application.

use nonstrict_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonstrict_reorder::{partition_app, restructure, static_first_use, static_first_use_plain};

fn bench_scg(c: &mut Criterion) {
    let mut group = c.benchmark_group("static_first_use");
    for name in ["Hanoi", "JHLZip", "BIT", "Jess"] {
        let app = nonstrict_workloads::build_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::new("loop_aware", name), &app, |b, app| {
            b.iter(|| static_first_use(&app.program).order().len())
        });
        group.bench_with_input(BenchmarkId::new("plain_dfs", name), &app, |b, app| {
            b.iter(|| static_first_use_plain(&app.program).order().len())
        });
    }
    group.finish();
}

fn bench_restructure(c: &mut Criterion) {
    let mut group = c.benchmark_group("restructure");
    for name in ["JHLZip", "Jess"] {
        let app = nonstrict_workloads::build_by_name(name).unwrap();
        let order = static_first_use(&app.program);
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| restructure(app, &order).classes.len())
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition_app");
    for name in ["JHLZip", "TestDes", "Jess"] {
        let app = nonstrict_workloads::build_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| partition_app(app).len())
        });
    }
    group.finish();
}

fn bench_serialization(c: &mut Criterion) {
    let mut group = c.benchmark_group("classfile_to_bytes");
    let app = nonstrict_workloads::jess::build();
    group.bench_function("jess_all_classes", |b| {
        b.iter(|| {
            app.classes
                .iter()
                .map(|c| c.to_bytes().len())
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_scg,
    bench_restructure,
    bench_partition,
    bench_serialization
);
criterion_main!(benches);
