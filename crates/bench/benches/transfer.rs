//! Transfer-engine and co-simulation speed: the cost of simulating one
//! remote execution under each transfer policy.

use nonstrict_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonstrict_bytecode::Input;
use nonstrict_core::model::{
    DataLayout, ExecutionModel, OrderingSource, SimConfig, TransferPolicy, VerifyMode,
};
use nonstrict_core::sim::Session;
use nonstrict_netsim::Link;

fn session(name: &str) -> Session {
    Session::new(nonstrict_workloads::build_by_name(name).unwrap()).unwrap()
}

fn bench_session_setup(c: &mut Criterion) {
    let mut group = c.benchmark_group("session_new");
    group.sample_size(10);
    for name in ["Hanoi", "JHLZip"] {
        let app = nonstrict_workloads::build_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| Session::new(app.clone()).unwrap().app.total_size())
        });
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_modem");
    group.sample_size(20);
    let sessions: Vec<Session> = ["Hanoi", "JHLZip", "Jess"]
        .iter()
        .map(|n| session(n))
        .collect();
    let policies: [(&str, TransferPolicy); 4] = [
        ("strict_seq", TransferPolicy::Strict),
        ("parallel_4", TransferPolicy::Parallel { limit: 4 }),
        (
            "parallel_inf",
            TransferPolicy::Parallel { limit: usize::MAX },
        ),
        ("interleaved", TransferPolicy::Interleaved),
    ];
    for s in &sessions {
        for (label, transfer) in policies {
            let config = SimConfig {
                link: Link::MODEM_28_8,
                ordering: OrderingSource::TestProfile,
                transfer,
                data_layout: DataLayout::Whole,
                execution: ExecutionModel::NonStrict,
                faults: None,
                verify: VerifyMode::Off,
                outages: None,
                replicas: None,
                byzantine: None,
            };
            group.bench_function(BenchmarkId::new(label, &s.app.name), |b| {
                b.iter(|| s.simulate(Input::Test, &config).total_cycles)
            });
        }
    }
    group.finish();
}

fn bench_partitioned(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_partitioned");
    group.sample_size(20);
    let s = session("Jess");
    let config = SimConfig {
        link: Link::MODEM_28_8,
        ordering: OrderingSource::StaticCallGraph,
        transfer: TransferPolicy::Parallel { limit: 4 },
        data_layout: DataLayout::Partitioned,
        execution: ExecutionModel::NonStrict,
        faults: None,
        verify: VerifyMode::Off,
        outages: None,
        replicas: None,
        byzantine: None,
    };
    group.bench_function("jess_par4_dp", |b| {
        b.iter(|| s.simulate(Input::Test, &config).total_cycles)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_session_setup,
    bench_policies,
    bench_partitioned
);
criterion_main!(benches);
