//! One Criterion benchmark per paper table and figure: each measurement
//! regenerates the corresponding experiment over the full six-benchmark
//! suite. `cargo bench -p nonstrict-bench --bench tables` therefore both
//! times and re-derives every number EXPERIMENTS.md reports; the `paper`
//! binary prints the same rows human-readably.

use nonstrict_bench::harness::{criterion_group, criterion_main, Criterion};
use nonstrict_core::experiment::{self, Suite};
use nonstrict_core::model::DataLayout;
use nonstrict_netsim::Link;

fn bench_tables(c: &mut Criterion) {
    // One suite for every table: building it is itself measured first.
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);

    group.bench_function("suite_build_and_profile", |b| {
        b.iter(|| Suite::new().unwrap().sessions.len())
    });

    let suite = Suite::new().unwrap();

    group.bench_function("table2_statistics", |b| {
        b.iter(|| experiment::table2(&suite).len())
    });
    group.bench_function("table3_base_case", |b| {
        b.iter(|| experiment::table3(&suite).len())
    });
    group.bench_function("table4_invocation_latency", |b| {
        b.iter(|| experiment::table4(&suite).len())
    });
    group.bench_function("table5_parallel_t1", |b| {
        b.iter(|| {
            experiment::parallel_table(&suite, Link::T1, DataLayout::Whole)
                .rows
                .len()
        })
    });
    group.bench_function("table6_parallel_modem", |b| {
        b.iter(|| {
            experiment::parallel_table(&suite, Link::MODEM_28_8, DataLayout::Whole)
                .rows
                .len()
        })
    });
    group.bench_function("table7_interleaved", |b| {
        b.iter(|| {
            experiment::interleaved_table(&suite, DataLayout::Whole)
                .rows
                .len()
        })
    });
    group.bench_function("table8_pool_breakdown", |b| {
        b.iter(|| experiment::table8(&suite).len())
    });
    group.bench_function("table9_data_breakdown", |b| {
        b.iter(|| experiment::table9(&suite).len())
    });
    group.bench_function("table10_partitioned", |b| {
        b.iter(|| {
            let (p, i) = experiment::table10(&suite);
            p.rows.len() + i.rows.len()
        })
    });
    group.bench_function("fig6_summary", |b| {
        b.iter(|| experiment::fig6(&suite).len())
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
