//! Ablation benches for the design choices DESIGN.md calls out. Each
//! measurement simulates a full remote execution under one ablated
//! design point, so Criterion's reports double as a quality comparison
//! (the simulated `total_cycles` each variant returns is printed by the
//! companion integration test `tests/ablation_quality.rs`).

use nonstrict_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nonstrict_bytecode::Input;
use nonstrict_core::model::{
    DataLayout, ExecutionModel, OrderingSource, SimConfig, TransferPolicy, VerifyMode,
};
use nonstrict_core::sim::Session;
use nonstrict_netsim::schedule::ParallelSchedule;
use nonstrict_netsim::Link;
use nonstrict_netsim::{class_units, greedy_schedule, ParallelEngine, TransferEngine, Weights};
use nonstrict_reorder::{restructure, static_first_use, static_first_use_plain};

/// SCG loop heuristics vs plain DFS: ordering construction cost.
fn bench_scg_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_scg_heuristics");
    let app = nonstrict_workloads::jess::build();
    group.bench_function("loop_aware", |b| {
        b.iter(|| static_first_use(&app.program).order().len())
    });
    group.bench_function("plain_dfs", |b| {
        b.iter(|| static_first_use_plain(&app.program).order().len())
    });
    group.finish();
}

/// Delimiter granularity: method-level (the paper's choice) vs a model
/// of basic-block-level delimiters (~1 delimiter per 6 instructions,
/// the overhead §4 argues is not worth it).
fn bench_delimiter_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delimiters");
    group.sample_size(20);
    let app = nonstrict_workloads::jhlzip::build();
    let order = static_first_use(&app.program);
    let r = restructure(&app, &order);
    for (label, delim) in [("method_level", 2u64), ("block_level_model", 12u64)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let units = class_units(&app, &r, None, delim);
                let schedule = greedy_schedule(&app, &order, &units, &r.layouts, Weights::Static);
                let mut e = ParallelEngine::new(Link::MODEM_28_8, units, &schedule, 4);
                e.finish_time()
            })
        });
    }
    group.finish();
}

/// Greedy dependency schedule vs naive zero thresholds (everything
/// starts immediately, bandwidth splinters).
fn bench_schedule_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_schedule");
    group.sample_size(20);
    let app = nonstrict_workloads::bit::build();
    let order = static_first_use(&app.program);
    let r = restructure(&app, &order);
    let units = class_units(&app, &r, None, 2);
    let greedy = greedy_schedule(&app, &order, &units, &r.layouts, Weights::Static);
    let naive = ParallelSchedule {
        class_order: greedy.class_order.clone(),
        thresholds: vec![0; units.len()],
    };
    for (label, schedule) in [("greedy", &greedy), ("naive_zero", &naive)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), schedule, |b, s| {
            b.iter(|| {
                let mut e = ParallelEngine::new(Link::MODEM_28_8, units.clone(), s, usize::MAX);
                e.unit_ready(0, 1, 0)
            })
        });
    }
    group.finish();
}

/// Execution model ablation: strict vs non-strict gating under identical
/// transfer (the core claim of the paper, as a measured pair).
fn bench_execution_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_execution_model");
    group.sample_size(20);
    let s = Session::new(nonstrict_workloads::jhlzip::build()).unwrap();
    for (label, execution) in [
        ("strict_gating", ExecutionModel::Strict),
        ("non_strict", ExecutionModel::NonStrict),
    ] {
        let config = SimConfig {
            link: Link::MODEM_28_8,
            ordering: OrderingSource::StaticCallGraph,
            transfer: TransferPolicy::Parallel { limit: 4 },
            data_layout: DataLayout::Whole,
            execution,
            faults: None,
            verify: VerifyMode::Off,
            outages: None,
            replicas: None,
            byzantine: None,
        };
        group.bench_function(label, |b| {
            b.iter(|| s.simulate(Input::Test, &config).total_cycles)
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_scg_heuristics,
    bench_delimiter_granularity,
    bench_schedule_ablation,
    bench_execution_model
);
criterion_main!(benches);
