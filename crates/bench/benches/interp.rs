//! Interpreter and profiling throughput: how fast the BIT-analog
//! executes the six benchmarks.

use nonstrict_bench::harness::{
    criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use nonstrict_bytecode::{Input, Interpreter};
use nonstrict_profile::collect;

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(10);
    for app in nonstrict_workloads::build_all() {
        // Measure instructions per second on the Train input (smaller,
        // keeps bench wall time sane for BIT's 5.6M instructions).
        let mut probe = Interpreter::new(&app.program);
        probe.run(app.args(Input::Train), &mut ()).unwrap();
        group.throughput(Throughput::Elements(probe.executed()));
        group.bench_with_input(BenchmarkId::new("train_run", &app.name), &app, |b, app| {
            b.iter(|| {
                let mut interp = Interpreter::new(&app.program);
                interp.run(app.args(Input::Train), &mut ()).unwrap();
                interp.executed()
            })
        });
    }
    group.finish();
}

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("profile_collect");
    group.sample_size(10);
    for name in ["Hanoi", "JHLZip", "TestDes"] {
        let app = nonstrict_workloads::build_by_name(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &app, |b, app| {
            b.iter(|| {
                collect(app, Input::Train)
                    .unwrap()
                    .trace
                    .total_instructions()
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_build");
    group.sample_size(10);
    for name in ["Hanoi", "JHLZip", "Jess"] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                nonstrict_workloads::build_by_name(name)
                    .unwrap()
                    .total_size()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interpreter, bench_profiling, bench_build);
criterion_main!(benches);
