//! Benchmark harness crate (see benches/ and src/bin/paper.rs).
