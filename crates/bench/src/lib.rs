//! Benchmark harness crate (see benches/ and src/bin/paper.rs).
//!
//! The `harness` module is a small, self-contained stand-in for the
//! subset of the `criterion` API the benches use, so the benchmark
//! suite builds and runs in environments without access to external
//! crates. It measures wall-clock time with warmup and a configurable
//! sample count and prints a `name: median time [min .. max]` line per
//! benchmark.

pub mod harness;
