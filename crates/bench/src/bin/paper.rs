//! Regenerates every table and figure of the ASPLOS '98 paper.
//!
//! ```text
//! paper all          # every table + Figure 6
//! paper table2       # one table (2..=10)
//! paper table10
//! paper fig6
//! paper summary      # headline claims vs measured
//! paper faults       # fault sweep: resilience + graceful degradation
//! paper verify       # verification sweep: verified-prefix streaming cost
//! paper outage       # outage sweep: session checkpoint/resume cost
//! paper replicas     # replica sweep: mirror routing, hedging, failover
//! paper byzantine    # byzantine sweep: manifest digests, audits, quarantine
//! paper overload     # overload sweep: fair-share scheduling + load shedding
//! paper chaos        # chaos sweep: composed cross-layer fault scenarios
//! paper chaos --repro r.nscr  # replay one chaos repro artifact
//! paper csv results/ # machine-readable export of every table
//!
//! paper serve [bench..] [--addr A] [--ordering O] [--pace-us N] ...
//!                    # stream restructured classes over real TCP;
//!                    # SIGTERM drains gracefully at unit boundaries
//! paper loadgen <bench> --clients N [--chaos --loss PM ...]
//!                    # replay a fleet arrival schedule over loopback
//!                    # (self-serving by default; --addr to aim at a
//!                    # running `paper serve`)
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use nonstrict_core::experiment::{self, paper, Suite};
use nonstrict_core::metrics::mean;
use nonstrict_core::model::DataLayout;
use nonstrict_core::report;
use nonstrict_netsim::Link;
use nonstrict_wire::{
    config, ChaosConfig, ChaosProxy, ClientConfig, FaultKnobs, LoadgenConfig, ServerConfig,
    WireServer,
};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let rest: Vec<String> = std::env::args().skip(2).collect();
    match arg.as_str() {
        "serve" => return cmd_serve(&rest),
        "loadgen" => return cmd_loadgen(&rest),
        _ => {}
    }
    // `paper chaos --repro <file>` replays one serialized scenario: it
    // builds only that scenario's benchmark, not the whole suite.
    if arg == "chaos" && std::env::args().nth(2).as_deref() == Some("--repro") {
        let Some(path) = std::env::args().nth(3) else {
            eprintln!("usage: paper chaos --repro <file.nscr>");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match nonstrict_core::chaos::replay_repro(&text) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("bad repro artifact {path}: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    eprintln!("building and profiling the six benchmarks...");
    let suite = Suite::new().expect("benchmarks build and run");
    match arg.as_str() {
        "all" => println!("{}", report::render_all(&suite)),
        "table2" => println!("{}", report::render_table2(&suite)),
        "table3" => println!("{}", report::render_table3(&experiment::table3(&suite))),
        "table4" => println!("{}", report::render_table4(&experiment::table4(&suite))),
        "table5" => println!(
            "{}",
            report::render_parallel(&experiment::parallel_table(
                &suite,
                Link::T1,
                DataLayout::Whole
            ))
        ),
        "table6" => println!(
            "{}",
            report::render_parallel(&experiment::parallel_table(
                &suite,
                Link::MODEM_28_8,
                DataLayout::Whole
            ))
        ),
        "table7" => {
            let t = experiment::interleaved_table(&suite, DataLayout::Whole);
            let p: Vec<[f64; 6]> = paper::TABLE7
                .iter()
                .map(|r| [r.0, r.1, r.2, r.3, r.4, r.5])
                .collect();
            println!(
                "{}",
                report::render_interleaved(&t, "Table 7: Interleaved File Transfer", Some(&p))
            );
        }
        "table8" => println!("{}", report::render_table8(&experiment::table8(&suite))),
        "table9" => println!("{}", report::render_table9(&experiment::table9(&suite))),
        "table10" => {
            let (tp, ti) = experiment::table10(&suite);
            let pp: Vec<[f64; 6]> = paper::TABLE10.iter().map(|r| r.0).collect();
            let pi: Vec<[f64; 6]> = paper::TABLE10.iter().map(|r| r.1).collect();
            println!(
                "{}",
                report::render_interleaved(
                    &tp,
                    "Table 10a: Parallel(4) + Data Partitioning",
                    Some(&pp)
                )
            );
            println!(
                "{}",
                report::render_interleaved(
                    &ti,
                    "Table 10b: Interleaved + Data Partitioning",
                    Some(&pi)
                )
            );
        }
        "fig6" => println!("{}", report::render_fig6(&experiment::fig6(&suite))),
        "summary" => print_summary(&suite),
        "faults" => println!(
            "{}",
            report::render_fault_sweep(&experiment::faults::fault_sweep(&suite))
        ),
        "verify" => println!(
            "{}",
            report::render_verify_sweep(&experiment::verify::verify_sweep(&suite))
        ),
        "outage" => println!(
            "{}",
            report::render_outage_sweep(&experiment::outage::outage_sweep(&suite))
        ),
        "replicas" => println!(
            "{}",
            report::render_replica_sweep(&experiment::replica::replica_sweep(&suite))
        ),
        "byzantine" => println!(
            "{}",
            report::render_byzantine_sweep(&experiment::byzantine::byzantine_sweep(&suite))
        ),
        "overload" => println!(
            "{}",
            report::render_overload_sweep(&experiment::overload::overload_sweep(&suite))
        ),
        "chaos" => println!(
            "{}",
            report::render_chaos_sweep(&experiment::chaos::chaos_sweep(&suite))
        ),
        "csv" => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "results".to_owned());
            let files = nonstrict_core::export::export_csv(&suite, std::path::Path::new(&dir))
                .expect("csv export");
            for f in files {
                println!("wrote {}", f.display());
            }
        }
        other => {
            eprintln!(
                "unknown table {other:?}; use all|table2..table10|fig6|summary|faults|verify|outage|replicas|byzantine|overload|chaos|csv|serve|loadgen"
            );
            std::process::exit(2);
        }
    }
}

/// Set by SIGTERM/SIGINT; the serve loop polls it and drains.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_signum: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs the drain trigger for SIGTERM and SIGINT. Raw `signal(2)`
/// through the C ABI: the binary takes no libc dependency, and the
/// handler only flips an atomic, which is async-signal-safe.
#[cfg(unix)]
fn install_term_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_term as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

fn num_flag<T: std::str::FromStr>(key: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| bail(&format!("bad value {value:?} for --{key}")))
}

/// Builds serve plans for the named benchmarks (all six when none are
/// named), reusing the same profile → restructure → unit-split pipeline
/// the simulator measures.
fn build_plans(benchmarks: &[String], ordering: u8) -> Vec<nonstrict_wire::ServePlan> {
    let source = nonstrict_core::ordering_from_wire(ordering)
        .unwrap_or_else(|| bail(&format!("bad ordering code {ordering}")));
    let names: Vec<String> = if benchmarks.is_empty() {
        nonstrict_workloads::BENCHMARK_NAMES
            .iter()
            .map(|n| n.to_lowercase())
            .collect()
    } else {
        benchmarks.to_vec()
    };
    names
        .iter()
        .map(|name| {
            eprintln!("building and profiling {name}...");
            nonstrict_core::build_plan(name, source)
                .unwrap_or_else(|e| bail(&format!("cannot serve {name}: {e}")))
        })
        .collect()
}

/// `paper serve`: stream restructured class files to concurrent TCP
/// clients until SIGTERM, then drain gracefully at unit boundaries.
fn cmd_serve(args: &[String]) {
    let mut addr = "127.0.0.1:9845".to_owned();
    let mut ordering = 0u8;
    let mut benchmarks = Vec::new();
    let mut drain_ms = 5_000u64;
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| bail(&format!("{a} needs a value")))
                .as_str()
        };
        match a.as_str() {
            "--addr" => addr = val().to_owned(),
            "--ordering" => {
                ordering = config::ordering_code(val()).unwrap_or_else(|e| bail(&e.to_string()));
            }
            "--max-conns" => cfg.max_connections = num_flag("max-conns", val()),
            "--accept-burst" => cfg.accept_burst = num_flag("accept-burst", val()),
            "--accept-per-sec" => cfg.accept_refill_per_sec = num_flag("accept-per-sec", val()),
            "--queue-depth" => cfg.send_queue_depth = num_flag("queue-depth", val()),
            "--min-bytes-per-sec" => cfg.min_bytes_per_sec = num_flag("min-bytes-per-sec", val()),
            "--pace-us" => {
                cfg.pace_per_unit = Some(Duration::from_micros(num_flag("pace-us", val())));
            }
            "--drain-ms" => drain_ms = num_flag("drain-ms", val()),
            flag if flag.starts_with("--") => bail(&format!("unknown serve flag {flag}")),
            bench => benchmarks.push(bench.to_owned()),
        }
    }
    let plans = build_plans(&benchmarks, ordering);
    install_term_handler();
    let server = WireServer::bind(&addr, plans, cfg)
        .unwrap_or_else(|e| bail(&format!("cannot bind {addr}: {e}")));
    println!("serving on {}", server.local_addr());
    while !TERM.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("draining ({} in flight)...", server.active_connections());
    let stats = server.stats();
    let drained = server.drain(Duration::from_millis(drain_ms));
    println!(
        "accepted: {} admitted: {} resumed: {} retried: {} evicted slow: {} \
         units sent: {} bytes sent: {}",
        stats.accepted,
        stats.admitted,
        stats.resumed,
        stats.retried,
        stats.evicted_slow,
        stats.units_sent,
        stats.bytes_sent,
    );
    println!(
        "drain: {} ({} in flight, {} forced, {} ms)",
        if drained.clean { "clean" } else { "forced" },
        drained.in_flight_at_drain,
        drained.forced,
        drained.elapsed.as_millis(),
    );
    std::process::exit(i32::from(!drained.clean));
}

/// `paper loadgen`: replay a seeded fleet arrival schedule against a
/// server — a self-served loopback instance by default, optionally
/// through the socket-level chaos proxy — and fail on any cross-client
/// payload divergence.
fn cmd_loadgen(args: &[String]) {
    let mut benchmark = "hanoi".to_owned();
    let mut have_benchmark = false;
    let mut addr: Option<String> = None;
    let mut ordering = 0u8;
    let mut clients = 8usize;
    let mut seed = 1998u64;
    let mut spread_ms = 200u64;
    let mut attempts = 10u32;
    let mut chaos = false;
    let mut pace_us = 50u64;
    let mut knobs = FaultKnobs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| bail(&format!("{a} needs a value")))
                .as_str()
        };
        match a.as_str() {
            "--addr" => addr = Some(val().to_owned()),
            "--ordering" => {
                ordering = config::ordering_code(val()).unwrap_or_else(|e| bail(&e.to_string()));
            }
            "--clients" => clients = num_flag("clients", val()),
            "--seed" => seed = num_flag("seed", val()),
            "--spread-ms" => spread_ms = num_flag("spread-ms", val()),
            "--attempts" => attempts = num_flag("attempts", val()),
            "--pace-us" => pace_us = num_flag("pace-us", val()),
            "--chaos" => chaos = true,
            flag if flag.starts_with("--") => {
                let key = &flag[2..];
                let value = val();
                match knobs.set(key, value) {
                    Ok(true) => chaos = true,
                    Ok(false) => bail(&format!("unknown loadgen flag {flag}")),
                    Err(e) => bail(&e.to_string()),
                }
            }
            bench if !have_benchmark => {
                benchmark = bench.to_owned();
                have_benchmark = true;
            }
            extra => bail(&format!("unexpected argument {extra:?}")),
        }
    }
    if knobs.seed == 0 {
        knobs.seed = seed;
    }

    // Self-serve on loopback unless aimed at an external server.
    let server = if addr.is_none() {
        let plans = build_plans(std::slice::from_ref(&benchmark), ordering);
        let cfg = ServerConfig {
            pace_per_unit: Some(Duration::from_micros(pace_us)),
            ..ServerConfig::default()
        };
        let s = WireServer::bind("127.0.0.1:0", plans, cfg)
            .unwrap_or_else(|e| bail(&format!("cannot bind loopback server: {e}")));
        addr = Some(s.local_addr().to_string());
        Some(s)
    } else {
        None
    };
    let upstream: std::net::SocketAddr = addr
        .unwrap()
        .parse()
        .unwrap_or_else(|e| bail(&format!("bad --addr: {e}")));

    let proxy = if chaos {
        let p = ChaosProxy::spawn(upstream, ChaosConfig::new(knobs))
            .unwrap_or_else(|e| bail(&format!("cannot spawn chaos proxy: {e}")));
        eprintln!("chaos proxy on {} -> {upstream}", p.local_addr());
        Some(p)
    } else {
        None
    };
    let target = proxy.as_ref().map_or(upstream, ChaosProxy::local_addr);

    let mut client = ClientConfig::new(target, &benchmark);
    client.ordering = ordering;
    client.max_attempts = attempts;
    let report = nonstrict_wire::run_loadgen(&LoadgenConfig {
        client,
        clients,
        seed,
        arrival_spread: Duration::from_millis(spread_ms),
    });

    println!(
        "clients: {clients} completed: {} failed: {}",
        report.completed, report.failed
    );
    println!(
        "latency ms: p50 {} p95 {} p99 {} max {}",
        report.p50_ms, report.p95_ms, report.p99_ms, report.max_ms
    );
    println!(
        "connects: {} admission retries: {} evictions: {} stream faults: {} order violations: {}",
        report.connects,
        report.admission_retries,
        report.evictions,
        report.stream_faults,
        report.order_violations,
    );
    println!("bytes: {}", report.bytes);
    if let Some(p) = proxy {
        let cs = p.stop();
        println!(
            "chaos faults: {} (cuts {} aborts {} corruptions {} stalls {} reorders {}) over {} connections",
            cs.total_faults(),
            cs.cuts,
            cs.aborts,
            cs.corruptions,
            cs.stalls,
            cs.reorders,
            cs.connections,
        );
    }
    println!("invariant violations: {}", report.violations.len());
    for v in &report.violations {
        println!("  violation: {v}");
    }
    let mut ok = report.violations.is_empty() && report.failed == 0 && report.completed == clients;
    if let Some(s) = server {
        let drained = s.drain(Duration::from_millis(5_000));
        println!(
            "drain: {} ({} in flight, {} forced, {} ms)",
            if drained.clean { "clean" } else { "forced" },
            drained.in_flight_at_drain,
            drained.forced,
            drained.elapsed.as_millis(),
        );
        ok &= drained.clean;
    }
    std::process::exit(i32::from(!ok));
}

/// The paper's headline claims versus this reproduction.
fn print_summary(suite: &Suite) {
    let t4 = experiment::table4(suite);
    let ns: Vec<f64> = t4
        .iter()
        .flat_map(|r| [r.t1.non_strict_reduction, r.modem.non_strict_reduction])
        .collect();
    let dp: Vec<f64> = t4
        .iter()
        .flat_map(|r| [r.t1.partitioned_reduction, r.modem.partitioned_reduction])
        .collect();
    println!("Headline claims (paper §8) vs measured:");
    println!(
        "  invocation latency reduction: paper {:.0}%..{:.0}% avg — measured avg {:.0}% (non-strict) .. {:.0}% (partitioned)",
        paper::HEADLINE_LATENCY_REDUCTION.0,
        paper::HEADLINE_LATENCY_REDUCTION.1,
        mean(&ns),
        mean(&dp),
    );
    let f6 = experiment::fig6(suite);
    let best: Vec<f64> = f6[3].to_vec(); // interleaved + partitioning
    let typical: Vec<f64> = f6[0].to_vec(); // parallel(4)
    println!(
        "  execution-time reduction: paper {:.0}%..{:.0}% — measured {:.0}% (parallel avg) .. {:.0}% (interleaved+DP avg)",
        paper::HEADLINE_EXEC_REDUCTION.0,
        paper::HEADLINE_EXEC_REDUCTION.1,
        100.0 - mean(&typical),
        100.0 - mean(&best),
    );
}
