//! Regenerates every table and figure of the ASPLOS '98 paper.
//!
//! ```text
//! paper all          # every table + Figure 6
//! paper table2       # one table (2..=10)
//! paper table10
//! paper fig6
//! paper summary      # headline claims vs measured
//! paper faults       # fault sweep: resilience + graceful degradation
//! paper verify       # verification sweep: verified-prefix streaming cost
//! paper outage       # outage sweep: session checkpoint/resume cost
//! paper replicas     # replica sweep: mirror routing, hedging, failover
//! paper byzantine    # byzantine sweep: manifest digests, audits, quarantine
//! paper overload     # overload sweep: fair-share scheduling + load shedding
//! paper chaos        # chaos sweep: composed cross-layer fault scenarios
//! paper chaos --repro r.nscr  # replay one chaos repro artifact
//! paper csv results/ # machine-readable export of every table
//!
//! paper serve [bench..] [--addr A] [--ordering O] [--pace-us N] ...
//!                    # stream restructured classes over real TCP;
//!                    # SIGTERM drains gracefully at unit boundaries
//! paper loadgen <bench> --clients N [--chaos --loss PM ...]
//!                    [--journal-dir D [--cache-dir D] [--kill-after-units N]]
//!                    # replay a fleet arrival schedule over loopback
//!                    # (self-serving by default; --addr to aim at a
//!                    # running `paper serve`, --mirrors a,b,c to aim
//!                    # at a mirror fleet, --forge PM for Byzantine
//!                    # payload forgery on the first mirror;
//!                    # --journal-dir journals each session durably and
//!                    # --kill-after-units dies at the Nth unit, then
//!                    # warm-restarts from the recovered journal)
//! paper fleet <bench> --mirrors N --clients N [--crash-plan SEED[:KILLS[:WINDOW-MS]]]
//!                    [--epoch-rollover MS] [--forge PM] [--chaos ...]
//!                    [--journal-dir D [--cache-dir D] [--kill-after-units N]]
//!                    # supervise N crash-restarting mirrors, drive a
//!                    # chaotic client fleet against them, optionally
//!                    # roll the restructure epoch live mid-run
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use nonstrict_core::experiment::{self, paper, Suite};
use nonstrict_core::metrics::mean;
use nonstrict_core::model::DataLayout;
use nonstrict_core::report;
use nonstrict_netsim::Link;
use nonstrict_wire::{
    config, ChaosConfig, ChaosProxy, ClientConfig, CrashPlan, FaultKnobs, FleetConfig,
    FleetSupervisor, LoadgenConfig, LoadgenReport, ServerConfig, WireServer,
};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let rest: Vec<String> = std::env::args().skip(2).collect();
    match arg.as_str() {
        "serve" => return cmd_serve(&rest),
        "loadgen" => return cmd_loadgen(&rest),
        "fleet" => return cmd_fleet(&rest),
        _ => {}
    }
    // `paper chaos --repro <file>` replays one serialized scenario: it
    // builds only that scenario's benchmark, not the whole suite.
    if arg == "chaos" && std::env::args().nth(2).as_deref() == Some("--repro") {
        let Some(path) = std::env::args().nth(3) else {
            eprintln!("usage: paper chaos --repro <file.nscr>");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match nonstrict_core::chaos::replay_repro(&text) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("bad repro artifact {path}: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    eprintln!("building and profiling the six benchmarks...");
    let suite = Suite::new().expect("benchmarks build and run");
    match arg.as_str() {
        "all" => println!("{}", report::render_all(&suite)),
        "table2" => println!("{}", report::render_table2(&suite)),
        "table3" => println!("{}", report::render_table3(&experiment::table3(&suite))),
        "table4" => println!("{}", report::render_table4(&experiment::table4(&suite))),
        "table5" => println!(
            "{}",
            report::render_parallel(&experiment::parallel_table(
                &suite,
                Link::T1,
                DataLayout::Whole
            ))
        ),
        "table6" => println!(
            "{}",
            report::render_parallel(&experiment::parallel_table(
                &suite,
                Link::MODEM_28_8,
                DataLayout::Whole
            ))
        ),
        "table7" => {
            let t = experiment::interleaved_table(&suite, DataLayout::Whole);
            let p: Vec<[f64; 6]> = paper::TABLE7
                .iter()
                .map(|r| [r.0, r.1, r.2, r.3, r.4, r.5])
                .collect();
            println!(
                "{}",
                report::render_interleaved(&t, "Table 7: Interleaved File Transfer", Some(&p))
            );
        }
        "table8" => println!("{}", report::render_table8(&experiment::table8(&suite))),
        "table9" => println!("{}", report::render_table9(&experiment::table9(&suite))),
        "table10" => {
            let (tp, ti) = experiment::table10(&suite);
            let pp: Vec<[f64; 6]> = paper::TABLE10.iter().map(|r| r.0).collect();
            let pi: Vec<[f64; 6]> = paper::TABLE10.iter().map(|r| r.1).collect();
            println!(
                "{}",
                report::render_interleaved(
                    &tp,
                    "Table 10a: Parallel(4) + Data Partitioning",
                    Some(&pp)
                )
            );
            println!(
                "{}",
                report::render_interleaved(
                    &ti,
                    "Table 10b: Interleaved + Data Partitioning",
                    Some(&pi)
                )
            );
        }
        "fig6" => println!("{}", report::render_fig6(&experiment::fig6(&suite))),
        "summary" => print_summary(&suite),
        "faults" => println!(
            "{}",
            report::render_fault_sweep(&experiment::faults::fault_sweep(&suite))
        ),
        "verify" => println!(
            "{}",
            report::render_verify_sweep(&experiment::verify::verify_sweep(&suite))
        ),
        "outage" => println!(
            "{}",
            report::render_outage_sweep(&experiment::outage::outage_sweep(&suite))
        ),
        "replicas" => println!(
            "{}",
            report::render_replica_sweep(&experiment::replica::replica_sweep(&suite))
        ),
        "byzantine" => println!(
            "{}",
            report::render_byzantine_sweep(&experiment::byzantine::byzantine_sweep(&suite))
        ),
        "overload" => println!(
            "{}",
            report::render_overload_sweep(&experiment::overload::overload_sweep(&suite))
        ),
        "chaos" => println!(
            "{}",
            report::render_chaos_sweep(&experiment::chaos::chaos_sweep(&suite))
        ),
        "csv" => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "results".to_owned());
            let files = nonstrict_core::export::export_csv(&suite, std::path::Path::new(&dir))
                .expect("csv export");
            for f in files {
                println!("wrote {}", f.display());
            }
        }
        other => {
            eprintln!(
                "unknown table {other:?}; use all|table2..table10|fig6|summary|faults|verify|outage|replicas|byzantine|overload|chaos|csv|serve|loadgen|fleet"
            );
            std::process::exit(2);
        }
    }
}

/// Set by SIGTERM/SIGINT; the serve loop polls it and drains.
static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_signum: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Installs the drain trigger for SIGTERM and SIGINT. Raw `signal(2)`
/// through the C ABI: the binary takes no libc dependency, and the
/// handler only flips an atomic, which is async-signal-safe.
#[cfg(unix)]
fn install_term_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_term as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

#[cfg(not(unix))]
fn install_term_handler() {}

fn bail(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

fn num_flag<T: std::str::FromStr>(key: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| bail(&format!("bad value {value:?} for --{key}")))
}

/// Builds serve plans for the named benchmarks (all six when none are
/// named), reusing the same profile → restructure → unit-split pipeline
/// the simulator measures.
fn build_plans(benchmarks: &[String], ordering: u8) -> Vec<nonstrict_wire::ServePlan> {
    let source = nonstrict_core::ordering_from_wire(ordering)
        .unwrap_or_else(|| bail(&format!("bad ordering code {ordering}")));
    let names: Vec<String> = if benchmarks.is_empty() {
        nonstrict_workloads::BENCHMARK_NAMES
            .iter()
            .map(|n| n.to_lowercase())
            .collect()
    } else {
        benchmarks.to_vec()
    };
    names
        .iter()
        .map(|name| {
            eprintln!("building and profiling {name}...");
            nonstrict_core::build_plan(name, source)
                .unwrap_or_else(|e| bail(&format!("cannot serve {name}: {e}")))
        })
        .collect()
}

/// `paper serve`: stream restructured class files to concurrent TCP
/// clients until SIGTERM, then drain gracefully at unit boundaries.
fn cmd_serve(args: &[String]) {
    let mut addr = "127.0.0.1:9845".to_owned();
    let mut ordering = 0u8;
    let mut benchmarks = Vec::new();
    let mut drain_ms = 5_000u64;
    let mut cfg = ServerConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| bail(&format!("{a} needs a value")))
                .as_str()
        };
        match a.as_str() {
            "--addr" => addr = val().to_owned(),
            "--ordering" => {
                ordering = config::ordering_code(val()).unwrap_or_else(|e| bail(&e.to_string()));
            }
            "--max-conns" => cfg.max_connections = num_flag("max-conns", val()),
            "--accept-burst" => cfg.accept_burst = num_flag("accept-burst", val()),
            "--accept-per-sec" => cfg.accept_refill_per_sec = num_flag("accept-per-sec", val()),
            "--queue-depth" => cfg.send_queue_depth = num_flag("queue-depth", val()),
            "--min-bytes-per-sec" => cfg.min_bytes_per_sec = num_flag("min-bytes-per-sec", val()),
            "--pace-us" => {
                cfg.pace_per_unit = Some(Duration::from_micros(num_flag("pace-us", val())));
            }
            "--drain-ms" => drain_ms = num_flag("drain-ms", val()),
            flag if flag.starts_with("--") => bail(&format!("unknown serve flag {flag}")),
            bench => benchmarks.push(bench.to_owned()),
        }
    }
    let plans = build_plans(&benchmarks, ordering);
    install_term_handler();
    let server = WireServer::bind(&addr, plans, cfg)
        .unwrap_or_else(|e| bail(&format!("cannot bind {addr}: {e}")));
    println!("serving on {}", server.local_addr());
    while !TERM.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("draining ({} in flight)...", server.active_connections());
    let stats = server.stats();
    let drained = server.drain(Duration::from_millis(drain_ms));
    println!(
        "accepted: {} admitted: {} resumed: {} retried: {} evicted slow: {} \
         units sent: {} bytes sent: {}",
        stats.accepted,
        stats.admitted,
        stats.resumed,
        stats.retried,
        stats.evicted_slow,
        stats.units_sent,
        stats.bytes_sent,
    );
    println!(
        "drain: {} ({} in flight, {} forced, {} ms)",
        if drained.clean { "clean" } else { "forced" },
        drained.in_flight_at_drain,
        drained.forced,
        drained.elapsed.as_millis(),
    );
    std::process::exit(i32::from(!drained.clean));
}

/// `paper loadgen`: replay a seeded fleet arrival schedule against a
/// server — a self-served loopback instance by default, optionally
/// through the socket-level chaos proxy — and fail on any cross-client
/// payload divergence.
fn cmd_loadgen(args: &[String]) {
    let mut benchmark = "hanoi".to_owned();
    let mut have_benchmark = false;
    let mut addr: Option<String> = None;
    let mut mirrors: Option<Vec<std::net::SocketAddr>> = None;
    let mut ordering = 0u8;
    let mut clients = 8usize;
    let mut seed = 1998u64;
    let mut spread_ms = 200u64;
    let mut attempts = 10u32;
    let mut chaos = false;
    let mut forge_pm = 0u32;
    let mut pace_us = 50u64;
    let mut journal_dir: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut kill_after_units: Option<u64> = None;
    let mut knobs = FaultKnobs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| bail(&format!("{a} needs a value")))
                .as_str()
        };
        match a.as_str() {
            "--addr" => addr = Some(val().to_owned()),
            "--mirrors" => {
                mirrors =
                    Some(config::parse_mirrors(val()).unwrap_or_else(|e| bail(&e.to_string())));
            }
            "--ordering" => {
                ordering = config::ordering_code(val()).unwrap_or_else(|e| bail(&e.to_string()));
            }
            "--clients" => clients = num_flag("clients", val()),
            "--seed" => seed = num_flag("seed", val()),
            "--spread-ms" => spread_ms = num_flag("spread-ms", val()),
            "--attempts" => attempts = num_flag("attempts", val()),
            "--pace-us" => pace_us = num_flag("pace-us", val()),
            "--journal-dir" => journal_dir = Some(val().to_owned()),
            "--cache-dir" => cache_dir = Some(val().to_owned()),
            "--kill-after-units" => kill_after_units = Some(num_flag("kill-after-units", val())),
            "--chaos" => chaos = true,
            "--forge" => {
                forge_pm = num_flag("forge", val());
                chaos = true;
            }
            flag if flag.starts_with("--") => {
                let key = &flag[2..];
                let value = val();
                match knobs.set(key, value) {
                    Ok(true) => chaos = true,
                    Ok(false) => bail(&format!("unknown loadgen flag {flag}")),
                    Err(e) => bail(&e.to_string()),
                }
            }
            bench if !have_benchmark => {
                benchmark = bench.to_owned();
                have_benchmark = true;
            }
            extra => bail(&format!("unexpected argument {extra:?}")),
        }
    }
    if knobs.seed == 0 {
        knobs.seed = seed;
    }

    // Self-serve on loopback unless aimed at an external server or an
    // explicit mirror fleet.
    let server = if addr.is_none() && mirrors.is_none() {
        let plans = build_plans(std::slice::from_ref(&benchmark), ordering);
        let cfg = ServerConfig {
            pace_per_unit: Some(Duration::from_micros(pace_us)),
            ..ServerConfig::default()
        };
        let s = WireServer::bind("127.0.0.1:0", plans, cfg)
            .unwrap_or_else(|e| bail(&format!("cannot bind loopback server: {e}")));
        addr = Some(s.local_addr().to_string());
        Some(s)
    } else {
        None
    };
    // The mirror list the clients see: an explicit fleet, or the single
    // upstream address. The chaos proxy always fronts the *first*
    // mirror, so Byzantine forgery lands on the preferred (pinned)
    // mirror while the rest of the fleet stays honest.
    let mut mirror_list = mirrors.unwrap_or_else(|| {
        vec![addr
            .unwrap()
            .parse()
            .unwrap_or_else(|e| bail(&format!("bad --addr: {e}")))]
    });
    let proxy = if chaos {
        let upstream = mirror_list[0];
        let mut chaos_config = ChaosConfig::new(knobs);
        chaos_config.forge_pm = forge_pm;
        let p = ChaosProxy::spawn(upstream, chaos_config)
            .unwrap_or_else(|e| bail(&format!("cannot spawn chaos proxy: {e}")));
        eprintln!("chaos proxy on {} -> {upstream}", p.local_addr());
        mirror_list[0] = p.local_addr();
        Some(p)
    } else {
        None
    };

    let mut client = ClientConfig::with_mirrors(mirror_list, &benchmark);
    client.ordering = ordering;
    client.max_attempts = attempts;
    client.kill_after_units = kill_after_units;
    let stores = store_factory(journal_dir, cache_dir, kill_after_units);
    let report = nonstrict_wire::run_loadgen(&LoadgenConfig {
        client,
        clients,
        seed,
        arrival_spread: Duration::from_millis(spread_ms),
        stores,
    });

    print_loadgen_summary(clients, &report);
    if let Some(p) = proxy {
        print_chaos_stats(&p.stop());
    }
    let mut ok = report.violations.is_empty() && report.failed == 0 && report.completed == clients;
    if let Some(s) = server {
        let drained = s.drain(Duration::from_millis(5_000));
        println!(
            "drain: {} ({} in flight, {} forced, {} ms)",
            if drained.clean { "clean" } else { "forced" },
            drained.in_flight_at_drain,
            drained.forced,
            drained.elapsed.as_millis(),
        );
        ok &= drained.clean;
    }
    std::process::exit(i32::from(!ok));
}

/// Builds the per-client durable-store factory for `--journal-dir` /
/// `--cache-dir`: each client index gets its own `client-{i}` subtree
/// so concurrent sessions never share a journal.
fn store_factory(
    journal_dir: Option<String>,
    cache_dir: Option<String>,
    kill_after_units: Option<u64>,
) -> Option<nonstrict_wire::loadgen::StoreFactory> {
    let Some(jd) = journal_dir else {
        if cache_dir.is_some() {
            bail("--cache-dir needs --journal-dir");
        }
        if kill_after_units.is_some() {
            bail("--kill-after-units needs --journal-dir");
        }
        return None;
    };
    let cd = cache_dir.unwrap_or_else(|| jd.clone());
    Some(std::sync::Arc::new(
        move |i: usize| -> Box<dyn nonstrict_wire::SessionStore> {
            let sub = format!("client-{i}");
            let journal = nonstrict_store::RealFs::open(std::path::Path::new(&jd).join(&sub))
                .unwrap_or_else(|e| bail(&format!("cannot open --journal-dir: {e}")));
            let cache = nonstrict_store::RealFs::open(std::path::Path::new(&cd).join(&sub))
                .unwrap_or_else(|e| bail(&format!("cannot open --cache-dir: {e}")));
            Box::new(nonstrict_store::DurableSession::split(
                std::sync::Arc::new(journal),
                std::sync::Arc::new(cache),
            ))
        },
    ))
}

/// The shared loadgen scoreboard: completion, tails, the robustness
/// counters, and — for mirror fleets — where the bytes actually came
/// from and what was quarantined on the way.
fn print_loadgen_summary(clients: usize, report: &LoadgenReport) {
    println!(
        "clients: {clients} completed: {} failed: {}",
        report.completed, report.failed
    );
    println!(
        "latency ms: p50 {} p95 {} p99 {} max {}",
        report.p50_ms, report.p95_ms, report.p99_ms, report.max_ms
    );
    println!(
        "connects: {} admission retries: {} evictions: {} stream faults: {} order violations: {}",
        report.connects,
        report.admission_retries,
        report.evictions,
        report.stream_faults,
        report.order_violations,
    );
    println!(
        "failovers: {} quarantines: {} digest rejects: {} stale welcomes: {} equivocations: {}",
        report.failovers,
        report.quarantines,
        report.digest_rejects,
        report.stale_welcomes,
        report.equivocations,
    );
    let per_mirror: Vec<String> = report
        .mirror_units
        .iter()
        .enumerate()
        .map(|(i, u)| format!("m{i}: {u}"))
        .collect();
    println!(
        "units per mirror: [{}] layouts seen: {}",
        per_mirror.join(", "),
        report.layouts_seen
    );
    if report.kills > 0 || report.warm_units > 0 {
        println!(
            "process kills: {} units warm-restored: {}",
            report.kills, report.warm_units
        );
    }
    println!("bytes: {}", report.bytes);
    println!("invariant violations: {}", report.violations.len());
    for v in &report.violations {
        println!("  violation: {v}");
    }
}

fn print_chaos_stats(cs: &nonstrict_wire::chaos::ChaosStats) {
    println!(
        "chaos faults: {} (cuts {} aborts {} corruptions {} stalls {} reorders {} forges {}) \
         over {} connections",
        cs.total_faults(),
        cs.cuts,
        cs.aborts,
        cs.corruptions,
        cs.stalls,
        cs.reorders,
        cs.forges,
        cs.connections,
    );
}

/// Parses `--crash-plan SEED[:KILLS[:WINDOW-MS]]`: the seed for the
/// per-mirror kill-time draws, kills per mirror (default 1), and the
/// uniform uptime window the kills spread over (default 500 ms).
fn parse_crash_plan(spec: &str) -> CrashPlan {
    let mut parts = spec.split(':');
    let seed = num_flag("crash-plan", parts.next().unwrap_or_default());
    let kills_per_mirror = parts.next().map_or(1, |v| num_flag("crash-plan", v));
    let window_ms: u64 = parts.next().map_or(500, |v| num_flag("crash-plan", v));
    if parts.next().is_some() {
        bail("bad --crash-plan; use SEED[:KILLS[:WINDOW-MS]]");
    }
    CrashPlan {
        seed,
        kills_per_mirror,
        min_uptime: Duration::from_millis(100),
        uptime_spread: Duration::from_millis(window_ms.max(1)),
    }
}

/// `paper fleet`: supervise N crash-restarting mirrors serving one
/// benchmark, drive a chaotic client fleet against the slot addresses,
/// optionally roll the restructure epoch live mid-run, and fail on any
/// cross-client divergence or unclean fence.
fn cmd_fleet(args: &[String]) {
    let mut benchmark = "hanoi".to_owned();
    let mut have_benchmark = false;
    let mut mirrors = 3usize;
    let mut ordering = 0u8;
    let mut clients = 8usize;
    let mut seed = 1998u64;
    let mut spread_ms = 200u64;
    let mut attempts = 60u32;
    let mut pace_us = 500u64;
    let mut crash: Option<CrashPlan> = None;
    let mut rollover_ms: Option<u64> = None;
    let mut chaos = false;
    let mut forge_pm = 0u32;
    let mut journal_dir: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut kill_after_units: Option<u64> = None;
    let mut knobs = FaultKnobs::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| bail(&format!("{a} needs a value")))
                .as_str()
        };
        match a.as_str() {
            "--mirrors" => mirrors = num_flag("mirrors", val()),
            "--ordering" => {
                ordering = config::ordering_code(val()).unwrap_or_else(|e| bail(&e.to_string()));
            }
            "--clients" => clients = num_flag("clients", val()),
            "--seed" => seed = num_flag("seed", val()),
            "--spread-ms" => spread_ms = num_flag("spread-ms", val()),
            "--attempts" => attempts = num_flag("attempts", val()),
            "--pace-us" => pace_us = num_flag("pace-us", val()),
            "--crash-plan" => crash = Some(parse_crash_plan(val())),
            "--epoch-rollover" => rollover_ms = Some(num_flag("epoch-rollover", val())),
            "--journal-dir" => journal_dir = Some(val().to_owned()),
            "--cache-dir" => cache_dir = Some(val().to_owned()),
            "--kill-after-units" => kill_after_units = Some(num_flag("kill-after-units", val())),
            "--chaos" => chaos = true,
            "--forge" => {
                forge_pm = num_flag("forge", val());
                chaos = true;
            }
            flag if flag.starts_with("--") => {
                let key = &flag[2..];
                let value = val();
                match knobs.set(key, value) {
                    Ok(true) => chaos = true,
                    Ok(false) => bail(&format!("unknown fleet flag {flag}")),
                    Err(e) => bail(&e.to_string()),
                }
            }
            bench if !have_benchmark => {
                benchmark = bench.to_owned();
                have_benchmark = true;
            }
            extra => bail(&format!("unexpected argument {extra:?}")),
        }
    }
    if mirrors == 0 {
        bail("--mirrors must be at least 1");
    }
    if knobs.seed == 0 {
        knobs.seed = seed;
    }

    // Even generations serve the requested ordering; odd generations
    // serve a genuinely re-restructured layout (a different ordering),
    // so an epoch rollover moves real manifest epochs, not just the
    // generation counter.
    let source = nonstrict_core::ordering_from_wire(ordering)
        .unwrap_or_else(|| bail(&format!("bad ordering code {ordering}")));
    let alt = if ordering == 3 {
        nonstrict_core::ordering_from_wire(0).expect("scg exists")
    } else {
        nonstrict_core::ordering_from_wire(3).expect("source order exists")
    };
    eprintln!("building and profiling {benchmark}...");
    let plan_even = nonstrict_core::build_plan(&benchmark, source)
        .unwrap_or_else(|e| bail(&format!("cannot serve {benchmark}: {e}")));
    let plan_odd = nonstrict_core::build_plan(&benchmark, alt)
        .unwrap_or_else(|e| bail(&format!("cannot serve {benchmark}: {e}")));
    let factory: nonstrict_wire::PlanFactory = std::sync::Arc::new(move |generation| {
        vec![if generation % 2 == 0 {
            plan_even.clone()
        } else {
            plan_odd.clone()
        }]
    });

    let supervisor = FleetSupervisor::launch(
        FleetConfig {
            mirrors,
            server: ServerConfig {
                pace_per_unit: Some(Duration::from_micros(pace_us)),
                resume_after_ms: 10,
                ..ServerConfig::default()
            },
            crash,
            restart_delay: Duration::from_millis(50),
            health_interval: Duration::from_millis(200),
            drain_deadline: Duration::from_secs(5),
        },
        factory,
    )
    .unwrap_or_else(|e| bail(&format!("cannot launch fleet: {e}")));
    let mut mirror_list = supervisor.addrs().to_vec();
    println!(
        "fleet of {mirrors} mirrors: {}",
        mirror_list
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );

    let proxy = if chaos {
        let upstream = mirror_list[0];
        let mut chaos_config = ChaosConfig::new(knobs);
        chaos_config.forge_pm = forge_pm;
        let p = ChaosProxy::spawn(upstream, chaos_config)
            .unwrap_or_else(|e| bail(&format!("cannot spawn chaos proxy: {e}")));
        eprintln!(
            "chaos proxy fronts mirror 0: {} -> {upstream}",
            p.local_addr()
        );
        mirror_list[0] = p.local_addr();
        Some(p)
    } else {
        None
    };

    let mut client = ClientConfig::with_mirrors(mirror_list, &benchmark);
    client.ordering = ordering;
    client.max_attempts = attempts;
    client.kill_after_units = kill_after_units;
    let stores = store_factory(journal_dir, cache_dir, kill_after_units);
    let loadgen_config = LoadgenConfig {
        client,
        clients,
        seed,
        arrival_spread: Duration::from_millis(spread_ms),
        stores,
    };
    let report = std::thread::scope(|s| {
        if let Some(ms) = rollover_ms {
            let sup = &supervisor;
            s.spawn(move || {
                std::thread::sleep(Duration::from_millis(ms));
                eprintln!("driving epoch rollover...");
                sup.rollover();
            });
        }
        nonstrict_wire::run_loadgen(&loadgen_config)
    });

    print_loadgen_summary(clients, &report);
    if let Some(p) = proxy {
        print_chaos_stats(&p.stop());
    }
    let fleet = supervisor.shutdown();
    for (i, m) in fleet.mirrors.iter().enumerate() {
        println!(
            "mirror {i}: starts {} kills {} probes {} probe failures {} \
             units {} completed {} evicted drain {}",
            m.starts,
            m.kills,
            m.health_probes,
            m.health_failures,
            m.stats.units_sent,
            m.stats.completed,
            m.stats.evicted_drain,
        );
    }
    println!(
        "fleet: rollovers {} drains clean {} forced {} kills {} starts {}",
        fleet.rollovers,
        fleet.clean_drains,
        fleet.forced_drains,
        fleet.total_kills(),
        fleet.total_starts(),
    );
    let ok = report.violations.is_empty()
        && report.failed == 0
        && report.completed == clients
        && fleet.forced_drains == 0;
    std::process::exit(i32::from(!ok));
}

/// The paper's headline claims versus this reproduction.
fn print_summary(suite: &Suite) {
    let t4 = experiment::table4(suite);
    let ns: Vec<f64> = t4
        .iter()
        .flat_map(|r| [r.t1.non_strict_reduction, r.modem.non_strict_reduction])
        .collect();
    let dp: Vec<f64> = t4
        .iter()
        .flat_map(|r| [r.t1.partitioned_reduction, r.modem.partitioned_reduction])
        .collect();
    println!("Headline claims (paper §8) vs measured:");
    println!(
        "  invocation latency reduction: paper {:.0}%..{:.0}% avg — measured avg {:.0}% (non-strict) .. {:.0}% (partitioned)",
        paper::HEADLINE_LATENCY_REDUCTION.0,
        paper::HEADLINE_LATENCY_REDUCTION.1,
        mean(&ns),
        mean(&dp),
    );
    let f6 = experiment::fig6(suite);
    let best: Vec<f64> = f6[3].to_vec(); // interleaved + partitioning
    let typical: Vec<f64> = f6[0].to_vec(); // parallel(4)
    println!(
        "  execution-time reduction: paper {:.0}%..{:.0}% — measured {:.0}% (parallel avg) .. {:.0}% (interleaved+DP avg)",
        paper::HEADLINE_EXEC_REDUCTION.0,
        paper::HEADLINE_EXEC_REDUCTION.1,
        100.0 - mean(&typical),
        100.0 - mean(&best),
    );
}
