//! Regenerates every table and figure of the ASPLOS '98 paper.
//!
//! ```text
//! paper all          # every table + Figure 6
//! paper table2       # one table (2..=10)
//! paper table10
//! paper fig6
//! paper summary      # headline claims vs measured
//! paper faults       # fault sweep: resilience + graceful degradation
//! paper verify       # verification sweep: verified-prefix streaming cost
//! paper outage       # outage sweep: session checkpoint/resume cost
//! paper replicas     # replica sweep: mirror routing, hedging, failover
//! paper byzantine    # byzantine sweep: manifest digests, audits, quarantine
//! paper overload     # overload sweep: fair-share scheduling + load shedding
//! paper chaos        # chaos sweep: composed cross-layer fault scenarios
//! paper chaos --repro r.nscr  # replay one chaos repro artifact
//! paper csv results/ # machine-readable export of every table
//! ```

use nonstrict_core::experiment::{self, paper, Suite};
use nonstrict_core::metrics::mean;
use nonstrict_core::model::DataLayout;
use nonstrict_core::report;
use nonstrict_netsim::Link;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    // `paper chaos --repro <file>` replays one serialized scenario: it
    // builds only that scenario's benchmark, not the whole suite.
    if arg == "chaos" && std::env::args().nth(2).as_deref() == Some("--repro") {
        let Some(path) = std::env::args().nth(3) else {
            eprintln!("usage: paper chaos --repro <file.nscr>");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        });
        match nonstrict_core::chaos::replay_repro(&text) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("bad repro artifact {path}: {e}");
                std::process::exit(2);
            }
        }
        return;
    }
    eprintln!("building and profiling the six benchmarks...");
    let suite = Suite::new().expect("benchmarks build and run");
    match arg.as_str() {
        "all" => println!("{}", report::render_all(&suite)),
        "table2" => println!("{}", report::render_table2(&suite)),
        "table3" => println!("{}", report::render_table3(&experiment::table3(&suite))),
        "table4" => println!("{}", report::render_table4(&experiment::table4(&suite))),
        "table5" => println!(
            "{}",
            report::render_parallel(&experiment::parallel_table(
                &suite,
                Link::T1,
                DataLayout::Whole
            ))
        ),
        "table6" => println!(
            "{}",
            report::render_parallel(&experiment::parallel_table(
                &suite,
                Link::MODEM_28_8,
                DataLayout::Whole
            ))
        ),
        "table7" => {
            let t = experiment::interleaved_table(&suite, DataLayout::Whole);
            let p: Vec<[f64; 6]> = paper::TABLE7
                .iter()
                .map(|r| [r.0, r.1, r.2, r.3, r.4, r.5])
                .collect();
            println!(
                "{}",
                report::render_interleaved(&t, "Table 7: Interleaved File Transfer", Some(&p))
            );
        }
        "table8" => println!("{}", report::render_table8(&experiment::table8(&suite))),
        "table9" => println!("{}", report::render_table9(&experiment::table9(&suite))),
        "table10" => {
            let (tp, ti) = experiment::table10(&suite);
            let pp: Vec<[f64; 6]> = paper::TABLE10.iter().map(|r| r.0).collect();
            let pi: Vec<[f64; 6]> = paper::TABLE10.iter().map(|r| r.1).collect();
            println!(
                "{}",
                report::render_interleaved(
                    &tp,
                    "Table 10a: Parallel(4) + Data Partitioning",
                    Some(&pp)
                )
            );
            println!(
                "{}",
                report::render_interleaved(
                    &ti,
                    "Table 10b: Interleaved + Data Partitioning",
                    Some(&pi)
                )
            );
        }
        "fig6" => println!("{}", report::render_fig6(&experiment::fig6(&suite))),
        "summary" => print_summary(&suite),
        "faults" => println!(
            "{}",
            report::render_fault_sweep(&experiment::faults::fault_sweep(&suite))
        ),
        "verify" => println!(
            "{}",
            report::render_verify_sweep(&experiment::verify::verify_sweep(&suite))
        ),
        "outage" => println!(
            "{}",
            report::render_outage_sweep(&experiment::outage::outage_sweep(&suite))
        ),
        "replicas" => println!(
            "{}",
            report::render_replica_sweep(&experiment::replica::replica_sweep(&suite))
        ),
        "byzantine" => println!(
            "{}",
            report::render_byzantine_sweep(&experiment::byzantine::byzantine_sweep(&suite))
        ),
        "overload" => println!(
            "{}",
            report::render_overload_sweep(&experiment::overload::overload_sweep(&suite))
        ),
        "chaos" => println!(
            "{}",
            report::render_chaos_sweep(&experiment::chaos::chaos_sweep(&suite))
        ),
        "csv" => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "results".to_owned());
            let files = nonstrict_core::export::export_csv(&suite, std::path::Path::new(&dir))
                .expect("csv export");
            for f in files {
                println!("wrote {}", f.display());
            }
        }
        other => {
            eprintln!(
                "unknown table {other:?}; use all|table2..table10|fig6|summary|faults|verify|outage|replicas|byzantine|overload|chaos|csv"
            );
            std::process::exit(2);
        }
    }
}

/// The paper's headline claims versus this reproduction.
fn print_summary(suite: &Suite) {
    let t4 = experiment::table4(suite);
    let ns: Vec<f64> = t4
        .iter()
        .flat_map(|r| [r.t1.non_strict_reduction, r.modem.non_strict_reduction])
        .collect();
    let dp: Vec<f64> = t4
        .iter()
        .flat_map(|r| [r.t1.partitioned_reduction, r.modem.partitioned_reduction])
        .collect();
    println!("Headline claims (paper §8) vs measured:");
    println!(
        "  invocation latency reduction: paper {:.0}%..{:.0}% avg — measured avg {:.0}% (non-strict) .. {:.0}% (partitioned)",
        paper::HEADLINE_LATENCY_REDUCTION.0,
        paper::HEADLINE_LATENCY_REDUCTION.1,
        mean(&ns),
        mean(&dp),
    );
    let f6 = experiment::fig6(suite);
    let best: Vec<f64> = f6[3].to_vec(); // interleaved + partitioning
    let typical: Vec<f64> = f6[0].to_vec(); // parallel(4)
    println!(
        "  execution-time reduction: paper {:.0}%..{:.0}% — measured {:.0}% (parallel avg) .. {:.0}% (interleaved+DP avg)",
        paper::HEADLINE_EXEC_REDUCTION.0,
        paper::HEADLINE_EXEC_REDUCTION.1,
        100.0 - mean(&typical),
        100.0 - mean(&best),
    );
}
