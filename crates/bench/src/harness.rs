//! A minimal wall-clock benchmarking harness exposing the subset of
//! the `criterion` API used by `benches/*.rs`: `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Throughput`, `Bencher::iter`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Methodology: each benchmark is warmed up for a fixed wall-clock
//! budget, then timed for `sample_size` samples of automatically-sized
//! iteration batches. The median sample, min, max, and (when a
//! throughput is declared) elements/second are printed. This is not a
//! statistics suite — it exists so `cargo bench` keeps working and
//! produces comparable numbers offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

/// Re-exported `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver; one per `criterion_group!`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a driver with default settings.
    #[must_use]
    pub fn new() -> Criterion {
        Criterion::default()
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n{name}");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 50,
            throughput: None,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.0, 50, None, f);
    }
}

/// Identifier for one benchmark: a function name plus an optional
/// parameter rendered `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{param}"))
    }

    /// Parameter-only id (the group name provides context).
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{param}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId(s)
    }
}

/// Declared per-iteration work, for elements/second reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The iteration processes this many logical elements.
    Elements(u64),
    /// The iteration processes this many bytes.
    Bytes(u64),
}

/// A group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.0, self.sample_size, self.throughput, f);
        self
    }

    /// Times `f` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(&id.0, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to the closure; `iter` does the timing.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping results opaque to the
    /// optimizer.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

const WARMUP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

fn run_benchmark<F>(name: &str, samples: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warmup, and calibrate how many iterations fit a sample.
    let warm_start = Instant::now();
    let mut iters_done: u64 = 0;
    while warm_start.elapsed() < WARMUP {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        iters_done += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;
    let iters = if per_iter > 0.0 {
        ((TARGET_SAMPLE.as_secs_f64() / per_iter).ceil() as u64).max(1)
    } else {
        1
    };

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
    let median = times[times.len() / 2];
    let (lo, hi) = (times[0], times[times.len() - 1]);
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {} elem/s", human_count(n as f64 / median))
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {}B/s", human_count(n as f64 / median))
        }
        _ => String::new(),
    };
    println!(
        "  {name}: {} [{} .. {}]{rate}",
        human_time(median),
        human_time(lo),
        human_time(hi)
    );
}

fn human_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

fn human_count(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} K", v / 1e3)
    } else {
        format!("{v:.0} ")
    }
}

/// Builds a group-runner function from benchmark functions, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::new();
            $( $target(&mut c); )+
        }
    };
}

/// Builds `main` from group-runner functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("stage", "Jess").0, "stage/Jess");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
        let from_str: BenchmarkId = "plain".into();
        assert_eq!(from_str.0, "plain");
    }

    #[test]
    fn bencher_counts_every_iteration() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
    }
}
