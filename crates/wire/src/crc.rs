//! The canonical CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//!
//! One implementation serves every integrity check in the workspace:
//! the simulated per-unit trailer in `nonstrict-netsim`, the NSJR
//! journal and NSUM manifest frames in `nonstrict-core`, and every wire
//! frame this crate puts on a socket. Sharing the arithmetic is what
//! makes the simulator an honest test double for the wire — a unit that
//! passes the simulated check passes the real one, bit for bit.

/// CRC32 of `data`.
///
/// ```
/// use nonstrict_wire::crc32;
/// assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
/// assert_eq!(crc32(b""), 0);
/// ```
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
        assert_ne!(crc32(b"123456789"), crc32(b"123456788"));
    }
}
