//! Fleet load generation against a live server.
//!
//! Replays a seeded arrival schedule — `clients` sessions whose start
//! times are jittered uniformly over an arrival window by the
//! workspace's SplitMix64 — and reports completion counts, wall-clock
//! tail latency, and **invariant violations**: any completed session
//! whose delivered unit CRCs differ from the first completed session's
//! is a violation, because every client of one benchmark must converge
//! on byte-identical class files no matter how admission, eviction, or
//! chaos interleaved its connections.

use std::time::{Duration, Instant};

use crate::client::{ClientConfig, WireClient};
use crate::SplitMix64;

/// Tuning for one loadgen run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Per-client session template (address, benchmark, timeouts,
    /// backoff, attempt budget).
    pub client: ClientConfig,
    /// Sessions to run.
    pub clients: usize,
    /// Seed for the arrival jitter.
    pub seed: u64,
    /// Arrival window: session start offsets are uniform in
    /// `[0, arrival_spread)`.
    pub arrival_spread: Duration,
}

/// What the fleet saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadgenReport {
    /// Sessions that completed every class.
    pub completed: usize,
    /// Sessions that exhausted their attempts or were rejected.
    pub failed: usize,
    /// Median session latency, milliseconds.
    pub p50_ms: u64,
    /// 95th-percentile session latency, milliseconds.
    pub p95_ms: u64,
    /// 99th-percentile session latency, milliseconds.
    pub p99_ms: u64,
    /// Worst session latency, milliseconds.
    pub max_ms: u64,
    /// Connection attempts across the fleet.
    pub connects: u64,
    /// Admission Retry frames honored across the fleet.
    pub admission_retries: u64,
    /// Evictions honored across the fleet.
    pub evictions: u64,
    /// Stream faults survived across the fleet.
    pub stream_faults: u64,
    /// Order violations survived (each forced a reconnect).
    pub order_violations: u64,
    /// Payload bytes delivered across the fleet.
    pub bytes: u64,
    /// Cross-client divergence descriptions; must be empty on a
    /// healthy run.
    pub violations: Vec<String>,
}

/// Runs the fleet and collects the report.
#[must_use]
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    let mut rng = SplitMix64(config.seed);
    let spread_ms = u64::try_from(config.arrival_spread.as_millis()).unwrap_or(u64::MAX);
    let offsets: Vec<u64> = (0..config.clients)
        .map(|_| {
            if spread_ms == 0 {
                0
            } else {
                rng.below(spread_ms)
            }
        })
        .collect();

    let handles: Vec<_> = offsets
        .into_iter()
        .map(|offset_ms| {
            let client_config = config.client.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(offset_ms));
                let started = Instant::now();
                let outcome = WireClient::new(client_config).run();
                (outcome, started.elapsed())
            })
        })
        .collect();

    let mut report = LoadgenReport::default();
    let mut latencies_ms: Vec<u64> = Vec::new();
    let mut reference: Option<Vec<Vec<u32>>> = None;
    for (i, handle) in handles.into_iter().enumerate() {
        let Ok((outcome, elapsed)) = handle.join() else {
            report.failed += 1;
            report
                .violations
                .push(format!("client {i}: session thread panicked"));
            continue;
        };
        match outcome {
            Ok(session) => {
                report.connects += u64::from(session.connects);
                report.admission_retries += u64::from(session.admission_retries);
                report.evictions += u64::from(session.evictions);
                report.stream_faults += u64::from(session.stream_faults);
                report.order_violations += u64::from(session.order_violations);
                report.bytes += session.bytes;
                if !session.complete {
                    report.failed += 1;
                    report
                        .violations
                        .push(format!("client {i}: session returned incomplete"));
                    continue;
                }
                report.completed += 1;
                latencies_ms.push(u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX));
                match &reference {
                    None => reference = Some(session.unit_crcs),
                    Some(expected) => {
                        if *expected != session.unit_crcs {
                            report.violations.push(format!(
                                "client {i}: delivered unit CRCs diverge from fleet reference"
                            ));
                        }
                    }
                }
            }
            Err(e) => {
                report.failed += 1;
                report.violations.push(format!("client {i}: {e}"));
            }
        }
    }

    latencies_ms.sort_unstable();
    report.p50_ms = percentile(&latencies_ms, 50);
    report.p95_ms = percentile(&latencies_ms, 95);
    report.p99_ms = percentile(&latencies_ms, 99);
    report.max_ms = latencies_ms.last().copied().unwrap_or(0);
    report
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * p).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn arrival_offsets_are_seeded_and_bounded() {
        let mut a = SplitMix64(3);
        let mut b = SplitMix64(3);
        for _ in 0..32 {
            let x = a.below(500);
            assert_eq!(x, b.below(500));
            assert!(x < 500);
        }
    }
}
