//! Fleet load generation against a live server (or mirror fleet).
//!
//! Replays a seeded arrival schedule — `clients` sessions whose start
//! times are jittered uniformly over an arrival window by the
//! workspace's SplitMix64 — and reports completion counts, wall-clock
//! tail latency, and **invariant violations**: any completed session
//! whose delivered unit CRCs differ from another completed session's
//! *under the same pinned manifest* is a violation, because every
//! client of one benchmark layout must converge on byte-identical
//! class files no matter how admission, eviction, chaos, failover, or
//! quarantine interleaved its connections. The reference is keyed by
//! `(generation, manifest_epoch, manifest_crc)` so a live epoch
//! rollover mid-run — where early and late sessions legitimately pin
//! different layouts — is not misread as divergence, while any two
//! sessions that *claim* the same layout must still match bit for bit.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::client::{ClientConfig, ClientError, SessionStore, WireClient};
use crate::SplitMix64;

/// Builds the durable [`SessionStore`] for client index `i`. Called
/// again with the same index on warm restart, so the factory must hand
/// back a store over the *same* underlying state both times.
pub type StoreFactory = Arc<dyn Fn(usize) -> Box<dyn SessionStore> + Send + Sync>;

/// Tuning for one loadgen run.
#[derive(Clone)]
pub struct LoadgenConfig {
    /// Per-client session template (address, benchmark, timeouts,
    /// backoff, attempt budget).
    pub client: ClientConfig,
    /// Sessions to run.
    pub clients: usize,
    /// Seed for the arrival jitter.
    pub seed: u64,
    /// Arrival window: session start offsets are uniform in
    /// `[0, arrival_spread)`.
    pub arrival_spread: Duration,
    /// Durable-store factory. When set, every session journals through
    /// its store, and a session that dies at the
    /// [`ClientConfig::kill_after_units`] probe is restarted once —
    /// warm, from whatever the store recovers — with the kill disarmed.
    pub stores: Option<StoreFactory>,
}

impl std::fmt::Debug for LoadgenConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoadgenConfig")
            .field("client", &self.client)
            .field("clients", &self.clients)
            .field("seed", &self.seed)
            .field("arrival_spread", &self.arrival_spread)
            .field("stores", &self.stores.as_ref().map(|_| "<factory>"))
            .finish()
    }
}

/// What the fleet saw.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoadgenReport {
    /// Sessions that completed every class.
    pub completed: usize,
    /// Sessions that exhausted their attempts or were rejected.
    pub failed: usize,
    /// Median session latency, milliseconds.
    pub p50_ms: u64,
    /// 95th-percentile session latency, milliseconds.
    pub p95_ms: u64,
    /// 99th-percentile session latency, milliseconds.
    pub p99_ms: u64,
    /// Worst session latency, milliseconds.
    pub max_ms: u64,
    /// Connection attempts across the fleet.
    pub connects: u64,
    /// Admission Retry frames honored across the fleet.
    pub admission_retries: u64,
    /// Evictions honored across the fleet.
    pub evictions: u64,
    /// Stream faults survived across the fleet.
    pub stream_faults: u64,
    /// Order violations survived (each forced a reconnect).
    pub order_violations: u64,
    /// Mid-session failovers to a different mirror across the fleet.
    pub failovers: u64,
    /// Mirror quarantines across the fleet (equivocation or forged
    /// units).
    pub quarantines: u64,
    /// Units refused for failing the pinned-manifest digest check.
    pub digest_rejects: u64,
    /// Welcomes refused for carrying a stale generation.
    pub stale_welcomes: u64,
    /// Welcomes refused as equivocation under the pinned generation.
    pub equivocations: u64,
    /// Units delivered by each mirror across the fleet, in the client
    /// config's mirror order — where the bytes actually came from.
    pub mirror_units: Vec<u64>,
    /// Process kills taken at the storage kill probe across the fleet.
    pub kills: u64,
    /// Units restored from durable storage at warm restarts (delivered
    /// work that did not have to cross the wire twice).
    pub warm_units: u64,
    /// Distinct `(generation, manifest epoch)` layouts completed
    /// sessions pinned — more than one only across a live rollover.
    pub layouts_seen: usize,
    /// Payload bytes delivered across the fleet.
    pub bytes: u64,
    /// Cross-client divergence descriptions; must be empty on a
    /// healthy run.
    pub violations: Vec<String>,
}

/// Runs the fleet and collects the report.
#[must_use]
pub fn run_loadgen(config: &LoadgenConfig) -> LoadgenReport {
    let mut rng = SplitMix64(config.seed);
    let spread_ms = u64::try_from(config.arrival_spread.as_millis()).unwrap_or(u64::MAX);
    let offsets: Vec<u64> = (0..config.clients)
        .map(|_| {
            if spread_ms == 0 {
                0
            } else {
                rng.below(spread_ms)
            }
        })
        .collect();

    let handles: Vec<_> = offsets
        .into_iter()
        .enumerate()
        .map(|(i, offset_ms)| {
            let client_config = config.client.clone();
            let stores = config.stores.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(offset_ms));
                let started = Instant::now();
                let mut kills = 0u64;
                let outcome = match &stores {
                    None => WireClient::new(client_config).run(),
                    Some(factory) => {
                        let first = WireClient::with_store(client_config.clone(), factory(i)).run();
                        match first {
                            Err(ClientError::Killed { .. }) => {
                                // Process death at the storage probe:
                                // restart warm from the same store,
                                // kill disarmed so the retry can finish.
                                kills += 1;
                                let mut revived = client_config;
                                revived.kill_after_units = None;
                                WireClient::with_store(revived, factory(i)).run()
                            }
                            other => other,
                        }
                    }
                };
                (outcome, kills, started.elapsed())
            })
        })
        .collect();

    let mut report = LoadgenReport {
        mirror_units: vec![0; config.client.mirrors.len()],
        ..LoadgenReport::default()
    };
    let mut latencies_ms: Vec<u64> = Vec::new();
    // Convergence references, one per pinned layout: two sessions that
    // claim the same (generation, manifest epoch, manifest CRC) must
    // hold byte-identical units, whichever mirrors served them.
    let mut references: HashMap<(u32, u64, u32), Vec<Vec<u32>>> = HashMap::new();
    for (i, handle) in handles.into_iter().enumerate() {
        let Ok((outcome, kills, elapsed)) = handle.join() else {
            report.failed += 1;
            report
                .violations
                .push(format!("client {i}: session thread panicked"));
            continue;
        };
        report.kills += kills;
        match outcome {
            Ok(session) => {
                report.warm_units += session.warm_units;
                report.connects += u64::from(session.connects);
                report.admission_retries += u64::from(session.admission_retries);
                report.evictions += u64::from(session.evictions);
                report.stream_faults += u64::from(session.stream_faults);
                report.order_violations += u64::from(session.order_violations);
                report.failovers += u64::from(session.failovers);
                report.quarantines += u64::from(session.quarantines);
                report.digest_rejects += u64::from(session.digest_rejects);
                report.stale_welcomes += u64::from(session.stale_welcomes);
                report.equivocations += u64::from(session.equivocations);
                for (slot, units) in report
                    .mirror_units
                    .iter_mut()
                    .zip(session.mirror_units.iter())
                {
                    *slot += units;
                }
                report.bytes += session.bytes;
                if !session.complete {
                    report.failed += 1;
                    report
                        .violations
                        .push(format!("client {i}: session returned incomplete"));
                    continue;
                }
                report.completed += 1;
                latencies_ms.push(u64::try_from(elapsed.as_millis()).unwrap_or(u64::MAX));
                let layout = (
                    session.generation,
                    session.manifest_epoch,
                    session.manifest_crc,
                );
                match references.get(&layout) {
                    None => {
                        references.insert(layout, session.unit_crcs);
                    }
                    Some(expected) => {
                        if *expected != session.unit_crcs {
                            report.violations.push(format!(
                                "client {i}: delivered unit CRCs diverge from the \
                                 reference for generation {} epoch {:#x}",
                                layout.0, layout.1
                            ));
                        }
                    }
                }
            }
            Err(e) => {
                report.failed += 1;
                report.violations.push(format!("client {i}: {e}"));
            }
        }
    }
    report.layouts_seen = references.len();

    latencies_ms.sort_unstable();
    report.p50_ms = percentile(&latencies_ms, 50);
    report.p95_ms = percentile(&latencies_ms, 95);
    report.p99_ms = percentile(&latencies_ms, 99);
    report.max_ms = latencies_ms.last().copied().unwrap_or(0);
    report
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() * p).div_ceil(100);
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_picks_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn arrival_offsets_are_seeded_and_bounded() {
        let mut a = SplitMix64(3);
        let mut b = SplitMix64(3);
        for _ in 0..32 {
            let x = a.below(500);
            assert_eq!(x, b.below(500));
            assert!(x < 500);
        }
    }
}
